// Multi-process federation: leaf aggregators as real child processes, the
// same wire protocol on real Unix-domain sockets. The root binds a
// listener and forks one process per leaf *before* touching the thread
// pool; each leaf connects back, receives its ShardDown bundle, rebuilds
// its slice of the million-scale Population from descriptors alone (every
// per-client quantity is a pure function of the population seed, so a
// process that never saw the parent's memory regenerates identical
// shards), trains its client partition, and returns one bundled PartialUp.
// The root reassembles the round and verifies every update is bitwise
// identical to an in-process replay — process isolation, real sockets and
// frame reassembly change nothing about the numbers.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "common/serial.hpp"
#include "fl/local_train.hpp"
#include "fl/weights.hpp"
#include "model/model.hpp"
#include "net/socket_transport.hpp"
#include "net/wire.hpp"
#include "pop/population.hpp"

using namespace fedtrans;

namespace {

constexpr int kShards = 2;
constexpr int kCohort = 8;
constexpr std::uint32_t kRound = 0;

/// Deterministic run parameters, rebuilt identically in every process —
/// the only state the root ships to a leaf is the ShardDown bundle.
PopulationConfig pop_cfg() {
  PopulationConfig cfg;
  cfg.num_clients = 5000;
  cfg.seed = 404;
  cfg.shard.num_classes = 4;
  cfg.shard.channels = 1;
  cfg.shard.hw = 8;
  cfg.shard.mean_train_samples = 16;
  cfg.shard.min_train_samples = 10;
  cfg.shard.eval_samples = 8;
  cfg.shard.noise = 0.35;
  cfg.fleet.with_median_capacity(5e6);
  cfg.availability.base_online_frac = 0.7;
  cfg.availability.diurnal_amplitude = 0.2;
  cfg.pool_capacity = kCohort;
  return cfg;
}

ModelSpec demo_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

LocalTrainConfig local_cfg() {
  LocalTrainConfig cfg;
  cfg.steps = 3;
  cfg.batch = 6;
  return cfg;
}

/// [spec string][weights] — the body layout ShardDown bundles carry.
std::string encode_body(const std::string& spec_text, const WeightSet& w) {
  std::ostringstream os(std::ios::binary);
  write_string(os, spec_text);
  write_weight_set(os, w);
  return os.str();
}

struct Body {
  ModelSpec spec;
  WeightSet weights;
};

Body decode_body(const std::string& body) {
  std::istringstream is(body, std::ios::binary);
  const std::string spec_text = read_string(is);
  Body out{ModelSpec::deserialize(spec_text), read_weight_set(is)};
  return out;
}

/// Train one task exactly as a flat in-process round would: payload model
/// from the body, client shards from the population, local randomness from
/// the coordinator-forked Rng state the bundle carries.
LocalTrainResult train_task(const Body& body, const Population& pop,
                            int client,
                            const std::array<std::uint64_t, 4>& rng_state) {
  Rng scratch(1);
  Model model(body.spec, scratch);
  model.set_weights(body.weights);
  Rng rng(1);
  rng.set_state(rng_state);
  const ClientData data = pop.materialize(client);
  return local_train(model, data, local_cfg(), rng);
}

/// Leaf-aggregator child process: connect back to the root, announce the
/// shard, serve exactly one round, exit.
int run_leaf(int shard, const std::string& sock_path) {
  const int fd = connect_unix(sock_path);

  FabricMessage hello;
  hello.type = MsgType::Ack;
  hello.round = kRound;
  hello.sender = aggregator_id(shard);
  hello.receiver = kServerId;
  send_frame_fd(fd, encode_message(hello));

  FdFrameReader reader(fd, /*read_chunk=*/4096);
  const ShardDownlink down = decode_shard_down(reader.read_frame());

  // This process never saw the root's Population object — it regenerates
  // its partition from the deterministic descriptor index.
  Population pop(pop_cfg());

  PartialUpdate up;
  up.round = down.round;
  up.sender = aggregator_id(shard);
  up.shard = shard;
  for (const DownlinkTask& t : down.tasks) {
    const Body body = decode_body(down.bodies[t.body]);
    const LocalTrainResult res =
        train_task(body, pop, t.client, t.rng_state);
    UpdateEntry e;
    e.task = t.task;
    e.client = t.client;
    e.delta = res.delta;
    e.avg_loss = res.avg_loss;
    e.num_samples = res.num_samples;
    e.macs_used = res.macs_used;
    up.entries.push_back(std::move(e));
  }
  send_frame_fd(fd,
                encode_partial_up(down.round, up.sender, kServerId, up));
  ::close(fd);
  return 0;
}

double max_abs(const WeightSet& a, const WeightSet& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::int64_t j = 0; j < a[i].numel(); ++j)
      m = std::max(m, static_cast<double>(std::abs(a[i][j] - b[i][j])));
  return m;
}

}  // namespace

int main() {
  const char* tmp = std::getenv("TMPDIR");
  const std::string sock_path = std::string(tmp != nullptr ? tmp : "/tmp") +
                                "/fedtrans_mp_" +
                                std::to_string(::getpid()) + ".sock";
  SocketListener listener = SocketListener::bind_unix(sock_path);

  // Fork the leaves before anything spins up the shared thread pool —
  // children must never inherit a multithreaded address space.
  std::vector<pid_t> children;
  for (int shard = 0; shard < kShards; ++shard) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "fork failed\n";
      return 1;
    }
    if (pid == 0) ::_exit(run_leaf(shard, sock_path));
    children.push_back(pid);
  }

  // Root side: population, cohort, one shared broadcast body, per-task Rng
  // forks — the same preparation a flat coordinator round does.
  Population pop(pop_cfg());
  Rng rng(11);
  Model init(demo_model(), rng);
  const auto cohort = pop.select_cohort(kRound, kCohort, rng);
  std::vector<std::array<std::uint64_t, 4>> rng_states;
  for (std::size_t i = 0; i < cohort.size(); ++i)
    rng_states.push_back(rng.fork().state());

  const std::string body = encode_body(init.spec().serialize(),
                                       init.weights());
  std::map<int, ShardDownlink> bundles;
  for (int shard = 0; shard < kShards; ++shard) {
    ShardDownlink& d = bundles[shard];
    d.round = kRound;
    d.shard = shard;
    d.leaf_lo = shard;
    d.leaf_hi = shard + 1;
    d.bodies.push_back(body);
  }
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    DownlinkTask t;
    t.task = static_cast<std::int32_t>(i);
    t.client = cohort[i];
    t.body = 0;
    t.rng_state = rng_states[i];
    bundles[static_cast<int>(i) % kShards].tasks.push_back(t);
  }

  // Accept the leaves (their hello names the shard — accept order is
  // whatever the kernel gives us), ship each its bundle, collect the
  // PartialUps.
  std::vector<UpdateEntry> collected(cohort.size());
  std::vector<bool> seen(cohort.size(), false);
  for (int conn = 0; conn < kShards; ++conn) {
    const int fd = listener.accept_fd();
    FdFrameReader reader(fd, /*read_chunk=*/4096);
    const FabricMessage hello = decode_message(reader.read_frame());
    const int shard = -2 - hello.sender;  // inverse of aggregator_id
    if (hello.type != MsgType::Ack || shard < 0 || shard >= kShards) {
      std::cerr << "unexpected hello from sender " << hello.sender << "\n";
      return 1;
    }
    send_frame_fd(fd, encode_shard_down(kRound, kServerId,
                                        aggregator_id(shard),
                                        bundles[shard]));
    const PartialUpdate up = decode_partial_up(reader.read_frame());
    for (const UpdateEntry& e : up.entries) {
      const auto slot = static_cast<std::size_t>(e.task);
      if (slot >= cohort.size() || cohort[slot] != e.client || seen[slot]) {
        std::cerr << "bad update slot " << e.task << "\n";
        return 1;
      }
      collected[slot] = e;
      seen[slot] = true;
    }
    std::cout << "leaf " << shard << " (pid " << children[static_cast<
                     std::size_t>(shard)] << "): " << up.entries.size()
              << " updates over " << listener.path() << "\n";
    ::close(fd);
  }

  int exit_code = 0;
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "leaf pid " << pid << " failed\n";
      exit_code = 1;
    }
  }
  for (std::size_t i = 0; i < cohort.size(); ++i)
    if (!seen[i]) {
      std::cerr << "slot " << i << " never reported\n";
      exit_code = 1;
    }
  if (exit_code != 0) return exit_code;

  // In-process replay of the identical round: every delta, loss and sample
  // count the leaves shipped must match bit for bit.
  const Body proto = decode_body(body);
  double worst = 0.0;
  double loss_sum = 0.0, weight_sum = 0.0;
  WeightSet acc;
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    const LocalTrainResult res =
        train_task(proto, pop, cohort[i], rng_states[i]);
    worst = std::max(worst, max_abs(res.delta, collected[i].delta));
    if (res.avg_loss != collected[i].avg_loss ||
        res.num_samples != collected[i].num_samples) {
      std::cerr << "metrics diverged at slot " << i << "\n";
      return 1;
    }
    const double w = static_cast<double>(res.num_samples);
    if (acc.empty()) acc = ws_zeros_like(collected[i].delta);
    ws_axpy(acc, static_cast<float>(w), collected[i].delta);
    loss_sum += res.avg_loss * w;
    weight_sum += w;
  }
  std::cout << "cross-process vs in-process max |ddelta| = " << worst
            << (worst == 0.0 ? "  (bitwise identical)\n" : "  (BUG)\n");
  if (worst != 0.0) return 1;

  std::cout << "round " << kRound << ": " << cohort.size() << " clients of "
            << pop.num_clients() << " trained across " << kShards
            << " leaf processes, weighted loss "
            << loss_sum / weight_sum << "\n";
  return 0;
}
