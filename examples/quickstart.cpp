// Quickstart: train a FedTrans model family on a small non-IID fleet.
//
// This is the 60-second tour of the public API:
//   1. generate a federated dataset (or plug in your own ClientData shards),
//   2. sample a heterogeneous device fleet,
//   3. hand FedTransTrainer a small initial model and let it grow the family,
//   4. read back the per-client assignment and accuracy.

#include <iostream>

#include "common/table.hpp"
#include "core/trainer.hpp"
#include "harness/presets.hpp"

using namespace fedtrans;

int main() {
  // A femnist-like non-IID workload and fleet, scaled for a laptop CPU.
  ExperimentPreset preset = femnist_like(Scale::Tiny);
  FederatedDataset data = FederatedDataset::generate(preset.dataset);
  std::vector<DeviceProfile> fleet = sample_fleet(preset.fleet);

  std::cout << "clients: " << data.num_clients()
            << ", fleet disparity: " << fmt_fixed(fleet_disparity(fleet), 1)
            << "x, initial model: " << preset.initial_model.summary() << "\n";

  FedTransTrainer trainer(preset.initial_model, data, fleet, preset.fedtrans);
  for (int r = 0; r < preset.fedtrans.rounds; ++r) {
    const double loss = trainer.run_round();
    if (r % 5 == 0)
      std::cout << "round " << r << "  loss " << fmt_fixed(loss, 3)
                << "  models " << trainer.num_models() << "\n";
  }

  std::cout << "\nmodel family:\n";
  for (const auto& e : trainer.entries())
    std::cout << "  " << e.model->spec().summary() << "  "
              << fmt_macs(static_cast<double>(e.model->macs()))
              << "  (created round " << e.created_round << ")\n";

  const FinalEval ev = trainer.evaluate_final();
  std::cout << "\nmean client accuracy: "
            << fmt_fixed(ev.mean_accuracy * 100, 2)
            << "%  (IQR " << fmt_fixed(ev.accuracy_iqr * 100, 2) << "%)\n";
  std::cout << "training cost: " << fmt_macs(trainer.costs().total_macs())
            << ", network: " << fmt_bytes(trainer.costs().network_bytes())
            << ", storage: " << fmt_bytes(trainer.costs().storage_bytes())
            << "\n";
  return 0;
}
