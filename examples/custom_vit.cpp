// A hand-rolled Vision Transformer from substrate pieces: patch-embedding
// conv → tokens → pre-norm residual blocks (LayerNorm + MultiHeadAttention,
// LayerNorm + TokenMlp) → mean-pool → linear head.
//
// The paper's Table 4 transforms single-head attention Cells through the
// ModelSpec machinery; this example shows the same substrate being used
// directly for a custom multi-head ViT, trained centrally on the pooled
// synthetic dataset.

#include <iostream>

#include "common/table.hpp"
#include "data/dataset.hpp"
#include "model/model.hpp"
#include "nn/attention.hpp"
#include "nn/layer_norm.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/conv2d.hpp"
#include "nn/multihead_attention.hpp"
#include "nn/sgd.hpp"

using namespace fedtrans;

namespace {

struct MiniViT {
  std::unique_ptr<Conv2d> embed;        // patch embedding
  PatchToTokens to_tokens;
  std::vector<std::unique_ptr<Block>> blocks;  // residual transformer blocks
  MeanTokens pool;
  std::unique_ptr<Linear> head;

  Tensor forward(const Tensor& x, bool train) {
    Tensor h = embed->forward(x, train);
    h = to_tokens.forward(h, train);
    for (auto& b : blocks) h = b->forward(h, train);
    h = pool.forward(h, train);
    return head->forward(h, train);
  }
  void backward(const Tensor& grad) {
    Tensor g = head->backward(grad);
    g = pool.backward(g);
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it)
      g = (*it)->backward(g);
    g = to_tokens.backward(g);
    embed->backward(g);
  }
  std::vector<ParamRef> params() {
    std::vector<ParamRef> ps = embed->params();
    for (auto& b : blocks)
      for (auto& p : b->params()) ps.push_back(p);
    for (auto& p : head->params()) ps.push_back(p);
    return ps;
  }
};

MiniViT build_vit(int channels, int hw, int classes, int dim, int heads,
                  int depth, Rng& rng) {
  MiniViT vit;
  const int patch = 4;
  vit.embed = std::make_unique<Conv2d>(channels, dim, patch, patch, 0);
  vit.embed->init(rng);
  for (int d = 0; d < depth; ++d) {
    {
      auto mha = std::make_unique<MultiHeadAttention>(dim, heads);
      mha->init(rng);
      std::vector<std::unique_ptr<Layer>> ls;
      ls.push_back(std::make_unique<LayerNorm>(dim));
      ls.push_back(std::move(mha));
      vit.blocks.push_back(
          std::make_unique<Block>(std::move(ls), /*residual=*/true));
    }
    {
      auto mlp = std::make_unique<TokenMlp>(dim, 2 * dim);
      mlp->init(rng);
      std::vector<std::unique_ptr<Layer>> ls;
      ls.push_back(std::make_unique<LayerNorm>(dim));
      ls.push_back(std::move(mlp));
      vit.blocks.push_back(
          std::make_unique<Block>(std::move(ls), /*residual=*/true));
    }
  }
  vit.head = std::make_unique<Linear>(dim, classes);
  vit.head->init(rng);
  (void)hw;
  return vit;
}

}  // namespace

int main() {
  DatasetConfig dcfg;
  dcfg.num_classes = 6;
  dcfg.channels = 1;
  dcfg.hw = 16;  // 4×4 patches → 16 tokens
  dcfg.num_clients = 24;
  dcfg.mean_train_samples = 30;
  dcfg.seed = 11;
  auto data = FederatedDataset::generate(dcfg);
  ClientData pooled = data.pooled();

  Rng rng(23);
  MiniViT vit = build_vit(dcfg.channels, dcfg.hw, dcfg.num_classes,
                          /*dim=*/16, /*heads=*/4, /*depth=*/2, rng);
  std::int64_t n_params = 0;
  for (auto& p : vit.params()) n_params += p.value->numel();
  std::cout << "mini-ViT: " << n_params << " params, depth 2, 4 heads\n";

  Sgd opt(vit.params(), SgdOptions{.lr = 0.03, .momentum = 0.9});
  SoftmaxCrossEntropy loss_fn;
  Tensor xb;
  std::vector<int> yb;
  for (int step = 0; step < 400; ++step) {
    sample_batch(pooled, 16, rng, xb, yb);
    Tensor logits = vit.forward(xb, true);
    const double loss = loss_fn.forward(logits, yb);
    vit.backward(loss_fn.backward());
    opt.step();
    if (step % 100 == 0)
      std::cout << "step " << step << "  loss " << fmt_fixed(loss, 3) << "\n";
  }

  int correct = 0, total = 0;
  for (int c = 0; c < data.num_clients(); ++c) {
    const ClientData& cd = data.client(c);
    Tensor logits = vit.forward(cd.x_eval, false);
    correct += count_correct(logits, cd.y_eval);
    total += cd.eval_size();
  }
  std::cout << "eval accuracy: "
            << fmt_fixed(100.0 * correct / std::max(1, total), 2) << "%\n";
  return 0;
}
