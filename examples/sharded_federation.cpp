// Sharded federation: run FedAvg over a 2-level aggregation tree — the
// root ships one bundled ShardDown frame per shard, leaf aggregators fan
// out to their client partition and forward one bundled PartialUp back —
// and confirm the result is bitwise identical to the flat fabric. Then a
// 3-level tree with numeric partial aggregation (pre-summed PartialUps
// collapse root fan-in to O(branching)) and leaf failover under leaf
// death, a lossy sharded round with the retry policy (bounded resend of
// lost frames), and finally FedBuff's async event loop over the same
// fabric.

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "fl/async.hpp"
#include "fl/runner.hpp"
#include "harness/presets.hpp"
#include "net/server.hpp"

using namespace fedtrans;

namespace {

double max_weight_diff(Model& a, Model& b) {
  double max_diff = 0.0;
  auto wa = a.weights();
  auto wb = b.weights();
  for (std::size_t i = 0; i < wa.size(); ++i)
    for (std::int64_t j = 0; j < wa[i].numel(); ++j)
      max_diff = std::max(
          max_diff, static_cast<double>(std::abs(wa[i][j] - wb[i][j])));
  return max_diff;
}

}  // namespace

int main() {
  ExperimentPreset preset = femnist_like(Scale::Tiny);
  FederatedDataset data = FederatedDataset::generate(preset.dataset);
  auto fleet = sample_fleet(preset.fleet);

  Rng rng(7);
  Model init(preset.initial_model, rng);

  FlRunConfig cfg;
  cfg.rounds = 6;
  cfg.clients_per_round = preset.fedtrans.clients_per_round;
  cfg.local = preset.fedtrans.local;
  cfg.seed = 3;
  cfg.use_fabric = true;

  // Flat fabric vs the 2-level tree with 4 shards: same wire protocol,
  // same engine reduction, bitwise-identical weights — the tree only
  // changes who talks to whom.
  FedAvgRunner flat(init, data, fleet, cfg);
  flat.run();

  FlRunConfig sharded_cfg = cfg;
  sharded_cfg.topology.levels = 2;
  sharded_cfg.topology.shards = 4;
  FedAvgRunner sharded(init, data, fleet, sharded_cfg);
  sharded.run();

  const double diff = max_weight_diff(flat.model(), sharded.model());
  std::cout << "flat vs 2x4-sharded fabric max |dw| = " << diff
            << (diff == 0.0 ? "  (bitwise identical)\n" : "  (BUG)\n");
  std::cout << "flat:    " << flat.fabric()->stats().frames_sent.load()
            << " frames on the wire\n"
            << "sharded: " << sharded.fabric()->stats().frames_sent.load()
            << " frames on the wire (bundled ShardDown/PartialUp "
               "replace per-client root traffic)\n\n";

  // A 3-level tree (root → 2 interiors → 4 leaves) with numeric partial
  // aggregation: leaves and interiors pre-sum their updates per reduce
  // group, so the root receives one small group per child instead of
  // every client delta — O(branching) fan-in. Weights match the flat run
  // to numeric tolerance (only float summation order moved).
  FlRunConfig numeric_cfg = cfg;
  numeric_cfg.topology.levels = 3;
  numeric_cfg.topology.shards = 4;
  numeric_cfg.topology.branching = 2;
  numeric_cfg.topology.partial_aggregation = true;
  FedAvgRunner numeric(init, data, fleet, numeric_cfg);
  numeric.run();
  std::cout << "flat vs 3-level numeric tree max |dw| = "
            << max_weight_diff(flat.model(), numeric.model())
            << "  (tolerance-equal: the tree pre-sums the reduction)\n"
            << "root fan-in: "
            << fmt_bytes(static_cast<double>(
                   numeric.fabric()->stats().bytes_root_in.load()))
            << " vs "
            << fmt_bytes(static_cast<double>(
                   sharded.fabric()->stats().bytes_root_in.load()))
            << " verbatim\n\n";

  // Per-shard fault domains: a leaf dead for a round has its partition
  // redirected to an alive sibling one ack-timeout later — billed as
  // failover traffic, recorded per round.
  FlRunConfig flaky = cfg;
  flaky.topology.levels = 2;
  flaky.topology.shards = 4;
  flaky.fabric_faults.leaf_death_prob = 0.25;
  FedAvgRunner failover(init, data, fleet, flaky);
  failover.run();
  int failovers = 0;
  for (const auto& rec : failover.history()) failovers += rec.leaf_failovers;
  std::cout << "25% leaf death over " << flaky.rounds << " rounds: "
            << failovers << " partitions failed over to siblings ("
            << fmt_bytes(static_cast<double>(
                   failover.fabric()->stats().failover_bytes_down.load()))
            << " redirect traffic, billed)\n\n";

  // A hostile network with the retry policy: lost UpdateUps are resent up
  // to max_retries times, ack_timeout_s apart; resends are flagged on the
  // wire, counted in FabricStats and billed through CostMeter.
  FlRunConfig lossy = sharded_cfg;
  lossy.fabric_faults.drop_prob = 0.25;
  lossy.fabric_faults.dropout_prob = 0.1;
  lossy.topology.max_retries = 2;
  lossy.topology.ack_timeout_s = 10.0;
  FedAvgRunner hostile(init, data, fleet, lossy);
  hostile.run();

  int participants = 0, lost = 0;
  for (const auto& rec : hostile.history()) {
    participants += rec.participants;
    lost += rec.lost_updates;
  }
  const FabricStats& s = hostile.fabric()->stats();
  std::cout << "lossy sharded fabric (25% loss, 10% dropout, 2 retries): "
            << participants << " updates aggregated, " << lost
            << " lost, " << s.frames_retried.load() << " resends ("
            << fmt_bytes(static_cast<double>(s.retry_bytes_up.load() +
                                             s.retry_bytes_down.load()))
            << " retry traffic)\n\n";

  // FedBuff over the fabric: every dispatch is a real ModelDown/UpdateUp
  // round trip; completions fold in server-side delivery order.
  AsyncRunConfig async_cfg;
  async_cfg.concurrency = 8;
  async_cfg.buffer_size = 4;
  async_cfg.aggregations = 10;
  async_cfg.local = preset.fedtrans.local;
  async_cfg.seed = 3;
  async_cfg.use_fabric = true;
  async_cfg.fabric_faults.drop_prob = 0.1;
  async_cfg.topology.max_retries = 2;
  async_cfg.topology.ack_timeout_s = 120.0;

  FedBuffRunner buff(init, data, fleet, async_cfg);
  buff.run();

  TablePrinter t({"version", "loss", "shipped at (s)", "lost"});
  for (const auto& rec : buff.history())
    t.add_row({std::to_string(rec.round), fmt_fixed(rec.avg_loss, 4),
               fmt_fixed(rec.round_time_s, 1),
               std::to_string(rec.lost_updates)});
  std::cout << "fabric-backed FedBuff (10% loss, 2 retries):\n";
  t.print(std::cout);
  std::cout << "mean staleness: " << fmt_fixed(buff.mean_staleness(), 2)
            << " versions, " << buff.engine().fabric()->stats()
                                     .frames_sent.load()
            << " frames on the wire\n";
  return 0;
}
