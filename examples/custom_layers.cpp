// Using the NN substrate directly: build a custom architecture from
// individual layers (BatchNorm, MaxPool2d, Dropout, GroupedConv2d,
// Sequential) without the Cell-based ModelSpec machinery, train it on a
// pooled dataset, and demonstrate the grouped→dense conversion the paper's
// appendix applies before handing models to HeteroFL/SplitMix.

#include <iostream>

#include "common/table.hpp"
#include "data/dataset.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/grouped_conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/sgd.hpp"

using namespace fedtrans;

namespace {

// A MobileNet-flavoured mini CNN: conv stem → depthwise-separable block
// with BatchNorm → maxpool → dropout-regularized classifier head.
Sequential build_net(int channels, int classes, Rng& rng) {
  Sequential net;
  auto stem = std::make_unique<Conv2d>(channels, 8, 3);
  stem->init(rng);
  net.add(std::move(stem));
  net.emplace<BatchNorm>(8);
  net.emplace<ReLU>();
  net.add(make_depthwise_separable(8, 16, 3, /*stride=*/1, rng));
  net.emplace<BatchNorm>(16);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);
  net.emplace<GlobalAvgPool>();
  net.emplace<Dropout>(0.1);
  auto head = std::make_unique<Linear>(16, classes);
  head->init(rng);
  net.add(std::move(head));
  return net;
}

}  // namespace

int main() {
  DatasetConfig dcfg;
  dcfg.num_classes = 6;
  dcfg.channels = 1;
  dcfg.hw = 12;
  dcfg.num_clients = 24;
  dcfg.mean_train_samples = 30;
  dcfg.seed = 5;
  auto data = FederatedDataset::generate(dcfg);
  ClientData pooled = data.pooled();
  std::cout << "pooled training set: " << pooled.train_size()
            << " samples, " << dcfg.num_classes << " classes\n";

  Rng rng(42);
  Sequential net = build_net(dcfg.channels, dcfg.num_classes, rng);
  const std::vector<int> in_shape{dcfg.channels, dcfg.hw, dcfg.hw};
  std::cout << "custom net: " << net.num_params() << " params, "
            << fmt_macs(static_cast<double>(net.macs(in_shape)))
            << " per sample\n";

  // Plain centralized SGD on the pooled shard.
  Sgd opt(net.params(), SgdOptions{.lr = 0.05, .momentum = 0.9});
  SoftmaxCrossEntropy loss_fn;
  Tensor xb;
  std::vector<int> yb;
  for (int step = 0; step < 300; ++step) {
    sample_batch(pooled, 16, rng, xb, yb);
    Tensor logits = net.forward(xb, /*train=*/true);
    const double loss = loss_fn.forward(logits, yb);
    net.backward(loss_fn.backward());
    opt.step();
    if (step % 100 == 0)
      std::cout << "step " << step << "  loss " << fmt_fixed(loss, 3) << "\n";
  }

  // Eval-mode accuracy (BatchNorm switches to running stats; Dropout off).
  int correct = 0, total = 0;
  for (int c = 0; c < data.num_clients(); ++c) {
    const ClientData& cd = data.client(c);
    Tensor logits = net.forward(cd.x_eval, /*train=*/false);
    for (int i = 0; i < cd.eval_size(); ++i) {
      int arg = 0;
      for (int k = 1; k < dcfg.num_classes; ++k)
        if (logits.at(i, k) > logits.at(i, arg)) arg = k;
      correct += arg == cd.y_eval[static_cast<std::size_t>(i)] ? 1 : 0;
      ++total;
    }
  }
  std::cout << "eval accuracy: "
            << fmt_fixed(100.0 * correct / std::max(1, total), 2) << "%\n";

  // Grouped→dense conversion (paper Appendix A.1): identical function,
  // higher MACs — the price of baseline compatibility.
  GroupedConv2d grouped(8, 8, 3, /*groups=*/8);
  grouped.init(rng);
  auto dense = grouped.to_dense();
  const std::vector<int> shape{8, 10, 10};
  std::cout << "depthwise conv: "
            << fmt_macs(static_cast<double>(grouped.macs(shape)))
            << " vs dense-converted: "
            << fmt_macs(static_cast<double>(dense->macs(shape)))
            << " (same outputs, " << dense->macs(shape) / grouped.macs(shape)
            << "x the compute)\n";
  return 0;
}
