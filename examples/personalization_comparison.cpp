// Side-by-side comparison on one non-IID workload: FedTrans vs a single
// global model (FedAvg) vs HeteroFL. Prints per-method mean accuracy, the
// per-client accuracy spread, and training costs — a miniature of the
// paper's Table 2 protocol (baselines receive FedTrans's largest model).

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  ExperimentPreset preset = cifar_like(Scale::Tiny);
  std::cout << "workload: " << preset.name << ", "
            << preset.dataset.num_clients << " clients, Dirichlet h="
            << preset.dataset.dirichlet_h << "\n\n";

  MethodResult fedtrans = run_fedtrans(preset);
  MethodResult fedavg = run_single_model(preset, preset.initial_model);
  MethodResult heterofl = run_heterofl(preset, fedtrans.largest_spec);

  TablePrinter t({"method", "mean accu (%)", "IQR (%)", "cost", "network"});
  for (const auto* r : {&fedtrans, &fedavg, &heterofl}) {
    t.add_row({r->method, fmt_fixed(r->report.mean_accuracy * 100, 2),
               fmt_fixed(r->report.accuracy_iqr * 100, 2),
               fmt_macs(r->report.costs.total_macs()),
               fmt_bytes(r->report.costs.network_bytes())});
  }
  t.print(std::cout);

  // Per-client wins: how many clients does FedTrans serve better?
  int wins = 0, ties = 0;
  for (std::size_t c = 0; c < fedtrans.report.client_accuracy.size(); ++c) {
    const double a = fedtrans.report.client_accuracy[c];
    const double b = fedavg.report.client_accuracy[c];
    if (a > b) ++wins;
    if (a == b) ++ties;
  }
  std::cout << "\nFedTrans beats the single global model on " << wins << "/"
            << fedtrans.report.client_accuracy.size() << " clients ("
            << ties << " ties), with " << fedtrans.num_models
            << " models grown from one seed architecture.\n";
  return 0;
}
