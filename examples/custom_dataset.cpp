// Bringing your own workload: build a FederatedDataset-compatible setup from
// custom per-client shards and a hand-specified device fleet, then train a
// FedTrans family on it. Shows the lower-level API surface: DatasetConfig
// knobs, explicit DeviceProfile construction, custom initial ModelSpec, and
// the ablation switches on FedTransConfig.

#include <iostream>

#include "common/table.hpp"
#include "core/trainer.hpp"

using namespace fedtrans;

int main() {
  // 1. Describe the data. (To plug in real data, fill ClientData tensors
  //    yourself; here we use the generator with custom knobs: strong label
  //    skew, mild noise, two "sensor channels" at 10x10.)
  DatasetConfig dcfg;
  dcfg.name = "custom-sensors";
  dcfg.num_classes = 8;
  dcfg.channels = 2;
  dcfg.hw = 10;
  dcfg.num_clients = 20;
  dcfg.dirichlet_h = 0.2;        // highly non-IID
  dcfg.style_strength = 0.6;     // strong per-client feature shift
  dcfg.mean_train_samples = 40;
  dcfg.seed = 2024;
  FederatedDataset data = FederatedDataset::generate(dcfg);

  // 2. Describe the devices: a bimodal fleet — 15 weak wearables and
  //    5 strong hub devices.
  std::vector<DeviceProfile> fleet;
  for (int i = 0; i < 20; ++i) {
    DeviceProfile d;
    const bool strong = i % 4 == 3;
    d.compute_macs_per_s = strong ? 4e8 : 3e7;
    d.bandwidth_bytes_per_s = strong ? 1e6 : 1e5;
    d.capacity_macs = d.compute_macs_per_s * 0.004;
    fleet.push_back(d);
  }

  // 3. Seed architecture sized for the weakest wearable.
  ModelSpec initial = ModelSpec::conv(/*in_channels=*/2, /*in_hw=*/10,
                                      /*classes=*/8, /*stem=*/4,
                                      /*cell widths=*/{6, 8},
                                      /*blocks=*/{1, 1}, /*strides=*/{1, 2});

  // 4. Configure FedTrans. Any component can be ablated via the switches.
  FedTransConfig cfg;
  cfg.rounds = 25;
  cfg.clients_per_round = 6;
  cfg.local.steps = 8;
  cfg.beta = 0.02;
  cfg.gamma = 4;
  cfg.doc_delta = 3;
  cfg.max_models = 4;
  cfg.seed = 7;

  FedTransTrainer trainer(initial, data, fleet, cfg);
  trainer.run();
  const FinalEval ev = trainer.evaluate_final();

  TablePrinter t({"model", "MACs", "clients deployed"});
  std::vector<int> per_model(static_cast<std::size_t>(trainer.num_models()));
  for (int m : ev.client_model) ++per_model[static_cast<std::size_t>(m)];
  for (int k = 0; k < trainer.num_models(); ++k)
    t.add_row({trainer.model(k).spec().summary(),
               fmt_macs(static_cast<double>(trainer.model(k).macs())),
               std::to_string(per_model[static_cast<std::size_t>(k)])});
  t.print(std::cout);
  std::cout << "\nmean accuracy " << fmt_fixed(ev.mean_accuracy * 100, 2)
            << "% across " << data.num_clients() << " custom clients\n";
  return 0;
}
