// How to add a federation algorithm in ~60 lines: implement Strategy, hand
// it to FederationEngine, and you inherit the whole substrate — concurrent
// client rounds on the shared ThreadPool, deterministic Rng forking, cost
// accounting, periodic eval probes, RoundObserver callbacks, and (flip
// SessionConfig::use_fabric) wire-protocol execution with fault injection.
//
// The demo strategy is "FedMedianish": coordinate-wise trimmed-mean
// aggregation — drop the single largest and smallest client delta per
// coordinate, average the rest — a classic robust-aggregation scheme.
//
//   1. plan_round      -> default (uniform selection) is inherited
//   2. client_payload  -> every client downloads the global model
//   3. absorb_update   -> stash each client's delta (fixed task order)
//   4. finish_round    -> trimmed-mean the deltas into the global model
//   5. probe_accuracy  -> evaluate the global model on probe clients
//
// Build: cmake --build build --target example_custom_strategy

#include <algorithm>
#include <cstdio>

#include "fl/engine.hpp"
#include "fl/local_train.hpp"
#include "harness/presets.hpp"

using namespace fedtrans;

class TrimmedMeanStrategy : public Strategy {
 public:
  explicit TrimmedMeanStrategy(Model init) : model_(std::move(init)) {}

  std::string name() const override { return "trimmed-mean"; }
  Model client_payload(const ClientTask&) override { return model_; }
  Model* shared_model() override { return &model_; }
  const Model& reference_model() const override { return model_; }

  std::vector<ClientTask> plan_round(RoundContext& ctx, Rng& rng) override {
    deltas_.clear();
    loss_sum_ = 0.0;
    return Strategy::plan_round(ctx, rng);  // uniform selection
  }

  void absorb_update(const ClientTask&, Model*, LocalTrainResult& res,
                     RoundContext& ctx) override {
    deltas_.push_back(std::move(res.delta));
    loss_sum_ += res.avg_loss;
    const double bytes = static_cast<double>(model_.param_bytes());
    ctx.costs.add_training_macs(res.macs_used);
    ctx.costs.add_transfer(bytes, bytes);
  }

  void finish_round(RoundContext&, RoundRecord& rec) override {
    if (deltas_.size() >= 3) {
      WeightSet global = model_.weights();
      for (std::size_t p = 0; p < global.size(); ++p) {
        for (std::int64_t e = 0; e < global[p].numel(); ++e) {
          float lo = deltas_[0][p][e], hi = lo, sum = 0.0f;
          for (const WeightSet& d : deltas_) {
            lo = std::min(lo, d[p][e]);
            hi = std::max(hi, d[p][e]);
            sum += d[p][e];
          }
          const auto n = static_cast<float>(deltas_.size() - 2);
          global[p][e] -= (sum - lo - hi) / n;  // trimmed mean step
        }
      }
      model_.set_weights(global);
    }
    rec.avg_loss = deltas_.empty()
                       ? 0.0
                       : loss_sum_ / static_cast<double>(deltas_.size());
  }

  double probe_accuracy(const std::vector<int>& ids,
                        RoundContext& ctx) override {
    double s = 0.0;
    for (int c : ids) s += evaluate_accuracy(model_, ctx.data.client(c));
    return s / static_cast<double>(ids.size());
  }

  Model& model() { return model_; }

 private:
  Model model_;
  std::vector<WeightSet> deltas_;
  double loss_sum_ = 0.0;
};

int main() {
  auto preset = cifar_like(Scale::Tiny);
  auto data = FederatedDataset::generate(preset.dataset);
  auto fleet = sample_fleet(preset.fleet);
  Rng rng(7);

  const auto cfg = SessionConfig{}
                       .with_rounds(10)
                       .with_clients_per_round(8)
                       .with_eval(5)
                       .with_seed(7);

  FederationEngine engine(std::make_unique<TrimmedMeanStrategy>(
                              Model(preset.initial_model, rng)),
                          data, fleet, cfg);
  engine.on_round([](const RoundRecord& rec) {
    std::printf("round %2d  loss %.4f%s\n", rec.round, rec.avg_loss,
                rec.accuracy >= 0.0 ? "  (probe ran)" : "");
  });
  engine.run();

  auto& strat = engine.strategy_as<TrimmedMeanStrategy>();
  double acc = 0.0;
  for (int c = 0; c < data.num_clients(); ++c)
    acc += evaluate_accuracy(strat.model(), data.client(c));
  std::printf("mean client accuracy: %.3f\n", acc / data.num_clients());
  std::printf("network: %.1f MB, compute: %.2e MACs\n",
              engine.costs().network_mb(), engine.costs().total_macs());
  return 0;
}
