// Asynchronous federation: run FedBuff-style buffered aggregation on a
// straggler-heavy fleet and compare wall-clock against synchronous FedAvg.
//
// Synchronous rounds are gated by their slowest participant; with a 29×+
// capability disparity (the paper's fleet), most devices idle while the
// tail finishes. Buffered async aggregation (Nguyen et al.) dispatches a
// new client the moment one returns and folds stale updates in with a
// polynomial discount.

#include <iostream>

#include "common/table.hpp"
#include "fl/async.hpp"
#include "fl/runner.hpp"
#include "harness/presets.hpp"

using namespace fedtrans;

int main() {
  ExperimentPreset preset = femnist_like(Scale::Tiny);
  FederatedDataset data = FederatedDataset::generate(preset.dataset);

  // A deliberately long-tailed fleet.
  FleetConfig fcfg = preset.fleet;
  fcfg.sigma_compute = 1.8;
  auto fleet = sample_fleet(fcfg);
  std::cout << "fleet disparity: " << fmt_fixed(fleet_disparity(fleet), 1)
            << "x across " << fleet.size() << " devices\n\n";

  Rng rng(7);
  Model init(preset.initial_model, rng);
  const int updates = preset.fedtrans.rounds;

  FlRunConfig scfg;
  scfg.rounds = updates;
  scfg.clients_per_round = preset.fedtrans.clients_per_round;
  scfg.local = preset.fedtrans.local;
  FedAvgRunner sync(init, data, fleet, scfg);
  sync.run();
  double sync_wall = 0.0;
  for (const auto& rec : sync.history()) sync_wall += rec.round_time_s;

  AsyncRunConfig acfg;
  acfg.concurrency = preset.fedtrans.clients_per_round;
  acfg.buffer_size = preset.fedtrans.clients_per_round;
  acfg.aggregations = updates;
  acfg.local = preset.fedtrans.local;
  FedBuffRunner async_runner(init, data, fleet, acfg);
  async_runner.run();

  TablePrinter t({"method", "server updates", "wall-clock (s)",
                  "accuracy (%)"});
  t.add_row({"FedAvg (sync)", std::to_string(updates),
             fmt_fixed(sync_wall, 1),
             fmt_fixed(sync.mean_client_accuracy() * 100, 2)});
  t.add_row({"FedBuff (async)", std::to_string(updates),
             fmt_fixed(async_runner.now_s(), 1),
             fmt_fixed(async_runner.mean_client_accuracy() * 100, 2)});
  t.print(std::cout);
  std::cout << "\nspeedup: " << fmt_fixed(sync_wall / async_runner.now_s(), 2)
            << "x wall-clock at mean staleness "
            << fmt_fixed(async_runner.mean_staleness(), 2) << "\n";
  return 0;
}
