// fedtrans_sim — command-line driver for the simulation harness.
//
//   fedtrans_sim [--dataset cifar|femnist|speech|openimage]
//                [--method fedtrans|heterofl|splitmix|fluid|fedavg|centralized]
//                [--scale tiny|small|full] [--seed N] [--rounds N]
//                [--clients-per-round N] [--beta X] [--alpha X]
//                [--widen X] [--deepen N] [--l2s] [--no-transform]
//
// Runs one method on one workload and prints the paper-style report row
// (mean accuracy, IQR, MACs, storage, network) plus, for FedTrans, the
// model family. Every knob maps 1:1 onto the public API, so this doubles
// as living documentation of the configuration surface.

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

namespace {

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n";
  std::cerr <<
      "usage: fedtrans_sim [--dataset cifar|femnist|speech|openimage]\n"
      "                    [--method fedtrans|heterofl|splitmix|fluid|"
      "fedavg|centralized]\n"
      "                    [--scale tiny|small|full] [--seed N] [--rounds N]\n"
      "                    [--clients-per-round N] [--beta X] [--alpha X]\n"
      "                    [--widen X] [--deepen N] [--l2s] [--no-transform]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "femnist";
  std::string method = "fedtrans";
  std::string scale_s = "tiny";
  std::uint64_t seed = 1;
  int rounds = -1, cpr = -1, deepen = -1;
  double beta = -1, alpha = -1, widen = -1;
  bool l2s = false, no_transform = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--dataset") dataset = next();
    else if (a == "--method") method = next();
    else if (a == "--scale") scale_s = next();
    else if (a == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--rounds") rounds = std::atoi(next());
    else if (a == "--clients-per-round") cpr = std::atoi(next());
    else if (a == "--beta") beta = std::atof(next());
    else if (a == "--alpha") alpha = std::atof(next());
    else if (a == "--widen") widen = std::atof(next());
    else if (a == "--deepen") deepen = std::atoi(next());
    else if (a == "--l2s") l2s = true;
    else if (a == "--no-transform") no_transform = true;
    else if (a == "--help" || a == "-h") usage(nullptr);
    else usage(("unknown flag " + a).c_str());
  }

  Scale scale = Scale::Tiny;
  if (scale_s == "small") scale = Scale::Small;
  else if (scale_s == "full") scale = Scale::Full;
  else if (scale_s != "tiny") usage("bad --scale");

  ExperimentPreset preset;
  if (dataset == "cifar") preset = cifar_like(scale, seed);
  else if (dataset == "femnist") preset = femnist_like(scale, seed);
  else if (dataset == "speech") preset = speech_like(scale, seed);
  else if (dataset == "openimage") preset = openimage_like(scale, seed);
  else usage("bad --dataset");

  if (rounds > 0) preset.fedtrans.rounds = rounds;
  if (cpr > 0) preset.fedtrans.clients_per_round = cpr;
  if (beta > 0) preset.fedtrans.beta = beta;
  if (alpha > 0) preset.fedtrans.alpha = alpha;
  if (widen > 1) preset.fedtrans.widen_factor = widen;
  if (deepen > 0) preset.fedtrans.deepen_blocks = deepen;
  preset.fedtrans.enable_l2s = l2s;
  preset.fedtrans.enable_transform = !no_transform;
  preset.fedtrans.seed = seed;

  std::cout << "workload " << preset.name << " (" << scale_name(scale)
            << "), method " << method << ", seed " << seed << "\n";

  MethodResult res;
  if (method == "fedtrans") {
    res = run_fedtrans(preset);
  } else if (method == "fedavg") {
    res = run_single_model(preset, preset.initial_model);
  } else if (method == "centralized") {
    res = run_centralized(preset, preset.initial_model);
  } else {
    // Baselines receive FedTrans's largest model per the paper's protocol.
    auto ft = run_fedtrans(preset);
    std::cout << "(FedTrans largest model: " << ft.largest_spec.summary()
              << ")\n";
    if (method == "heterofl") res = run_heterofl(preset, ft.largest_spec);
    else if (method == "splitmix") res = run_splitmix(preset, ft.largest_spec);
    else if (method == "fluid") res = run_fluid(preset, ft.largest_spec);
    else usage("bad --method");
  }

  TablePrinter t({"method", "accu (%)", "IQR (%)", "cost", "storage",
                  "network", "#models"});
  t.add_row({res.method, fmt_fixed(res.report.mean_accuracy * 100, 2),
             fmt_fixed(res.report.accuracy_iqr * 100, 2),
             fmt_macs(res.report.costs.total_macs()),
             fmt_bytes(res.report.costs.storage_bytes()),
             fmt_bytes(res.report.costs.network_bytes()),
             std::to_string(res.num_models)});
  t.print(std::cout);
  if (method == "fedtrans")
    std::cout << "largest model: " << res.largest_spec.summary() << " ("
              << fmt_macs(res.largest_macs) << ")\n";
  return 0;
}
