// Heterogeneous fleet walk-through: how device capability tiers map to the
// model family FedTrans grows, and which model each client ends up deploying.
//
// Demonstrates: trace sampling, capacity tiers, utility-based assignment
// inspection, and the straggler benefit of capacity-aligned models.

#include <algorithm>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "harness/presets.hpp"

using namespace fedtrans;

int main() {
  ExperimentPreset preset = openimage_like(Scale::Tiny);
  FederatedDataset data = FederatedDataset::generate(preset.dataset);
  std::vector<DeviceProfile> fleet = sample_fleet(preset.fleet);

  // --- Fleet census ------------------------------------------------------
  std::vector<double> caps;
  for (const auto& d : fleet) caps.push_back(d.capacity_macs);
  const auto box = box_stats(caps);
  std::cout << "fleet of " << fleet.size() << " devices, capacity (MACs):\n"
            << "  min " << fmt_macs(box.min) << "  median "
            << fmt_macs(box.median) << "  max " << fmt_macs(box.max)
            << "  (disparity " << fmt_fixed(fleet_disparity(fleet), 1)
            << "x)\n\n";

  FedTransTrainer trainer(preset.initial_model, data, fleet, preset.fedtrans);
  trainer.run();

  // --- Model family ------------------------------------------------------
  TablePrinter family({"model", "architecture", "MACs", "params", "created"});
  for (const auto& e : trainer.entries()) {
    family.add_row({e.model->spec().name, e.model->spec().summary(),
                    fmt_macs(static_cast<double>(e.model->macs())),
                    std::to_string(e.model->num_params()),
                    std::to_string(e.created_round)});
  }
  std::cout << "model family grown during training:\n";
  family.print(std::cout);

  // --- Deployment report -------------------------------------------------
  const FinalEval ev = trainer.evaluate_final();
  std::vector<int> per_model(static_cast<std::size_t>(trainer.num_models()));
  for (int m : ev.client_model) ++per_model[static_cast<std::size_t>(m)];
  std::cout << "\nclient -> model assignment (by best utility):\n";
  for (int k = 0; k < trainer.num_models(); ++k)
    std::cout << "  " << trainer.model(k).spec().name << ": "
              << per_model[static_cast<std::size_t>(k)] << " clients\n";
  std::cout << "\nmean accuracy " << fmt_fixed(ev.mean_accuracy * 100, 2)
            << "%, IQR " << fmt_fixed(ev.accuracy_iqr * 100, 2) << "%\n";

  // --- Straggler view ----------------------------------------------------
  std::cout << "\nsimulated per-client round time: mean "
            << fmt_fixed(trainer.costs().client_time_mean(), 2) << "s, std "
            << fmt_fixed(trainer.costs().client_time_std(), 2)
            << "s (capacity-aligned models keep stragglers in check)\n";
  return 0;
}
