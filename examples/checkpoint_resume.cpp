// Checkpoint & resume: survive a coordinator crash without perturbing the
// training trajectory.
//
// FL runs span days on preemptible infrastructure, so the coordinator must
// be restartable. FedTransTrainer checkpoints *all* dynamic state — the
// model family (specs, weights, per-model server-optimizer state), client
// utilities, DoC/activeness histories, cost meters and the RNG — so a
// restored run continues bit-identically. This example trains half a run,
// "crashes", restores from the checkpoint file, finishes, and verifies the
// resumed run matches an uninterrupted reference exactly.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/trainer.hpp"
#include "harness/presets.hpp"

using namespace fedtrans;

int main() {
  ExperimentPreset preset = femnist_like(Scale::Tiny);
  FederatedDataset data = FederatedDataset::generate(preset.dataset);
  std::vector<DeviceProfile> fleet = sample_fleet(preset.fleet);
  const int half = preset.fedtrans.rounds / 2;
  const char* ckpt_path = "fedtrans_demo.ckpt";

  // --- Reference: one uninterrupted run. -------------------------------
  FedTransTrainer reference(preset.initial_model, data, fleet,
                            preset.fedtrans);
  reference.run();

  // --- Interrupted run: train half, checkpoint, "crash". ----------------
  {
    FedTransTrainer trainer(preset.initial_model, data, fleet,
                            preset.fedtrans);
    for (int r = 0; r < half; ++r) trainer.run_round();
    trainer.save_checkpoint_file(ckpt_path);
    std::cout << "checkpointed at round " << trainer.rounds_done() << " with "
              << trainer.num_models() << " model(s)\n";
    // trainer goes out of scope — the coordinator process is gone.
  }

  // --- Recovery: a fresh process restores and finishes the run. ---------
  FedTransTrainer resumed(preset.initial_model, data, fleet, preset.fedtrans);
  resumed.load_checkpoint_file(ckpt_path);
  std::cout << "restored at round " << resumed.rounds_done() << "\n";
  while (resumed.rounds_done() < preset.fedtrans.rounds) resumed.run_round();

  // --- Verify bit-exact equivalence with the reference. -----------------
  bool identical = reference.num_models() == resumed.num_models();
  if (identical) {
    for (int k = 0; k < reference.num_models() && identical; ++k) {
      auto wa = reference.model(k).weights();
      auto wb = resumed.model(k).weights();
      for (std::size_t i = 0; i < wa.size() && identical; ++i)
        for (std::int64_t j = 0; j < wa[i].numel() && identical; ++j)
          identical = wa[i][j] == wb[i][j];
    }
  }
  std::cout << "resumed run "
            << (identical ? "matches the uninterrupted reference bit-exactly"
                          : "DIVERGED from the reference (bug!)")
            << "\n";

  const FinalEval ev = resumed.evaluate_final();
  std::cout << "final mean client accuracy: "
            << fmt_fixed(ev.mean_accuracy * 100, 2) << "%\n";
  std::remove(ckpt_path);
  return identical ? 0 : 1;
}
