// Federation fabric: run FedAvg as a real message-passing system — a
// multithreaded FederationServer broadcasting ModelDown frames over a
// simulated lossy transport to ClientAgent workers — first fault-free
// (bitwise identical to the in-process path), then under message loss,
// duplication, reordering, and mid-round client dropout.

#include <iostream>

#include "common/table.hpp"
#include "fl/runner.hpp"
#include "harness/presets.hpp"
#include "net/server.hpp"

using namespace fedtrans;

namespace {

void print_history(const FedAvgRunner& runner) {
  TablePrinter t({"round", "loss", "participants", "lost"});
  for (const auto& rec : runner.history())
    t.add_row({std::to_string(rec.round), fmt_fixed(rec.avg_loss, 4),
               std::to_string(rec.participants),
               std::to_string(rec.lost_updates)});
  t.print(std::cout);
}

}  // namespace

int main() {
  ExperimentPreset preset = femnist_like(Scale::Tiny);
  FederatedDataset data = FederatedDataset::generate(preset.dataset);
  auto fleet = sample_fleet(preset.fleet);

  Rng rng(7);
  Model init(preset.initial_model, rng);

  FlRunConfig cfg;
  cfg.rounds = 6;
  cfg.clients_per_round = preset.fedtrans.clients_per_round;
  cfg.local = preset.fedtrans.local;
  cfg.seed = 3;

  // In-process reference vs. fault-free fabric: bitwise identical.
  FedAvgRunner in_proc(init, data, fleet, cfg);
  in_proc.run();

  FlRunConfig fab = cfg;
  fab.use_fabric = true;
  FedAvgRunner fabric(init, data, fleet, fab);
  fabric.run();

  double max_diff = 0.0;
  auto wa = in_proc.model().weights();
  auto wb = fabric.model().weights();
  for (std::size_t i = 0; i < wa.size(); ++i)
    for (std::int64_t j = 0; j < wa[i].numel(); ++j)
      max_diff = std::max(
          max_diff, static_cast<double>(std::abs(wa[i][j] - wb[i][j])));
  std::cout << "fault-free fabric vs in-process max |dw| = " << max_diff
            << (max_diff == 0.0 ? "  (bitwise identical)\n\n" : "  (BUG)\n\n");

  const FabricStats& clean = fabric.fabric()->stats();
  std::cout << "fault-free fabric: " << clean.frames_sent.load()
            << " frames, " << fmt_bytes(static_cast<double>(
                                   clean.bytes_sent.load()))
            << " on the wire\n\n";

  // Same run on a hostile network: drop/duplicate/reorder frames, and let
  // devices vanish mid-round. Rounds still close; losses are accounted.
  FlRunConfig lossy = fab;
  lossy.overcommit = 0.5;         // over-select to absorb the losses
  lossy.deadline_quantile = 0.8;  // close the round at the 80th percentile
  lossy.fabric_faults.drop_prob = 0.15;
  lossy.fabric_faults.dup_prob = 0.05;
  lossy.fabric_faults.reorder_prob = 0.1;
  lossy.fabric_faults.dropout_prob = 0.15;
  FedAvgRunner hostile(init, data, fleet, lossy);
  hostile.run();

  std::cout << "lossy fabric (15% loss, 15% dropout, over-commit 1.5x):\n";
  print_history(hostile);

  const FabricStats& s = hostile.fabric()->stats();
  std::cout << "\ntransport: sent " << s.frames_sent.load() << " frames ("
            << fmt_bytes(static_cast<double>(s.bytes_sent.load()))
            << "), dropped " << s.frames_dropped.load() << ", duplicated "
            << s.frames_duplicated.load() << ", reordered "
            << s.frames_reordered.load() << ", client dropouts "
            << s.client_dropouts.load() << "\n";
  std::cout << "final mean client accuracy: "
            << fmt_fixed(100.0 * hostile.mean_client_accuracy(), 1) << "%\n";
  return 0;
}
