# Empty dependencies file for test_trace_fl.
# This may be replaced when dependencies are built.
