file(REMOVE_RECURSE
  "CMakeFiles/test_trace_fl.dir/tests/test_trace_fl.cpp.o"
  "CMakeFiles/test_trace_fl.dir/tests/test_trace_fl.cpp.o.d"
  "test_trace_fl"
  "test_trace_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
