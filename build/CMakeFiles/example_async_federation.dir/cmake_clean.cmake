file(REMOVE_RECURSE
  "CMakeFiles/example_async_federation.dir/examples/async_federation.cpp.o"
  "CMakeFiles/example_async_federation.dir/examples/async_federation.cpp.o.d"
  "example_async_federation"
  "example_async_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_async_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
