# Empty dependencies file for example_async_federation.
# This may be replaced when dependencies are built.
