# Empty dependencies file for test_trainer_baselines.
# This may be replaced when dependencies are built.
