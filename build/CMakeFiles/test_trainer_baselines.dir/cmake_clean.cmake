file(REMOVE_RECURSE
  "CMakeFiles/test_trainer_baselines.dir/tests/test_trainer_baselines.cpp.o"
  "CMakeFiles/test_trainer_baselines.dir/tests/test_trainer_baselines.cpp.o.d"
  "test_trainer_baselines"
  "test_trainer_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trainer_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
