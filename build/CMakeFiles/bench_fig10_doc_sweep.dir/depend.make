# Empty dependencies file for bench_fig10_doc_sweep.
# This may be replaced when dependencies are built.
