file(REMOVE_RECURSE
  "CMakeFiles/test_serial.dir/tests/test_serial.cpp.o"
  "CMakeFiles/test_serial.dir/tests/test_serial.cpp.o.d"
  "test_serial"
  "test_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
