file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_model_quality.dir/bench/bench_fig9_model_quality.cpp.o"
  "CMakeFiles/bench_fig9_model_quality.dir/bench/bench_fig9_model_quality.cpp.o.d"
  "bench_fig9_model_quality"
  "bench_fig9_model_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_model_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
