# Empty dependencies file for test_layers_extended.
# This may be replaced when dependencies are built.
