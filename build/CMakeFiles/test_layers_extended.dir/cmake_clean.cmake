file(REMOVE_RECURSE
  "CMakeFiles/test_layers_extended.dir/tests/test_layers_extended.cpp.o"
  "CMakeFiles/test_layers_extended.dir/tests/test_layers_extended.cpp.o.d"
  "test_layers_extended"
  "test_layers_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layers_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
