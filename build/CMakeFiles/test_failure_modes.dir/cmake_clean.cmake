file(REMOVE_RECURSE
  "CMakeFiles/test_failure_modes.dir/tests/test_failure_modes.cpp.o"
  "CMakeFiles/test_failure_modes.dir/tests/test_failure_modes.cpp.o.d"
  "test_failure_modes"
  "test_failure_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
