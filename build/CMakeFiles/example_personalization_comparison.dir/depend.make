# Empty dependencies file for example_personalization_comparison.
# This may be replaced when dependencies are built.
