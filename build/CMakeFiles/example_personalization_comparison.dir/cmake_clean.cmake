file(REMOVE_RECURSE
  "CMakeFiles/example_personalization_comparison.dir/examples/personalization_comparison.cpp.o"
  "CMakeFiles/example_personalization_comparison.dir/examples/personalization_comparison.cpp.o.d"
  "example_personalization_comparison"
  "example_personalization_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_personalization_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
