file(REMOVE_RECURSE
  "CMakeFiles/test_fl_extensions.dir/tests/test_fl_extensions.cpp.o"
  "CMakeFiles/test_fl_extensions.dir/tests/test_fl_extensions.cpp.o.d"
  "test_fl_extensions"
  "test_fl_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
