# Empty dependencies file for test_fl_extensions.
# This may be replaced when dependencies are built.
