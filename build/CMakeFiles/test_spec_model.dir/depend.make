# Empty dependencies file for test_spec_model.
# This may be replaced when dependencies are built.
