file(REMOVE_RECURSE
  "CMakeFiles/test_spec_model.dir/tests/test_spec_model.cpp.o"
  "CMakeFiles/test_spec_model.dir/tests/test_spec_model.cpp.o.d"
  "test_spec_model"
  "test_spec_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
