# Empty dependencies file for example_custom_vit.
# This may be replaced when dependencies are built.
