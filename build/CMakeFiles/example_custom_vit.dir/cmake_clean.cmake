file(REMOVE_RECURSE
  "CMakeFiles/example_custom_vit.dir/examples/custom_vit.cpp.o"
  "CMakeFiles/example_custom_vit.dir/examples/custom_vit.cpp.o.d"
  "example_custom_vit"
  "example_custom_vit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_vit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
