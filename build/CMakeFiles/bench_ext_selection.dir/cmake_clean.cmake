file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_selection.dir/bench/bench_ext_selection.cpp.o"
  "CMakeFiles/bench_ext_selection.dir/bench/bench_ext_selection.cpp.o.d"
  "bench_ext_selection"
  "bench_ext_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
