# Empty dependencies file for bench_ext_selection.
# This may be replaced when dependencies are built.
