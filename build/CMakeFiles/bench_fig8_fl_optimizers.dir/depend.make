# Empty dependencies file for bench_fig8_fl_optimizers.
# This may be replaced when dependencies are built.
