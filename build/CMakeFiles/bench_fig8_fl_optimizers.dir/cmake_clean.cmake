file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fl_optimizers.dir/bench/bench_fig8_fl_optimizers.cpp.o"
  "CMakeFiles/bench_fig8_fl_optimizers.dir/bench/bench_fig8_fl_optimizers.cpp.o.d"
  "bench_fig8_fl_optimizers"
  "bench_fig8_fl_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fl_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
