# Empty dependencies file for bench_fig13_heterogeneity.
# This may be replaced when dependencies are built.
