file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_heterogeneity.dir/bench/bench_fig13_heterogeneity.cpp.o"
  "CMakeFiles/bench_fig13_heterogeneity.dir/bench/bench_fig13_heterogeneity.cpp.o.d"
  "bench_fig13_heterogeneity"
  "bench_fig13_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
