file(REMOVE_RECURSE
  "libfedtrans.a"
)
