# Empty dependencies file for fedtrans.
# This may be replaced when dependencies are built.
