
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fedrolex.cpp" "CMakeFiles/fedtrans.dir/src/baselines/fedrolex.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/baselines/fedrolex.cpp.o.d"
  "/root/repo/src/baselines/fluid.cpp" "CMakeFiles/fedtrans.dir/src/baselines/fluid.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/baselines/fluid.cpp.o.d"
  "/root/repo/src/baselines/hetero_fl.cpp" "CMakeFiles/fedtrans.dir/src/baselines/hetero_fl.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/baselines/hetero_fl.cpp.o.d"
  "/root/repo/src/baselines/split_mix.cpp" "CMakeFiles/fedtrans.dir/src/baselines/split_mix.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/baselines/split_mix.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/fedtrans.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/fedtrans.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/fedtrans.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "CMakeFiles/fedtrans.dir/src/common/thread_pool.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/aggregator.cpp" "CMakeFiles/fedtrans.dir/src/core/aggregator.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/core/aggregator.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "CMakeFiles/fedtrans.dir/src/core/checkpoint.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/core/checkpoint.cpp.o.d"
  "/root/repo/src/core/client_manager.cpp" "CMakeFiles/fedtrans.dir/src/core/client_manager.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/core/client_manager.cpp.o.d"
  "/root/repo/src/core/signals.cpp" "CMakeFiles/fedtrans.dir/src/core/signals.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/core/signals.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "CMakeFiles/fedtrans.dir/src/core/trainer.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/core/trainer.cpp.o.d"
  "/root/repo/src/core/transformer.cpp" "CMakeFiles/fedtrans.dir/src/core/transformer.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/core/transformer.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/fedtrans.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/fl/async.cpp" "CMakeFiles/fedtrans.dir/src/fl/async.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/fl/async.cpp.o.d"
  "/root/repo/src/fl/compression.cpp" "CMakeFiles/fedtrans.dir/src/fl/compression.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/fl/compression.cpp.o.d"
  "/root/repo/src/fl/local_train.cpp" "CMakeFiles/fedtrans.dir/src/fl/local_train.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/fl/local_train.cpp.o.d"
  "/root/repo/src/fl/runner.cpp" "CMakeFiles/fedtrans.dir/src/fl/runner.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/fl/runner.cpp.o.d"
  "/root/repo/src/fl/selection.cpp" "CMakeFiles/fedtrans.dir/src/fl/selection.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/fl/selection.cpp.o.d"
  "/root/repo/src/fl/server_opt.cpp" "CMakeFiles/fedtrans.dir/src/fl/server_opt.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/fl/server_opt.cpp.o.d"
  "/root/repo/src/fl/weights.cpp" "CMakeFiles/fedtrans.dir/src/fl/weights.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/fl/weights.cpp.o.d"
  "/root/repo/src/harness/experiments.cpp" "CMakeFiles/fedtrans.dir/src/harness/experiments.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/harness/experiments.cpp.o.d"
  "/root/repo/src/harness/presets.cpp" "CMakeFiles/fedtrans.dir/src/harness/presets.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/harness/presets.cpp.o.d"
  "/root/repo/src/model/align.cpp" "CMakeFiles/fedtrans.dir/src/model/align.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/model/align.cpp.o.d"
  "/root/repo/src/model/model.cpp" "CMakeFiles/fedtrans.dir/src/model/model.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/model/model.cpp.o.d"
  "/root/repo/src/model/serialize.cpp" "CMakeFiles/fedtrans.dir/src/model/serialize.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/model/serialize.cpp.o.d"
  "/root/repo/src/model/similarity.cpp" "CMakeFiles/fedtrans.dir/src/model/similarity.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/model/similarity.cpp.o.d"
  "/root/repo/src/model/spec.cpp" "CMakeFiles/fedtrans.dir/src/model/spec.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/model/spec.cpp.o.d"
  "/root/repo/src/model/transform.cpp" "CMakeFiles/fedtrans.dir/src/model/transform.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/model/transform.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "CMakeFiles/fedtrans.dir/src/nn/activations.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/activations.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "CMakeFiles/fedtrans.dir/src/nn/attention.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/attention.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "CMakeFiles/fedtrans.dir/src/nn/batchnorm.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "CMakeFiles/fedtrans.dir/src/nn/conv2d.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "CMakeFiles/fedtrans.dir/src/nn/dropout.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/grouped_conv2d.cpp" "CMakeFiles/fedtrans.dir/src/nn/grouped_conv2d.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/grouped_conv2d.cpp.o.d"
  "/root/repo/src/nn/im2col.cpp" "CMakeFiles/fedtrans.dir/src/nn/im2col.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/im2col.cpp.o.d"
  "/root/repo/src/nn/layer_norm.cpp" "CMakeFiles/fedtrans.dir/src/nn/layer_norm.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/layer_norm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "CMakeFiles/fedtrans.dir/src/nn/linear.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "CMakeFiles/fedtrans.dir/src/nn/loss.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/loss.cpp.o.d"
  "/root/repo/src/nn/multihead_attention.cpp" "CMakeFiles/fedtrans.dir/src/nn/multihead_attention.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/multihead_attention.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "CMakeFiles/fedtrans.dir/src/nn/pool.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/pool.cpp.o.d"
  "/root/repo/src/nn/scale_shift.cpp" "CMakeFiles/fedtrans.dir/src/nn/scale_shift.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/scale_shift.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "CMakeFiles/fedtrans.dir/src/nn/sequential.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "CMakeFiles/fedtrans.dir/src/nn/sgd.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/nn/sgd.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "CMakeFiles/fedtrans.dir/src/tensor/tensor.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/tensor/tensor.cpp.o.d"
  "/root/repo/src/trace/device.cpp" "CMakeFiles/fedtrans.dir/src/trace/device.cpp.o" "gcc" "CMakeFiles/fedtrans.dir/src/trace/device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
