# Empty dependencies file for bench_fig11_degree_sweep.
# This may be replaced when dependencies are built.
