# Empty dependencies file for test_multihead_attention.
# This may be replaced when dependencies are built.
