file(REMOVE_RECURSE
  "CMakeFiles/test_multihead_attention.dir/tests/test_multihead_attention.cpp.o"
  "CMakeFiles/test_multihead_attention.dir/tests/test_multihead_attention.cpp.o.d"
  "test_multihead_attention"
  "test_multihead_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multihead_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
