file(REMOVE_RECURSE
  "CMakeFiles/example_custom_layers.dir/examples/custom_layers.cpp.o"
  "CMakeFiles/example_custom_layers.dir/examples/custom_layers.cpp.o.d"
  "example_custom_layers"
  "example_custom_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
