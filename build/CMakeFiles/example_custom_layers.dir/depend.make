# Empty dependencies file for example_custom_layers.
# This may be replaced when dependencies are built.
