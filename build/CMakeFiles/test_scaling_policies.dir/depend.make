# Empty dependencies file for test_scaling_policies.
# This may be replaced when dependencies are built.
