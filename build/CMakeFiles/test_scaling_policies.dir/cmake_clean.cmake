file(REMOVE_RECURSE
  "CMakeFiles/test_scaling_policies.dir/tests/test_scaling_policies.cpp.o"
  "CMakeFiles/test_scaling_policies.dir/tests/test_scaling_policies.cpp.o.d"
  "test_scaling_policies"
  "test_scaling_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
