file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_l2s.dir/bench/bench_table1_l2s.cpp.o"
  "CMakeFiles/bench_table1_l2s.dir/bench/bench_table1_l2s.cpp.o.d"
  "bench_table1_l2s"
  "bench_table1_l2s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_l2s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
