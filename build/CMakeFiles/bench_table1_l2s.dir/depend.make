# Empty dependencies file for bench_table1_l2s.
# This may be replaced when dependencies are built.
