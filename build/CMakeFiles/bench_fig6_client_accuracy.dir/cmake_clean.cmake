file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_client_accuracy.dir/bench/bench_fig6_client_accuracy.cpp.o"
  "CMakeFiles/bench_fig6_client_accuracy.dir/bench/bench_fig6_client_accuracy.cpp.o.d"
  "bench_fig6_client_accuracy"
  "bench_fig6_client_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_client_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
