# Empty dependencies file for bench_fig6_client_accuracy.
# This may be replaced when dependencies are built.
