# Empty dependencies file for bench_ext_fedrolex.
# This may be replaced when dependencies are built.
