file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fedrolex.dir/bench/bench_ext_fedrolex.cpp.o"
  "CMakeFiles/bench_ext_fedrolex.dir/bench/bench_ext_fedrolex.cpp.o.d"
  "bench_ext_fedrolex"
  "bench_ext_fedrolex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fedrolex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
