# Empty dependencies file for bench_fig1b_best_model_spread.
# This may be replaced when dependencies are built.
