file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1b_best_model_spread.dir/bench/bench_fig1b_best_model_spread.cpp.o"
  "CMakeFiles/bench_fig1b_best_model_spread.dir/bench/bench_fig1b_best_model_spread.cpp.o.d"
  "bench_fig1b_best_model_spread"
  "bench_fig1b_best_model_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b_best_model_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
