# Empty dependencies file for bench_fig7_cost_accuracy.
# This may be replaced when dependencies are built.
