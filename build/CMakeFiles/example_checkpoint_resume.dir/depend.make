# Empty dependencies file for example_checkpoint_resume.
# This may be replaced when dependencies are built.
