file(REMOVE_RECURSE
  "CMakeFiles/example_checkpoint_resume.dir/examples/checkpoint_resume.cpp.o"
  "CMakeFiles/example_checkpoint_resume.dir/examples/checkpoint_resume.cpp.o.d"
  "example_checkpoint_resume"
  "example_checkpoint_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_checkpoint_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
