file(REMOVE_RECURSE
  "CMakeFiles/example_custom_dataset.dir/examples/custom_dataset.cpp.o"
  "CMakeFiles/example_custom_dataset.dir/examples/custom_dataset.cpp.o.d"
  "example_custom_dataset"
  "example_custom_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
