# Empty dependencies file for example_custom_dataset.
# This may be replaced when dependencies are built.
