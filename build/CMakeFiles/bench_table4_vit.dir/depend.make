# Empty dependencies file for bench_table4_vit.
# This may be replaced when dependencies are built.
