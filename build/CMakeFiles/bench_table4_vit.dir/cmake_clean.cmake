file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_vit.dir/bench/bench_table4_vit.cpp.o"
  "CMakeFiles/bench_table4_vit.dir/bench/bench_table4_vit.cpp.o.d"
  "bench_table4_vit"
  "bench_table4_vit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_vit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
