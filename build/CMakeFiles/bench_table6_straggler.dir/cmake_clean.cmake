file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_straggler.dir/bench/bench_table6_straggler.cpp.o"
  "CMakeFiles/bench_table6_straggler.dir/bench/bench_table6_straggler.cpp.o.d"
  "bench_table6_straggler"
  "bench_table6_straggler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
