# Empty dependencies file for bench_table6_straggler.
# This may be replaced when dependencies are built.
