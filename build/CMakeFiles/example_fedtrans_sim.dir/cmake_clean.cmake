file(REMOVE_RECURSE
  "CMakeFiles/example_fedtrans_sim.dir/examples/fedtrans_sim.cpp.o"
  "CMakeFiles/example_fedtrans_sim.dir/examples/fedtrans_sim.cpp.o.d"
  "example_fedtrans_sim"
  "example_fedtrans_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fedtrans_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
