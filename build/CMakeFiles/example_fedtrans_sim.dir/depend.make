# Empty dependencies file for example_fedtrans_sim.
# This may be replaced when dependencies are built.
