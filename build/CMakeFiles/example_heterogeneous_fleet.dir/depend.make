# Empty dependencies file for example_heterogeneous_fleet.
# This may be replaced when dependencies are built.
