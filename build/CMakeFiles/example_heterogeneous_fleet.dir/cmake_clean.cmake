file(REMOVE_RECURSE
  "CMakeFiles/example_heterogeneous_fleet.dir/examples/heterogeneous_fleet.cpp.o"
  "CMakeFiles/example_heterogeneous_fleet.dir/examples/heterogeneous_fleet.cpp.o.d"
  "example_heterogeneous_fleet"
  "example_heterogeneous_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heterogeneous_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
