file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1a_device_heterogeneity.dir/bench/bench_fig1a_device_heterogeneity.cpp.o"
  "CMakeFiles/bench_fig1a_device_heterogeneity.dir/bench/bench_fig1a_device_heterogeneity.cpp.o.d"
  "bench_fig1a_device_heterogeneity"
  "bench_fig1a_device_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1a_device_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
