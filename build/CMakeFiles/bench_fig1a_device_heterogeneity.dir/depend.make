# Empty dependencies file for bench_fig1a_device_heterogeneity.
# This may be replaced when dependencies are built.
