file(REMOVE_RECURSE
  "CMakeFiles/test_overselection.dir/tests/test_overselection.cpp.o"
  "CMakeFiles/test_overselection.dir/tests/test_overselection.cpp.o.d"
  "test_overselection"
  "test_overselection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overselection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
