# Empty dependencies file for test_overselection.
# This may be replaced when dependencies are built.
