// Fig. 12 — Picking the right Cell: sweep of the activeness threshold α on
// femnist-like. Shape to reproduce: larger α selects fewer Cells (cheaper);
// accuracy peaks near α = 0.9 and drops when too few Cells are expanded.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig12] activeness threshold alpha sweep ("
            << scale_name(scale) << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);

  TablePrinter t({"alpha", "accu (%)", "cost (MACs)", "#models"});
  for (double a : {0.70, 0.80, 0.90, 0.99}) {
    auto cfg = preset.fedtrans;
    cfg.alpha = a;
    auto r = run_fedtrans_cfg(preset, cfg);
    t.add_row({fmt_fixed(a, 2), fmt_fixed(r.report.mean_accuracy * 100, 2),
               fmt_sci(r.report.costs.total_macs(), 2),
               std::to_string(r.num_models)});
    std::cerr << "alpha " << a << " done\n";
  }
  t.print(std::cout);
  std::cout << "\nshape check: cost decreases with alpha; accuracy holds "
               "until alpha gets too selective (paper Fig. 12).\n";
  return 0;
}
