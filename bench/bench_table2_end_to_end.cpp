// Table 2 — End-to-end comparison on all four workloads:
// FedTrans vs FLuID vs HeteroFL vs SplitMix, reporting mean client accuracy,
// IQR, training cost (MACs), server storage, and network volume. Baselines
// receive FedTrans's largest transformed model (paper §A.1 protocol).
//
// Shape to reproduce: FedTrans wins accuracy on every dataset while paying
// the least MACs/storage/network; HeteroFL's weak-client submodels drag its
// accuracy; SplitMix ships the most bytes.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[table2] end-to-end comparison (" << scale_name(scale)
            << ")\n\n";

  TablePrinter t({"dataset", "method", "accu (%)", "IQR (%)", "cost (MACs)",
                  "storage", "network"});
  for (const auto& preset : all_presets(scale)) {
    std::cerr << "running " << preset.name << "...\n";
    auto fedtrans = run_fedtrans(preset);
    auto fluid = run_fluid(preset, fedtrans.largest_spec);
    auto heterofl = run_heterofl(preset, fedtrans.largest_spec);
    auto splitmix = run_splitmix(preset, fedtrans.largest_spec);
    for (const auto* r : {&fedtrans, &fluid, &heterofl, &splitmix}) {
      t.add_row({preset.name, r->method,
                 fmt_fixed(r->report.mean_accuracy * 100, 2),
                 fmt_fixed(r->report.accuracy_iqr * 100, 2),
                 fmt_sci(r->report.costs.total_macs(), 2),
                 fmt_bytes(r->report.costs.storage_bytes()),
                 fmt_bytes(r->report.costs.network_bytes())});
    }
  }
  t.print(std::cout);
  std::cout << "\nshape check: FedTrans should lead accuracy at the lowest "
               "cost/storage on each dataset (paper Table 2).\n";
  return 0;
}
