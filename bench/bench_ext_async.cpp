// Extension bench: synchronous FedAvg vs buffered-asynchronous FedBuff
// (Nguyen et al., cited by the paper for straggler mitigation — Appendix C
// shows FedTrans's capacity-aware assignment shrinking round times; async
// aggregation is the orthogonal system-level remedy). Reports simulated
// wall-clock to complete the same number of server updates, plus final
// accuracy, across increasingly heterogeneous fleets.

#include <iostream>

#include "common/table.hpp"
#include "fl/async.hpp"
#include "fl/runner.hpp"
#include "harness/presets.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[extension] sync FedAvg vs async FedBuff wall-clock ("
            << scale_name(scale) << ", femnist-like fleet)\n\n";
  auto preset = femnist_like(scale);
  auto data = FederatedDataset::generate(preset.dataset);

  const int updates = preset.fedtrans.rounds;
  const int per_round = preset.fedtrans.clients_per_round;

  TablePrinter t({"fleet sigma", "method", "wall-clock (s)", "accuracy (%)",
                  "mean staleness"});
  for (double sigma : {0.5, 1.0, 2.0}) {
    FleetConfig fcfg = preset.fleet;
    fcfg.sigma_compute = sigma;
    auto fleet = sample_fleet(fcfg);
    Rng rng(17);
    Model init(preset.initial_model, rng);

    FlRunConfig scfg;
    scfg.rounds = updates;
    scfg.clients_per_round = per_round;
    scfg.local = preset.fedtrans.local;
    scfg.seed = preset.fedtrans.seed;
    FedAvgRunner sync(init, data, fleet, scfg);
    sync.run();
    double sync_wall = 0.0;
    for (const auto& rec : sync.history()) sync_wall += rec.round_time_s;
    t.add_row({fmt_fixed(sigma, 1), "FedAvg (sync)", fmt_fixed(sync_wall, 1),
               fmt_fixed(sync.mean_client_accuracy() * 100, 2), "0.0"});
    std::cerr << "done: sync sigma=" << sigma << "\n";

    AsyncRunConfig acfg;
    acfg.concurrency = per_round;
    acfg.buffer_size = per_round;
    acfg.aggregations = updates;
    acfg.local = preset.fedtrans.local;
    acfg.seed = preset.fedtrans.seed;
    FedBuffRunner async_runner(init, data, fleet, acfg);
    async_runner.run();
    t.add_row({fmt_fixed(sigma, 1), "FedBuff (async)",
               fmt_fixed(async_runner.now_s(), 1),
               fmt_fixed(async_runner.mean_client_accuracy() * 100, 2),
               fmt_fixed(async_runner.mean_staleness(), 2)});
    std::cerr << "done: async sigma=" << sigma << "\n";
  }
  t.print(std::cout);
  std::cout << "\nshape check: async completes the same update count in "
               "less wall-clock, and the gap widens with fleet "
               "heterogeneity (stragglers stop gating rounds); accuracy "
               "stays comparable at modest staleness.\n";
  return 0;
}
