// Fig. 6 — Per-client accuracy distributions (box plots) per method. The
// paper draws box plots on all four datasets; this bench prints the
// five-number summaries on two representative workloads (cifar-like,
// femnist-like) to bound runtime — set FEDTRANS_BENCH_SCALE=full for more.
// Shape to reproduce: FedTrans's box sits highest with the tightest spread.

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

namespace {
void add_box(TablePrinter& t, const std::string& dataset,
             const MethodResult& r) {
  const auto b = box_stats(r.report.client_accuracy);
  t.add_row({dataset, r.method, fmt_fixed(b.min, 2), fmt_fixed(b.q1, 2),
             fmt_fixed(b.median, 2), fmt_fixed(b.q3, 2), fmt_fixed(b.max, 2)});
}
}  // namespace

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig6] per-client accuracy distributions ("
            << scale_name(scale) << ")\n\n";

  std::vector<ExperimentPreset> presets{cifar_like(scale),
                                        femnist_like(scale)};
  if (scale == Scale::Full) presets = all_presets(scale);

  TablePrinter t({"dataset", "method", "min", "q1", "median", "q3", "max"});
  for (const auto& preset : presets) {
    std::cerr << "running " << preset.name << "...\n";
    auto fedtrans = run_fedtrans(preset);
    auto fluid = run_fluid(preset, fedtrans.largest_spec);
    auto heterofl = run_heterofl(preset, fedtrans.largest_spec);
    auto splitmix = run_splitmix(preset, fedtrans.largest_spec);
    for (const auto* r : {&fedtrans, &fluid, &heterofl, &splitmix})
      add_box(t, preset.name, *r);
  }
  t.print(std::cout);
  std::cout << "\nshape check: FedTrans's median/q1 dominate the baselines "
               "(paper Fig. 6 box plots).\n";
  return 0;
}
