// Fig. 10 — Picking the right time to transform: sweeps of (a) the DoC
// threshold β and (b) the DoC window γ on femnist-like. Shape to reproduce:
// larger β transforms more eagerly (more models, more cost; accuracy rises
// then falls), larger γ transforms more conservatively (lower cost).

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig10] DoC threshold & window sweeps (" << scale_name(scale)
            << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);
  const double beta0 = preset.fedtrans.beta;

  std::cout << "(a) transform threshold beta:\n";
  TablePrinter ta({"beta", "accu (%)", "cost (MACs)", "#models"});
  for (double scale_b : {0.33, 1.0, 1.66, 2.33}) {
    auto cfg = preset.fedtrans;
    cfg.beta = beta0 * scale_b;
    auto r = run_fedtrans_cfg(preset, cfg);
    ta.add_row({fmt_fixed(cfg.beta, 3),
                fmt_fixed(r.report.mean_accuracy * 100, 2),
                fmt_sci(r.report.costs.total_macs(), 2),
                std::to_string(r.num_models)});
    std::cerr << "beta " << cfg.beta << " done\n";
  }
  ta.print(std::cout);

  std::cout << "\n(b) DoC window gamma (#slopes):\n";
  TablePrinter tb({"gamma", "accu (%)", "cost (MACs)", "#models"});
  for (int gamma : {3, 5, 8, 12}) {
    auto cfg = preset.fedtrans;
    cfg.gamma = gamma;
    auto r = run_fedtrans_cfg(preset, cfg);
    tb.add_row({std::to_string(gamma),
                fmt_fixed(r.report.mean_accuracy * 100, 2),
                fmt_sci(r.report.costs.total_macs(), 2),
                std::to_string(r.num_models)});
    std::cerr << "gamma " << gamma << " done\n";
  }
  tb.print(std::cout);
  std::cout << "\nshape check: cost rises with beta and falls with gamma; "
               "accuracy peaks at moderate values (paper Fig. 10).\n";
  return 0;
}
