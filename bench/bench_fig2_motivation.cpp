// Fig. 2 — Motivation: existing solutions are suboptimal. Compares a single
// global model (FedAvg), the multi-model baselines (HeteroFL, SplitMix,
// FLuID) and the centralized "cloud ML" upper bound on cost vs accuracy.
// Shape to reproduce: multi-model baselines cost much more than the global
// model yet all sit well below the centralized upper bound.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig2] motivation: cost vs accuracy of existing solutions ("
            << scale_name(scale) << ")\n\n";

  auto preset = femnist_like(scale);
  // A mid-sized model as "the" architecture existing single-model FL ships.
  ModelSpec large = preset.initial_model;
  large.stem_width *= 2;
  for (auto& c : large.cells) c.width *= 2;

  auto global = run_single_model(preset, preset.initial_model);
  auto heterofl = run_heterofl(preset, large);
  auto splitmix = run_splitmix(preset, large);
  auto fluid = run_fluid(preset, large);
  auto cloud = run_centralized(preset, large);
  cloud.method = "Centralized (upper bound)";
  global.method = "Global model (FedAvg)";

  TablePrinter t({"solution", "accuracy (%)", "cost (MACs)", "cost vs global"});
  const double base = global.report.costs.total_macs();
  for (const auto* r : {&global, &heterofl, &splitmix, &fluid, &cloud}) {
    const double c = r->report.costs.total_macs();
    t.add_row({r->method, fmt_fixed(r->report.mean_accuracy * 100, 2),
               fmt_sci(c, 2), fmt_fixed(c / base, 1) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nshape check: multi-model baselines pay >1x the global "
               "model's cost; everyone trails the centralized bound (paper "
               "Fig. 2).\n";
  return 0;
}
