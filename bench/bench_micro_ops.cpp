// Microbenchmarks (google-benchmark): the hot operations underneath every
// experiment — GEMM, conv2d forward/backward, a full local-training step,
// model transformation, and soft aggregation. Useful for regression-testing
// the substrate's performance.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>

#include "baselines/robust.hpp"
#include "common/thread_pool.hpp"
#include "core/aggregator.hpp"
#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "fl/runner.hpp"
#include "fl/server_opt.hpp"
#include "model/transform.hpp"
#include "nn/conv2d.hpp"
#include "nn/grouped_conv2d.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm.hpp"
#include "trace/device.hpp"

namespace fedtrans {
namespace {

// items == MACs, so GFLOP/s = 2 × items_per_second / 1e9 (the convention
// scripts/bench_micro.sh uses when emitting BENCH_micro_ops.json).
void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  a.randn(rng);
  b.randn(rng);
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Thread-count scaling of the acceptance-criterion shape (256³).
void BM_GemmThreads(benchmark::State& state) {
  ThreadPool::set_global_threads(static_cast<int>(state.range(0)));
  const int n = 256;
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  a.randn(rng);
  b.randn(rng);
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          n * n);
  ThreadPool::set_global_threads(ThreadPool::global_threads());
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4);

// Backend sweep on the acceptance shape (256³, single thread): BM_GemmSimd
// forces the best available SIMD micro-kernel, BM_GemmScalar the plain-C
// parity reference (compiled with auto-vectorization disabled, so this is a
// genuinely scalar baseline). The perf acceptance bar is SIMD ≥ 4× scalar.
void gemm_backend_bench(benchmark::State& state, GemmBackend b) {
  ThreadPool::set_global_threads(1);
  const GemmBackend prev = gemm_backend();
  set_gemm_backend(b);
  const int n = 256;
  Rng rng(1);
  Tensor a({n, n}), bm({n, n}), c({n, n});
  a.randn(rng);
  bm.randn(rng);
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), n, bm.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          n * n);
  state.SetLabel(gemm_backend_name(b));
  set_gemm_backend(prev);
  ThreadPool::set_global_threads(ThreadPool::global_threads());
}

void BM_GemmScalar(benchmark::State& state) {
  gemm_backend_bench(state, GemmBackend::Scalar);
}
BENCHMARK(BM_GemmScalar);

void BM_GemmSimd(benchmark::State& state) {
  const GemmBackend best = best_gemm_backend();
  if (best == GemmBackend::Scalar) {
    state.SkipWithError("no SIMD gemm backend available on this build/host");
    return;
  }
  gemm_backend_bench(state, best);
}
BENCHMARK(BM_GemmSimd);

void conv_bench_backend(benchmark::State& state, bool backward) {
  set_conv_backend(state.range(0) == 0 ? ConvBackend::Im2col
                                       : ConvBackend::Direct);
  Rng rng(2);
  Conv2d conv(8, 16, 3, 1);
  conv.init(rng);
  Tensor x({8, 8, 12, 12});
  x.randn(rng);
  Tensor y = conv.forward(x, true);
  Tensor g(y.shape());
  g.fill(0.1f);
  for (auto _ : state) {
    if (backward) {
      Tensor dx = conv.backward(g);
      benchmark::DoNotOptimize(dx.data());
    } else {
      Tensor out = conv.forward(x, true);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * conv.macs({8, 12, 12}) * 8);
  set_conv_backend(ConvBackend::Im2col);
}

// Arg 0 = im2col (default backend), Arg 1 = direct reference loops.
void BM_Conv2dForward(benchmark::State& state) {
  conv_bench_backend(state, /*backward=*/false);
}
BENCHMARK(BM_Conv2dForward)->Arg(0)->Arg(1);

void BM_Conv2dBackward(benchmark::State& state) {
  conv_bench_backend(state, /*backward=*/true);
}
BENCHMARK(BM_Conv2dBackward)->Arg(0)->Arg(1);

// ResNet-style body layer: 3×3, 64→64 channels on a 14×14 map (the
// acceptance-criterion conv shape). items == MACs per forward pass.
void BM_ResNetConvForward(benchmark::State& state) {
  set_conv_backend(state.range(0) == 0 ? ConvBackend::Im2col
                                       : ConvBackend::Direct);
  Rng rng(7);
  Conv2d conv(64, 64, 3, 1);
  conv.init(rng);
  Tensor x({4, 64, 14, 14});
  x.randn(rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.macs({64, 14, 14}) * 4);
  set_conv_backend(ConvBackend::Im2col);
}
BENCHMARK(BM_ResNetConvForward)->Arg(0)->Arg(1);

void BM_ResNetConvBackward(benchmark::State& state) {
  set_conv_backend(state.range(0) == 0 ? ConvBackend::Im2col
                                       : ConvBackend::Direct);
  Rng rng(8);
  Conv2d conv(64, 64, 3, 1);
  conv.init(rng);
  Tensor x({4, 64, 14, 14});
  x.randn(rng);
  Tensor y = conv.forward(x, true);
  Tensor g(y.shape());
  g.fill(0.1f);
  for (auto _ : state) {
    Tensor dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.macs({64, 14, 14}) * 4);
  set_conv_backend(ConvBackend::Im2col);
}
BENCHMARK(BM_ResNetConvBackward)->Arg(0)->Arg(1);

// Grouped vs dense conv throughput on the ResNet body shape (items == MACs,
// so the GFLOP/s *rates* are comparable across group counts even though the
// grouped layers do 1/g the work). Arg = groups; Arg(1) is the dense
// comparator. The batched im2col lowering packs a whole batch tile into one
// [ckk, bt·oh·ow] panel per group, which is what keeps grouped GFLOP/s
// in dense's ballpark instead of paying a sliver-GEMM penalty per image
// (forward also rides the short-M B-direct GEMM kernels).
void grouped_conv_bench(benchmark::State& state, bool backward) {
  const int groups = static_cast<int>(state.range(0));
  Rng rng(9);
  GroupedConv2d conv(64, 64, 3, groups, 1);
  conv.init(rng);
  Tensor x({4, 64, 14, 14});
  x.randn(rng);
  Tensor y = conv.forward(x, true);
  Tensor g(y.shape());
  g.fill(0.1f);
  for (auto _ : state) {
    if (backward) {
      Tensor dx = conv.backward(g);
      benchmark::DoNotOptimize(dx.data());
    } else {
      Tensor out = conv.forward(x, true);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * conv.macs({64, 14, 14}) * 4);
}

void BM_GroupedConvForward(benchmark::State& state) {
  grouped_conv_bench(state, /*backward=*/false);
}
BENCHMARK(BM_GroupedConvForward)->Arg(1)->Arg(4)->Arg(8);

void BM_GroupedConvBackward(benchmark::State& state) {
  grouped_conv_bench(state, /*backward=*/true);
}
BENCHMARK(BM_GroupedConvBackward)->Arg(1)->Arg(4)->Arg(8);

void BM_LocalTrainStep(benchmark::State& state) {
  DatasetConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.num_clients = 1;
  dcfg.hw = 12;
  dcfg.mean_train_samples = 40;
  auto data = FederatedDataset::generate(dcfg);
  Rng rng(4);
  Model model(ModelSpec::conv(1, 12, 10, 4, {6, 8}, {1, 1}, {1, 2}), rng);
  LocalTrainConfig cfg;
  cfg.steps = 1;
  cfg.batch = 10;
  for (auto _ : state) {
    auto res = local_train(model, data.client(0), cfg, rng);
    benchmark::DoNotOptimize(res.avg_loss);
  }
}
BENCHMARK(BM_LocalTrainStep);

void BM_WidenTransform(benchmark::State& state) {
  Rng rng(5);
  Model parent(ModelSpec::conv(3, 12, 10, 8, {16, 24}, {2, 2}, {1, 2}), rng);
  for (auto _ : state) {
    Model child = widen_cell(parent, 0, 2.0, 1, rng);
    benchmark::DoNotOptimize(child.macs());
  }
}
BENCHMARK(BM_WidenTransform);

void BM_SoftAggregation(benchmark::State& state) {
  Rng rng(6);
  Model m0(ModelSpec::conv(1, 12, 10, 4, {8, 12}, {1, 1}, {1, 2}), rng);
  Model m1 = widen_cell(m0, 0, 2.0, 1, rng);
  Model m2 = widen_cell(m1, 1, 2.0, 2, rng);
  SoftAggregator agg({0.98, true, true, false});
  std::vector<Model*> models{&m0, &m1, &m2};
  std::vector<std::vector<double>> sim{
      {1.0, 0.6, 0.4}, {0.6, 1.0, 0.7}, {0.4, 0.7, 1.0}};
  int round = 0;
  for (auto _ : state) {
    agg.aggregate(models, sim, round++);
    benchmark::DoNotOptimize(models[2]);
  }
}
BENCHMARK(BM_SoftAggregation);

// Robust (Byzantine-tolerant) reductions vs the linear FedAvg fold over
// the same batch of client deltas. arg0 = client count, arg1 = reducer
// (0 linear mean, 1 coordinate median, 2 trimmed mean @ 0.3/side). The
// per-coordinate sorts make the robust reducers O(n log n) per coordinate
// where the fold is O(n) — this records the constant. NormClip is
// excluded: its O(n²·numel) pairwise distances belong in a macro bench.
void BM_RobustAggregation(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  Rng rng(7);
  Model proto(ModelSpec::conv(1, 8, 8, 4, {8, 16}), rng);
  std::vector<WeightSet> deltas(static_cast<std::size_t>(clients));
  for (WeightSet& d : deltas) {
    d = ws_zeros_like(proto.weights());
    for (auto& t : d) t.randn(rng);
  }
  for (auto _ : state) {
    WeightSet out;
    switch (kind) {
      case 1:
        out = robust_coordinate_median(deltas);
        break;
      case 2:
        out = robust_trimmed_mean(deltas, 0.3);
        break;
      default: {
        out = ws_zeros_like(deltas.front());
        for (const WeightSet& d : deltas) ws_axpy(out, 1.0f, d);
        ws_scale(out, 1.0f / static_cast<float>(clients));
        break;
      }
    }
    benchmark::DoNotOptimize(out.front().data());
  }
  // items == coordinates reduced per iteration (clients × numel).
  state.SetItemsProcessed(state.iterations() * clients *
                          ws_numel(proto.weights()));
}
BENCHMARK(BM_RobustAggregation)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2});

// ---------------------------------------------------------------------------
// Engine dispatch overhead: one FedAvg round driven through the
// FederationEngine's Strategy hooks (arg 0) vs the identical work hand-coded
// as a flat loop with no virtual dispatch (arg 1). The workload is kept tiny
// (1 local step) so the fixed per-round engine cost is as large a share as
// it can be; the acceptance bar is engine ≤ 1% over inline.

struct EngineBenchFixture {
  EngineBenchFixture() {
    DatasetConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.num_clients = 8;
    dcfg.hw = 8;
    dcfg.channels = 1;
    dcfg.mean_train_samples = 12;
    dcfg.min_train_samples = 8;
    dcfg.eval_samples = 4;
    data = FederatedDataset::generate(dcfg);
    FleetConfig fcfg;
    fcfg.num_devices = dcfg.num_clients;
    fcfg.with_median_capacity(5e6);
    fleet = sample_fleet(fcfg);
  }
  static LocalTrainConfig local_cfg() {
    LocalTrainConfig local;
    local.steps = 1;
    local.batch = 4;
    return local;
  }
  static ModelSpec spec() { return ModelSpec::conv(1, 8, 4, 4, {6}); }

  FederatedDataset data;
  std::vector<DeviceProfile> fleet;
};

/// The legacy-style flat round loop: select, fork, train on the pool,
/// reduce in order, bill, aggregate — semantically FedAvgStrategy's round
/// without any engine or virtual-hook involvement.
double inline_fedavg_round(Model& model, const FederatedDataset& data,
                           const std::vector<DeviceProfile>& fleet,
                           const LocalTrainConfig& local, int k, Rng& rng,
                           CostMeter& costs, ServerOptimizer& opt) {
  auto selected = uniform_select(data.num_clients(), k, rng);
  WeightSet acc = ws_zeros_like(model.weights());
  double weight_sum = 0.0, loss_sum = 0.0, slowest = 0.0;
  const double model_bytes = static_cast<double>(model.param_bytes());

  std::vector<Rng> rngs;
  rngs.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i)
    rngs.push_back(rng.fork());
  std::vector<LocalTrainResult> results(selected.size());
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(selected.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          Model local_model = model;
          results[static_cast<std::size_t>(i)] = local_train(
              local_model,
              data.client(selected[static_cast<std::size_t>(i)]), local,
              rngs[static_cast<std::size_t>(i)]);
        }
      });

  for (std::size_t ci = 0; ci < selected.size(); ++ci) {
    auto& res = results[ci];
    const double w = static_cast<double>(res.num_samples);
    ws_axpy(acc, static_cast<float>(w), res.delta);
    weight_sum += w;
    loss_sum += res.avg_loss;
    costs.add_training_macs(res.macs_used);
    costs.add_transfer(model_bytes, model_bytes);
    const double t = client_round_time_s(
        fleet[static_cast<std::size_t>(selected[ci])],
        static_cast<double>(model.macs()), local.steps, local.batch,
        model_bytes);
    costs.add_client_round_time(t);
    slowest = std::max(slowest, t);
  }
  if (weight_sum > 0.0) {
    ws_scale(acc, static_cast<float>(1.0 / weight_sum));
    WeightSet global = model.weights();
    opt.apply(global, acc);
    model.set_weights(global);
  }
  benchmark::DoNotOptimize(slowest);
  return selected.empty() ? 0.0
                          : loss_sum / static_cast<double>(selected.size());
}

void BM_EngineRoundOverhead(benchmark::State& state) {
  EngineBenchFixture fx;
  const bool use_engine = state.range(0) == 0;
  const int clients_per_round = 4;

  if (use_engine) {
    FlRunConfig cfg;
    cfg.rounds = 1;
    cfg.clients_per_round = clients_per_round;
    cfg.local = EngineBenchFixture::local_cfg();
    cfg.seed = 3;
    Rng rng(7);
    FederationEngine engine(std::make_unique<FedAvgStrategy>(
                                Model(EngineBenchFixture::spec(), rng),
                                cfg.options()),
                            fx.data, fx.fleet, cfg.to_session());
    for (auto _ : state) {
      benchmark::DoNotOptimize(engine.run_round());
    }
    state.counters["rounds"] =
        static_cast<double>(engine.rounds_done());
  } else {
    Rng rng(7);
    Model model(EngineBenchFixture::spec(), rng);
    Rng round_rng(3);
    CostMeter costs;
    auto opt = make_server_opt(ServerOptKind::FedAvg);
    const LocalTrainConfig local = EngineBenchFixture::local_cfg();
    for (auto _ : state) {
      benchmark::DoNotOptimize(inline_fedavg_round(
          model, fx.data, fx.fleet, local, clients_per_round, round_rng,
          costs, *opt));
    }
  }
}
BENCHMARK(BM_EngineRoundOverhead)
    ->Arg(0)  // engine-dispatched round
    ->Arg(1)  // inline legacy-style loop
    ->MinTime(2.0);  // sub-1% deltas need a stable clock

// Tracing overhead: the same engine round with wall-clock tracing off
// (arg 0) vs on (arg 1). Every span site fires — engine phases, kernel
// dispatch, CostMeter histograms — so this is the worst-case per-round
// tracing tax; the acceptance bar is on ≤ 2% over off. Buffers are cleared
// each iteration so the run measures recording, not cap-induced drops.
void BM_TraceOverhead(benchmark::State& state) {
  EngineBenchFixture fx;
  const bool trace_on = state.range(0) == 1;
  FlRunConfig cfg;
  cfg.rounds = 1;
  cfg.clients_per_round = 4;
  cfg.local = EngineBenchFixture::local_cfg();
  cfg.seed = 3;
  Rng rng(7);
  FederationEngine engine(std::make_unique<FedAvgStrategy>(
                              Model(EngineBenchFixture::spec(), rng),
                              cfg.options()),
                          fx.data, fx.fleet, cfg.to_session());
  if (trace_on) trace_start(TraceClock::Wall);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_round());
    if (trace_on) trace_clear();
  }
  if (trace_on) {
    trace_stop();
    trace_clear();
  }
  state.SetLabel(trace_on ? "trace=wall" : "trace=off");
}
BENCHMARK(BM_TraceOverhead)
    ->Arg(0)  // tracing compiled in, runtime-disabled (the default)
    ->Arg(1)  // wall-clock tracing live
    ->MinTime(2.0);

// Wire bytes of one FedAvg round at fp32 vs f16 storage. The benchmark's
// timing is incidental; the payload is the `bytes_per_round` counter read
// off CostMeter (the mixed-precision acceptance bar is an ~2× drop from
// Arg(0) to Arg(1)).
void BM_HalfWireBytes(benchmark::State& state) {
  EngineBenchFixture fx;
  const bool half = state.range(0) == 1;
  FlRunConfig cfg;
  cfg.rounds = 1;
  cfg.clients_per_round = 4;
  cfg.local = EngineBenchFixture::local_cfg();
  cfg.seed = 3;
  double bytes = 0.0;
  for (auto _ : state) {
    Rng rng(7);
    SessionConfig scfg = cfg.to_session();
    if (half) scfg.with_precision(Dtype::F16);
    FederationEngine engine(std::make_unique<FedAvgStrategy>(
                                Model(EngineBenchFixture::spec(), rng),
                                cfg.options()),
                            fx.data, fx.fleet, scfg);
    engine.run_round();
    bytes = engine.costs().network_bytes();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["bytes_per_round"] = bytes;
  state.SetLabel(half ? "f16" : "f32");
}
BENCHMARK(BM_HalfWireBytes)->Arg(0)->Arg(1);

}  // namespace
}  // namespace fedtrans

int main(int argc, char** argv) {
  // Debian's pre-built libbenchmark reports ITS OWN flavor as
  // `library_build_type` (debug), which says nothing about this binary —
  // and it predates JSON output for AddCustomContext. --fedtrans_context
  // prints the authoritative keys for the repo build as one JSON object;
  // bench_micro.sh probes it and refuses to record unless
  // fedtrans_build_type says "release".
  if (argc > 1 && std::string_view(argv[1]) == "--fedtrans_context") {
#ifdef NDEBUG
    const char* build = "release";
#else
    const char* build = "debug";
#endif
    std::printf("{\"fedtrans_build_type\": \"%s\", "
                "\"fedtrans_gemm_backend\": \"%s\"}\n",
                build, fedtrans::gemm_backend_name(fedtrans::gemm_backend()));
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
