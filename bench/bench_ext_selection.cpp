// Extension bench: participant-selection strategies under FedTrans. The
// paper samples participants uniformly (FedScale protocol) and cites Oort
// (Lai et al., OSDI'21) as the guided-selection line of work; this bench
// quantifies what guided selection adds on top of multi-model training.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[extension] client selection under FedTrans ("
            << scale_name(scale) << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);

  TablePrinter t({"selector", "accuracy (%)", "IQR (%)", "cost (MACs)",
                  "#models"});
  struct Entry {
    SelectorKind kind;
    const char* label;
  };
  for (const Entry& e :
       {Entry{SelectorKind::Uniform, "uniform (paper)"},
        Entry{SelectorKind::Oort, "oort-like"},
        Entry{SelectorKind::PowerOfChoice, "power-of-choice"}}) {
    FedTransConfig cfg = preset.fedtrans;
    cfg.selector = e.kind;
    auto res = run_fedtrans_cfg(preset, cfg);
    t.add_row({e.label, fmt_fixed(res.report.mean_accuracy * 100, 2),
               fmt_fixed(res.report.accuracy_iqr * 100, 2),
               fmt_sci(res.report.costs.total_macs()),
               std::to_string(res.num_models)});
    std::cerr << "done: " << e.label << "\n";
  }
  t.print(std::cout);
  std::cout << "\nshape check: loss-guided selection (oort/pow-d) matches or "
               "improves mean accuracy at equal cost by revisiting "
               "poorly-fit clients; uniform remains a solid default.\n";
  return 0;
}
