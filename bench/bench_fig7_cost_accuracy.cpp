// Fig. 7 — Cost-to-accuracy curves: mean client accuracy as a function of
// cumulative training MACs for each method (femnist-like workload; the
// paper plots all four datasets). Shape to reproduce: the FedTrans curve
// reaches any given accuracy at the lowest MAC budget because it starts
// small and grows judiciously.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

namespace {
void print_series(const MethodResult& r) {
  std::cout << r.method << " series (cum MACs, accuracy%):\n  ";
  int printed = 0;
  for (const auto& rec : r.report.history) {
    if (rec.accuracy < 0) continue;
    std::cout << "(" << fmt_sci(rec.cum_macs, 1) << ", "
              << fmt_fixed(rec.accuracy * 100, 1) << ") ";
    if (++printed % 5 == 0) std::cout << "\n  ";
  }
  std::cout << "\n";
}
}  // namespace

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig7] cost-to-accuracy curves (" << scale_name(scale)
            << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);
  const int probe = 5;  // evaluate every 5 rounds

  auto fedtrans = run_fedtrans(preset, probe);
  auto fluid = run_fluid(preset, fedtrans.largest_spec, probe);
  auto heterofl = run_heterofl(preset, fedtrans.largest_spec, probe);
  auto splitmix = run_splitmix(preset, fedtrans.largest_spec, probe);

  for (const auto* r : {&fedtrans, &fluid, &heterofl, &splitmix})
    print_series(*r);

  // Headline scalar: cost to reach a common accuracy threshold.
  auto cost_to_reach = [](const MethodResult& r, double target) {
    for (const auto& rec : r.report.history)
      if (rec.accuracy >= target) return rec.cum_macs;
    return -1.0;
  };
  double best_final = 0.0;
  for (const auto* r : {&fedtrans, &fluid, &heterofl, &splitmix})
    for (const auto& rec : r->report.history)
      best_final = std::max(best_final, rec.accuracy);
  const double target = best_final * 0.8;
  std::cout << "\ncost to reach " << fmt_fixed(target * 100, 1)
            << "% accuracy:\n";
  TablePrinter t({"method", "MACs (-1 = never)"});
  for (const auto* r : {&fedtrans, &fluid, &heterofl, &splitmix})
    t.add_row({r->method, fmt_sci(cost_to_reach(*r, target), 2)});
  t.print(std::cout);
  std::cout << "\nshape check: FedTrans reaches the target with the fewest "
               "MACs (paper Fig. 7).\n";
  return 0;
}
