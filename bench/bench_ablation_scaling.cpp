// Scaling-policy ablation (§4.1 / §5.4): the paper motivates the widen ↔
// deepen alternation with EfficientNet-style compound scaling and states it
// "achieves better performance than its counterparts". This bench runs the
// same femnist-like workload under compound, widen-only and deepen-only
// policies and reports deployment accuracy, cost and family shape.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[ablation] scaling policy: compound vs widen-only vs "
               "deepen-only ("
            << scale_name(scale) << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);

  TablePrinter t({"policy", "accuracy (%)", "IQR (%)", "cost (MACs)",
                  "#models", "largest model"});
  for (ScalingPolicy policy :
       {ScalingPolicy::Compound, ScalingPolicy::WidenOnly,
        ScalingPolicy::DeepenOnly}) {
    FedTransConfig cfg = preset.fedtrans;
    cfg.scaling_policy = policy;
    auto res = run_fedtrans_cfg(preset, cfg);
    t.add_row({scaling_policy_name(policy),
               fmt_fixed(res.report.mean_accuracy * 100, 2),
               fmt_fixed(res.report.accuracy_iqr * 100, 2),
               fmt_sci(res.report.costs.total_macs()),
               std::to_string(res.num_models), res.largest_spec.summary()});
    std::cerr << "done: " << scaling_policy_name(policy) << "\n";
  }
  t.print(std::cout);
  std::cout << "\nshape check: compound scaling matches or beats the "
               "single-operation counterparts at comparable cost; deepen-only "
               "grows cost fastest per accuracy point (paper §5.4).\n";
  return 0;
}
