// Extension bench: uplink compression vs the Table-2 "Network (MB)" cost.
// The paper attacks network volume architecturally (small models first);
// gradient compression is the orthogonal systems remedy. This bench trains
// the same global model under dense, top-k (± error feedback) and
// quantized uplinks and reports the accuracy/network trade-off.

#include <iostream>

#include "common/table.hpp"
#include "fl/runner.hpp"
#include "harness/presets.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[extension] uplink compression trade-off ("
            << scale_name(scale) << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);
  auto data = FederatedDataset::generate(preset.dataset);
  auto fleet = sample_fleet(preset.fleet);
  Rng rng(29);
  Model init(preset.initial_model, rng);

  struct Variant {
    const char* label;
    CompressionKind kind;
    double ratio;
    bool ef;
  };
  const Variant variants[] = {
      {"dense fp32", CompressionKind::None, 0.1, false},
      {"top-k 10%", CompressionKind::TopK, 0.10, false},
      {"top-k 2%", CompressionKind::TopK, 0.02, false},
      {"top-k 2% + EF", CompressionKind::TopK, 0.02, true},
      {"quant 8-bit", CompressionKind::Quant8, 0.1, false},
      {"quant 4-bit", CompressionKind::Quant4, 0.1, false},
  };

  TablePrinter t({"uplink", "accuracy (%)", "network (MB)", "final loss"});
  for (const Variant& v : variants) {
    FlRunConfig cfg;
    cfg.rounds = preset.fedtrans.rounds;
    cfg.clients_per_round = preset.fedtrans.clients_per_round;
    cfg.local = preset.fedtrans.local;
    cfg.seed = preset.fedtrans.seed;
    cfg.compression = v.kind;
    cfg.topk_ratio = v.ratio;
    cfg.error_feedback = v.ef;
    FedAvgRunner runner(init, data, fleet, cfg);
    runner.run();
    t.add_row({v.label, fmt_fixed(runner.mean_client_accuracy() * 100, 2),
               fmt_fixed(runner.costs().network_mb(), 2),
               fmt_fixed(runner.history().back().avg_loss, 3)});
    std::cerr << "done: " << v.label << "\n";
  }
  t.print(std::cout);
  std::cout << "\nshape check: 8-bit quantization is accuracy-neutral at "
               "~4x less uplink; aggressive top-k trades accuracy for "
               "10-50x savings and error feedback claws most of it back.\n";
  return 0;
}
