// Table 3 — Component breakdown on femnist-like: FedTrans and the
// cumulative removals the paper reports — 'l' gradient-based layer
// selection, 's' soft aggregation, 'w' warm-up, 'd' decayed weight sharing.
// Shape to reproduce: accuracy degrades as components are stripped, and
// removing warm-up ('w') raises cost.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[table3] component breakdown (" << scale_name(scale)
            << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);

  struct Variant {
    const char* name;
    bool l, s, w, d;
  };
  const Variant variants[] = {
      {"FedTrans", true, true, true, true},
      {"FedTrans-l", false, true, true, true},
      {"FedTrans-ls", false, false, true, true},
      {"FedTrans-lsw", false, false, false, true},
      {"FedTrans-lswd", false, false, false, false},
  };

  TablePrinter t({"breakdown", "accu (%)", "cost (MACs)"});
  for (const auto& v : variants) {
    auto cfg = preset.fedtrans;
    cfg.enable_layer_selection = v.l;
    cfg.enable_soft_agg = v.s;
    cfg.enable_warmup = v.w;
    cfg.enable_decay = v.d;
    auto r = run_fedtrans_cfg(preset, cfg);
    t.add_row({v.name, fmt_fixed(r.report.mean_accuracy * 100, 2),
               fmt_sci(r.report.costs.total_macs(), 2)});
    std::cerr << v.name << " done\n";
  }
  t.print(std::cout);
  std::cout << "\nshape check: each removal costs accuracy; '-w' (no warm "
               "start) is the costliest (paper Table 3).\n";
  return 0;
}
