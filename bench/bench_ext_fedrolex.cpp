// Extension bench: FedRolex (rolling sub-model extraction; Alam et al.,
// cited in the paper's related work) added to the Table-2-style comparison.
// Rolling windows fix HeteroFL's prefix-only coverage, so FedRolex should
// sit between HeteroFL and FedTrans on accuracy — while FedTrans keeps its
// cost advantage because it grows models instead of shrinking one.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[extension] FedRolex vs static submodels vs FedTrans ("
            << scale_name(scale) << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);

  auto fedtrans = run_fedtrans(preset);
  std::cerr << "done: FedTrans\n";
  auto heterofl = run_heterofl(preset, fedtrans.largest_spec);
  std::cerr << "done: HeteroFL\n";
  auto fedrolex = run_fedrolex(preset, fedtrans.largest_spec);
  std::cerr << "done: FedRolex\n";

  TablePrinter t({"method", "accuracy (%)", "IQR (%)", "cost (MACs)",
                  "network (MB)"});
  for (const auto* res : {&fedtrans, &heterofl, &fedrolex})
    t.add_row({res->method, fmt_fixed(res->report.mean_accuracy * 100, 2),
               fmt_fixed(res->report.accuracy_iqr * 100, 2),
               fmt_sci(res->report.costs.total_macs()),
               fmt_fixed(res->report.costs.network_mb(), 1)});
  t.print(std::cout);
  std::cout << "\nshape check: FedRolex improves on HeteroFL's accuracy "
               "(rolling coverage trains all channels) at similar cost; "
               "FedTrans stays ahead on both axes.\n";
  return 0;
}
