// Fig. 11 — Robustness to the widening / deepening degrees on femnist-like.
// Shape to reproduce: accuracy and cost stay roughly flat over a wide range
// of degrees (larger degrees = fewer but more aggressive transformations).

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig11] widen/deepen degree sweeps (" << scale_name(scale)
            << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);

  std::cout << "(a) widen degree:\n";
  TablePrinter ta({"widen", "accu (%)", "cost (MACs)", "#models"});
  for (double w : {1.5, 2.0, 3.0, 6.0}) {
    auto cfg = preset.fedtrans;
    cfg.widen_factor = w;
    auto r = run_fedtrans_cfg(preset, cfg);
    ta.add_row({fmt_fixed(w, 1), fmt_fixed(r.report.mean_accuracy * 100, 2),
                fmt_sci(r.report.costs.total_macs(), 2),
                std::to_string(r.num_models)});
    std::cerr << "widen " << w << " done\n";
  }
  ta.print(std::cout);

  std::cout << "\n(b) deepen degree:\n";
  TablePrinter tb({"deepen", "accu (%)", "cost (MACs)", "#models"});
  for (int d : {1, 2, 3, 5}) {
    auto cfg = preset.fedtrans;
    cfg.deepen_blocks = d;
    auto r = run_fedtrans_cfg(preset, cfg);
    tb.add_row({std::to_string(d),
                fmt_fixed(r.report.mean_accuracy * 100, 2),
                fmt_sci(r.report.costs.total_macs(), 2),
                std::to_string(r.num_models)});
    std::cerr << "deepen " << d << " done\n";
  }
  tb.print(std::cout);
  std::cout << "\nshape check: both sweeps stay within a narrow accuracy "
               "band (paper Fig. 11: robust to degrees).\n";
  return 0;
}
