// Fig. 13 — Data heterogeneity sweep: FedTrans on femnist-like with the
// Dirichlet label concentration h ∈ {0.5, 1, 50, 100} (lower h = more
// heterogeneous, the paper's exact protocol). Shape to reproduce: accuracy
// degrades as heterogeneity rises (small h); homogeneous settings converge
// to better accuracy while spending more rounds' worth of MACs.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig13] data heterogeneity sweep (" << scale_name(scale)
            << ", femnist-like)\n\n";

  TablePrinter t({"h (Dirichlet)", "accu (%)", "IQR (%)", "cost (MACs)"});
  for (double h : {0.5, 1.0, 50.0, 100.0}) {
    auto preset = femnist_like(scale);
    preset.dataset.dirichlet_h = h;
    auto r = run_fedtrans(preset);
    t.add_row({fmt_fixed(h, 1), fmt_fixed(r.report.mean_accuracy * 100, 2),
               fmt_fixed(r.report.accuracy_iqr * 100, 2),
               fmt_sci(r.report.costs.total_macs(), 2)});
    std::cerr << "h " << h << " done\n";
  }
  t.print(std::cout);
  std::cout << "\nshape check: accuracy rises (and IQR tightens) as h grows "
               "toward IID (paper Fig. 13).\n";
  return 0;
}
