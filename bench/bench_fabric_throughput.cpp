// Federation-fabric throughput (google-benchmark): messages per second and
// bytes moved per round through the wire protocol + simulated transport +
// FederationServer exchange, as a function of the client count — plus the
// same round over the sharded (2-level) aggregation tree as a function of
// the shard count, and the raw encode/decode rate of ModelDown-sized
// frames. Emitted into BENCH_micro_ops.json by scripts/bench_micro.sh
// (counters: msgs_per_s, msgs_per_s_sharded, bytes_per_round,
// msgs_per_round).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>

#include <map>
#include <memory>

#include "data/dataset.hpp"
#include "fl/runner.hpp"
#include "net/server.hpp"
#include "pop/population.hpp"
#include "tensor/gemm.hpp"

namespace fedtrans {
namespace {

DatasetConfig bench_data(int clients) {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.hw = 8;
  cfg.num_clients = clients;
  cfg.mean_train_samples = 12;
  cfg.min_train_samples = 8;
  cfg.eval_samples = 4;
  cfg.seed = 5;
  return cfg;
}

ModelSpec bench_model() { return ModelSpec::conv(1, 8, 4, 4, {6, 8}); }

/// One full fabric round — broadcast, concurrent agent training, collect —
/// with every selected client participating. items == fabric messages.
void BM_FabricRound(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  auto data = FederatedDataset::generate(bench_data(clients));
  FleetConfig fleet_cfg;
  fleet_cfg.num_devices = clients;
  fleet_cfg.with_median_capacity(5e6);
  auto fleet = sample_fleet(fleet_cfg);
  Rng rng(1);
  Model model(bench_model(), rng);
  LocalTrainConfig local;
  local.steps = 2;
  local.batch = 4;
  FederationServer server(model, data, fleet, local, FaultConfig{});

  std::vector<int> selected(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) selected[static_cast<std::size_t>(c)] = c;
  WeightSet global = model.weights();

  std::uint64_t round = 0;
  std::uint64_t frames0 = server.stats().frames_sent.load();
  std::uint64_t bytes0 = server.stats().bytes_sent.load();
  for (auto _ : state) {
    std::vector<Rng> rngs;
    rngs.reserve(selected.size());
    Rng round_rng(round + 17);
    for (std::size_t i = 0; i < selected.size(); ++i)
      rngs.push_back(round_rng.fork());
    auto ex = server.run_round(static_cast<std::uint32_t>(round++), global,
                               selected, rngs);
    benchmark::DoNotOptimize(ex.results.data());
  }
  const std::uint64_t frames =
      server.stats().frames_sent.load() - frames0;
  const std::uint64_t bytes = server.stats().bytes_sent.load() - bytes0;
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.counters["msgs_per_s"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
  state.counters["msgs_per_round"] =
      static_cast<double>(frames) / static_cast<double>(state.iterations());
  state.counters["bytes_per_round"] =
      static_cast<double>(bytes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_FabricRound)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

/// The same full round over the sharded aggregation tree (2 levels ×
/// `shards` leaves, fixed 64-client fleet): shard-parallel leaf collection
/// plus bundled ShardDown/PartialUp traffic at the root. shards == 1 is
/// the degenerate one-leaf tree — compare against BM_FabricRound/64-ish
/// flat numbers for the bundling overhead itself.
void BM_FabricRoundSharded(benchmark::State& state) {
  const int clients = 64;
  const int shards = static_cast<int>(state.range(0));
  auto data = FederatedDataset::generate(bench_data(clients));
  FleetConfig fleet_cfg;
  fleet_cfg.num_devices = clients;
  fleet_cfg.with_median_capacity(5e6);
  auto fleet = sample_fleet(fleet_cfg);
  Rng rng(1);
  Model model(bench_model(), rng);
  LocalTrainConfig local;
  local.steps = 2;
  local.batch = 4;
  FabricTopology topo;
  topo.levels = 2;
  topo.shards = shards;
  FederationServer server(model, data, fleet, local, FaultConfig{}, topo);

  std::vector<int> selected(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) selected[static_cast<std::size_t>(c)] = c;
  WeightSet global = model.weights();

  std::uint64_t round = 0;
  std::uint64_t frames0 = server.stats().frames_sent.load();
  std::uint64_t bytes0 = server.stats().bytes_sent.load();
  for (auto _ : state) {
    std::vector<Rng> rngs;
    rngs.reserve(selected.size());
    Rng round_rng(round + 17);
    for (std::size_t i = 0; i < selected.size(); ++i)
      rngs.push_back(round_rng.fork());
    auto ex = server.run_round(static_cast<std::uint32_t>(round++), global,
                               selected, rngs);
    benchmark::DoNotOptimize(ex.results.data());
  }
  const std::uint64_t frames =
      server.stats().frames_sent.load() - frames0;
  const std::uint64_t bytes = server.stats().bytes_sent.load() - bytes0;
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.counters["msgs_per_s_sharded"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
  state.counters["msgs_per_round"] =
      static_cast<double>(frames) / static_cast<double>(state.iterations());
  state.counters["bytes_per_round"] =
      static_cast<double>(bytes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_FabricRoundSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Depth sweep over the aggregation tree (64-client fleet): levels 2 and 3,
/// 4 and 8 leaves, verbatim bundles vs numeric partial aggregation. The
/// headline counter is root_bytes_per_round — the traffic landing in the
/// root's mailbox per round. Verbatim bundles carry every client update
/// upstream (O(clients) at the root whatever the tree); numeric mode
/// forwards one pre-summed group per bundle, collapsing the root's fan-in
/// to O(branching).
void BM_FabricRoundTree(benchmark::State& state) {
  const int clients = 64;
  const int levels = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const bool numeric = state.range(2) != 0;
  auto data = FederatedDataset::generate(bench_data(clients));
  FleetConfig fleet_cfg;
  fleet_cfg.num_devices = clients;
  fleet_cfg.with_median_capacity(5e6);
  auto fleet = sample_fleet(fleet_cfg);
  Rng rng(1);
  Model model(bench_model(), rng);
  LocalTrainConfig local;
  local.steps = 2;
  local.batch = 4;
  FabricTopology topo;
  topo.levels = levels;
  topo.shards = shards;
  topo.partial_aggregation = numeric;
  FederationServer server(model, data, fleet, local, FaultConfig{}, topo);

  std::vector<int> selected(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) selected[static_cast<std::size_t>(c)] = c;
  // One reduce group, FedAvg-style: every update sums into one accumulator.
  const std::vector<std::int32_t> reduce_keys(
      static_cast<std::size_t>(clients), 0);
  WeightSet global = model.weights();

  std::uint64_t round = 0;
  std::uint64_t frames0 = server.stats().frames_sent.load();
  std::uint64_t bytes0 = server.stats().bytes_sent.load();
  std::uint64_t root0 = server.stats().bytes_root_in.load();
  for (auto _ : state) {
    std::vector<Rng> rngs;
    rngs.reserve(selected.size());
    Rng round_rng(round + 17);
    for (std::size_t i = 0; i < selected.size(); ++i)
      rngs.push_back(round_rng.fork());
    auto ex = server.run_round(static_cast<std::uint32_t>(round++), global,
                               selected, rngs,
                               numeric ? reduce_keys
                                       : std::vector<std::int32_t>{});
    benchmark::DoNotOptimize(ex.results.data());
  }
  const std::uint64_t frames = server.stats().frames_sent.load() - frames0;
  const std::uint64_t bytes = server.stats().bytes_sent.load() - bytes0;
  const std::uint64_t root_bytes =
      server.stats().bytes_root_in.load() - root0;
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.counters["msgs_per_s_tree"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
  state.counters["bytes_per_round"] =
      static_cast<double>(bytes) / static_cast<double>(state.iterations());
  state.counters["root_bytes_per_round"] =
      static_cast<double>(root_bytes) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_FabricRoundTree)
    ->ArgNames({"levels", "shards", "numeric"})
    ->Args({2, 4, 0})
    ->Args({2, 4, 1})
    ->Args({2, 8, 0})
    ->Args({2, 8, 1})
    ->Args({3, 4, 0})
    ->Args({3, 4, 1})
    ->Args({3, 8, 0})
    ->Args({3, 8, 1})
    ->Unit(benchmark::kMillisecond);

/// The numeric tree again with wire-v6 quantized partials: every
/// PartialUp group sum ships int8 + one fp32 scale instead of fp32
/// payloads. The headline counter is root_bytes_per_round_quant —
/// compare against BM_FabricRoundTree's numeric root_bytes_per_round for
/// the same (levels, shards) to see the quantization factor on the
/// backbone (weight data shrinks ~4×; framing/group headers stay fp32).
void BM_FabricRoundTreeQuant(benchmark::State& state) {
  const int clients = 64;
  const int levels = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  auto data = FederatedDataset::generate(bench_data(clients));
  FleetConfig fleet_cfg;
  fleet_cfg.num_devices = clients;
  fleet_cfg.with_median_capacity(5e6);
  auto fleet = sample_fleet(fleet_cfg);
  Rng rng(1);
  Model model(bench_model(), rng);
  LocalTrainConfig local;
  local.steps = 2;
  local.batch = 4;
  FabricTopology topo;
  topo.levels = levels;
  topo.shards = shards;
  topo.partial_aggregation = true;
  topo.quantize_partials = PartialQuant::Int8;
  FederationServer server(model, data, fleet, local, FaultConfig{}, topo);

  std::vector<int> selected(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) selected[static_cast<std::size_t>(c)] = c;
  const std::vector<std::int32_t> reduce_keys(
      static_cast<std::size_t>(clients), 0);
  WeightSet global = model.weights();

  std::uint64_t round = 0;
  std::uint64_t frames0 = server.stats().frames_sent.load();
  std::uint64_t root0 = server.stats().bytes_root_in.load();
  for (auto _ : state) {
    std::vector<Rng> rngs;
    rngs.reserve(selected.size());
    Rng round_rng(round + 17);
    for (std::size_t i = 0; i < selected.size(); ++i)
      rngs.push_back(round_rng.fork());
    auto ex = server.run_round(static_cast<std::uint32_t>(round++), global,
                               selected, rngs, reduce_keys);
    benchmark::DoNotOptimize(ex.results.data());
  }
  const std::uint64_t frames = server.stats().frames_sent.load() - frames0;
  const std::uint64_t root_bytes =
      server.stats().bytes_root_in.load() - root0;
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.counters["root_bytes_per_round_quant"] =
      static_cast<double>(root_bytes) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_FabricRoundTreeQuant)
    ->ArgNames({"levels", "shards"})
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({3, 4})
    ->Args({3, 8})
    ->Unit(benchmark::kMillisecond);

/// Repeat-broadcast rounds (frozen global, fixed cohort) over the 2-level
/// tree, sweeping the wire-v6 downlink reducers: mode 0 ships everything
/// full (the PR 9 behaviour — downlink_bytes_full is the baseline), mode 1
/// elides repeat ShardDown bodies through the interior broadcast caches,
/// mode 2 ships round-over-round ModelDown deltas, mode 3 composes both.
/// One priming round runs outside the timing loop so the counters report
/// the warm steady state; cache/delta savings per round ride along for the
/// byte-ledger cross-check (full == measured + saved).
void BM_FabricRoundRepeat(benchmark::State& state) {
  const int clients = 64;
  const int mode = static_cast<int>(state.range(0));
  auto data = FederatedDataset::generate(bench_data(clients));
  FleetConfig fleet_cfg;
  fleet_cfg.num_devices = clients;
  fleet_cfg.with_median_capacity(5e6);
  auto fleet = sample_fleet(fleet_cfg);
  Rng rng(1);
  Model model(bench_model(), rng);
  LocalTrainConfig local;
  local.steps = 2;
  local.batch = 4;
  FabricTopology topo;
  topo.levels = 2;
  topo.shards = 4;
  topo.broadcast_cache = mode == 1 || mode == 3;
  topo.delta_downlink = mode == 2 || mode == 3;
  FederationServer server(model, data, fleet, local, FaultConfig{}, topo);

  std::vector<int> selected(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) selected[static_cast<std::size_t>(c)] = c;
  const WeightSet global = model.weights();

  std::uint64_t round = 0;
  auto run_one = [&] {
    std::vector<Rng> rngs;
    rngs.reserve(selected.size());
    Rng round_rng(round + 17);
    for (std::size_t i = 0; i < selected.size(); ++i)
      rngs.push_back(round_rng.fork());
    auto ex = server.run_round(static_cast<std::uint32_t>(round++), global,
                               selected, rngs);
    benchmark::DoNotOptimize(ex.results.data());
  };
  run_one();  // prime: cold caches, no delta base yet — not measured

  std::uint64_t down0 = server.stats().bytes_downlink.load();
  std::uint64_t cache0 = server.stats().cache_saved_bytes.load();
  std::uint64_t delta0 = server.stats().delta_saved_bytes.load();
  for (auto _ : state) run_one();
  const double iters = static_cast<double>(state.iterations());
  const double down =
      static_cast<double>(server.stats().bytes_downlink.load() - down0);
  static const char* const kModeKey[] = {
      "downlink_bytes_full", "downlink_bytes_cached", "downlink_bytes_delta",
      "downlink_bytes_v6"};
  state.counters[kModeKey[mode]] = down / iters;
  state.counters["cache_saved_per_round"] = static_cast<double>(
      server.stats().cache_saved_bytes.load() - cache0) / iters;
  state.counters["delta_saved_per_round"] = static_cast<double>(
      server.stats().delta_saved_bytes.load() - delta0) / iters;
}
BENCHMARK(BM_FabricRoundRepeat)
    ->ArgName("mode")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// Full fabric rounds over a huge sparse population (10k → 1M clients,
/// fixed 128-client cohort): the selection scan walks the descriptor
/// index, the cohort pool materializes only the 128 selected shards per
/// round, and the FederationServer exchange runs over the wire protocol
/// exactly as in BM_FabricRound. The headline counters are rounds_per_s
/// (population scan + cohort materialization + fabric round) and
/// resident_bytes_per_idle_client — descriptor storage plus the engine's
/// dense fleet copy, amortized over the whole population (acceptance
/// budget: ≤ 64 bytes/idle client at 1M).
void BM_FabricRoundHuge(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  constexpr int kCohort = 128;

  // The 1M descriptor index is reused across google-benchmark's repeated
  // calibration calls — setup cost must not be rebuilt per estimate.
  struct HugeSetup {
    Population pop;
    PopulationDataView view;
    std::vector<DeviceProfile> fleet;
    explicit HugeSetup(const PopulationConfig& cfg)
        : pop(cfg), view(pop), fleet(pop.fleet()) {}
  };
  static std::map<int, std::unique_ptr<HugeSetup>> cache;
  auto& setup = cache[population];
  if (!setup) {
    PopulationConfig cfg;
    cfg.num_clients = population;
    cfg.seed = 5;
    cfg.shard = bench_data(population);
    cfg.fleet.with_median_capacity(5e6);
    cfg.availability.base_online_frac = 0.8;
    cfg.availability.diurnal_amplitude = 0.1;
    cfg.pool_capacity = 2 * kCohort;
    setup = std::make_unique<HugeSetup>(cfg);
  }

  Rng rng(1);
  Model model(bench_model(), rng);
  LocalTrainConfig local;
  local.steps = 2;
  local.batch = 4;
  FederationServer server(model, setup->view, setup->fleet, local,
                          FaultConfig{});
  WeightSet global = model.weights();

  std::uint64_t round = 0;
  Rng select_rng(7);
  for (auto _ : state) {
    const auto cohort = setup->pop.select_cohort(
        static_cast<std::uint32_t>(round), kCohort, select_rng);
    setup->view.pool().begin_round(cohort);
    std::vector<Rng> rngs;
    rngs.reserve(cohort.size());
    Rng round_rng(round + 17);
    for (std::size_t i = 0; i < cohort.size(); ++i)
      rngs.push_back(round_rng.fork());
    auto ex = server.run_round(static_cast<std::uint32_t>(round++), global,
                               cohort, rngs);
    benchmark::DoNotOptimize(ex.results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["rounds_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  const double idle_bytes = static_cast<double>(
      setup->pop.descriptor_bytes() +
      setup->fleet.capacity() * sizeof(DeviceProfile));
  state.counters["resident_bytes_per_idle_client"] =
      idle_bytes / static_cast<double>(population);
  state.counters["pool_resident_clients"] =
      static_cast<double>(setup->view.pool().resident());
}
BENCHMARK(BM_FabricRoundHuge)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

/// Pure wire-protocol cost: encode+decode of a ModelDown frame carrying the
/// bench model's full weight set. items == frames; bytes_per_frame reported.
void BM_WireCodec(benchmark::State& state) {
  Rng rng(1);
  Model model(bench_model(), rng);
  FabricMessage msg;
  msg.type = MsgType::ModelDown;
  msg.round = 1;
  msg.sender = kServerId;
  msg.receiver = 0;
  msg.weights = model.weights();
  for (auto _ : state) {
    const std::string frame = encode_message(msg);
    FabricMessage back = decode_message(frame);
    benchmark::DoNotOptimize(back.weights.data());
  }
  msg.weights = model.weights();
  state.SetItemsProcessed(state.iterations());
  state.counters["bytes_per_frame"] =
      static_cast<double>(encode_message(msg).size());
  state.counters["frames_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WireCodec);

}  // namespace
}  // namespace fedtrans

int main(int argc, char** argv) {
  // `library_build_type` in the context block describes the system
  // libbenchmark, not this binary, and the packaged version predates JSON
  // output for AddCustomContext — so the authoritative repo-build keys are
  // exposed via a probe flag instead (scripts/bench_micro.sh gates
  // recording on them).
  if (argc > 1 && std::string_view(argv[1]) == "--fedtrans_context") {
#ifdef NDEBUG
    const char* build = "release";
#else
    const char* build = "debug";
#endif
    std::printf("{\"fedtrans_build_type\": \"%s\", "
                "\"fedtrans_gemm_backend\": \"%s\"}\n",
                build, fedtrans::gemm_backend_name(fedtrans::gemm_backend()));
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
