// Table 1 — Weight sharing from large models to small models (l2s) hurts:
// FedTrans with and without l2s on the femnist-like and cifar-like
// workloads. Shape to reproduce: disabling l2s (the FedTrans default)
// yields clearly higher accuracy.

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[table1] large->small weight sharing ablation ("
            << scale_name(scale) << ")\n\n";

  TablePrinter t({"breakdown", "dataset", "avg accu (%)"});
  for (auto preset : {femnist_like(scale), cifar_like(scale)}) {
    auto off = run_fedtrans(preset);  // default: l2s disabled
    auto cfg = preset.fedtrans;
    cfg.enable_l2s = true;
    auto on = run_fedtrans_cfg(preset, cfg);
    t.add_row({"FedTrans", preset.name,
               fmt_fixed(off.report.mean_accuracy * 100, 1)});
    t.add_row({"FedTrans (l2s)", preset.name,
               fmt_fixed(on.report.mean_accuracy * 100, 1)});
  }
  t.print(std::cout);
  std::cout << "\nshape check: the (l2s) rows trail their defaults — noisy "
               "under-trained large models pollute small ones (paper Table "
               "1).\n";
  return 0;
}
