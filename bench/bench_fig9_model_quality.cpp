// Fig. 9 — FedTrans-transformed architectures vs hand-designed reference
// models on the accuracy/MACs plane. Paper protocol (§A.1): take sampled
// transformed architectures and reference models, fine-tune each on ALL
// clients with plain FedAvg (no capacity constraints, no transformation),
// and compare the trade-off frontier.

#include <iostream>

#include "common/table.hpp"
#include "fl/runner.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig9] transformed vs hand-designed models ("
            << scale_name(scale) << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);
  const int classes = preset.dataset.num_classes;

  // Sample transformed architectures from one FedTrans run.
  auto fedtrans = run_fedtrans(preset);
  std::vector<std::pair<std::string, ModelSpec>> entries;
  {
    // Re-run quickly to collect every family member spec.
    auto data = FederatedDataset::generate(preset.dataset);
    auto fleet = sample_fleet(preset.fleet);
    FedTransTrainer trainer(preset.initial_model, data, fleet,
                            preset.fedtrans);
    trainer.run();
    for (const auto& e : trainer.entries())
      entries.push_back({"FedTrans " + e.model->spec().summary(),
                         e.model->spec()});
  }
  // Hand-designed references (stand-ins for EfficientNetV2 / MobileNetV2 /
  // MobileNetV3 / ResNet at our input scale).
  entries.push_back({"MobileNetV2-like",
                     ModelSpec::conv(1, 12, classes, 4, {8, 12}, {1, 1},
                                     {1, 2})});
  entries.push_back({"MobileNetV3-like",
                     ModelSpec::conv(1, 12, classes, 6, {8, 16}, {1, 2},
                                     {1, 2})});
  entries.push_back({"EfficientNetV2-like",
                     ModelSpec::conv(1, 12, classes, 8, {16, 24}, {2, 2},
                                     {1, 2})});
  entries.push_back({"ResNet-like",
                     ModelSpec::conv(1, 12, classes, 8, {12, 12, 24},
                                     {2, 2, 2}, {1, 1, 2})});

  auto data = FederatedDataset::generate(preset.dataset);
  FleetConfig fcfg = preset.fleet;
  fcfg.with_median_capacity(1e12);  // no capacity constraints (paper §A.1)
  auto fleet = sample_fleet(fcfg);

  TablePrinter t({"architecture", "MACs", "accuracy (%)"});
  for (auto& [name, spec] : entries) {
    FlRunConfig cfg;
    cfg.rounds = preset.fedtrans.rounds;
    cfg.clients_per_round = preset.fedtrans.clients_per_round;
    cfg.local = preset.fedtrans.local;
    cfg.seed = 55;
    Rng rng(19);
    FedAvgRunner runner(Model(spec, rng), data, fleet, cfg);
    runner.run();
    t.add_row({name, fmt_macs(static_cast<double>(runner.model().macs())),
               fmt_fixed(runner.mean_client_accuracy() * 100, 2)});
    std::cerr << "fine-tuned " << name << "\n";
  }
  t.print(std::cout);
  std::cout << "\nshape check: transformed models sit on or above the "
               "hand-designed accuracy/MACs frontier (paper Fig. 9).\n";
  return 0;
}
