// Table 4 — Generality beyond convolutions: FedTrans on a ViT-style model
// (patch embedding + attention/MLP transformer Cells) vs plain FedAvg on
// the same architecture, femnist-like workload. Shape to reproduce:
// FedTrans+FedAvg improves accuracy at far lower cost (it starts from a
// small transformer and grows it).

#include <iostream>

#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[table4] ViT generality (" << scale_name(scale)
            << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);

  // Small ViT seed: 4x4 patches, embed 12, one transformer cell.
  const ModelSpec vit_seed = ModelSpec::attention(
      1, 12, preset.dataset.num_classes, /*patch=*/4, /*embed=*/12,
      /*mlp_hidden=*/{16}, /*blocks=*/{1});
  preset.initial_model = vit_seed;

  auto fedtrans = run_fedtrans(preset);
  fedtrans.method = "FedTrans + FedAvg";

  // Plain FedAvg trains the largest transformer FedTrans reached (the
  // "what you'd have to train directly" comparison).
  auto fedavg = run_single_model(preset, fedtrans.largest_spec);

  TablePrinter t({"method", "accu (%)", "cost (MACs)"});
  for (const auto* r : {&fedtrans, &fedavg})
    t.add_row({r->method, fmt_fixed(r->report.mean_accuracy * 100, 1),
               fmt_sci(r->report.costs.total_macs(), 2)});
  t.print(std::cout);
  std::cout << "\nfamily grown: " << fedtrans.num_models
            << " transformer models, largest = "
            << fedtrans.largest_spec.summary() << "\n";
  std::cout << "shape check: FedTrans at least matches FedAvg's accuracy at "
               "lower MACs on attention cells (paper Table 4).\n";
  return 0;
}
