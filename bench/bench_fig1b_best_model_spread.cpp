// Fig. 1b — No single model achieves the best accuracy for the majority of
// clients. Paper protocol: 7 NASBench201 models of doubling MACs trained on
// FEMNIST; report the % of clients whose best accuracy lands on each model.
// Here: 5 conv models of roughly doubling MACs co-trained with FedAvg on the
// femnist-like workload.

#include <iostream>

#include "common/table.hpp"
#include "fl/runner.hpp"
#include "harness/presets.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig1b] best-model spread across clients ("
            << scale_name(scale) << ")\n\n";

  auto preset = femnist_like(scale);
  auto data = FederatedDataset::generate(preset.dataset);
  // Ample fleet: this experiment is about data fit, not capacity.
  FleetConfig fcfg = preset.fleet;
  fcfg.with_median_capacity(1e9);
  auto fleet = sample_fleet(fcfg);

  const int classes = preset.dataset.num_classes;
  std::vector<ModelSpec> specs{
      ModelSpec::conv(1, 12, classes, 2, {3, 4}, {1, 1}, {1, 2}),
      ModelSpec::conv(1, 12, classes, 3, {4, 6}, {1, 1}, {1, 2}),
      ModelSpec::conv(1, 12, classes, 4, {6, 8}, {1, 1}, {1, 2}),
      ModelSpec::conv(1, 12, classes, 6, {8, 12}, {1, 1}, {1, 2}),
      ModelSpec::conv(1, 12, classes, 8, {12, 16}, {2, 1}, {1, 2})};

  // Train each complexity level independently (FedAvg), then find, per
  // client, which level fits its data best.
  std::vector<std::vector<double>> acc_per_model;
  std::vector<double> macs;
  for (auto& spec : specs) {
    FlRunConfig cfg;
    cfg.rounds = preset.fedtrans.rounds;
    cfg.clients_per_round = preset.fedtrans.clients_per_round;
    cfg.local = preset.fedtrans.local;
    cfg.seed = 33;
    Rng rng(11);
    FedAvgRunner runner(Model(spec, rng), data, fleet, cfg);
    runner.run();
    macs.push_back(static_cast<double>(runner.model().macs()));
    acc_per_model.push_back(runner.per_client_accuracy());
    std::cout << "trained " << spec.summary() << " ("
              << fmt_macs(macs.back()) << ")\n";
  }

  std::vector<int> best_count(specs.size(), 0);
  for (int c = 0; c < data.num_clients(); ++c) {
    int best = 0;
    for (std::size_t m = 1; m < specs.size(); ++m)
      if (acc_per_model[m][static_cast<std::size_t>(c)] >
          acc_per_model[best][static_cast<std::size_t>(c)])
        best = static_cast<int>(m);
    ++best_count[static_cast<std::size_t>(best)];
  }

  std::cout << "\n";
  TablePrinter t({"complexity level", "MACs", "clients best here (%)"});
  int max_share = 0;
  for (std::size_t m = 0; m < specs.size(); ++m) {
    const int pct = best_count[m] * 100 / data.num_clients();
    max_share = std::max(max_share, pct);
    t.add_row({std::to_string(m), fmt_macs(macs[m]), std::to_string(pct)});
  }
  t.print(std::cout);
  std::cout << "\nshape check: no level claims a majority (max share "
            << max_share << "% < 50%) — no one-size-fits-all (paper Fig. 1b)."
            << "\n";
  return 0;
}
