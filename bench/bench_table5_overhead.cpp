// Table 5 / Appendix B — Computation & communication overhead analysis.
// Measures the wall-clock cost of each coordinator-side FedTrans step
// (utility updates, DoC update, model transformation) and states the
// client-side overhead, next to the paper's analytic bounds:
//   client compute 0, client comm r·p·c (one float per round),
//   coordinator compute r(mn+1)c + |W|c, coordinator comm 0.

#include <chrono>
#include <iostream>

#include "common/table.hpp"
#include "core/client_manager.hpp"
#include "core/signals.hpp"
#include "harness/presets.hpp"
#include "model/transform.hpp"

using namespace fedtrans;

namespace {
template <typename F>
double time_us(F&& fn, int reps = 10) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
}
}  // namespace

int main() {
  std::cout << "[table5] coordinator/client overhead analysis\n\n";
  const int m_clients = 200, n_models = 4;

  // Utility updates: m × n per round.
  std::vector<double> caps(m_clients, 1e9);
  ClientManager cm(caps);
  Rng rng(3);
  Model m0(ModelSpec::conv(1, 12, 16, 4, {6, 8}, {1, 1}, {1, 2}), rng);
  cm.add_model(m0.spec(), static_cast<double>(m0.macs()), -1);
  Model parent = m0;
  for (int k = 1; k < n_models; ++k) {
    Model child = widen_cell(parent, k % 2, 2.0, k, rng);
    cm.add_model(child.spec(), static_cast<double>(child.macs()), k - 1);
    parent = std::move(child);
  }
  const double utility_us = time_us([&] {
    for (int c = 0; c < m_clients; ++c)
      cm.update_utilities(c, n_models - 1, 0.3);
  });

  // DoC update: constant.
  DoCTracker doc(10, 5);
  for (int i = 0; i < 20; ++i) doc.add_loss(2.0 - 0.01 * i);
  const double doc_us = time_us([&] {
    doc.add_loss(1.8);
    (void)doc.doc();
  }, 100);

  // Transformation: proportional to |W|.
  const double transform_us = time_us([&] {
    Model child = widen_cell(m0, 0, 2.0, 99, rng);
    (void)child;
  }, 5);

  TablePrinter t({"overhead", "analytic bound (paper)", "measured"});
  t.add_row({"client computation", "0", "0 (local training unchanged)"});
  t.add_row({"client communication", "r*p*c (1 float/round)",
             "4 B per participant per round"});
  t.add_row({"coordinator: utility updates (m*n)", "r*(m*n)*c",
             fmt_fixed(utility_us, 1) + " us per round (m=200, n=4)"});
  t.add_row({"coordinator: DoC update", "r*c",
             fmt_fixed(doc_us, 2) + " us per round"});
  t.add_row({"coordinator: transformation", "|W|*c",
             fmt_fixed(transform_us, 1) + " us per transform"});
  t.add_row({"coordinator communication", "0", "0 (no extra transfers)"});
  t.print(std::cout);
  std::cout << "\nshape check: all coordinator steps are microseconds — "
               "negligible next to a single client's training pass (paper "
               "Table 5).\n";
  return 0;
}
