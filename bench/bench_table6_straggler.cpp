// Table 6 / Appendix C — Straggler mitigation: distribution of simulated
// per-client round completion times under FedTrans (capacity-aligned
// models) vs FedAvg (one model for everyone), femnist-like workload.
// Shape to reproduce: FedTrans lowers both the mean and the std of round
// completion time.

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/experiments.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[table6] straggler mitigation (" << scale_name(scale)
            << ", femnist-like)\n\n";
  auto preset = femnist_like(scale);

  auto fedtrans = run_fedtrans(preset);
  // FedAvg ships the largest model FedTrans reached to every client —
  // the single-model deployment that creates stragglers.
  auto fedavg = run_single_model(preset, fedtrans.largest_spec);
  fedtrans.method = "FedTrans + FedAvg";

  TablePrinter t({"method", "avg round time (s)", "std (s)"});
  for (const auto* r : {&fedtrans, &fedavg}) {
    const CostMeter& costs = r->report.costs;
    t.add_row({r->method, fmt_fixed(costs.client_time_mean(), 2),
               fmt_fixed(costs.client_time_std(), 2)});
  }
  t.print(std::cout);
  std::cout << "\nshape check: FedTrans shows lower mean and std of round "
               "completion time (paper Table 6).\n";
  return 0;
}
