// Fig. 1a — Client system heterogeneity: per-sample inference latency
// distributions of three model complexity tiers across a heterogeneous
// device fleet (paper: MobileNet-V2 / MobileNet-V3 / EfficientNet-B4 over
// 700+ AI-Benchmark smartphones; here: three conv tiers over the log-normal
// trace substitute). The paper's claims — clear latency tiering with
// overlapping distributions — should be visible in the percentile rows.

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/presets.hpp"
#include "model/model.hpp"

using namespace fedtrans;

int main() {
  const Scale scale = bench_scale();
  std::cout << "[fig1a] device heterogeneity -> latency distributions ("
            << scale_name(scale) << ")\n\n";

  FleetConfig fcfg;
  fcfg.num_devices = scale == Scale::Tiny ? 300 : 700;
  fcfg.seed = 42;
  fcfg.with_median_capacity(1e6);
  auto fleet = sample_fleet(fcfg);
  std::cout << "fleet: " << fleet.size() << " devices, compute disparity "
            << fmt_fixed(fleet_disparity(fleet), 1) << "x (paper: >29x)\n\n";

  // Three complexity tiers (stand-ins for MobileNetV2/V3, EfficientNet-B4).
  Rng rng(1);
  struct Tier {
    const char* name;
    Model model;
  };
  std::vector<Tier> tiers;
  tiers.push_back({"small  (MobileNetV2-like)",
                   Model(ModelSpec::conv(3, 12, 10, 4, {6, 8}, {1, 1}, {1, 2}),
                         rng)});
  tiers.push_back({"medium (MobileNetV3-like)",
                   Model(ModelSpec::conv(3, 12, 10, 8, {12, 16}, {1, 2},
                                         {1, 2}),
                         rng)});
  tiers.push_back({"large  (EfficientNetB4-like)",
                   Model(ModelSpec::conv(3, 12, 10, 16, {24, 32}, {2, 2},
                                         {1, 2}),
                         rng)});

  TablePrinter t({"model", "MACs", "p10 (ms)", "p50 (ms)", "p90 (ms)",
                  "p99 (ms)"});
  for (auto& tier : tiers) {
    std::vector<double> lat;
    lat.reserve(fleet.size());
    for (const auto& d : fleet)
      lat.push_back(
          inference_latency_ms(d, static_cast<double>(tier.model.macs())));
    t.add_row({tier.name, fmt_macs(static_cast<double>(tier.model.macs())),
               fmt_fixed(percentile(lat, 10), 3), fmt_fixed(median(lat), 3),
               fmt_fixed(percentile(lat, 90), 3),
               fmt_fixed(percentile(lat, 99), 3)});
  }
  t.print(std::cout);
  std::cout << "\nshape check: tiers separate at the median but overlap in "
               "the tails,\nso latency budgets admit multiple architectures "
               "per device (paper Fig. 1a).\n";
  return 0;
}
