#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fl/engine.hpp"
#include "fl/server_opt.hpp"

namespace fedtrans {

// Byzantine-robust reducers over a round's client deltas (the building
// blocks of RobustStrategy; docs/robustness.md). All three are
// one-client-one-vote: self-reported sample counts are an attack surface
// under the threat model, so — unlike FedAvg's weighted mean — they carry
// no per-update weights. Inputs must be finite (RobustStrategy rejects
// NaN/Inf-poisoned updates before they get here) and shape-identical.

/// Coordinate-wise median (even counts average the two middle values).
/// Bitwise invariant to the order of `deltas`.
WeightSet robust_coordinate_median(const std::vector<WeightSet>& deltas);

/// Coordinate-wise trimmed mean: per coordinate, drop the ⌈trim·n⌉ largest
/// and smallest values (clamped so at least one survives) and average the
/// rest, summing in sorted order — bitwise permutation-invariant. With
/// trim = 0 the sum runs in input order, matching an unweighted FedAvg
/// fold (ws_axpy per update, then one scale) bit for bit.
WeightSet robust_trimmed_mean(const std::vector<WeightSet>& deltas,
                              double trim_fraction);

/// Krum-style scoring + norm clipping: score each update by its summed
/// squared distance to its closest neighbors, drop the ⌈trim·n⌉ highest
/// scorers (the outliers), clip the survivors to clip_multiplier × their
/// median L2 norm, and average the survivors.
WeightSet robust_norm_clip(const std::vector<WeightSet>& deltas,
                           double trim_fraction, double clip_multiplier);

/// Byzantine-robust aggregation as an engine Strategy: one shared global
/// model, per-round delta stash in fixed task order, a RobustConfig-chosen
/// reducer in finish_round, and NaN/Inf update rejection on admission.
/// Configure through SessionConfig::with_robust_aggregation(...) (picked up
/// in attach) or by passing a RobustConfig here directly.
///
/// The reductions are non-linear, so supports_partial_aggregation() stays
/// false: sessions compose with FabricTopology trees of any depth in the
/// default verbatim-bundle mode (bitwise identical to flat rounds), and a
/// partial_aggregation=true topology fails loudly at engine construction.
class RobustStrategy final : public Strategy {
 public:
  explicit RobustStrategy(Model init, RobustConfig cfg = {});

  std::string name() const override;
  std::vector<ClientTask> plan_round(RoundContext& ctx, Rng& rng) override;
  Model client_payload(const ClientTask& task) override;
  Model* shared_model() override { return &model_; }
  const Model& reference_model() const override { return model_; }
  void attach(RoundContext& ctx, Rng& rng) override;
  void absorb_update(const ClientTask& task, Model* trained,
                     LocalTrainResult& res, RoundContext& ctx) override;
  void lost_update(const ClientTask& task, ClientOutcome outcome,
                   RoundContext& ctx) override;
  void finish_round(RoundContext& ctx, RoundRecord& rec) override;
  double probe_accuracy(const std::vector<int>& ids,
                        RoundContext& ctx) override;

  Model& model() { return model_; }
  const RobustConfig& config() const { return cfg_; }
  /// NaN/Inf-poisoned updates rejected on admission, whole session.
  int rejected_updates() const { return total_rejected_; }

 private:
  Model model_;
  RobustConfig cfg_;
  std::unique_ptr<ServerOptimizer> server_opt_;

  // Per-round accumulators (reset in plan_round, consumed in finish_round).
  WeightSet global_;
  std::vector<WeightSet> deltas_;
  double loss_sum_ = 0.0;
  double slowest_ = 0.0;
  int trained_ = 0;
  int total_rejected_ = 0;
};

/// Build the Strategy for `cfg.robust` (defaulting to CoordinateMedian when
/// the session block was left unconfigured).
std::unique_ptr<Strategy> make_robust_strategy(Model init,
                                               const SessionConfig& cfg);

}  // namespace fedtrans
