#include "baselines/robust.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "fl/local_train.hpp"
#include "obs/metrics.hpp"

namespace fedtrans {

namespace {

/// ⌈fraction·n⌉ with a tolerance against binary-fraction dust (0.2·5 must
/// trim 1, not 2), clamped so at least one update survives per side.
int trim_count(double fraction, int n) {
  const int k = static_cast<int>(
      std::ceil(fraction * static_cast<double>(n) - 1e-9));
  return std::clamp(k, 0, (n - 1) / 2);
}

void check_same_shapes(const std::vector<WeightSet>& deltas) {
  FT_CHECK_MSG(!deltas.empty(), "robust reducer needs at least one update");
  for (const WeightSet& d : deltas) {
    FT_CHECK_MSG(d.size() == deltas.front().size(),
                 "robust reducer: mismatched update structure");
    for (std::size_t p = 0; p < d.size(); ++p)
      FT_CHECK(d[p].numel() == deltas.front()[p].numel());
  }
}

/// Unweighted linear fold — the trim=0 fast path, arithmetic-identical to
/// FedAvg's reduction with unit weights (ws_axpy per update, one scale).
WeightSet unweighted_mean(const std::vector<WeightSet>& deltas) {
  WeightSet acc = ws_zeros_like(deltas.front());
  for (const WeightSet& d : deltas) ws_axpy(acc, 1.0f, d);
  ws_scale(acc, static_cast<float>(1.0 / static_cast<double>(deltas.size())));
  return acc;
}

}  // namespace

WeightSet robust_coordinate_median(const std::vector<WeightSet>& deltas) {
  check_same_shapes(deltas);
  const std::size_t n = deltas.size();
  WeightSet out = ws_zeros_like(deltas.front());
  std::vector<float> vals(n);
  for (std::size_t p = 0; p < out.size(); ++p) {
    for (std::int64_t e = 0; e < out[p].numel(); ++e) {
      for (std::size_t i = 0; i < n; ++i) vals[i] = deltas[i][p][e];
      std::sort(vals.begin(), vals.end());
      out[p][e] = (n % 2 == 1)
                      ? vals[n / 2]
                      : 0.5f * (vals[n / 2 - 1] + vals[n / 2]);
    }
  }
  return out;
}

WeightSet robust_trimmed_mean(const std::vector<WeightSet>& deltas,
                              double trim_fraction) {
  check_same_shapes(deltas);
  const int n = static_cast<int>(deltas.size());
  const int k = trim_count(trim_fraction, n);
  if (k == 0) return unweighted_mean(deltas);

  WeightSet out = ws_zeros_like(deltas.front());
  std::vector<float> vals(static_cast<std::size_t>(n));
  const float inv = static_cast<float>(1.0 / static_cast<double>(n - 2 * k));
  for (std::size_t p = 0; p < out.size(); ++p) {
    for (std::int64_t e = 0; e < out[p].numel(); ++e) {
      for (int i = 0; i < n; ++i)
        vals[static_cast<std::size_t>(i)] = deltas[static_cast<std::size_t>(i)][p][e];
      std::sort(vals.begin(), vals.end());
      float sum = 0.0f;  // sorted-order summation: permutation-invariant
      for (int i = k; i < n - k; ++i) sum += vals[static_cast<std::size_t>(i)];
      out[p][e] = sum * inv;
    }
  }
  return out;
}

WeightSet robust_norm_clip(const std::vector<WeightSet>& deltas,
                           double trim_fraction, double clip_multiplier) {
  check_same_shapes(deltas);
  const int n = static_cast<int>(deltas.size());
  const int f = std::clamp(
      static_cast<int>(std::ceil(trim_fraction * static_cast<double>(n) -
                                 1e-9)),
      0, n - 1);

  // Krum-style outlier scoring: summed squared distance to the q closest
  // neighbors (q = n − f − 2, the honest-cluster size under f attackers).
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  if (f > 0 && n > 1) {
    std::vector<std::vector<double>> d2(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n), 0.0));
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double s = 0.0;
        const WeightSet& a = deltas[static_cast<std::size_t>(i)];
        const WeightSet& b = deltas[static_cast<std::size_t>(j)];
        for (std::size_t p = 0; p < a.size(); ++p)
          for (std::int64_t e = 0; e < a[p].numel(); ++e) {
            const double diff = static_cast<double>(a[p][e]) -
                                static_cast<double>(b[p][e]);
            s += diff * diff;
          }
        d2[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = s;
        d2[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = s;
      }
    }
    const int q = std::clamp(n - f - 2, 1, n - 1);
    std::vector<double> score(static_cast<std::size_t>(n), 0.0);
    std::vector<double> row;
    for (int i = 0; i < n; ++i) {
      row.clear();
      for (int j = 0; j < n; ++j)
        if (j != i)
          row.push_back(d2[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)]);
      std::sort(row.begin(), row.end());
      for (int j = 0; j < q; ++j)
        score[static_cast<std::size_t>(i)] += row[static_cast<std::size_t>(j)];
    }
    // Ascending score, index as the deterministic tie-break; the f highest
    // scorers (most outlying) are dropped.
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      const double sa = score[static_cast<std::size_t>(a)];
      const double sb = score[static_cast<std::size_t>(b)];
      if (sa != sb) return sa < sb;
      return a < b;
    });
    order.resize(static_cast<std::size_t>(n - f));
    std::sort(order.begin(), order.end());
  }

  // Norm clipping over the survivors: clip to multiplier × median norm.
  std::vector<double> norms;
  norms.reserve(order.size());
  for (int i : order)
    norms.push_back(ws_l2_norm(deltas[static_cast<std::size_t>(i)]));
  std::vector<double> sorted = norms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t m = sorted.size();
  const double median_norm = (m % 2 == 1)
                                 ? sorted[m / 2]
                                 : 0.5 * (sorted[m / 2 - 1] + sorted[m / 2]);
  const double radius = clip_multiplier * median_norm;

  WeightSet acc = ws_zeros_like(deltas.front());
  for (std::size_t s = 0; s < order.size(); ++s) {
    const double norm = norms[s];
    const double factor = (norm > radius && norm > 0.0) ? radius / norm : 1.0;
    ws_axpy(acc, static_cast<float>(factor),
            deltas[static_cast<std::size_t>(order[s])]);
  }
  ws_scale(acc,
           static_cast<float>(1.0 / static_cast<double>(order.size())));
  return acc;
}

RobustStrategy::RobustStrategy(Model init, RobustConfig cfg)
    : model_(std::move(init)), cfg_(cfg) {
  if (cfg_.aggregator == RobustAggregator::None)
    cfg_.aggregator = RobustAggregator::CoordinateMedian;
}

std::string RobustStrategy::name() const {
  switch (cfg_.aggregator) {
    case RobustAggregator::TrimmedMean:
      return "trimmed-mean";
    case RobustAggregator::NormClip:
      return "norm-clip";
    case RobustAggregator::CoordinateMedian:
    case RobustAggregator::None:
      break;
  }
  return "robust-median";
}

void RobustStrategy::attach(RoundContext& ctx, Rng&) {
  // The session's RobustConfig block (with_robust_aggregation) wins over
  // the constructor's, so the fluent builder is the one configuration path.
  if (ctx.session.robust.aggregator != RobustAggregator::None)
    cfg_ = ctx.session.robust;
  FT_CHECK_MSG(cfg_.trim_fraction >= 0.0 && cfg_.trim_fraction < 0.5,
               "RobustConfig.trim_fraction must be in [0, 0.5) — trimming "
               "half or more per side leaves no survivors");
  FT_CHECK_MSG(cfg_.clip_multiplier > 0.0,
               "RobustConfig.clip_multiplier must be positive");
}

std::vector<ClientTask> RobustStrategy::plan_round(RoundContext& ctx,
                                                   Rng& rng) {
  auto tasks = Strategy::plan_round(ctx, rng);  // uniform selection
  global_ = model_.weights();
  deltas_.clear();
  loss_sum_ = 0.0;
  slowest_ = 0.0;
  trained_ = 0;
  return tasks;
}

Model RobustStrategy::client_payload(const ClientTask&) { return model_; }

void RobustStrategy::absorb_update(const ClientTask& task, Model*,
                                   LocalTrainResult& res, RoundContext& ctx) {
  const double model_bytes = static_cast<double>(model_.param_bytes());
  // Arrived = billed, poisoned or not: the download and upload happened.
  bill_trained_update(ctx, task.client, model_bytes,
                      static_cast<double>(model_.macs()), res, slowest_);
  ++trained_;
  if (!ws_all_finite(res.delta) || !std::isfinite(res.avg_loss)) {
    // NaN/Inf-poisoned update: keep it out of the aggregate AND out of the
    // selector's loss feedback — a single NaN would otherwise propagate
    // through every coordinate of the global model.
    ++total_rejected_;
    static Counter rejected("fedtrans_robust_rejected_total");
    rejected.inc();
    return;
  }
  loss_sum_ += res.avg_loss;
  ctx.selector.report(task.client, res.avg_loss, res.num_samples);
  deltas_.push_back(std::move(res.delta));
}

void RobustStrategy::lost_update(const ClientTask&, ClientOutcome outcome,
                                 RoundContext& ctx) {
  bill_lost_update(ctx, outcome, static_cast<double>(model_.param_bytes()),
                   static_cast<double>(model_.macs()));
}

void RobustStrategy::finish_round(RoundContext&, RoundRecord& rec) {
  if (!deltas_.empty()) {
    WeightSet agg;
    switch (cfg_.aggregator) {
      case RobustAggregator::TrimmedMean:
        agg = robust_trimmed_mean(deltas_, cfg_.trim_fraction);
        break;
      case RobustAggregator::NormClip:
        agg = robust_norm_clip(deltas_, cfg_.trim_fraction,
                               cfg_.clip_multiplier);
        break;
      case RobustAggregator::CoordinateMedian:
      case RobustAggregator::None:
        agg = robust_coordinate_median(deltas_);
        break;
    }
    if (!server_opt_) server_opt_ = make_server_opt(ServerOptKind::FedAvg);
    server_opt_->apply(global_, agg);
    model_.set_weights(global_);
  }
  rec.avg_loss = deltas_.empty()
                     ? 0.0
                     : loss_sum_ / static_cast<double>(deltas_.size());
  rec.round_time_s = slowest_;
  deltas_.clear();
}

double RobustStrategy::probe_accuracy(const std::vector<int>& ids,
                                      RoundContext& ctx) {
  // Per-thread model copies, fixed-order summation — same pattern as
  // FedAvgStrategy::probe_accuracy.
  std::vector<double> accs(ids.size(), 0.0);
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(ids.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        Model probe = model_;
        for (std::int64_t i = lo; i < hi; ++i)
          accs[static_cast<std::size_t>(i)] = evaluate_accuracy(
              probe, ctx.data.client(ids[static_cast<std::size_t>(i)]));
      });
  double acc_sum = 0.0;
  for (double a : accs) acc_sum += a;
  return ids.empty() ? 0.0 : acc_sum / static_cast<double>(ids.size());
}

std::unique_ptr<Strategy> make_robust_strategy(Model init,
                                               const SessionConfig& cfg) {
  return std::make_unique<RobustStrategy>(std::move(init), cfg.robust);
}

}  // namespace fedtrans
