#include "baselines/fedrolex.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "model/align.hpp"

namespace fedtrans {

namespace {

/// Which width space a parameter's rows/columns live in. Space −1 is fixed
/// (input channels / class count — identical in every submodel); space 0 is
/// the stem; space 1+l is Cell l.
struct ParamSpaces {
  int row_space = -1;
  int col_space = -1;
};

/// One (row_space, col_space) entry per Model::params() tensor, derived
/// from the spec's structure. Valid for the global model and for every
/// width-scaled submodel (scale_widths preserves the structure).
std::vector<ParamSpaces> build_layout(const ModelSpec& spec, Model& probe) {
  FT_CHECK_MSG(spec.kind == CellKind::Conv || spec.kind == CellKind::Mlp,
               "FedRolex supports Conv and Mlp cell models");
  std::vector<ParamSpaces> layout;
  // Stem: rows in space 0, columns fixed (raw input).
  for (const auto& p : probe.stem().params()) {
    (void)p;
    layout.push_back({0, -1});
  }
  for (int l = 0; l < probe.num_cells(); ++l) {
    for (int b = 0; b < probe.blocks_in_cell(l); ++b) {
      for (const auto& p : probe.cell_block(l, b).params()) {
        ParamSpaces ps;
        ps.row_space = l + 1;
        // Rank ≥ 2 weights consume the previous space's channels in their
        // second dimension; the first block of a cell reads the preceding
        // cell (or stem), later blocks read the cell itself.
        ps.col_space = p.value->ndim() >= 2 ? (b == 0 ? l : l + 1) : -1;
        layout.push_back(ps);
      }
    }
  }
  // Classifier: rows are classes (fixed), columns read the last cell.
  for (const auto& p : probe.classifier().params()) {
    ParamSpaces ps;
    ps.row_space = -1;
    ps.col_space = p.value->ndim() >= 2 ? probe.num_cells() : -1;
    layout.push_back(ps);
  }
  return layout;
}

int space_width(const ModelSpec& spec, int space) {
  if (space < 0) return -1;  // identity
  if (space == 0) return spec.stem_width;
  return spec.cells[static_cast<std::size_t>(space - 1)].width;
}

}  // namespace

FedRolexStrategy::FedRolexStrategy(ModelSpec full_spec,
                                   std::vector<double> width_ratios)
    : full_spec_(std::move(full_spec)),
      width_ratios_(std::move(width_ratios)) {
  FT_CHECK_MSG(!width_ratios_.empty() && width_ratios_.front() == 1.0,
               "width ratios must start at 1.0");
}

void FedRolexStrategy::attach(RoundContext& ctx, Rng& rng) {
  fleet_ = &ctx.fleet;
  global_ = std::make_unique<Model>(full_spec_, rng);
  for (double r : width_ratios_) {
    level_specs_.push_back(scale_widths(full_spec_, r));
    Rng tmp = rng.fork();
    Model probe(level_specs_.back(), tmp);
    level_macs_.push_back(static_cast<double>(probe.macs()));
    level_bytes_.push_back(static_cast<double>(probe.param_bytes()));
  }
}

int FedRolexStrategy::level_for(int client) const {
  const double cap =
      (*fleet_)[static_cast<std::size_t>(client)].capacity_macs;
  for (std::size_t lvl = 0; lvl < level_macs_.size(); ++lvl)
    if (level_macs_[lvl] <= cap) return static_cast<int>(lvl);
  return static_cast<int>(level_macs_.size()) - 1;  // weakest level
}

int FedRolexStrategy::offset_for_space(int space, int round) const {
  const int w = space_width(global_->spec(), space);
  return w > 0 ? round % w : 0;
}

void FedRolexStrategy::for_each_mapped_element(
    Model& sub, int round,
    const std::function<void(Tensor&, const Tensor&, std::int64_t,
                             std::int64_t)>& fn) {
  const auto layout = build_layout(global_->spec(), *global_);
  auto gp = global_->params();
  auto sp = sub.params();
  FT_CHECK_MSG(gp.size() == sp.size() && gp.size() == layout.size(),
               "submodel structure must match the global model");

  for (std::size_t i = 0; i < layout.size(); ++i) {
    const Tensor& g = *gp[i].value;
    Tensor& s = *sp[i].value;
    const int rs = layout[i].row_space, cs = layout[i].col_space;
    const int g_rows = g.dim(0), s_rows = s.dim(0);
    const int ro = rs < 0 ? 0 : offset_for_space(rs, round);
    auto rmap = [&](int j) { return rs < 0 ? j : (ro + j) % g_rows; };

    if (s.ndim() == 1) {
      for (int j = 0; j < s_rows; ++j) fn(s, g, j, rmap(j));
      continue;
    }
    const int g_cols = g.dim(1), s_cols = s.dim(1);
    const int co = cs < 0 ? 0 : offset_for_space(cs, round);
    auto cmap = [&](int j) { return cs < 0 ? j : (co + j) % g_cols; };
    // Trailing dims (k×k for conv weights) are never width-scaled.
    std::int64_t tail = 1;
    for (int d = 2; d < s.ndim(); ++d) tail *= s.dim(d);
    for (int r = 0; r < s_rows; ++r)
      for (int c = 0; c < s_cols; ++c) {
        const std::int64_t sbase =
            (static_cast<std::int64_t>(r) * s_cols + c) * tail;
        const std::int64_t gbase =
            (static_cast<std::int64_t>(rmap(r)) * g_cols + cmap(c)) * tail;
        for (std::int64_t t = 0; t < tail; ++t)
          fn(s, g, sbase + t, gbase + t);
      }
  }
}

Model FedRolexStrategy::submodel(int level, int round) {
  Rng tmp(0xf01eULL + static_cast<std::uint64_t>(level));
  Model sub(level_specs_[static_cast<std::size_t>(level)], tmp);
  for_each_mapped_element(sub, round,
                          [&](Tensor& s, const Tensor& g, std::int64_t si,
                              std::int64_t gi) {
                            s[si] = g[gi];  // copy the rolled window
                          });
  return sub;
}

std::vector<ClientTask> FedRolexStrategy::plan_round(RoundContext& ctx,
                                                     Rng& rng) {
  auto tasks = Strategy::plan_round(ctx, rng);
  for (ClientTask& t : tasks) t.tag = level_for(t.client);
  cur_round_ = ctx.round;

  WeightSet global_w = global_->weights();
  acc_ = ws_zeros_like(global_w);
  wsum_ = ws_zeros_like(global_w);
  loss_sum_ = 0.0;
  slowest_ = 0.0;
  round_tasks_ = tasks.size();
  return tasks;
}

Model FedRolexStrategy::client_payload(const ClientTask& task) {
  return submodel(task.tag, cur_round_);
}

void FedRolexStrategy::absorb_update(const ClientTask& task, Model* trained,
                                     LocalTrainResult& res,
                                     RoundContext& ctx) {
  FT_CHECK_MSG(trained != nullptr,
               "FedRolex absorb requires the task's payload model");
  Model& sub = *trained;
  loss_sum_ += res.avg_loss;

  // Scatter the client's delta through the same rolled maps. Parameter
  // order matches params(), so track the index alongside the walk.
  auto sp = sub.params();
  std::size_t param_i = 0;
  const Tensor* current = nullptr;
  const float n = static_cast<float>(res.num_samples);
  for_each_mapped_element(
      sub, cur_round_,
      [&](Tensor& s, const Tensor&, std::int64_t si, std::int64_t gi) {
        if (current != &s) {
          // Advance to this tensor's index in params() order.
          while (sp[param_i].value != &s) {
            ++param_i;
            FT_CHECK(param_i < sp.size());
          }
          current = &s;
        }
        acc_[param_i][gi] += n * res.delta[param_i][si];
        wsum_[param_i][gi] += n;
      });

  bill_trained_update(ctx, task.client,
                      static_cast<double>(sub.param_bytes()),
                      static_cast<double>(sub.macs()), res, slowest_);
}

void FedRolexStrategy::lost_update(const ClientTask& task,
                                   ClientOutcome outcome, RoundContext& ctx) {
  const auto lvl = static_cast<std::size_t>(task.tag);
  bill_lost_update(ctx, outcome, level_bytes_[lvl], level_macs_[lvl]);
}

void FedRolexStrategy::finish_round(RoundContext& ctx, RoundRecord& rec) {
  (void)ctx;
  WeightSet global_w = global_->weights();
  for (std::size_t p = 0; p < global_w.size(); ++p)
    for (std::int64_t e = 0; e < global_w[p].numel(); ++e)
      if (wsum_[p][e] > 0.0f) global_w[p][e] -= acc_[p][e] / wsum_[p][e];
  global_->set_weights(global_w);

  rec.avg_loss = round_tasks_ == 0
                     ? 0.0
                     : loss_sum_ / static_cast<double>(round_tasks_);
  rec.round_time_s = slowest_;
}

double FedRolexStrategy::probe_accuracy(const std::vector<int>& ids,
                                        RoundContext& ctx) {
  double s = 0.0;
  for (int c : ids) {
    Model sub = submodel(level_for(c), cur_round_);
    s += evaluate_accuracy(sub, ctx.data.client(c));
  }
  return s / static_cast<double>(ids.size());
}

FedRolexRunner::FedRolexRunner(ModelSpec full_spec,
                               const FederatedDataset& data,
                               std::vector<DeviceProfile> fleet,
                               BaselineConfig cfg,
                               std::vector<double> width_ratios)
    : data_(data) {
  auto strategy = std::make_unique<FedRolexStrategy>(std::move(full_spec),
                                                     std::move(width_ratios));
  strategy_ = strategy.get();
  engine_ = std::make_unique<FederationEngine>(
      std::move(strategy), data, std::move(fleet),
      static_cast<const SessionConfig&>(cfg));
}

BaselineReport FedRolexRunner::report() {
  BaselineReport rep;
  for (int c = 0; c < data_.num_clients(); ++c) {
    Model sub = submodel(level_for(c));
    rep.client_accuracy.push_back(evaluate_accuracy(sub, data_.client(c)));
  }
  rep.mean_accuracy = mean(rep.client_accuracy);
  rep.accuracy_iqr = iqr(rep.client_accuracy);
  rep.costs = engine_->costs();
  rep.history = engine_->history();
  return rep;
}

}  // namespace fedtrans
