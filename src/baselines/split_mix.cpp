#include "baselines/split_mix.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "model/align.hpp"
#include "nn/loss.hpp"

namespace fedtrans {

SplitMixStrategy::SplitMixStrategy(ModelSpec full_spec, int num_bases)
    : full_spec_(std::move(full_spec)), requested_bases_(num_bases) {
  FT_CHECK(requested_bases_ >= 1);
}

void SplitMixStrategy::attach(RoundContext& ctx, Rng& rng) {
  data_ = &ctx.data;
  fleet_ = &ctx.fleet;
  const ModelSpec base_spec =
      scale_widths(full_spec_, 1.0 / static_cast<double>(requested_bases_));
  for (int i = 0; i < requested_bases_; ++i)
    bases_.push_back(std::make_unique<Model>(base_spec, rng));
  base_macs_ = static_cast<double>(bases_.front()->macs());
}

int SplitMixStrategy::budget_for(int client) const {
  const double cap =
      (*fleet_)[static_cast<std::size_t>(client)].capacity_macs;
  const int m = static_cast<int>(cap / base_macs_);
  return std::clamp(m, 1, num_bases());
}

int SplitMixStrategy::base_of(const ClientTask& task) const {
  // Rotate base assignment so every base sees diverse clients.
  return (task.client + cur_round_ + task.tag) % num_bases();
}

std::vector<ClientTask> SplitMixStrategy::plan_round(RoundContext& ctx,
                                                     Rng& rng) {
  auto selected = ctx.selector.select(ctx.data.num_clients(),
                                      ctx.session.clients_per_round, rng);
  cur_round_ = ctx.round;

  // One task per (client, base-slot) pair, client-major — the same order
  // the legacy nested loop trained (and forked Rngs) in.
  std::vector<ClientTask> tasks;
  for (int c : selected) {
    const int m = budget_for(c);
    for (int t = 0; t < m; ++t) tasks.push_back(ClientTask{c, t});
  }

  acc_.assign(static_cast<std::size_t>(num_bases()), WeightSet{});
  wsum_.assign(static_cast<std::size_t>(num_bases()), 0.0);
  loss_sum_ = 0.0;
  loss_cnt_ = 0;
  slowest_ = 0.0;
  pending_client_ = -1;
  pending_time_ = 0.0;
  return tasks;
}

Model SplitMixStrategy::client_payload(const ClientTask& task) {
  return *bases_[static_cast<std::size_t>(base_of(task))];
}

void SplitMixStrategy::flush_client_time(RoundContext& ctx) {
  if (pending_client_ < 0) return;
  ctx.costs.add_client_round_time(pending_time_);
  slowest_ = std::max(slowest_, pending_time_);
  pending_client_ = -1;
  pending_time_ = 0.0;
}

void SplitMixStrategy::absorb_update(const ClientTask& task, Model*,
                                     LocalTrainResult& res,
                                     RoundContext& ctx) {
  const auto b = static_cast<std::size_t>(base_of(task));
  if (acc_[b].empty()) acc_[b] = ws_zeros_like(res.delta);
  ws_axpy(acc_[b], static_cast<float>(res.num_samples), res.delta);
  wsum_[b] += res.num_samples;
  loss_sum_ += res.avg_loss;
  ++loss_cnt_;

  const double base_bytes =
      static_cast<double>(bases_.front()->param_bytes());
  ctx.costs.add_training_macs(res.macs_used);
  ctx.costs.add_transfer(base_bytes, base_bytes);
  if (pending_client_ != task.client) flush_client_time(ctx);
  pending_client_ = task.client;
  pending_time_ += client_round_time_s(
      ctx.fleet[static_cast<std::size_t>(task.client)], base_macs_,
      ctx.session.local.steps, ctx.session.local.batch, base_bytes);
}

void SplitMixStrategy::lost_update(const ClientTask&, ClientOutcome outcome,
                                   RoundContext& ctx) {
  bill_lost_update(ctx, outcome,
                   static_cast<double>(bases_.front()->param_bytes()),
                   base_macs_);
}

void SplitMixStrategy::finish_round(RoundContext& ctx, RoundRecord& rec) {
  flush_client_time(ctx);
  for (int b = 0; b < num_bases(); ++b) {
    const auto bi = static_cast<std::size_t>(b);
    if (wsum_[bi] <= 0.0) continue;
    ws_scale(acc_[bi], static_cast<float>(1.0 / wsum_[bi]));
    Model& base = *bases_[bi];
    WeightSet w = base.weights();
    ws_sub(w, acc_[bi]);
    base.set_weights(w);
  }
  rec.avg_loss = loss_cnt_ > 0 ? loss_sum_ / loss_cnt_ : 0.0;
  rec.round_time_s = slowest_;
}

double SplitMixStrategy::ensemble_accuracy(int client, int m) {
  const auto& cd = data_->client(client);
  const int n = cd.eval_size();
  if (n == 0) return 0.0;
  Tensor sum_logits;
  for (int t = 0; t < m; ++t) {
    const int b = (client + t) % num_bases();
    Tensor logits =
        bases_[static_cast<std::size_t>(b)]->forward(cd.x_eval, false);
    if (t == 0)
      sum_logits = logits;
    else
      sum_logits.add_(logits);
  }
  return static_cast<double>(count_correct(sum_logits, cd.y_eval)) / n;
}

double SplitMixStrategy::probe_accuracy(const std::vector<int>& ids,
                                        RoundContext&) {
  double s = 0.0;
  for (int c : ids) s += ensemble_accuracy(c, budget_for(c));
  return s / static_cast<double>(ids.size());
}

SplitMixRunner::SplitMixRunner(ModelSpec full_spec,
                               const FederatedDataset& data,
                               std::vector<DeviceProfile> fleet,
                               BaselineConfig cfg, int num_bases)
    : data_(data) {
  auto strategy =
      std::make_unique<SplitMixStrategy>(std::move(full_spec), num_bases);
  strategy_ = strategy.get();
  engine_ = std::make_unique<FederationEngine>(
      std::move(strategy), data, std::move(fleet),
      static_cast<const SessionConfig&>(cfg));
}

BaselineReport SplitMixRunner::report() {
  BaselineReport rep;
  for (int c = 0; c < data_.num_clients(); ++c)
    rep.client_accuracy.push_back(
        strategy_->ensemble_accuracy(c, strategy_->budget_for(c)));
  rep.mean_accuracy = mean(rep.client_accuracy);
  rep.accuracy_iqr = iqr(rep.client_accuracy);
  rep.costs = engine_->costs();
  rep.history = engine_->history();
  return rep;
}

}  // namespace fedtrans
