#include "baselines/split_mix.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "fl/runner.hpp"
#include "model/align.hpp"
#include "nn/loss.hpp"

namespace fedtrans {

SplitMixRunner::SplitMixRunner(ModelSpec full_spec,
                               const FederatedDataset& data,
                               std::vector<DeviceProfile> fleet,
                               BaselineConfig cfg, int num_bases)
    : data_(data), fleet_(std::move(fleet)), cfg_(cfg), rng_(cfg.seed) {
  FT_CHECK_MSG(static_cast<int>(fleet_.size()) == data_.num_clients(),
               "fleet size must match client count");
  FT_CHECK(num_bases >= 1);
  const ModelSpec base_spec =
      scale_widths(full_spec, 1.0 / static_cast<double>(num_bases));
  for (int i = 0; i < num_bases; ++i)
    bases_.push_back(std::make_unique<Model>(base_spec, rng_));
  base_macs_ = static_cast<double>(bases_.front()->macs());
  costs_.note_storage(static_cast<double>(num_bases) *
                      static_cast<double>(bases_.front()->param_bytes()));
}

int SplitMixRunner::budget_for(int client) const {
  const double cap = fleet_[static_cast<std::size_t>(client)].capacity_macs;
  const int m = static_cast<int>(cap / base_macs_);
  return std::clamp(m, 1, num_bases());
}

double SplitMixRunner::run_round() {
  auto selected = FedAvgRunner::select_clients(data_.num_clients(),
                                               cfg_.clients_per_round, rng_);
  const int nb = num_bases();
  std::vector<WeightSet> acc(static_cast<std::size_t>(nb));
  std::vector<double> wsum(static_cast<std::size_t>(nb), 0.0);

  double loss_sum = 0.0;
  int loss_cnt = 0;
  double slowest = 0.0;
  const double base_bytes =
      static_cast<double>(bases_.front()->param_bytes());
  for (int c : selected) {
    const int m = budget_for(c);
    double client_time = 0.0;
    for (int t = 0; t < m; ++t) {
      // Rotate base assignment so every base sees diverse clients.
      const int b = (c + round_ + t) % nb;
      Model local = *bases_[static_cast<std::size_t>(b)];
      Rng crng = rng_.fork();
      auto res = local_train(local, data_.client(c), cfg_.local, crng);
      if (acc[static_cast<std::size_t>(b)].empty())
        acc[static_cast<std::size_t>(b)] = ws_zeros_like(res.delta);
      ws_axpy(acc[static_cast<std::size_t>(b)],
              static_cast<float>(res.num_samples), res.delta);
      wsum[static_cast<std::size_t>(b)] += res.num_samples;
      loss_sum += res.avg_loss;
      ++loss_cnt;
      costs_.add_training_macs(res.macs_used);
      costs_.add_transfer(base_bytes, base_bytes);
      client_time += client_round_time_s(
          fleet_[static_cast<std::size_t>(c)], base_macs_, cfg_.local.steps,
          cfg_.local.batch, base_bytes);
    }
    costs_.add_client_round_time(client_time);
    slowest = std::max(slowest, client_time);
  }

  for (int b = 0; b < nb; ++b) {
    if (wsum[static_cast<std::size_t>(b)] <= 0.0) continue;
    ws_scale(acc[static_cast<std::size_t>(b)],
             static_cast<float>(1.0 / wsum[static_cast<std::size_t>(b)]));
    Model& base = *bases_[static_cast<std::size_t>(b)];
    WeightSet w = base.weights();
    ws_sub(w, acc[static_cast<std::size_t>(b)]);
    base.set_weights(w);
  }

  RoundRecord rec;
  rec.round = round_;
  rec.avg_loss = loss_cnt > 0 ? loss_sum / loss_cnt : 0.0;
  rec.cum_macs = costs_.total_macs();
  rec.round_time_s = slowest;
  if (cfg_.eval_every > 0 && round_ % cfg_.eval_every == 0) {
    Rng erng(cfg_.seed + 977 + static_cast<std::uint64_t>(round_));
    const int k = cfg_.eval_clients > 0
                      ? std::min(cfg_.eval_clients, data_.num_clients())
                      : data_.num_clients();
    auto ids = FedAvgRunner::select_clients(data_.num_clients(), k, erng);
    double s = 0.0;
    for (int c : ids) s += ensemble_accuracy(c, budget_for(c));
    rec.accuracy = s / static_cast<double>(ids.size());
  }
  history_.push_back(rec);
  ++round_;
  return rec.avg_loss;
}

double SplitMixRunner::ensemble_accuracy(int client, int m) {
  const auto& cd = data_.client(client);
  const int n = cd.eval_size();
  if (n == 0) return 0.0;
  Tensor sum_logits;
  for (int t = 0; t < m; ++t) {
    const int b = (client + t) % num_bases();
    Tensor logits =
        bases_[static_cast<std::size_t>(b)]->forward(cd.x_eval, false);
    if (t == 0)
      sum_logits = logits;
    else
      sum_logits.add_(logits);
  }
  return static_cast<double>(count_correct(sum_logits, cd.y_eval)) / n;
}

void SplitMixRunner::run() {
  for (int r = 0; r < cfg_.rounds; ++r) run_round();
}

BaselineReport SplitMixRunner::report() {
  BaselineReport rep;
  for (int c = 0; c < data_.num_clients(); ++c)
    rep.client_accuracy.push_back(ensemble_accuracy(c, budget_for(c)));
  rep.mean_accuracy = mean(rep.client_accuracy);
  rep.accuracy_iqr = iqr(rep.client_accuracy);
  rep.costs = costs_;
  rep.history = history_;
  return rep;
}

}  // namespace fedtrans
