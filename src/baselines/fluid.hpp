#pragma once

#include <memory>

#include "baselines/common.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// FLuID (Wang et al., NeurIPS 2024): invariant-dropout FL. The server
/// tracks each neuron's (output channel's) aggregate update magnitude; for a
/// capacity-limited client it extracts a submodel that keeps the *dynamic*
/// neurons (largest recent updates) and drops the *invariant* ones, then
/// merges client updates back into the tracked positions. Unlike
/// HeteroFL's prefix crops, FLuID submodels select arbitrary channel
/// subsets. Conv-cell models only.
class FluidRunner {
 public:
  FluidRunner(ModelSpec full_spec, const FederatedDataset& data,
              std::vector<DeviceProfile> fleet, BaselineConfig cfg);

  double run_round();
  void run();
  BaselineReport report();

  Model& global() { return *global_; }
  /// Width ratio the client's capacity affords (grid-searched so the built
  /// submodel's MACs fit; 1.0 = full model).
  double ratio_for(int client) const;

 private:
  /// kept[0] = stem channels, kept[1+l] = channels of cell l.
  std::vector<std::vector<int>> kept_for_ratio(double ratio) const;
  Model extract(const std::vector<std::vector<int>>& kept);
  void update_scores(const WeightSet& agg_delta);

  const FederatedDataset& data_;
  std::vector<DeviceProfile> fleet_;
  BaselineConfig cfg_;
  Rng rng_;
  std::unique_ptr<Model> global_;
  /// Per (stem + cell) per output channel: EMA of update magnitude.
  std::vector<std::vector<double>> score_;
  /// ratio -> measured submodel MACs (descending grid).
  std::vector<double> ratio_grid_;
  std::vector<double> ratio_macs_;
  CostMeter costs_;
  std::vector<RoundRecord> history_;
  int round_ = 0;
};

}  // namespace fedtrans
