#pragma once

#include <memory>
#include <unordered_map>

#include "baselines/common.hpp"
#include "fl/engine.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// FLuID (Wang et al., NeurIPS 2024) as an engine Strategy:
/// invariant-dropout FL. The server tracks each neuron's (output channel's)
/// aggregate update magnitude; for a capacity-limited client it extracts a
/// submodel that keeps the *dynamic* neurons (largest recent updates) and
/// drops the *invariant* ones, then merges client updates back into the
/// tracked positions. Unlike HeteroFL's prefix crops, FLuID submodels
/// select arbitrary channel subsets. Conv-cell models only.
class FluidStrategy : public Strategy {
 public:
  explicit FluidStrategy(ModelSpec full_spec);

  std::string name() const override { return "fluid"; }
  void attach(RoundContext& ctx, Rng& rng) override;
  std::vector<ClientTask> plan_round(RoundContext& ctx, Rng& rng) override;
  Model client_payload(const ClientTask& task) override;
  // Invariance scores are round-stable, so the extracted submodel is a
  // function of the client's drop ratio alone.
  int payload_key(const ClientTask& task) const override {
    return static_cast<int>(ratio_index_for(task.client));
  }
  const Model& reference_model() const override { return *global_; }
  void absorb_update(const ClientTask& task, Model* trained,
                     LocalTrainResult& res, RoundContext& ctx) override;
  void lost_update(const ClientTask& task, ClientOutcome outcome,
                   RoundContext& ctx) override;
  void finish_round(RoundContext& ctx, RoundRecord& rec) override;
  double probe_accuracy(const std::vector<int>& ids,
                        RoundContext& ctx) override;

  Model& global() { return *global_; }
  /// Width ratio the client's capacity affords (grid-searched so the built
  /// submodel's MACs fit; 1.0 = full model).
  double ratio_for(int client) const;
  /// kept[0] = stem channels, kept[1+l] = channels of cell l. Depends only
  /// on the (round-stable) invariance scores, so payload and absorb
  /// recompute identical maps.
  std::vector<std::vector<int>> kept_for_ratio(double ratio) const;
  Model extract(const std::vector<std::vector<int>>& kept);

 private:
  void update_scores(const WeightSet& agg_delta);

  ModelSpec full_spec_;
  const std::vector<DeviceProfile>* fleet_ = nullptr;
  std::unique_ptr<Model> global_;
  /// Per (stem + cell) per output channel: EMA of update magnitude.
  std::vector<std::vector<double>> score_;
  /// ratio -> measured submodel MACs / bytes (descending grid).
  std::vector<double> ratio_grid_;
  std::vector<double> ratio_macs_;
  std::vector<double> ratio_bytes_;
  /// Index into the ratio grid the client's capacity affords.
  std::size_t ratio_index_for(int client) const;

  // Per-round accumulators.
  std::unordered_map<const Tensor*, std::size_t> fidx_;  // round-stable
  WeightSet acc_;
  WeightSet wsum_;
  double loss_sum_ = 0.0;
  double slowest_ = 0.0;
  std::size_t round_tasks_ = 0;
};

/// Historical entry point — a thin shim over FederationEngine +
/// FluidStrategy.
class FluidRunner {
 public:
  FluidRunner(ModelSpec full_spec, const FederatedDataset& data,
              std::vector<DeviceProfile> fleet, BaselineConfig cfg);

  double run_round() { return engine_->run_round(); }
  void run() { engine_->run(); }
  BaselineReport report();

  Model& global() { return strategy_->global(); }
  double ratio_for(int client) const { return strategy_->ratio_for(client); }
  FederationEngine& engine() { return *engine_; }

 private:
  const FederatedDataset& data_;
  FluidStrategy* strategy_;  // owned by engine_
  std::unique_ptr<FederationEngine> engine_;
};

}  // namespace fedtrans
