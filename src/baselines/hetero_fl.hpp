#pragma once

#include "baselines/common.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// HeteroFL (Diao et al., ICLR 2020): a *static* ladder of width-scaled
/// submodels of one global model. Each client trains the largest submodel
/// its capacity allows; submodel weights are the top-left (prefix) crop of
/// the global weights; the server averages each global parameter element
/// over exactly the clients whose submodels cover it.
class HeteroFLRunner {
 public:
  /// `width_ratios` must be descending and start at 1.0 (the full model).
  HeteroFLRunner(ModelSpec full_spec, const FederatedDataset& data,
                 std::vector<DeviceProfile> fleet, BaselineConfig cfg,
                 std::vector<double> width_ratios = {1.0, 0.5, 0.25, 0.125,
                                                     0.0625});

  double run_round();
  void run();
  BaselineReport report();

  Model& global() { return *global_; }
  int num_levels() const { return static_cast<int>(level_specs_.size()); }
  /// Level assigned to a client (largest fitting; deepest level if none fit).
  int level_for(int client) const;
  /// Fresh submodel at `level` carrying the current global crop.
  Model submodel(int level);

 private:
  const FederatedDataset& data_;
  std::vector<DeviceProfile> fleet_;
  BaselineConfig cfg_;
  Rng rng_;
  std::unique_ptr<Model> global_;
  std::vector<ModelSpec> level_specs_;
  std::vector<double> level_macs_;
  CostMeter costs_;
  std::vector<RoundRecord> history_;
  int round_ = 0;
};

}  // namespace fedtrans
