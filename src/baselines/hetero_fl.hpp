#pragma once

#include <unordered_map>

#include "baselines/common.hpp"
#include "fl/engine.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// HeteroFL (Diao et al., ICLR 2020) as an engine Strategy: a *static*
/// ladder of width-scaled submodels of one global model. Each client trains
/// the largest submodel its capacity allows; submodel weights are the
/// top-left (prefix) crop of the global weights; the server averages each
/// global parameter element over exactly the clients whose submodels cover
/// it.
class HeteroFLStrategy : public Strategy {
 public:
  /// `width_ratios` must be descending and start at 1.0 (the full model).
  HeteroFLStrategy(ModelSpec full_spec, std::vector<double> width_ratios);

  std::string name() const override { return "heterofl"; }
  void attach(RoundContext& ctx, Rng& rng) override;
  std::vector<ClientTask> plan_round(RoundContext& ctx, Rng& rng) override;
  Model client_payload(const ClientTask& task) override;
  // One submodel per capacity level: same level, same bytes.
  int payload_key(const ClientTask& task) const override { return task.tag; }
  const Model& reference_model() const override { return *global_; }
  void absorb_update(const ClientTask& task, Model* trained,
                     LocalTrainResult& res, RoundContext& ctx) override;
  void lost_update(const ClientTask& task, ClientOutcome outcome,
                   RoundContext& ctx) override;
  void finish_round(RoundContext& ctx, RoundRecord& rec) override;
  double probe_accuracy(const std::vector<int>& ids,
                        RoundContext& ctx) override;
  /// Coverage-weighted element averaging is a linear sum per capacity
  /// level: same level ⇒ same submodel structure ⇒ one overlap walk folds
  /// the level's pre-summed delta and weight total into the global crop.
  bool supports_partial_aggregation() const override { return true; }
  void absorb_metrics(const ClientTask& task, const LocalTrainResult& res,
                      RoundContext& ctx) override;
  void absorb_reduced(const ClientTask& task, Model* payload, WeightSet& sum,
                      double weight, int count, RoundContext& ctx) override;

  Model& global() { return *global_; }
  int num_levels() const { return static_cast<int>(level_specs_.size()); }
  /// Level assigned to a client (largest fitting; deepest level if none fit).
  int level_for(int client) const;
  /// Fresh submodel at `level` carrying the current global crop.
  Model submodel(int level);

 private:
  ModelSpec full_spec_;
  std::vector<double> width_ratios_;
  const std::vector<DeviceProfile>* fleet_ = nullptr;
  std::unique_ptr<Model> global_;
  std::vector<ModelSpec> level_specs_;
  std::vector<double> level_macs_;
  std::vector<double> level_bytes_;

  // Per-round accumulators. gidx_ indexes the global params once per round
  // (global_ is stable until finish_round) instead of once per update.
  WeightSet acc_;
  WeightSet wsum_;
  std::unordered_map<const Tensor*, std::size_t> gidx_;
  double loss_sum_ = 0.0;
  double slowest_ = 0.0;
  std::size_t round_tasks_ = 0;
};

/// Historical entry point — a thin shim over FederationEngine +
/// HeteroFLStrategy (bitwise parity with direct engine use is
/// test-enforced).
class HeteroFLRunner {
 public:
  HeteroFLRunner(ModelSpec full_spec, const FederatedDataset& data,
                 std::vector<DeviceProfile> fleet, BaselineConfig cfg,
                 std::vector<double> width_ratios = {1.0, 0.5, 0.25, 0.125,
                                                     0.0625});

  double run_round() { return engine_->run_round(); }
  void run() { engine_->run(); }
  BaselineReport report();

  Model& global() { return strategy_->global(); }
  int num_levels() const { return strategy_->num_levels(); }
  int level_for(int client) const { return strategy_->level_for(client); }
  Model submodel(int level) { return strategy_->submodel(level); }
  FederationEngine& engine() { return *engine_; }

 private:
  const FederatedDataset& data_;
  HeteroFLStrategy* strategy_;  // owned by engine_
  std::unique_ptr<FederationEngine> engine_;
};

}  // namespace fedtrans
