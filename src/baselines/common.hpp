#pragma once

#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "fl/metrics.hpp"
#include "fl/session.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// Shared configuration for the multi-model baselines (HeteroFL, SplitMix,
/// FLuID, FedRolex). Per the paper's protocol (§A.1), every baseline
/// receives the *largest* model FedTrans produced as its input
/// architecture. Now a pure alias of the engine SessionConfig (with the
/// paper's 60-round default): the shared runtime block is the one
/// definition, nothing baseline-specific is added.
struct BaselineConfig : SessionConfig {
  BaselineConfig() { rounds = 60; }
};
static_assert(sizeof(BaselineConfig) == sizeof(SessionConfig),
              "BaselineConfig must add no fields beyond the shared "
              "SessionConfig block — extend SessionConfig instead");

/// Uniform result bundle consumed by the benchmark harness.
struct BaselineReport {
  std::vector<double> client_accuracy;
  double mean_accuracy = 0.0;
  double accuracy_iqr = 0.0;
  CostMeter costs;
  std::vector<RoundRecord> history;
};

}  // namespace fedtrans
