#pragma once

#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "fl/metrics.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// Shared configuration for the multi-model baselines (HeteroFL, SplitMix,
/// FLuID). Per the paper's protocol (§A.1), every baseline receives the
/// *largest* model FedTrans produced as its input architecture.
struct BaselineConfig {
  int rounds = 60;
  int clients_per_round = 10;
  LocalTrainConfig local{};
  int eval_every = 0;
  int eval_clients = 32;
  std::uint64_t seed = 1;
};

/// Uniform result bundle consumed by the benchmark harness.
struct BaselineReport {
  std::vector<double> client_accuracy;
  double mean_accuracy = 0.0;
  double accuracy_iqr = 0.0;
  CostMeter costs;
  std::vector<RoundRecord> history;
};

}  // namespace fedtrans
