#pragma once

#include <memory>

#include "baselines/common.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// SplitMix (Hong et al., ICLR 2022): splits the width of a large model into
/// `num_bases` independent narrow base models. Each client trains (and at
/// inference ensembles) as many bases as its capacity affords; bases are
/// FedAvg-aggregated independently. The per-round ensemble shipping is what
/// drives SplitMix's large network volumes in the paper's Table 2.
class SplitMixRunner {
 public:
  SplitMixRunner(ModelSpec full_spec, const FederatedDataset& data,
                 std::vector<DeviceProfile> fleet, BaselineConfig cfg,
                 int num_bases = 8);

  double run_round();
  void run();
  BaselineReport report();

  int num_bases() const { return static_cast<int>(bases_.size()); }
  /// How many bases the client can run (≥1, ≤ num_bases).
  int budget_for(int client) const;
  Model& base(int i) { return *bases_[static_cast<std::size_t>(i)]; }

 private:
  /// Average ensemble accuracy of the first `m` bases (rotated per client).
  double ensemble_accuracy(int client, int m);

  const FederatedDataset& data_;
  std::vector<DeviceProfile> fleet_;
  BaselineConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<Model>> bases_;
  double base_macs_ = 0.0;
  CostMeter costs_;
  std::vector<RoundRecord> history_;
  int round_ = 0;
};

}  // namespace fedtrans
