#pragma once

#include <memory>

#include "baselines/common.hpp"
#include "fl/engine.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// SplitMix (Hong et al., ICLR 2022) as an engine Strategy: splits the
/// width of a large model into `num_bases` independent narrow base models.
/// Each client trains (and at inference ensembles) as many bases as its
/// capacity affords — one engine task per (client, base) pair — and bases
/// are FedAvg-aggregated independently. The per-round ensemble shipping is
/// what drives SplitMix's large network volumes in the paper's Table 2.
class SplitMixStrategy : public Strategy {
 public:
  SplitMixStrategy(ModelSpec full_spec, int num_bases);

  std::string name() const override { return "splitmix"; }
  void attach(RoundContext& ctx, Rng& rng) override;
  std::vector<ClientTask> plan_round(RoundContext& ctx, Rng& rng) override;
  Model client_payload(const ClientTask& task) override;
  // Every task of a base trains that base's exact weights.
  int payload_key(const ClientTask& task) const override {
    return base_of(task);
  }
  const Model& reference_model() const override { return *bases_.front(); }
  double initial_storage_bytes() const override {
    return static_cast<double>(num_bases()) *
           static_cast<double>(bases_.front()->param_bytes());
  }
  void absorb_update(const ClientTask& task, Model* trained,
                     LocalTrainResult& res, RoundContext& ctx) override;
  void lost_update(const ClientTask& task, ClientOutcome outcome,
                   RoundContext& ctx) override;
  void finish_round(RoundContext& ctx, RoundRecord& rec) override;
  double probe_accuracy(const std::vector<int>& ids,
                        RoundContext& ctx) override;

  int num_bases() const { return static_cast<int>(bases_.size()); }
  /// How many bases the client can run (≥1, ≤ num_bases).
  int budget_for(int client) const;
  Model& base(int i) { return *bases_[static_cast<std::size_t>(i)]; }
  /// Average ensemble accuracy of the first `m` bases (rotated per client).
  double ensemble_accuracy(int client, int m);

 private:
  /// Base trained by `task` under this round's rotation.
  int base_of(const ClientTask& task) const;
  void flush_client_time(RoundContext& ctx);

  ModelSpec full_spec_;
  int requested_bases_;
  const ClientDataProvider* data_ = nullptr;
  const std::vector<DeviceProfile>* fleet_ = nullptr;
  std::vector<std::unique_ptr<Model>> bases_;
  double base_macs_ = 0.0;

  // Per-round accumulators.
  int cur_round_ = 0;
  std::vector<WeightSet> acc_;
  std::vector<double> wsum_;
  double loss_sum_ = 0.0;
  int loss_cnt_ = 0;
  double slowest_ = 0.0;
  // Per-client device time accumulates across that client's base tasks
  // (tasks are client-major, so a flush on client change reproduces the
  // legacy per-client billing order).
  int pending_client_ = -1;
  double pending_time_ = 0.0;
};

/// Historical entry point — a thin shim over FederationEngine +
/// SplitMixStrategy.
class SplitMixRunner {
 public:
  SplitMixRunner(ModelSpec full_spec, const FederatedDataset& data,
                 std::vector<DeviceProfile> fleet, BaselineConfig cfg,
                 int num_bases = 8);

  double run_round() { return engine_->run_round(); }
  void run() { engine_->run(); }
  BaselineReport report();

  int num_bases() const { return strategy_->num_bases(); }
  int budget_for(int client) const { return strategy_->budget_for(client); }
  Model& base(int i) { return strategy_->base(i); }
  FederationEngine& engine() { return *engine_; }

 private:
  const FederatedDataset& data_;
  SplitMixStrategy* strategy_;  // owned by engine_
  std::unique_ptr<FederationEngine> engine_;
};

}  // namespace fedtrans
