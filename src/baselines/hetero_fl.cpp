#include "baselines/hetero_fl.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "fl/runner.hpp"
#include "model/align.hpp"

namespace fedtrans {

HeteroFLRunner::HeteroFLRunner(ModelSpec full_spec,
                               const FederatedDataset& data,
                               std::vector<DeviceProfile> fleet,
                               BaselineConfig cfg,
                               std::vector<double> width_ratios)
    : data_(data), fleet_(std::move(fleet)), cfg_(cfg), rng_(cfg.seed) {
  FT_CHECK_MSG(static_cast<int>(fleet_.size()) == data_.num_clients(),
               "fleet size must match client count");
  FT_CHECK_MSG(!width_ratios.empty() && width_ratios.front() == 1.0,
               "width ratios must start at 1.0");
  global_ = std::make_unique<Model>(full_spec, rng_);
  for (double r : width_ratios) {
    level_specs_.push_back(scale_widths(full_spec, r));
    Rng tmp = rng_.fork();
    Model probe(level_specs_.back(), tmp);
    level_macs_.push_back(static_cast<double>(probe.macs()));
  }
  costs_.note_storage(static_cast<double>(global_->param_bytes()));
}

int HeteroFLRunner::level_for(int client) const {
  const double cap = fleet_[static_cast<std::size_t>(client)].capacity_macs;
  for (std::size_t lvl = 0; lvl < level_macs_.size(); ++lvl)
    if (level_macs_[lvl] <= cap) return static_cast<int>(lvl);
  return static_cast<int>(level_macs_.size()) - 1;  // weakest level
}

Model HeteroFLRunner::submodel(int level) {
  Rng tmp(0xfeedULL + static_cast<std::uint64_t>(level));
  Model sub(level_specs_[static_cast<std::size_t>(level)], tmp);
  copy_overlap(sub, *global_);
  return sub;
}

double HeteroFLRunner::run_round() {
  auto selected = FedAvgRunner::select_clients(data_.num_clients(),
                                               cfg_.clients_per_round, rng_);
  // Element-wise coverage-weighted aggregation into the global model.
  WeightSet global_w = global_->weights();
  WeightSet acc = ws_zeros_like(global_w);
  WeightSet wsum = ws_zeros_like(global_w);
  auto gidx = param_index(*global_);

  double loss_sum = 0.0;
  double slowest = 0.0;
  for (int c : selected) {
    const int lvl = level_for(c);
    Model sub = submodel(lvl);
    Rng crng = rng_.fork();
    auto res = local_train(sub, data_.client(c), cfg_.local, crng);
    loss_sum += res.avg_loss;

    auto sidx = param_index(sub);
    const float n = static_cast<float>(res.num_samples);
    for (auto& pair : align_params(*global_, sub)) {
      Tensor& a = acc[gidx.at(pair.dst)];
      Tensor& w = wsum[gidx.at(pair.dst)];
      const Tensor& d = res.delta[sidx.at(pair.src)];
      for_each_overlap(*pair.dst, *pair.src,
                       [&](std::int64_t gi, std::int64_t si) {
                         a[gi] += n * d[si];
                         w[gi] += n;
                       });
    }

    const double bytes = static_cast<double>(sub.param_bytes());
    costs_.add_training_macs(res.macs_used);
    costs_.add_transfer(bytes, bytes);
    const double t = client_round_time_s(
        fleet_[static_cast<std::size_t>(c)], static_cast<double>(sub.macs()),
        cfg_.local.steps, cfg_.local.batch, bytes);
    costs_.add_client_round_time(t);
    slowest = std::max(slowest, t);
  }

  for (std::size_t p = 0; p < global_w.size(); ++p)
    for (std::int64_t e = 0; e < global_w[p].numel(); ++e)
      if (wsum[p][e] > 0.0f) global_w[p][e] -= acc[p][e] / wsum[p][e];
  global_->set_weights(global_w);

  RoundRecord rec;
  rec.round = round_;
  rec.avg_loss = selected.empty() ? 0.0 : loss_sum / selected.size();
  rec.cum_macs = costs_.total_macs();
  rec.round_time_s = slowest;
  if (cfg_.eval_every > 0 && round_ % cfg_.eval_every == 0) {
    Rng erng(cfg_.seed + 977 + static_cast<std::uint64_t>(round_));
    const int k = cfg_.eval_clients > 0
                      ? std::min(cfg_.eval_clients, data_.num_clients())
                      : data_.num_clients();
    auto ids = FedAvgRunner::select_clients(data_.num_clients(), k, erng);
    double s = 0.0;
    for (int c : ids) {
      Model sub = submodel(level_for(c));
      s += evaluate_accuracy(sub, data_.client(c));
    }
    rec.accuracy = s / static_cast<double>(ids.size());
  }
  history_.push_back(rec);
  ++round_;
  return rec.avg_loss;
}

void HeteroFLRunner::run() {
  for (int r = 0; r < cfg_.rounds; ++r) run_round();
}

BaselineReport HeteroFLRunner::report() {
  BaselineReport rep;
  for (int c = 0; c < data_.num_clients(); ++c) {
    Model sub = submodel(level_for(c));
    rep.client_accuracy.push_back(evaluate_accuracy(sub, data_.client(c)));
  }
  rep.mean_accuracy = mean(rep.client_accuracy);
  rep.accuracy_iqr = iqr(rep.client_accuracy);
  rep.costs = costs_;
  rep.history = history_;
  return rep;
}

}  // namespace fedtrans
