#include "baselines/hetero_fl.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "model/align.hpp"

namespace fedtrans {

HeteroFLStrategy::HeteroFLStrategy(ModelSpec full_spec,
                                   std::vector<double> width_ratios)
    : full_spec_(std::move(full_spec)),
      width_ratios_(std::move(width_ratios)) {
  FT_CHECK_MSG(!width_ratios_.empty() && width_ratios_.front() == 1.0,
               "width ratios must start at 1.0");
}

void HeteroFLStrategy::attach(RoundContext& ctx, Rng& rng) {
  fleet_ = &ctx.fleet;
  global_ = std::make_unique<Model>(full_spec_, rng);
  for (double r : width_ratios_) {
    level_specs_.push_back(scale_widths(full_spec_, r));
    Rng tmp = rng.fork();
    Model probe(level_specs_.back(), tmp);
    level_macs_.push_back(static_cast<double>(probe.macs()));
    level_bytes_.push_back(static_cast<double>(probe.param_bytes()));
  }
}

int HeteroFLStrategy::level_for(int client) const {
  const double cap =
      (*fleet_)[static_cast<std::size_t>(client)].capacity_macs;
  for (std::size_t lvl = 0; lvl < level_macs_.size(); ++lvl)
    if (level_macs_[lvl] <= cap) return static_cast<int>(lvl);
  return static_cast<int>(level_macs_.size()) - 1;  // weakest level
}

Model HeteroFLStrategy::submodel(int level) {
  Rng tmp(0xfeedULL + static_cast<std::uint64_t>(level));
  Model sub(level_specs_[static_cast<std::size_t>(level)], tmp);
  copy_overlap(sub, *global_);
  return sub;
}

std::vector<ClientTask> HeteroFLStrategy::plan_round(RoundContext& ctx,
                                                     Rng& rng) {
  auto tasks = Strategy::plan_round(ctx, rng);
  for (ClientTask& t : tasks) t.tag = level_for(t.client);

  WeightSet global_w = global_->weights();
  acc_ = ws_zeros_like(global_w);
  wsum_ = ws_zeros_like(global_w);
  gidx_ = param_index(*global_);
  loss_sum_ = 0.0;
  slowest_ = 0.0;
  round_tasks_ = tasks.size();
  return tasks;
}

Model HeteroFLStrategy::client_payload(const ClientTask& task) {
  return submodel(task.tag);
}

void HeteroFLStrategy::absorb_update(const ClientTask& task, Model* trained,
                                     LocalTrainResult& res,
                                     RoundContext& ctx) {
  FT_CHECK_MSG(trained != nullptr,
               "HeteroFL absorb requires the task's payload model");
  Model& sub = *trained;
  loss_sum_ += res.avg_loss;

  // Element-wise coverage-weighted accumulation into the global model.
  auto sidx = param_index(sub);
  const float n = static_cast<float>(res.num_samples);
  for (auto& pair : align_params(*global_, sub)) {
    Tensor& a = acc_[gidx_.at(pair.dst)];
    Tensor& w = wsum_[gidx_.at(pair.dst)];
    const Tensor& d = res.delta[sidx.at(pair.src)];
    for_each_overlap(*pair.dst, *pair.src,
                     [&](std::int64_t gi, std::int64_t si) {
                       a[gi] += n * d[si];
                       w[gi] += n;
                     });
  }

  bill_trained_update(ctx, task.client,
                      static_cast<double>(sub.param_bytes()),
                      static_cast<double>(sub.macs()), res, slowest_);
}

void HeteroFLStrategy::absorb_metrics(const ClientTask& task,
                                      const LocalTrainResult& res,
                                      RoundContext& ctx) {
  const auto lvl = static_cast<std::size_t>(task.tag);
  loss_sum_ += res.avg_loss;
  bill_trained_update(ctx, task.client, level_bytes_[lvl], level_macs_[lvl],
                      res, slowest_);
}

void HeteroFLStrategy::absorb_reduced(const ClientTask&, Model* payload,
                                      WeightSet& sum, double weight, int,
                                      RoundContext&) {
  // One overlap walk per capacity level: the group's submodels are
  // structurally identical, so the pre-summed delta and weight total fold
  // into the global crop exactly where each member's update would have.
  FT_CHECK_MSG(payload != nullptr,
               "HeteroFL absorb_reduced requires the level's payload model");
  Model& sub = *payload;
  auto sidx = param_index(sub);
  const float w = static_cast<float>(weight);
  for (auto& pair : align_params(*global_, sub)) {
    Tensor& a = acc_[gidx_.at(pair.dst)];
    Tensor& ws = wsum_[gidx_.at(pair.dst)];
    const Tensor& d = sum[sidx.at(pair.src)];
    for_each_overlap(*pair.dst, *pair.src,
                     [&](std::int64_t gi, std::int64_t si) {
                       a[gi] += d[si];
                       ws[gi] += w;
                     });
  }
}

void HeteroFLStrategy::lost_update(const ClientTask& task,
                                   ClientOutcome outcome, RoundContext& ctx) {
  const auto lvl = static_cast<std::size_t>(task.tag);
  bill_lost_update(ctx, outcome, level_bytes_[lvl], level_macs_[lvl]);
}

void HeteroFLStrategy::finish_round(RoundContext& ctx, RoundRecord& rec) {
  (void)ctx;
  WeightSet global_w = global_->weights();
  for (std::size_t p = 0; p < global_w.size(); ++p)
    for (std::int64_t e = 0; e < global_w[p].numel(); ++e)
      if (wsum_[p][e] > 0.0f) global_w[p][e] -= acc_[p][e] / wsum_[p][e];
  global_->set_weights(global_w);

  rec.avg_loss = round_tasks_ == 0
                     ? 0.0
                     : loss_sum_ / static_cast<double>(round_tasks_);
  rec.round_time_s = slowest_;
}

double HeteroFLStrategy::probe_accuracy(const std::vector<int>& ids,
                                        RoundContext& ctx) {
  double s = 0.0;
  for (int c : ids) {
    Model sub = submodel(level_for(c));
    s += evaluate_accuracy(sub, ctx.data.client(c));
  }
  return s / static_cast<double>(ids.size());
}

HeteroFLRunner::HeteroFLRunner(ModelSpec full_spec,
                               const FederatedDataset& data,
                               std::vector<DeviceProfile> fleet,
                               BaselineConfig cfg,
                               std::vector<double> width_ratios)
    : data_(data) {
  auto strategy = std::make_unique<HeteroFLStrategy>(std::move(full_spec),
                                                     std::move(width_ratios));
  strategy_ = strategy.get();
  engine_ = std::make_unique<FederationEngine>(
      std::move(strategy), data, std::move(fleet),
      static_cast<const SessionConfig&>(cfg));
}

BaselineReport HeteroFLRunner::report() {
  BaselineReport rep;
  for (int c = 0; c < data_.num_clients(); ++c) {
    Model sub = strategy_->submodel(strategy_->level_for(c));
    rep.client_accuracy.push_back(evaluate_accuracy(sub, data_.client(c)));
  }
  rep.mean_accuracy = mean(rep.client_accuracy);
  rep.accuracy_iqr = iqr(rep.client_accuracy);
  rep.costs = engine_->costs();
  rep.history = engine_->history();
  return rep;
}

}  // namespace fedtrans
