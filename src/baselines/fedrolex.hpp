#pragma once

#include <functional>

#include "baselines/common.hpp"
#include "fl/engine.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// FedRolex (Alam et al., NeurIPS 2022 — cited by the paper as the rolling
/// counterpart of static-submodel training) as an engine Strategy: like
/// HeteroFL, every client trains a width-scaled submodel of one global
/// model, but the channel window *rolls* by one index each round instead of
/// always taking the prefix. Over enough rounds every global parameter is
/// trained by every capacity tier, fixing HeteroFL's "only the prefix gets
/// small-client updates" imbalance.
///
/// Submodel channel j of a width-W space maps to global channel
/// (offset + j) mod W, with one offset per width space (stem and each Cell)
/// advancing by one every round. Conv and Mlp Cell models are supported
/// (the paper's NASBench/ResNet-style workloads).
class FedRolexStrategy : public Strategy {
 public:
  /// `width_ratios` must be descending and start at 1.0 (the full model).
  FedRolexStrategy(ModelSpec full_spec, std::vector<double> width_ratios);

  std::string name() const override { return "fedrolex"; }
  void attach(RoundContext& ctx, Rng& rng) override;
  std::vector<ClientTask> plan_round(RoundContext& ctx, Rng& rng) override;
  Model client_payload(const ClientTask& task) override;
  // The rolling window is a function of (level, round): same level,
  // same bytes within a round.
  int payload_key(const ClientTask& task) const override { return task.tag; }
  const Model& reference_model() const override { return *global_; }
  void absorb_update(const ClientTask& task, Model* trained,
                     LocalTrainResult& res, RoundContext& ctx) override;
  void lost_update(const ClientTask& task, ClientOutcome outcome,
                   RoundContext& ctx) override;
  void finish_round(RoundContext& ctx, RoundRecord& rec) override;
  double probe_accuracy(const std::vector<int>& ids,
                        RoundContext& ctx) override;

  Model& global() { return *global_; }
  int num_levels() const { return static_cast<int>(level_specs_.size()); }
  int level_for(int client) const;
  /// Rolling-window submodel at `level` under `round`'s offsets.
  Model submodel(int level, int round);
  /// Offset of one width space (0 = stem, 1 + l = Cell l) at `round`.
  int offset_for_space(int space, int round) const;

 private:
  /// Visits every parameter element of the level's submodel together with
  /// the global element its rolled window (at `round`) maps to:
  /// `fn(sub_param, global_param, flat_sub_idx, flat_global_idx)`.
  void for_each_mapped_element(
      Model& sub, int round,
      const std::function<void(Tensor& sub_param, const Tensor& global_param,
                               std::int64_t sub_idx,
                               std::int64_t global_idx)>& fn);

  ModelSpec full_spec_;
  std::vector<double> width_ratios_;
  const std::vector<DeviceProfile>* fleet_ = nullptr;
  std::unique_ptr<Model> global_;
  std::vector<ModelSpec> level_specs_;
  std::vector<double> level_macs_;
  std::vector<double> level_bytes_;

  // Per-round accumulators.
  int cur_round_ = 0;
  WeightSet acc_;
  WeightSet wsum_;
  double loss_sum_ = 0.0;
  double slowest_ = 0.0;
  std::size_t round_tasks_ = 0;
};

/// Historical entry point — a thin shim over FederationEngine +
/// FedRolexStrategy.
class FedRolexRunner {
 public:
  FedRolexRunner(ModelSpec full_spec, const FederatedDataset& data,
                 std::vector<DeviceProfile> fleet, BaselineConfig cfg,
                 std::vector<double> width_ratios = {1.0, 0.5, 0.25, 0.125,
                                                     0.0625});

  double run_round() { return engine_->run_round(); }
  void run() { engine_->run(); }
  BaselineReport report();

  Model& global() { return strategy_->global(); }
  int num_levels() const { return strategy_->num_levels(); }
  int level_for(int client) const { return strategy_->level_for(client); }
  /// Rolling-window submodel at `level` under the current round's offsets.
  Model submodel(int level) {
    return strategy_->submodel(level, engine_->rounds_done());
  }
  /// Offset of one width space (0 = stem, 1 + l = Cell l) this round.
  int offset_for_space(int space) const {
    return strategy_->offset_for_space(space, engine_->rounds_done());
  }
  FederationEngine& engine() { return *engine_; }

 private:
  const FederatedDataset& data_;
  FedRolexStrategy* strategy_;  // owned by engine_
  std::unique_ptr<FederationEngine> engine_;
};

}  // namespace fedtrans
