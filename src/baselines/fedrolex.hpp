#pragma once

#include <functional>

#include "baselines/common.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// FedRolex (Alam et al., NeurIPS 2022 — cited by the paper as the rolling
/// counterpart of static-submodel training): like HeteroFL, every client
/// trains a width-scaled submodel of one global model, but the channel
/// window *rolls* by one index each round instead of always taking the
/// prefix. Over enough rounds every global parameter is trained by every
/// capacity tier, fixing HeteroFL's "only the prefix gets small-client
/// updates" imbalance.
///
/// Submodel channel j of a width-W space maps to global channel
/// (offset + j) mod W, with one offset per width space (stem and each Cell)
/// advancing by one every round. Conv and Mlp Cell models are supported
/// (the paper's NASBench/ResNet-style workloads).
class FedRolexRunner {
 public:
  /// `width_ratios` must be descending and start at 1.0 (the full model).
  FedRolexRunner(ModelSpec full_spec, const FederatedDataset& data,
                 std::vector<DeviceProfile> fleet, BaselineConfig cfg,
                 std::vector<double> width_ratios = {1.0, 0.5, 0.25, 0.125,
                                                     0.0625});

  double run_round();
  void run();
  BaselineReport report();

  Model& global() { return *global_; }
  int num_levels() const { return static_cast<int>(level_specs_.size()); }
  int level_for(int client) const;
  /// Rolling-window submodel at `level` under the current round's offsets.
  Model submodel(int level);
  /// Offset of one width space (0 = stem, 1 + l = Cell l) this round.
  int offset_for_space(int space) const;

 private:
  /// Visits every parameter element of the level's submodel together with
  /// the global element its rolled window maps to:
  /// `fn(sub_param, global_param, flat_sub_idx, flat_global_idx)`.
  void for_each_mapped_element(
      Model& sub,
      const std::function<void(Tensor& sub_param, const Tensor& global_param,
                               std::int64_t sub_idx,
                               std::int64_t global_idx)>& fn);

  const FederatedDataset& data_;
  std::vector<DeviceProfile> fleet_;
  BaselineConfig cfg_;
  Rng rng_;
  std::unique_ptr<Model> global_;
  std::vector<ModelSpec> level_specs_;
  std::vector<double> level_macs_;
  CostMeter costs_;
  std::vector<RoundRecord> history_;
  int round_ = 0;
};

}  // namespace fedtrans
