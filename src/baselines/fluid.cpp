#include "baselines/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "model/align.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/scale_shift.hpp"

namespace fedtrans {

namespace {

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

int kept_count(int width, double ratio) {
  return std::max(1, static_cast<int>(std::lround(width * ratio)));
}

/// Visit every element pair (full_tensor, fi) <-> (sub_tensor, si) linked by
/// the kept-channel maps. kept[0] = stem channels, kept[1+l] = cell l.
template <typename Fn>
void for_each_mapped_pair(Model& full, Model& sub,
                          const std::vector<std::vector<int>>& kept, Fn&& fn) {
  auto map_conv = [&](Conv2d& fc, Conv2d& sc, const std::vector<int>& om,
                      const std::vector<int>& im) {
    const int so = sc.out_channels(), si = sc.in_channels(), k = sc.kernel();
    const int fin = fc.in_channels();
    for (int jo = 0; jo < so; ++jo)
      for (int ji = 0; ji < si; ++ji)
        for (int ky = 0; ky < k; ++ky)
          for (int kx = 0; kx < k; ++kx) {
            const std::int64_t f =
                ((static_cast<std::int64_t>(om[static_cast<std::size_t>(jo)]) *
                      fin +
                  im[static_cast<std::size_t>(ji)]) *
                     k +
                 ky) *
                    k +
                kx;
            const std::int64_t s =
                ((static_cast<std::int64_t>(jo) * si + ji) * k + ky) * k + kx;
            fn(fc.weight(), sc.weight(), f, s);
          }
    for (int jo = 0; jo < so; ++jo)
      fn(fc.bias(), sc.bias(), om[static_cast<std::size_t>(jo)], jo);
  };
  auto map_ss = [&](ScaleShift& fs, ScaleShift& ss,
                    const std::vector<int>& om) {
    for (int jo = 0; jo < ss.channels(); ++jo) {
      fn(fs.scale(), ss.scale(), om[static_cast<std::size_t>(jo)], jo);
      fn(fs.shift(), ss.shift(), om[static_cast<std::size_t>(jo)], jo);
    }
  };

  // Stem: out channels subset, input channels identity.
  {
    auto* fc = dynamic_cast<Conv2d*>(&full.stem().layer(0));
    auto* sc = dynamic_cast<Conv2d*>(&sub.stem().layer(0));
    auto* fs = dynamic_cast<ScaleShift*>(&full.stem().layer(1));
    auto* ss = dynamic_cast<ScaleShift*>(&sub.stem().layer(1));
    FT_CHECK_MSG(fc && sc && fs && ss, "FLuID requires Conv-cell models");
    map_conv(*fc, *sc, kept[0], iota_vec(fc->in_channels()));
    map_ss(*fs, *ss, kept[0]);
  }
  for (int l = 0; l < full.num_cells(); ++l) {
    const auto& out_map = kept[static_cast<std::size_t>(l) + 1];
    for (int b = 0; b < full.blocks_in_cell(l); ++b) {
      const auto& in_map =
          b == 0 ? kept[static_cast<std::size_t>(l)] : out_map;
      auto* fc = dynamic_cast<Conv2d*>(&full.cell_block(l, b).layer(0));
      auto* sc = dynamic_cast<Conv2d*>(&sub.cell_block(l, b).layer(0));
      auto* fs = dynamic_cast<ScaleShift*>(&full.cell_block(l, b).layer(1));
      auto* ss = dynamic_cast<ScaleShift*>(&sub.cell_block(l, b).layer(1));
      FT_CHECK(fc && sc && fs && ss);
      map_conv(*fc, *sc, out_map, in_map);
      map_ss(*fs, *ss, out_map);
    }
  }
  {
    auto* fcls = dynamic_cast<Linear*>(&full.classifier());
    auto* scls = dynamic_cast<Linear*>(&sub.classifier());
    FT_CHECK(fcls && scls);
    const auto& in_map = kept.back();
    for (int o = 0; o < scls->out_features(); ++o) {
      for (int ji = 0; ji < scls->in_features(); ++ji) {
        const std::int64_t f =
            static_cast<std::int64_t>(o) * fcls->in_features() +
            in_map[static_cast<std::size_t>(ji)];
        const std::int64_t s =
            static_cast<std::int64_t>(o) * scls->in_features() + ji;
        fn(fcls->weight(), scls->weight(), f, s);
      }
      fn(fcls->bias(), scls->bias(), o, o);
    }
  }
}

}  // namespace

FluidStrategy::FluidStrategy(ModelSpec full_spec)
    : full_spec_(std::move(full_spec)) {
  FT_CHECK_MSG(full_spec_.kind == CellKind::Conv,
               "FLuID runner supports Conv-cell models");
}

void FluidStrategy::attach(RoundContext& ctx, Rng& rng) {
  fleet_ = &ctx.fleet;
  global_ = std::make_unique<Model>(full_spec_, rng);

  score_.emplace_back(static_cast<std::size_t>(full_spec_.stem_width), 0.0);
  for (const auto& c : full_spec_.cells)
    score_.emplace_back(static_cast<std::size_t>(c.width), 0.0);

  for (double r = 1.0; r > 0.05; r -= 0.1) ratio_grid_.push_back(r);
  for (double r : ratio_grid_) {
    Rng tmp(17);
    Model probe(scale_widths(full_spec_, r), tmp);
    ratio_macs_.push_back(static_cast<double>(probe.macs()));
    ratio_bytes_.push_back(static_cast<double>(probe.param_bytes()));
  }
}

std::size_t FluidStrategy::ratio_index_for(int client) const {
  const double cap =
      (*fleet_)[static_cast<std::size_t>(client)].capacity_macs;
  for (std::size_t i = 0; i < ratio_grid_.size(); ++i)
    if (ratio_macs_[i] <= cap) return i;
  return ratio_grid_.size() - 1;
}

double FluidStrategy::ratio_for(int client) const {
  return ratio_grid_[ratio_index_for(client)];
}

std::vector<std::vector<int>> FluidStrategy::kept_for_ratio(
    double ratio) const {
  std::vector<std::vector<int>> kept;
  kept.reserve(score_.size());
  for (const auto& unit : score_) {
    const int width = static_cast<int>(unit.size());
    const int count = kept_count(width, ratio);
    auto order = iota_vec(width);
    // Keep the most *dynamic* neurons (largest update magnitude); stable
    // sort keeps a deterministic prefix before any updates arrive.
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return unit[static_cast<std::size_t>(a)] >
             unit[static_cast<std::size_t>(b)];
    });
    order.resize(static_cast<std::size_t>(count));
    std::sort(order.begin(), order.end());
    kept.push_back(std::move(order));
  }
  return kept;
}

Model FluidStrategy::extract(const std::vector<std::vector<int>>& kept) {
  ModelSpec sub_spec = global_->spec();
  sub_spec.stem_width = static_cast<int>(kept[0].size());
  for (std::size_t l = 0; l < sub_spec.cells.size(); ++l)
    sub_spec.cells[l].width = static_cast<int>(kept[l + 1].size());
  Rng tmp(23);
  Model sub(sub_spec, tmp);
  for_each_mapped_pair(*global_, sub, kept,
                       [](Tensor& ft, Tensor& st, std::int64_t fi,
                          std::int64_t si) { st[si] = ft[fi]; });
  return sub;
}

void FluidStrategy::update_scores(const WeightSet& agg_delta) {
  auto fidx = param_index(*global_);
  auto accumulate_unit = [&](Conv2d& conv, std::vector<double>& unit) {
    const Tensor& dw = agg_delta[fidx.at(&conv.weight())];
    const Tensor& db = agg_delta[fidx.at(&conv.bias())];
    const std::int64_t row =
        static_cast<std::int64_t>(conv.in_channels()) * conv.kernel() *
        conv.kernel();
    for (int j = 0; j < conv.out_channels(); ++j) {
      double s2 = 0.0;
      for (std::int64_t e = 0; e < row; ++e) {
        const double v = dw[static_cast<std::int64_t>(j) * row + e];
        s2 += v * v;
      }
      s2 += static_cast<double>(db[j]) * db[j];
      unit[static_cast<std::size_t>(j)] =
          0.7 * unit[static_cast<std::size_t>(j)] + 0.3 * std::sqrt(s2);
    }
  };
  accumulate_unit(*dynamic_cast<Conv2d*>(&global_->stem().layer(0)),
                  score_[0]);
  for (int l = 0; l < global_->num_cells(); ++l)
    for (int b = 0; b < global_->blocks_in_cell(l); ++b)
      accumulate_unit(
          *dynamic_cast<Conv2d*>(&global_->cell_block(l, b).layer(0)),
          score_[static_cast<std::size_t>(l) + 1]);
}

std::vector<ClientTask> FluidStrategy::plan_round(RoundContext& ctx,
                                                  Rng& rng) {
  auto tasks = Strategy::plan_round(ctx, rng);
  WeightSet global_w = global_->weights();
  acc_ = ws_zeros_like(global_w);
  wsum_ = ws_zeros_like(global_w);
  fidx_ = param_index(*global_);  // global_ is stable until finish_round
  loss_sum_ = 0.0;
  slowest_ = 0.0;
  round_tasks_ = tasks.size();
  return tasks;
}

Model FluidStrategy::client_payload(const ClientTask& task) {
  return extract(kept_for_ratio(ratio_for(task.client)));
}

void FluidStrategy::absorb_update(const ClientTask& task, Model* trained,
                                  LocalTrainResult& res, RoundContext& ctx) {
  FT_CHECK_MSG(trained != nullptr,
               "FLuID absorb requires the task's payload model");
  Model& sub = *trained;
  loss_sum_ += res.avg_loss;

  // Scores are round-stable, so the kept maps recompute identically to the
  // ones the payload was extracted with.
  const auto kept = kept_for_ratio(ratio_for(task.client));
  auto sidx = param_index(sub);
  const float n = static_cast<float>(res.num_samples);
  for_each_mapped_pair(
      *global_, sub, kept,
      [&](Tensor& ft, Tensor& st, std::int64_t fi, std::int64_t si) {
        const std::size_t ai = fidx_.at(&ft);
        acc_[ai][fi] += n * res.delta[sidx.at(&st)][si];
        wsum_[ai][fi] += n;
      });

  bill_trained_update(ctx, task.client,
                      static_cast<double>(sub.param_bytes()),
                      static_cast<double>(sub.macs()), res, slowest_);
}

void FluidStrategy::lost_update(const ClientTask& task,
                                ClientOutcome outcome, RoundContext& ctx) {
  const std::size_t i = ratio_index_for(task.client);
  bill_lost_update(ctx, outcome, ratio_bytes_[i], ratio_macs_[i]);
}

void FluidStrategy::finish_round(RoundContext& ctx, RoundRecord& rec) {
  (void)ctx;
  // Positional merge, then refresh the invariance scores.
  WeightSet global_w = global_->weights();
  WeightSet update = ws_zeros_like(global_w);
  for (std::size_t p = 0; p < global_w.size(); ++p)
    for (std::int64_t e = 0; e < global_w[p].numel(); ++e)
      if (wsum_[p][e] > 0.0f) update[p][e] = acc_[p][e] / wsum_[p][e];
  ws_sub(global_w, update);
  global_->set_weights(global_w);
  update_scores(update);

  rec.avg_loss = round_tasks_ == 0
                     ? 0.0
                     : loss_sum_ / static_cast<double>(round_tasks_);
  rec.round_time_s = slowest_;
}

double FluidStrategy::probe_accuracy(const std::vector<int>& ids,
                                     RoundContext& ctx) {
  double s = 0.0;
  for (int c : ids) {
    Model sub = extract(kept_for_ratio(ratio_for(c)));
    s += evaluate_accuracy(sub, ctx.data.client(c));
  }
  return s / static_cast<double>(ids.size());
}

FluidRunner::FluidRunner(ModelSpec full_spec, const FederatedDataset& data,
                         std::vector<DeviceProfile> fleet, BaselineConfig cfg)
    : data_(data) {
  auto strategy = std::make_unique<FluidStrategy>(std::move(full_spec));
  strategy_ = strategy.get();
  engine_ = std::make_unique<FederationEngine>(
      std::move(strategy), data, std::move(fleet),
      static_cast<const SessionConfig&>(cfg));
}

BaselineReport FluidRunner::report() {
  BaselineReport rep;
  for (int c = 0; c < data_.num_clients(); ++c) {
    Model sub =
        strategy_->extract(strategy_->kept_for_ratio(strategy_->ratio_for(c)));
    rep.client_accuracy.push_back(evaluate_accuracy(sub, data_.client(c)));
  }
  rep.mean_accuracy = mean(rep.client_accuracy);
  rep.accuracy_iqr = iqr(rep.client_accuracy);
  rep.costs = engine_->costs();
  rep.history = engine_->history();
  return rep;
}

}  // namespace fedtrans
