#include "baselines/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "fl/runner.hpp"
#include "model/align.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/scale_shift.hpp"

namespace fedtrans {

namespace {

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

int kept_count(int width, double ratio) {
  return std::max(1, static_cast<int>(std::lround(width * ratio)));
}

/// Visit every element pair (full_tensor, fi) <-> (sub_tensor, si) linked by
/// the kept-channel maps. kept[0] = stem channels, kept[1+l] = cell l.
template <typename Fn>
void for_each_mapped_pair(Model& full, Model& sub,
                          const std::vector<std::vector<int>>& kept, Fn&& fn) {
  auto map_conv = [&](Conv2d& fc, Conv2d& sc, const std::vector<int>& om,
                      const std::vector<int>& im) {
    const int so = sc.out_channels(), si = sc.in_channels(), k = sc.kernel();
    const int fin = fc.in_channels();
    for (int jo = 0; jo < so; ++jo)
      for (int ji = 0; ji < si; ++ji)
        for (int ky = 0; ky < k; ++ky)
          for (int kx = 0; kx < k; ++kx) {
            const std::int64_t f =
                ((static_cast<std::int64_t>(om[static_cast<std::size_t>(jo)]) *
                      fin +
                  im[static_cast<std::size_t>(ji)]) *
                     k +
                 ky) *
                    k +
                kx;
            const std::int64_t s =
                ((static_cast<std::int64_t>(jo) * si + ji) * k + ky) * k + kx;
            fn(fc.weight(), sc.weight(), f, s);
          }
    for (int jo = 0; jo < so; ++jo)
      fn(fc.bias(), sc.bias(), om[static_cast<std::size_t>(jo)], jo);
  };
  auto map_ss = [&](ScaleShift& fs, ScaleShift& ss,
                    const std::vector<int>& om) {
    for (int jo = 0; jo < ss.channels(); ++jo) {
      fn(fs.scale(), ss.scale(), om[static_cast<std::size_t>(jo)], jo);
      fn(fs.shift(), ss.shift(), om[static_cast<std::size_t>(jo)], jo);
    }
  };

  // Stem: out channels subset, input channels identity.
  {
    auto* fc = dynamic_cast<Conv2d*>(&full.stem().layer(0));
    auto* sc = dynamic_cast<Conv2d*>(&sub.stem().layer(0));
    auto* fs = dynamic_cast<ScaleShift*>(&full.stem().layer(1));
    auto* ss = dynamic_cast<ScaleShift*>(&sub.stem().layer(1));
    FT_CHECK_MSG(fc && sc && fs && ss, "FLuID requires Conv-cell models");
    map_conv(*fc, *sc, kept[0], iota_vec(fc->in_channels()));
    map_ss(*fs, *ss, kept[0]);
  }
  for (int l = 0; l < full.num_cells(); ++l) {
    const auto& out_map = kept[static_cast<std::size_t>(l) + 1];
    for (int b = 0; b < full.blocks_in_cell(l); ++b) {
      const auto& in_map =
          b == 0 ? kept[static_cast<std::size_t>(l)] : out_map;
      auto* fc = dynamic_cast<Conv2d*>(&full.cell_block(l, b).layer(0));
      auto* sc = dynamic_cast<Conv2d*>(&sub.cell_block(l, b).layer(0));
      auto* fs = dynamic_cast<ScaleShift*>(&full.cell_block(l, b).layer(1));
      auto* ss = dynamic_cast<ScaleShift*>(&sub.cell_block(l, b).layer(1));
      FT_CHECK(fc && sc && fs && ss);
      map_conv(*fc, *sc, out_map, in_map);
      map_ss(*fs, *ss, out_map);
    }
  }
  {
    auto* fcls = dynamic_cast<Linear*>(&full.classifier());
    auto* scls = dynamic_cast<Linear*>(&sub.classifier());
    FT_CHECK(fcls && scls);
    const auto& in_map = kept.back();
    for (int o = 0; o < scls->out_features(); ++o) {
      for (int ji = 0; ji < scls->in_features(); ++ji) {
        const std::int64_t f =
            static_cast<std::int64_t>(o) * fcls->in_features() +
            in_map[static_cast<std::size_t>(ji)];
        const std::int64_t s =
            static_cast<std::int64_t>(o) * scls->in_features() + ji;
        fn(fcls->weight(), scls->weight(), f, s);
      }
      fn(fcls->bias(), scls->bias(), o, o);
    }
  }
}

}  // namespace

FluidRunner::FluidRunner(ModelSpec full_spec, const FederatedDataset& data,
                         std::vector<DeviceProfile> fleet, BaselineConfig cfg)
    : data_(data), fleet_(std::move(fleet)), cfg_(cfg), rng_(cfg.seed) {
  FT_CHECK_MSG(static_cast<int>(fleet_.size()) == data_.num_clients(),
               "fleet size must match client count");
  FT_CHECK_MSG(full_spec.kind == CellKind::Conv,
               "FLuID runner supports Conv-cell models");
  global_ = std::make_unique<Model>(full_spec, rng_);

  score_.emplace_back(static_cast<std::size_t>(full_spec.stem_width), 0.0);
  for (const auto& c : full_spec.cells)
    score_.emplace_back(static_cast<std::size_t>(c.width), 0.0);

  for (double r = 1.0; r > 0.05; r -= 0.1) ratio_grid_.push_back(r);
  for (double r : ratio_grid_) {
    Rng tmp(17);
    Model probe(scale_widths(full_spec, r), tmp);
    ratio_macs_.push_back(static_cast<double>(probe.macs()));
  }
  costs_.note_storage(static_cast<double>(global_->param_bytes()));
}

double FluidRunner::ratio_for(int client) const {
  const double cap = fleet_[static_cast<std::size_t>(client)].capacity_macs;
  for (std::size_t i = 0; i < ratio_grid_.size(); ++i)
    if (ratio_macs_[i] <= cap) return ratio_grid_[i];
  return ratio_grid_.back();
}

std::vector<std::vector<int>> FluidRunner::kept_for_ratio(double ratio) const {
  std::vector<std::vector<int>> kept;
  kept.reserve(score_.size());
  for (const auto& unit : score_) {
    const int width = static_cast<int>(unit.size());
    const int count = kept_count(width, ratio);
    auto order = iota_vec(width);
    // Keep the most *dynamic* neurons (largest update magnitude); stable
    // sort keeps a deterministic prefix before any updates arrive.
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return unit[static_cast<std::size_t>(a)] >
             unit[static_cast<std::size_t>(b)];
    });
    order.resize(static_cast<std::size_t>(count));
    std::sort(order.begin(), order.end());
    kept.push_back(std::move(order));
  }
  return kept;
}

Model FluidRunner::extract(const std::vector<std::vector<int>>& kept) {
  ModelSpec sub_spec = global_->spec();
  sub_spec.stem_width = static_cast<int>(kept[0].size());
  for (std::size_t l = 0; l < sub_spec.cells.size(); ++l)
    sub_spec.cells[l].width = static_cast<int>(kept[l + 1].size());
  Rng tmp(23);
  Model sub(sub_spec, tmp);
  for_each_mapped_pair(*global_, sub, kept,
                       [](Tensor& ft, Tensor& st, std::int64_t fi,
                          std::int64_t si) { st[si] = ft[fi]; });
  return sub;
}

void FluidRunner::update_scores(const WeightSet& agg_delta) {
  auto fidx = param_index(*global_);
  auto accumulate_unit = [&](Conv2d& conv, std::vector<double>& unit) {
    const Tensor& dw = agg_delta[fidx.at(&conv.weight())];
    const Tensor& db = agg_delta[fidx.at(&conv.bias())];
    const std::int64_t row =
        static_cast<std::int64_t>(conv.in_channels()) * conv.kernel() *
        conv.kernel();
    for (int j = 0; j < conv.out_channels(); ++j) {
      double s2 = 0.0;
      for (std::int64_t e = 0; e < row; ++e) {
        const double v = dw[static_cast<std::int64_t>(j) * row + e];
        s2 += v * v;
      }
      s2 += static_cast<double>(db[j]) * db[j];
      unit[static_cast<std::size_t>(j)] =
          0.7 * unit[static_cast<std::size_t>(j)] + 0.3 * std::sqrt(s2);
    }
  };
  accumulate_unit(*dynamic_cast<Conv2d*>(&global_->stem().layer(0)),
                  score_[0]);
  for (int l = 0; l < global_->num_cells(); ++l)
    for (int b = 0; b < global_->blocks_in_cell(l); ++b)
      accumulate_unit(
          *dynamic_cast<Conv2d*>(&global_->cell_block(l, b).layer(0)),
          score_[static_cast<std::size_t>(l) + 1]);
}

double FluidRunner::run_round() {
  auto selected = FedAvgRunner::select_clients(data_.num_clients(),
                                               cfg_.clients_per_round, rng_);
  WeightSet global_w = global_->weights();
  WeightSet acc = ws_zeros_like(global_w);
  WeightSet wsum = ws_zeros_like(global_w);
  auto fidx = param_index(*global_);

  double loss_sum = 0.0;
  double slowest = 0.0;
  for (int c : selected) {
    const double ratio = ratio_for(c);
    auto kept = kept_for_ratio(ratio);
    Model sub = extract(kept);
    Rng crng = rng_.fork();
    auto res = local_train(sub, data_.client(c), cfg_.local, crng);
    loss_sum += res.avg_loss;

    auto sidx = param_index(sub);
    const float n = static_cast<float>(res.num_samples);
    for_each_mapped_pair(
        *global_, sub, kept,
        [&](Tensor& ft, Tensor& st, std::int64_t fi, std::int64_t si) {
          const std::size_t ai = fidx.at(&ft);
          acc[ai][fi] += n * res.delta[sidx.at(&st)][si];
          wsum[ai][fi] += n;
        });

    const double bytes = static_cast<double>(sub.param_bytes());
    costs_.add_training_macs(res.macs_used);
    costs_.add_transfer(bytes, bytes);
    const double t = client_round_time_s(
        fleet_[static_cast<std::size_t>(c)], static_cast<double>(sub.macs()),
        cfg_.local.steps, cfg_.local.batch, bytes);
    costs_.add_client_round_time(t);
    slowest = std::max(slowest, t);
  }

  // Positional merge, then refresh the invariance scores.
  WeightSet update = ws_zeros_like(global_w);
  for (std::size_t p = 0; p < global_w.size(); ++p)
    for (std::int64_t e = 0; e < global_w[p].numel(); ++e)
      if (wsum[p][e] > 0.0f) update[p][e] = acc[p][e] / wsum[p][e];
  ws_sub(global_w, update);
  global_->set_weights(global_w);
  update_scores(update);

  RoundRecord rec;
  rec.round = round_;
  rec.avg_loss = selected.empty() ? 0.0 : loss_sum / selected.size();
  rec.cum_macs = costs_.total_macs();
  rec.round_time_s = slowest;
  if (cfg_.eval_every > 0 && round_ % cfg_.eval_every == 0) {
    Rng erng(cfg_.seed + 977 + static_cast<std::uint64_t>(round_));
    const int k = cfg_.eval_clients > 0
                      ? std::min(cfg_.eval_clients, data_.num_clients())
                      : data_.num_clients();
    auto ids = FedAvgRunner::select_clients(data_.num_clients(), k, erng);
    double s = 0.0;
    for (int c : ids) {
      Model sub = extract(kept_for_ratio(ratio_for(c)));
      s += evaluate_accuracy(sub, data_.client(c));
    }
    rec.accuracy = s / static_cast<double>(ids.size());
  }
  history_.push_back(rec);
  ++round_;
  return rec.avg_loss;
}

void FluidRunner::run() {
  for (int r = 0; r < cfg_.rounds; ++r) run_round();
}

BaselineReport FluidRunner::report() {
  BaselineReport rep;
  for (int c = 0; c < data_.num_clients(); ++c) {
    Model sub = extract(kept_for_ratio(ratio_for(c)));
    rep.client_accuracy.push_back(evaluate_accuracy(sub, data_.client(c)));
  }
  rep.mean_accuracy = mean(rep.client_accuracy);
  rep.accuracy_iqr = iqr(rep.client_accuracy);
  rep.costs = costs_;
  rep.history = history_;
  return rep;
}

}  // namespace fedtrans
