#include "nn/conv2d.hpp"

#include <cmath>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace fedtrans {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding < 0 ? kernel / 2 : padding),
      has_bias_(bias),
      w_({out_channels, in_channels, kernel, kernel}),
      gw_({out_channels, in_channels, kernel, kernel}),
      b_(bias ? Tensor({out_channels}) : Tensor()),
      gb_(bias ? Tensor({out_channels}) : Tensor()) {
  FT_CHECK(in_c_ > 0 && out_c_ > 0 && k_ > 0 && stride_ > 0 && pad_ >= 0);
}

void Conv2d::init(Rng& rng) {
  const float fan_in = static_cast<float>(in_c_ * k_ * k_);
  const float bound = std::sqrt(6.0f / fan_in);
  w_.rand_uniform(rng, -bound, bound);
  if (has_bias_) b_.zero();
}

void Conv2d::init_identity() {
  FT_CHECK_MSG(in_c_ == out_c_ && k_ % 2 == 1 && stride_ == 1,
               "identity conv requires in==out, odd kernel, stride 1");
  w_.zero();
  const int c = k_ / 2;
  for (int o = 0; o < out_c_; ++o) w_.at(o, o, c, c) = 1.0f;
  if (has_bias_) b_.zero();
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  FT_SPAN("kernel", "conv2d_fwd");
  FT_CHECK_MSG(x.ndim() == 4 && x.dim(1) == in_c_,
               "Conv2d expects [N," << in_c_ << ",H,W]");
  cached_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_hw(h), ow = out_hw(w);
  FT_CHECK_MSG(oh > 0 && ow > 0, "conv output collapsed to zero size");
  Tensor y({n, out_c_, oh, ow});
  if (conv_backend() == ConvBackend::Im2col) {
    const ConvDims d{in_c_, out_c_, k_, stride_, pad_, /*groups=*/1};
    conv_forward_im2col(x, w_, has_bias_ ? &b_ : nullptr, d, y);
  } else {
    forward_direct(x, y);
  }
  return y;
}

void Conv2d::forward_direct(const Tensor& x, Tensor& y) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = y.dim(2), ow = y.dim(3);
  const float* xp = x.data();
  float* yp = y.data();
  const float* wp = w_.data();
  const auto in_plane = static_cast<std::int64_t>(h) * w;
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;
  for (int b = 0; b < n; ++b) {
    const float* xb = xp + b * in_c_ * in_plane;
    float* yb = yp + b * out_c_ * out_plane;
    for (int oc = 0; oc < out_c_; ++oc) {
      const float bias = has_bias_ ? b_[oc] : 0.0f;
      float* yo = yb + oc * out_plane;
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) yo[oy * ow + ox] = bias;
      for (int ic = 0; ic < in_c_; ++ic) {
        const float* xi = xb + ic * in_plane;
        const float* wk = wp + (static_cast<std::int64_t>(oc) * in_c_ + ic) *
                                   k_ * k_;
        for (int ky = 0; ky < k_; ++ky) {
          for (int kx = 0; kx < k_; ++kx) {
            const float wv = wk[ky * k_ + kx];
            if (wv == 0.0f) continue;
            for (int oy = 0; oy < oh; ++oy) {
              const int iy = oy * stride_ - pad_ + ky;
              if (iy < 0 || iy >= h) continue;
              float* yrow = yo + oy * ow;
              const float* xrow = xi + iy * w;
              for (int ox = 0; ox < ow; ++ox) {
                const int ix = ox * stride_ - pad_ + kx;
                if (ix < 0 || ix >= w) continue;
                yrow[ox] += wv * xrow[ix];
              }
            }
          }
        }
      }
    }
  }
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  FT_SPAN("kernel", "conv2d_bwd");
  const Tensor& x = cached_x_;
  FT_CHECK(x.ndim() == 4);
  {
    const int n = x.dim(0);
    const int oh = out_hw(x.dim(2)), ow = out_hw(x.dim(3));
    FT_CHECK(grad_out.ndim() == 4 && grad_out.dim(0) == n &&
             grad_out.dim(1) == out_c_ && grad_out.dim(2) == oh &&
             grad_out.dim(3) == ow);
  }
  if (conv_backend() == ConvBackend::Im2col) {
    const ConvDims d{in_c_, out_c_, k_, stride_, pad_, /*groups=*/1};
    return conv_backward_im2col(x, grad_out, w_, gw_,
                                has_bias_ ? &gb_ : nullptr, d);
  }
  return backward_direct(grad_out);
}

Tensor Conv2d::backward_direct(const Tensor& grad_out) {
  const Tensor& x = cached_x_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_hw(h), ow = out_hw(w);
  Tensor dx({n, in_c_, h, w});
  const auto in_plane = static_cast<std::int64_t>(h) * w;
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;
  const float* gp = grad_out.data();
  const float* xp = x.data();
  const float* wp = w_.data();
  float* gwp = gw_.data();
  float* dxp = dx.data();

  for (int b = 0; b < n; ++b) {
    const float* xb = xp + b * in_c_ * in_plane;
    const float* gb = gp + b * out_c_ * out_plane;
    float* dxb = dxp + b * in_c_ * in_plane;
    for (int oc = 0; oc < out_c_; ++oc) {
      const float* go = gb + oc * out_plane;
      if (has_bias_) {
        double s = 0.0;
        for (std::int64_t i = 0; i < out_plane; ++i) s += go[i];
        gb_[oc] += static_cast<float>(s);
      }
      for (int ic = 0; ic < in_c_; ++ic) {
        const float* xi = xb + ic * in_plane;
        float* dxi = dxb + ic * in_plane;
        const std::int64_t wbase =
            (static_cast<std::int64_t>(oc) * in_c_ + ic) * k_ * k_;
        for (int ky = 0; ky < k_; ++ky) {
          for (int kx = 0; kx < k_; ++kx) {
            const float wv = wp[wbase + ky * k_ + kx];
            double gw_acc = 0.0;
            for (int oy = 0; oy < oh; ++oy) {
              const int iy = oy * stride_ - pad_ + ky;
              if (iy < 0 || iy >= h) continue;
              const float* grow = go + oy * ow;
              const float* xrow = xi + iy * w;
              float* dxrow = dxi + iy * w;
              for (int ox = 0; ox < ow; ++ox) {
                const int ix = ox * stride_ - pad_ + kx;
                if (ix < 0 || ix >= w) continue;
                const float g = grow[ox];
                gw_acc += static_cast<double>(g) * xrow[ix];
                dxrow[ix] += wv * g;
              }
            }
            gwp[wbase + ky * k_ + kx] += static_cast<float>(gw_acc);
          }
        }
      }
    }
  }
  return dx;
}

std::vector<ParamRef> Conv2d::params() {
  std::vector<ParamRef> ps{{&w_, &gw_, "weight"}};
  if (has_bias_) ps.push_back({&b_, &gb_, "bias"});
  return ps;
}

std::int64_t Conv2d::macs(const std::vector<int>& in_shape) const {
  FT_CHECK(in_shape.size() == 3 && in_shape[0] == in_c_);
  const int oh = out_hw(in_shape[1]), ow = out_hw(in_shape[2]);
  return static_cast<std::int64_t>(out_c_) * in_c_ * k_ * k_ * oh * ow;
}

std::vector<int> Conv2d::out_shape(const std::vector<int>& in_shape) const {
  FT_CHECK(in_shape.size() == 3 && in_shape[0] == in_c_);
  return {out_c_, out_hw(in_shape[1]), out_hw(in_shape[2])};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::make_unique<Conv2d>(in_c_, out_c_, k_, stride_, pad_,
                                       has_bias_);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

}  // namespace fedtrans
