#pragma once

#include "nn/layer.hpp"

namespace fedtrans {

/// Max pooling over NCHW input with square window and stride (no padding).
/// Backward routes each output gradient to the arg-max input position
/// (first-wins on exact ties, matching the forward scan order).
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int kernel, int stride = -1 /* -1 = kernel */);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  std::string name() const override { return "MaxPool2d"; }
  std::unique_ptr<Layer> clone() const override;

  int kernel() const { return k_; }
  int stride() const { return stride_; }

 private:
  int out_hw(int in_hw) const { return (in_hw - k_) / stride_ + 1; }

  int k_, stride_;
  std::vector<int> cached_shape_;
  /// Flat input index of the max element for every output element.
  std::vector<std::int64_t> argmax_;
};

/// Average pooling over NCHW input with square window and stride (no
/// padding). Backward spreads each output gradient uniformly over its
/// window.
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(int kernel, int stride = -1 /* -1 = kernel */);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  std::string name() const override { return "AvgPool2d"; }
  std::unique_ptr<Layer> clone() const override;

  int kernel() const { return k_; }
  int stride() const { return stride_; }

 private:
  int out_hw(int in_hw) const { return (in_hw - k_) / stride_ + 1; }

  int k_, stride_;
  std::vector<int> cached_shape_;
};

}  // namespace fedtrans
