#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace fedtrans {

/// Inverted dropout: in training mode each element is zeroed with
/// probability p and survivors are scaled by 1/(1−p); eval mode is the
/// identity. Draws from an internal deterministic Rng (seeded at
/// construction) so whole runs stay replayable — the library's convention
/// of explicit-seed determinism extends to stochastic layers.
class Dropout : public Layer {
 public:
  explicit Dropout(double p, std::uint64_t seed = 0x5eedd12f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  std::string name() const override { return "Dropout"; }
  std::unique_ptr<Layer> clone() const override;

  double p() const { return p_; }

 private:
  double p_;
  std::uint64_t seed_;
  Rng rng_;
  /// Mask of survivor scales (0 or 1/(1−p)); empty after an eval forward.
  std::vector<float> mask_;
};

}  // namespace fedtrans
