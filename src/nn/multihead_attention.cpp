#include "nn/multihead_attention.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

namespace {

// y[rows, out] = x[rows, in] * W^T + b (token-wise projection).
Tensor project(const Tensor& x2d, const Tensor& w, const Tensor& b) {
  const int rows = x2d.dim(0), in = x2d.dim(1), out = w.dim(0);
  Tensor y({rows, out});
  gemm(false, true, rows, out, in, 1.0f, x2d.data(), in, w.data(), in, 0.0f,
       y.data(), out);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < out; ++j) y.at(i, j) += b[j];
  return y;
}

// gW += g^T x; gb += colsum(g); returns dx = g W.
Tensor project_backward(const Tensor& g2d, const Tensor& x2d, const Tensor& w,
                        Tensor& gw, Tensor& gb) {
  const int rows = g2d.dim(0), out = g2d.dim(1), in = x2d.dim(1);
  gemm(true, false, out, in, rows, 1.0f, g2d.data(), out, x2d.data(), in,
       1.0f, gw.data(), in);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < out; ++j) gb[j] += g2d.at(i, j);
  Tensor dx({rows, in});
  gemm(false, false, rows, in, out, 1.0f, g2d.data(), out, w.data(), in, 0.0f,
       dx.data(), in);
  return dx;
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(int dim, int heads)
    : d_(dim),
      h_(heads),
      wq_({dim, dim}), gwq_({dim, dim}), bq_({dim}), gbq_({dim}),
      wk_({dim, dim}), gwk_({dim, dim}), bk_({dim}), gbk_({dim}),
      wv_({dim, dim}), gwv_({dim, dim}), bv_({dim}), gbv_({dim}),
      wo_({dim, dim}), gwo_({dim, dim}), bo_({dim}), gbo_({dim}) {
  FT_CHECK_MSG(dim > 0 && heads > 0 && dim % heads == 0,
               "heads (" << heads << ") must divide dim (" << dim << ")");
}

void MultiHeadAttention::init(Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(d_));
  for (Tensor* w : {&wq_, &wk_, &wv_, &wo_})
    w->rand_uniform(rng, -bound, bound);
  for (Tensor* b : {&bq_, &bk_, &bv_, &bo_}) b->zero();
}

void MultiHeadAttention::zero_output_projection() {
  wo_.zero();
  bo_.zero();
}

Tensor MultiHeadAttention::forward(const Tensor& x, bool /*train*/) {
  FT_CHECK_MSG(x.ndim() == 3 && x.dim(2) == d_,
               "MultiHeadAttention expects [N,T," << d_ << "]");
  x_ = x;
  const int n = x.dim(0), t = x.dim(1), dh = head_dim();
  const Tensor x2d = x.reshape({n * t, d_});
  q_ = project(x2d, wq_, bq_);
  k_ = project(x2d, wk_, bk_);
  v_ = project(x2d, wv_, bv_);

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
  attn_.assign(static_cast<std::size_t>(n) * h_, Tensor({t, t}));
  concat_ = Tensor({n * t, d_});

  for (int b = 0; b < n; ++b) {
    const std::int64_t row0 = static_cast<std::int64_t>(b) * t;
    for (int h = 0; h < h_; ++h) {
      const int off = h * dh;
      const float* qh = q_.data() + row0 * d_ + off;
      const float* kh = k_.data() + row0 * d_ + off;
      const float* vh = v_.data() + row0 * d_ + off;
      Tensor& a = attn_[static_cast<std::size_t>(b) * h_ + h];
      // scores = Q_h K_h^T / sqrt(d_h); per-head slices live inside the
      // packed [T, D] activations, hence lda = D.
      gemm(false, true, t, t, dh, inv_sqrt, qh, d_, kh, d_, 0.0f, a.data(),
           t);
      for (int i = 0; i < t; ++i) {
        float* row = a.data() + static_cast<std::int64_t>(i) * t;
        float mx = row[0];
        for (int j = 1; j < t; ++j) mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (int j = 0; j < t; ++j) {
          row[j] = std::exp(row[j] - mx);
          denom += row[j];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int j = 0; j < t; ++j) row[j] *= inv;
      }
      // O_h = A V_h written straight into the concat slice.
      gemm(false, false, t, dh, t, 1.0f, a.data(), t, vh, d_, 0.0f,
           concat_.data() + row0 * d_ + off, d_);
    }
  }
  Tensor y2d = project(concat_, wo_, bo_);
  return y2d.reshape({n, t, d_});
}

Tensor MultiHeadAttention::backward(const Tensor& grad_out) {
  const int n = x_.dim(0), t = x_.dim(1), dh = head_dim();
  FT_CHECK(grad_out.ndim() == 3 && grad_out.dim(0) == n &&
           grad_out.dim(1) == t && grad_out.dim(2) == d_);
  const Tensor g2d = grad_out.reshape({n * t, d_});
  Tensor d_concat = project_backward(g2d, concat_, wo_, gwo_, gbo_);

  Tensor d_q({n * t, d_}), d_k({n * t, d_}), d_v({n * t, d_});
  Tensor d_a({t, t}), d_s({t, t});
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));

  for (int b = 0; b < n; ++b) {
    const std::int64_t row0 = static_cast<std::int64_t>(b) * t;
    for (int h = 0; h < h_; ++h) {
      const int off = h * dh;
      const float* doh = d_concat.data() + row0 * d_ + off;
      const float* qh = q_.data() + row0 * d_ + off;
      const float* kh = k_.data() + row0 * d_ + off;
      const float* vh = v_.data() + row0 * d_ + off;
      const Tensor& a = attn_[static_cast<std::size_t>(b) * h_ + h];

      // dA = dO_h V_h^T ; dV_h = A^T dO_h.
      gemm(false, true, t, t, dh, 1.0f, doh, d_, vh, d_, 0.0f, d_a.data(),
           t);
      gemm(true, false, t, dh, t, 1.0f, a.data(), t, doh, d_, 0.0f,
           d_v.data() + row0 * d_ + off, d_);

      // Softmax backward per row: dS = A ∘ (dA − Σ_j dA∘A).
      for (int i = 0; i < t; ++i) {
        const float* arow = a.data() + static_cast<std::int64_t>(i) * t;
        const float* darow = d_a.data() + static_cast<std::int64_t>(i) * t;
        float* dsrow = d_s.data() + static_cast<std::int64_t>(i) * t;
        double dot = 0.0;
        for (int j = 0; j < t; ++j)
          dot += static_cast<double>(darow[j]) * arow[j];
        for (int j = 0; j < t; ++j)
          dsrow[j] = arow[j] * (darow[j] - static_cast<float>(dot));
      }

      // dQ_h = dS K_h / sqrt(d_h) ; dK_h = dS^T Q_h / sqrt(d_h).
      gemm(false, false, t, dh, t, inv_sqrt, d_s.data(), t, kh, d_, 0.0f,
           d_q.data() + row0 * d_ + off, d_);
      gemm(true, false, t, dh, t, inv_sqrt, d_s.data(), t, qh, d_, 0.0f,
           d_k.data() + row0 * d_ + off, d_);
    }
  }

  const Tensor x2d = x_.reshape({n * t, d_});
  Tensor dx = project_backward(d_q, x2d, wq_, gwq_, gbq_);
  dx.add_(project_backward(d_k, x2d, wk_, gwk_, gbk_));
  dx.add_(project_backward(d_v, x2d, wv_, gwv_, gbv_));
  return dx.reshape({n, t, d_});
}

std::vector<ParamRef> MultiHeadAttention::params() {
  return {{&wq_, &gwq_, "wq"}, {&bq_, &gbq_, "bq"}, {&wk_, &gwk_, "wk"},
          {&bk_, &gbk_, "bk"}, {&wv_, &gwv_, "wv"}, {&bv_, &gbv_, "bv"},
          {&wo_, &gwo_, "wo"}, {&bo_, &gbo_, "bo"}};
}

std::int64_t MultiHeadAttention::macs(
    const std::vector<int>& in_shape) const {
  FT_CHECK(in_shape.size() == 2 && in_shape[1] == d_);
  const std::int64_t t = in_shape[0];
  // Four D×D projections per token + two T×T×d_h einsums per head.
  return 4 * t * static_cast<std::int64_t>(d_) * d_ +
         2 * h_ * t * t * head_dim();
}

std::unique_ptr<Layer> MultiHeadAttention::clone() const {
  auto copy = std::make_unique<MultiHeadAttention>(d_, h_);
  copy->wq_ = wq_;
  copy->bq_ = bq_;
  copy->wk_ = wk_;
  copy->bk_ = bk_;
  copy->wv_ = wv_;
  copy->bv_ = bv_;
  copy->wo_ = wo_;
  copy->bo_ = bo_;
  return copy;
}

}  // namespace fedtrans
