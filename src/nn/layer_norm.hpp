#pragma once

#include "nn/layer.hpp"

namespace fedtrans {

/// Layer normalization over the last axis with learnable affine: for every
/// leading-index slice (a sample of [N,D] or a token of [N,T,D]),
///   y = gamma ⊙ (x − mean) / sqrt(var + eps) + beta.
/// This is the transformer-standard normalizer (the paper's ViT experiment,
/// Table 4); unlike BatchNorm it carries no running statistics, so it is
/// FedAvg-aggregation-safe and deterministic.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(int dim, double eps = 1e-5);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  std::string name() const override { return "LayerNorm"; }
  std::unique_ptr<Layer> clone() const override;

  int dim() const { return d_; }
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }

 private:
  int d_;
  double eps_;
  Tensor gamma_, g_gamma_;
  Tensor beta_, g_beta_;
  // Backward caches.
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
};

}  // namespace fedtrans
