#pragma once

#include "nn/im2col.hpp"
#include "nn/layer.hpp"

namespace fedtrans {

/// 2-D convolution over NCHW input. Weight layout [out_c, in_c, k, k];
/// square kernel, symmetric padding. Forward/backward lower onto the blocked
/// GEMM via im2col/col2im by default; the original direct loop nest is kept
/// as a reference implementation selectable through set_conv_backend() for
/// parity testing.
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride = 1,
         int padding = -1 /* -1 = same (k/2) */, bool bias = true);

  /// He-uniform initialization.
  void init(Rng& rng);
  /// Dirac-delta identity initialization (used by function-preserving
  /// deepen on non-residual cells). Requires in==out and odd kernel.
  void init_identity();

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>& in_shape) const override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;
  std::string name() const override { return "Conv2d"; }
  std::unique_ptr<Layer> clone() const override;

  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }
  int kernel() const { return k_; }
  int stride() const { return stride_; }
  int padding() const { return pad_; }
  bool has_bias() const { return has_bias_; }

  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  int out_hw(int in_hw) const { return (in_hw + 2 * pad_ - k_) / stride_ + 1; }
  void forward_direct(const Tensor& x, Tensor& y);
  Tensor backward_direct(const Tensor& grad_out);

  int in_c_, out_c_, k_, stride_, pad_;
  bool has_bias_;
  Tensor w_, gw_;
  Tensor b_, gb_;
  Tensor cached_x_;
};

}  // namespace fedtrans
