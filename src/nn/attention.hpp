#pragma once

#include "nn/layer.hpp"

namespace fedtrans {

/// Single-head self-attention over token input [N, T, D]:
///   Y = softmax(QK^T / sqrt(D)) V Wo^T + bo,  Q/K/V = X W{q,k,v}^T + b.
/// Used as the attention half of a transformer block (the model wraps it in
/// a residual Block). Weights are [D, D] like Linear ([out, in]).
class Attention : public Layer {
 public:
  explicit Attention(int dim);

  void init(Rng& rng);
  /// Zero the output projection so the (residual) block starts as identity —
  /// the function-preserving deepen initialization for transformer cells.
  void zero_output_projection();

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>& in_shape) const override;
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  std::string name() const override { return "Attention"; }
  std::unique_ptr<Layer> clone() const override;

  int dim() const { return d_; }

 private:
  int d_;
  Tensor wq_, gwq_, bq_, gbq_;
  Tensor wk_, gwk_, bk_, gbk_;
  Tensor wv_, gwv_, bv_, gbv_;
  Tensor wo_, gwo_, bo_, gbo_;
  // forward caches
  Tensor x_, q_, k_, v_, attn_, o_;
};

/// Position-wise 2-layer MLP over tokens [N, T, D]:
///   y = ReLU(x W1^T + b1) W2^T + b2, hidden width `hidden`.
/// The transformable width of an Attention Cell is this hidden dimension.
class TokenMlp : public Layer {
 public:
  TokenMlp(int dim, int hidden);

  void init(Rng& rng);
  /// Zero the second linear for identity (residual) insertion.
  void zero_output_projection();

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>& in_shape) const override;
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  std::string name() const override { return "TokenMlp"; }
  std::unique_ptr<Layer> clone() const override;

  int dim() const { return d_; }
  int hidden() const { return h_; }
  Tensor& w1() { return w1_; }
  Tensor& b1() { return b1_; }
  Tensor& w2() { return w2_; }

 private:
  int d_, h_;
  Tensor w1_, gw1_, b1_, gb1_;
  Tensor w2_, gw2_, b2_, gb2_;
  Tensor x_, hpre_, hact_;
};

/// [N, C, H, W] (patch-embedded feature map) -> tokens [N, T=H*W, C].
class PatchToTokens : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  std::string name() const override { return "PatchToTokens"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<PatchToTokens>();
  }

 private:
  std::vector<int> cached_shape_;
};

/// Mean over the token axis: [N, T, D] -> [N, D].
class MeanTokens : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  std::string name() const override { return "MeanTokens"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MeanTokens>();
  }

 private:
  std::vector<int> cached_shape_;
};

}  // namespace fedtrans
