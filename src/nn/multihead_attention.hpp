#pragma once

#include "nn/layer.hpp"

namespace fedtrans {

/// Multi-head self-attention over tokens [N, T, D]:
///   head h: O_h = softmax(Q_h K_h^T / sqrt(d_h)) V_h,
///           Q_h = X Wq_h^T + bq_h (Wq_h is [d_h, D], d_h = D / heads),
///   Y = concat(O_1..O_H) Wo^T + bo.
/// The single-head Attention layer is the Cell the FedTrans ViT experiment
/// transforms; this is the full transformer-standard generalization for
/// custom architectures (examples/custom_vit.cpp). heads == 1 reduces to
/// the same function as Attention.
class MultiHeadAttention : public Layer {
 public:
  MultiHeadAttention(int dim, int heads);

  void init(Rng& rng);
  /// Zero the output projection so a residual wrapper starts as identity.
  void zero_output_projection();

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>& in_shape) const override;
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  std::string name() const override { return "MultiHeadAttention"; }
  std::unique_ptr<Layer> clone() const override;

  int dim() const { return d_; }
  int heads() const { return h_; }
  int head_dim() const { return d_ / h_; }

 private:
  int d_, h_;
  // Packed projections: wq_/wk_/wv_ are [D, D] with rows grouped by head
  // (head h owns rows [h*dh, (h+1)*dh)); wo_ is [D, D] with *columns*
  // grouped by head.
  Tensor wq_, gwq_, bq_, gbq_;
  Tensor wk_, gwk_, bk_, gbk_;
  Tensor wv_, gwv_, bv_, gbv_;
  Tensor wo_, gwo_, bo_, gbo_;
  // Forward caches (per step).
  Tensor x_, q_, k_, v_, concat_;
  std::vector<Tensor> attn_;  // per (batch × head) attention matrix [T, T]
};

}  // namespace fedtrans
