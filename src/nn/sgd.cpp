#include "nn/sgd.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

Sgd::Sgd(std::vector<ParamRef> params, SgdOptions opts)
    : params_(std::move(params)), opts_(opts) {
  FT_CHECK(opts_.lr > 0.0);
  FT_CHECK(opts_.loss_scale > 0.0);
  if (opts_.momentum > 0.0) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
  }
  if (opts_.prox_mu > 0.0) set_prox_anchor();
}

void Sgd::set_prox_anchor() {
  anchor_.clear();
  anchor_.reserve(params_.size());
  for (const auto& p : params_) anchor_.push_back(*p.value);
}

void Sgd::step() {
  if (opts_.loss_scale != 1.0) {
    const float inv = static_cast<float>(1.0 / opts_.loss_scale);
    for (auto& p : params_) p.grad->mul_(inv);
  }
  if (opts_.clip_norm > 0.0) {
    double total = 0.0;
    for (auto& p : params_) {
      const double n = p.grad->l2_norm();
      total += n * n;
    }
    total = std::sqrt(total);
    if (total > opts_.clip_norm) {
      const float scale = static_cast<float>(opts_.clip_norm / total);
      for (auto& p : params_) p.grad->mul_(scale);
    }
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i].value;
    Tensor& g = *params_[i].grad;
    FT_CHECK(w.same_shape(g));
    if (opts_.weight_decay > 0.0)
      g.axpy_(static_cast<float>(opts_.weight_decay), w);
    if (opts_.prox_mu > 0.0) {
      FT_CHECK_MSG(anchor_.size() == params_.size(),
                   "prox anchor not captured");
      // g += μ (w − anchor)
      for (std::int64_t j = 0; j < w.numel(); ++j)
        g[j] += static_cast<float>(opts_.prox_mu) * (w[j] - anchor_[i][j]);
    }
    if (opts_.momentum > 0.0) {
      Tensor& v = velocity_[i];
      v.mul_(static_cast<float>(opts_.momentum));
      v.add_(g);
      w.axpy_(static_cast<float>(-opts_.lr), v);
    } else {
      w.axpy_(static_cast<float>(-opts_.lr), g);
    }
    g.zero();
  }
}

}  // namespace fedtrans
