#pragma once

#include "nn/layer.hpp"

namespace fedtrans {

/// Fully connected layer: y = x W^T + b, with x:[N,in], W:[out,in], b:[out].
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, bool bias = true);

  /// He-uniform initialization (suited to the ReLU networks we build).
  void init(Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>& in_shape) const override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;
  std::string name() const override { return "Linear"; }
  std::unique_ptr<Layer> clone() const override;

  int in_features() const { return in_; }
  int out_features() const { return out_; }
  bool has_bias() const { return has_bias_; }

  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  int in_, out_;
  bool has_bias_;
  Tensor w_, gw_;
  Tensor b_, gb_;
  Tensor cached_x_;
};

}  // namespace fedtrans
