#include "nn/layer_norm.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

LayerNorm::LayerNorm(int dim, double eps)
    : d_(dim),
      eps_(eps),
      gamma_({dim}, 1.0f),
      g_gamma_({dim}),
      beta_({dim}),
      g_beta_({dim}) {
  FT_CHECK(dim > 0 && eps > 0.0);
}

Tensor LayerNorm::forward(const Tensor& x, bool /*train*/) {
  FT_CHECK_MSG(x.ndim() >= 2 && x.dim(x.ndim() - 1) == d_,
               "LayerNorm expects [..., " << d_ << "]");
  const std::int64_t rows = x.numel() / d_;
  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_.assign(static_cast<std::size_t>(rows), 0.0f);

  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t base = r * d_;
    double sum = 0.0, sq = 0.0;
    for (int j = 0; j < d_; ++j) {
      const double e = x[base + j];
      sum += e;
      sq += e * e;
    }
    const double mean = sum / d_;
    double var = sq / d_ - mean * mean;
    if (var < 0.0) var = 0.0;
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    cached_inv_std_[static_cast<std::size_t>(r)] = inv_std;
    for (int j = 0; j < d_; ++j) {
      const float xhat =
          (x[base + j] - static_cast<float>(mean)) * inv_std;
      cached_xhat_[base + j] = xhat;
      y[base + j] = gamma_[j] * xhat + beta_[j];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  FT_CHECK_MSG(grad_out.same_shape(cached_xhat_),
               "LayerNorm::backward shape mismatch");
  const std::int64_t rows = grad_out.numel() / d_;
  Tensor dx(grad_out.shape());
  const double n = static_cast<double>(d_);

  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t base = r * d_;
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(r)];
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (int j = 0; j < d_; ++j) {
      const double dy = grad_out[base + j];
      const double dxhat = dy * gamma_[j];
      g_gamma_[j] += static_cast<float>(dy * cached_xhat_[base + j]);
      g_beta_[j] += static_cast<float>(dy);
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * cached_xhat_[base + j];
    }
    for (int j = 0; j < d_; ++j) {
      const double dxhat =
          static_cast<double>(grad_out[base + j]) * gamma_[j];
      dx[base + j] = static_cast<float>(
          inv_std * (dxhat - sum_dxhat / n -
                     cached_xhat_[base + j] * sum_dxhat_xhat / n));
    }
  }
  return dx;
}

std::vector<ParamRef> LayerNorm::params() {
  return {{&gamma_, &g_gamma_, "gamma"}, {&beta_, &g_beta_, "beta"}};
}

std::unique_ptr<Layer> LayerNorm::clone() const {
  auto copy = std::make_unique<LayerNorm>(d_, eps_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  return copy;
}

}  // namespace fedtrans
