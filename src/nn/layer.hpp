#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedtrans {

/// A named (weight, gradient) pair exposed by a layer. Gradients are
/// accumulated by backward() and cleared with Layer::zero_grad().
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

/// Minimal trainable-layer interface. forward() may cache activations needed
/// by the immediately following backward() — layers are single-use per step
/// (no double-buffering), which matches the sequential training loop.
class Layer {
 public:
  virtual ~Layer() = default;

  /// `train` enables behaviours that differ between train/eval (none of the
  /// current layers differ, but the flag is part of the public contract).
  virtual Tensor forward(const Tensor& x, bool train) = 0;
  /// Given dLoss/dOutput, accumulate parameter gradients and return
  /// dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<ParamRef> params() { return {}; }
  /// Multiply-accumulate operations per *single sample* given the input
  /// shape without the batch dimension (e.g. {C,H,W}).
  virtual std::int64_t macs(const std::vector<int>& in_shape) const = 0;
  /// Output shape (without batch dimension) for the given input shape.
  virtual std::vector<int> out_shape(const std::vector<int>& in_shape) const = 0;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<Layer> clone() const = 0;

  void zero_grad() {
    for (auto& p : params())
      if (p.grad) p.grad->zero();
  }

  std::int64_t num_params() {
    std::int64_t n = 0;
    for (auto& p : params()) n += p.value->numel();
    return n;
  }
};

}  // namespace fedtrans
