#include "nn/grouped_conv2d.hpp"

#include <cmath>

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "nn/activations.hpp"
#include "nn/sequential.hpp"

namespace fedtrans {

namespace {

// Validated in-channels-per-group; runs before any member that divides by
// `groups` is initialized (a plain constructor-body check would come too
// late — the weight-tensor initializer already divides).
int checked_group_channels(int in_channels, int out_channels, int groups) {
  FT_CHECK_MSG(groups > 0 && in_channels > 0 && out_channels > 0 &&
                   in_channels % groups == 0 && out_channels % groups == 0,
               "groups must divide both channel counts (" << in_channels
                                                          << ", "
                                                          << out_channels
                                                          << ")");
  return in_channels / groups;
}

}  // namespace

GroupedConv2d::GroupedConv2d(int in_channels, int out_channels, int kernel,
                             int groups, int stride, int padding, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      groups_(groups),
      stride_(stride),
      pad_(padding < 0 ? kernel / 2 : padding),
      has_bias_(bias),
      w_({out_channels, checked_group_channels(in_channels, out_channels,
                                               groups),
          kernel, kernel}),
      gw_({out_channels, in_channels / groups, kernel, kernel}),
      b_(bias ? Tensor({out_channels}) : Tensor()),
      gb_(bias ? Tensor({out_channels}) : Tensor()) {
  FT_CHECK(k_ > 0 && stride_ > 0 && pad_ >= 0);
}

void GroupedConv2d::init(Rng& rng) {
  const float fan_in = static_cast<float>((in_c_ / groups_) * k_ * k_);
  const float bound = std::sqrt(6.0f / fan_in);
  w_.rand_uniform(rng, -bound, bound);
  if (has_bias_) b_.zero();
}

Tensor GroupedConv2d::forward(const Tensor& x, bool /*train*/) {
  FT_SPAN("kernel", "grouped_conv2d_fwd");
  FT_CHECK_MSG(x.ndim() == 4 && x.dim(1) == in_c_,
               "GroupedConv2d expects [N," << in_c_ << ",H,W]");
  cached_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_hw(h), ow = out_hw(w);
  FT_CHECK_MSG(oh > 0 && ow > 0, "conv output collapsed to zero size");
  Tensor y({n, out_c_, oh, ow});
  if (conv_backend() == ConvBackend::Im2col) {
    const ConvDims d{in_c_, out_c_, k_, stride_, pad_, groups_};
    conv_forward_im2col(x, w_, has_bias_ ? &b_ : nullptr, d, y);
  } else {
    forward_direct(x, y);
  }
  return y;
}

void GroupedConv2d::forward_direct(const Tensor& x, Tensor& y) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = y.dim(2), ow = y.dim(3);
  const int icg = in_c_ / groups_;  // in channels per group
  const int ocg = out_c_ / groups_;

  const auto in_plane = static_cast<std::int64_t>(h) * w;
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;
  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + b * in_c_ * in_plane;
    float* yb = y.data() + b * out_c_ * out_plane;
    for (int oc = 0; oc < out_c_; ++oc) {
      const int g = oc / ocg;
      const float bias = has_bias_ ? b_[oc] : 0.0f;
      float* yo = yb + oc * out_plane;
      for (std::int64_t i = 0; i < out_plane; ++i) yo[i] = bias;
      for (int icl = 0; icl < icg; ++icl) {  // channel index within group
        const int ic = g * icg + icl;
        const float* xi = xb + ic * in_plane;
        const float* wk =
            w_.data() +
            (static_cast<std::int64_t>(oc) * icg + icl) * k_ * k_;
        for (int ky = 0; ky < k_; ++ky)
          for (int kx = 0; kx < k_; ++kx) {
            const float wv = wk[ky * k_ + kx];
            if (wv == 0.0f) continue;
            for (int oy = 0; oy < oh; ++oy) {
              const int iy = oy * stride_ - pad_ + ky;
              if (iy < 0 || iy >= h) continue;
              float* yrow = yo + oy * ow;
              const float* xrow = xi + iy * w;
              for (int ox = 0; ox < ow; ++ox) {
                const int ix = ox * stride_ - pad_ + kx;
                if (ix < 0 || ix >= w) continue;
                yrow[ox] += wv * xrow[ix];
              }
            }
          }
      }
    }
  }
}

Tensor GroupedConv2d::backward(const Tensor& grad_out) {
  FT_SPAN("kernel", "grouped_conv2d_bwd");
  const Tensor& x = cached_x_;
  FT_CHECK(x.ndim() == 4);
  {
    const int n = x.dim(0);
    const int oh = out_hw(x.dim(2)), ow = out_hw(x.dim(3));
    FT_CHECK(grad_out.ndim() == 4 && grad_out.dim(0) == n &&
             grad_out.dim(1) == out_c_ && grad_out.dim(2) == oh &&
             grad_out.dim(3) == ow);
  }
  if (conv_backend() == ConvBackend::Im2col) {
    const ConvDims d{in_c_, out_c_, k_, stride_, pad_, groups_};
    return conv_backward_im2col(x, grad_out, w_, gw_,
                                has_bias_ ? &gb_ : nullptr, d);
  }
  return backward_direct(grad_out);
}

Tensor GroupedConv2d::backward_direct(const Tensor& grad_out) {
  const Tensor& x = cached_x_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_hw(h), ow = out_hw(w);
  const int icg = in_c_ / groups_;
  const int ocg = out_c_ / groups_;

  Tensor dx({n, in_c_, h, w});
  const auto in_plane = static_cast<std::int64_t>(h) * w;
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;

  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + b * in_c_ * in_plane;
    const float* gbatch = grad_out.data() + b * out_c_ * out_plane;
    float* dxb = dx.data() + b * in_c_ * in_plane;
    for (int oc = 0; oc < out_c_; ++oc) {
      const int g = oc / ocg;
      const float* go = gbatch + oc * out_plane;
      if (has_bias_) {
        double s = 0.0;
        for (std::int64_t i = 0; i < out_plane; ++i) s += go[i];
        gb_[oc] += static_cast<float>(s);
      }
      for (int icl = 0; icl < icg; ++icl) {
        const int ic = g * icg + icl;
        const float* xi = xb + ic * in_plane;
        float* dxi = dxb + ic * in_plane;
        const std::int64_t wbase =
            (static_cast<std::int64_t>(oc) * icg + icl) * k_ * k_;
        for (int ky = 0; ky < k_; ++ky)
          for (int kx = 0; kx < k_; ++kx) {
            const float wv = w_[wbase + ky * k_ + kx];
            double gw_acc = 0.0;
            for (int oy = 0; oy < oh; ++oy) {
              const int iy = oy * stride_ - pad_ + ky;
              if (iy < 0 || iy >= h) continue;
              const float* grow = go + oy * ow;
              const float* xrow = xi + iy * w;
              float* dxrow = dxi + iy * w;
              for (int ox = 0; ox < ow; ++ox) {
                const int ix = ox * stride_ - pad_ + kx;
                if (ix < 0 || ix >= w) continue;
                const float gval = grow[ox];
                gw_acc += static_cast<double>(gval) * xrow[ix];
                dxrow[ix] += wv * gval;
              }
            }
            gw_[wbase + ky * k_ + kx] += static_cast<float>(gw_acc);
          }
      }
    }
  }
  return dx;
}

std::vector<ParamRef> GroupedConv2d::params() {
  std::vector<ParamRef> ps{{&w_, &gw_, "weight"}};
  if (has_bias_) ps.push_back({&b_, &gb_, "bias"});
  return ps;
}

std::int64_t GroupedConv2d::macs(const std::vector<int>& in_shape) const {
  FT_CHECK(in_shape.size() == 3 && in_shape[0] == in_c_);
  const int oh = out_hw(in_shape[1]), ow = out_hw(in_shape[2]);
  return static_cast<std::int64_t>(out_c_) * (in_c_ / groups_) * k_ * k_ *
         oh * ow;
}

std::vector<int> GroupedConv2d::out_shape(
    const std::vector<int>& in_shape) const {
  FT_CHECK(in_shape.size() == 3 && in_shape[0] == in_c_);
  return {out_c_, out_hw(in_shape[1]), out_hw(in_shape[2])};
}

std::unique_ptr<Layer> GroupedConv2d::clone() const {
  auto copy = std::make_unique<GroupedConv2d>(in_c_, out_c_, k_, groups_,
                                              stride_, pad_, has_bias_);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

std::unique_ptr<Conv2d> GroupedConv2d::to_dense() const {
  auto dense =
      std::make_unique<Conv2d>(in_c_, out_c_, k_, stride_, pad_, has_bias_);
  dense->weight().zero();
  const int icg = in_c_ / groups_;
  const int ocg = out_c_ / groups_;
  for (int oc = 0; oc < out_c_; ++oc) {
    const int g = oc / ocg;
    for (int icl = 0; icl < icg; ++icl) {
      const int ic = g * icg + icl;
      for (int ky = 0; ky < k_; ++ky)
        for (int kx = 0; kx < k_; ++kx)
          dense->weight().at(oc, ic, ky, kx) = w_.at(oc, icl, ky, kx);
    }
  }
  if (has_bias_) dense->bias() = b_;
  return dense;
}

std::unique_ptr<Layer> make_depthwise_separable(int in_channels,
                                                int out_channels, int kernel,
                                                int stride, Rng& rng) {
  auto dw = std::make_unique<GroupedConv2d>(in_channels, in_channels, kernel,
                                            /*groups=*/in_channels, stride);
  dw->init(rng);
  auto pw = std::make_unique<Conv2d>(in_channels, out_channels, /*kernel=*/1,
                                     /*stride=*/1, /*padding=*/0);
  pw->init(rng);
  auto seq = std::make_unique<Sequential>();
  seq->add(std::move(dw));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::move(pw));
  return seq;
}

}  // namespace fedtrans
