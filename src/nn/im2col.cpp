#include "nn/im2col.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace fedtrans {

namespace {

ConvBackend initial_backend() {
  if (const char* env = std::getenv("FEDTRANS_CONV_BACKEND")) {
    if (std::strcmp(env, "direct") == 0) return ConvBackend::Direct;
  }
  return ConvBackend::Im2col;
}

std::atomic<ConvBackend> g_backend{initial_backend()};

inline int conv_out(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

// Column-buffer budget for the batched lowering: images are tiled so one
// group's [ckk, bt·oh·ow] panel stays within this many bytes.
constexpr std::int64_t kColBudgetBytes = 8 << 20;

}  // namespace

ConvBackend conv_backend() { return g_backend.load(std::memory_order_relaxed); }
void set_conv_backend(ConvBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

void im2col(const float* im, int channels, int h, int w, int kernel,
            int stride, int pad, float* col, std::int64_t ld) {
  const int oh = conv_out(h, kernel, stride, pad);
  const int ow = conv_out(w, kernel, stride, pad);
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;
  if (ld < 0) ld = out_plane;
  float* row_base = col;
  for (int c = 0; c < channels; ++c) {
    const float* imc = im + static_cast<std::int64_t>(c) * h * w;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        float* out = row_base;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= h) {
            std::memset(out, 0, static_cast<std::size_t>(ow) * sizeof(float));
            out += ow;
            continue;
          }
          const float* row = imc + static_cast<std::int64_t>(iy) * w;
          if (pad == 0 && stride == 1) {
            // Fully in-bounds fast path: a contiguous copy.
            std::memcpy(out, row + kx,
                        static_cast<std::size_t>(ow) * sizeof(float));
          } else {
            for (int ox = 0; ox < ow; ++ox) {
              const int ix = ox * stride - pad + kx;
              out[ox] = (ix >= 0 && ix < w) ? row[ix] : 0.0f;
            }
          }
          out += ow;
        }
        row_base += ld;
      }
    }
  }
}

void col2im(const float* col, int channels, int h, int w, int kernel,
            int stride, int pad, float* im, std::int64_t ld) {
  const int oh = conv_out(h, kernel, stride, pad);
  const int ow = conv_out(w, kernel, stride, pad);
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;
  if (ld < 0) ld = out_plane;
  const float* row_base = col;
  for (int c = 0; c < channels; ++c) {
    float* imc = im + static_cast<std::int64_t>(c) * h * w;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        const float* in = row_base;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= h) {
            in += ow;
            continue;
          }
          float* row = imc + static_cast<std::int64_t>(iy) * w;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * stride - pad + kx;
            if (ix >= 0 && ix < w) row[ix] += in[ox];
          }
          in += ow;
        }
        row_base += ld;
      }
    }
  }
}

// Both lowerings batch the whole image tile into ONE [ckk, bt·oh·ow] column
// panel per group before calling gemm. Per-(image, group) GEMMs — the
// historical shape — have N = oh·ow, which for FedTrans's narrow grouped
// models is far too small to amortize panel packing (most fell through to
// the plain-loop path entirely); concatenating the batch along N restores a
// dense-sized GEMM per group. Each output element's K-dot runs in the same
// ascending order as before, so forward results are unchanged and backward
// only reassociates the gW batch sum (covered by tolerance parity tests).

void conv_forward_im2col(const Tensor& x, const Tensor& w, const Tensor* bias,
                         const ConvDims& d, Tensor& y) {
  const int n = x.dim(0), h = x.dim(2), wdt = x.dim(3);
  const int oh = y.dim(2), ow = y.dim(3);
  const int icg = d.in_c / d.groups;
  const int ocg = d.out_c / d.groups;
  const int ckk = icg * d.kernel * d.kernel;
  const auto in_plane = static_cast<std::int64_t>(h) * wdt;
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;

  const int bt_max = std::max<int>(
      1, static_cast<int>(kColBudgetBytes /
                          (static_cast<std::int64_t>(sizeof(float)) *
                           std::max(ckk, 1) * std::max<std::int64_t>(out_plane, 1))));
  thread_local std::vector<float> col;
  thread_local std::vector<float> ybuf;

  for (int b0 = 0; b0 < n; b0 += bt_max) {
    const int bt = std::min(bt_max, n - b0);
    const auto ncols = static_cast<std::int64_t>(bt) * out_plane;
    col.resize(static_cast<std::size_t>(ckk) * ncols);
    for (int g = 0; g < d.groups; ++g) {
      for (int bi = 0; bi < bt; ++bi)
        im2col(x.data() +
                   (static_cast<std::int64_t>(b0 + bi) * d.in_c + g * icg) *
                       in_plane,
               icg, h, wdt, d.kernel, d.stride, d.pad,
               col.data() + static_cast<std::int64_t>(bi) * out_plane, ncols);
      const float* w_g = w.data() + static_cast<std::int64_t>(g) * ocg * ckk;
      if (bt == 1) {
        // Single image: gemm writes straight into y's [oc, oh·ow] rows.
        gemm(false, false, ocg, static_cast<int>(out_plane), ckk, 1.0f, w_g,
             ckk, col.data(), static_cast<int>(out_plane), 0.0f,
             y.data() + (static_cast<std::int64_t>(b0) * d.out_c + g * ocg) *
                            out_plane,
             static_cast<int>(out_plane));
      } else {
        ybuf.resize(static_cast<std::size_t>(ocg) * ncols);
        gemm(false, false, ocg, static_cast<int>(ncols), ckk, 1.0f, w_g, ckk,
             col.data(), static_cast<int>(ncols), 0.0f, ybuf.data(),
             static_cast<int>(ncols));
        // Scatter the [ocg, bt·oh·ow] panel back to NCHW.
        for (int bi = 0; bi < bt; ++bi) {
          float* yb =
              y.data() +
              (static_cast<std::int64_t>(b0 + bi) * d.out_c + g * ocg) *
                  out_plane;
          for (int oc = 0; oc < ocg; ++oc)
            std::memcpy(yb + static_cast<std::int64_t>(oc) * out_plane,
                        ybuf.data() + static_cast<std::int64_t>(oc) * ncols +
                            static_cast<std::int64_t>(bi) * out_plane,
                        static_cast<std::size_t>(out_plane) * sizeof(float));
        }
      }
    }
  }

  if (bias) {
    for (int b = 0; b < n; ++b) {
      float* yb = y.data() + static_cast<std::int64_t>(b) * d.out_c * out_plane;
      for (int oc = 0; oc < d.out_c; ++oc) {
        const float bv = (*bias)[oc];
        float* row = yb + static_cast<std::int64_t>(oc) * out_plane;
        for (std::int64_t i = 0; i < out_plane; ++i) row[i] += bv;
      }
    }
  }
}

Tensor conv_backward_im2col(const Tensor& x, const Tensor& grad_out,
                            const Tensor& w, Tensor& gw, Tensor* gb,
                            const ConvDims& d) {
  const int n = x.dim(0), h = x.dim(2), wdt = x.dim(3);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  const int icg = d.in_c / d.groups;
  const int ocg = d.out_c / d.groups;
  const int ckk = icg * d.kernel * d.kernel;
  const auto in_plane = static_cast<std::int64_t>(h) * wdt;
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;

  Tensor dx({n, d.in_c, h, wdt});

  if (gb) {
    for (int b = 0; b < n; ++b) {
      const float* gob =
          grad_out.data() + static_cast<std::int64_t>(b) * d.out_c * out_plane;
      for (int oc = 0; oc < d.out_c; ++oc) {
        const float* go = gob + static_cast<std::int64_t>(oc) * out_plane;
        double s = 0.0;
        for (std::int64_t i = 0; i < out_plane; ++i) s += go[i];
        (*gb)[oc] += static_cast<float>(s);
      }
    }
  }

  const int bt_max = std::max<int>(
      1, static_cast<int>(kColBudgetBytes /
                          (static_cast<std::int64_t>(sizeof(float)) *
                           std::max(ckk, 1) * std::max<std::int64_t>(out_plane, 1))));
  thread_local std::vector<float> col;
  thread_local std::vector<float> dcol;
  thread_local std::vector<float> gobuf;

  for (int b0 = 0; b0 < n; b0 += bt_max) {
    const int bt = std::min(bt_max, n - b0);
    const auto ncols = static_cast<std::int64_t>(bt) * out_plane;
    col.resize(static_cast<std::size_t>(ckk) * ncols);
    dcol.resize(static_cast<std::size_t>(ckk) * ncols);
    for (int g = 0; g < d.groups; ++g) {
      for (int bi = 0; bi < bt; ++bi)
        im2col(x.data() +
                   (static_cast<std::int64_t>(b0 + bi) * d.in_c + g * icg) *
                       in_plane,
               icg, h, wdt, d.kernel, d.stride, d.pad,
               col.data() + static_cast<std::int64_t>(bi) * out_plane, ncols);
      // Gather dY_g for the tile into a [ocg, bt·oh·ow] panel (for bt == 1
      // grad_out's own rows already have that layout).
      const float* go_g;
      if (bt == 1) {
        go_g = grad_out.data() +
               (static_cast<std::int64_t>(b0) * d.out_c + g * ocg) * out_plane;
      } else {
        gobuf.resize(static_cast<std::size_t>(ocg) * ncols);
        for (int bi = 0; bi < bt; ++bi) {
          const float* gob =
              grad_out.data() +
              (static_cast<std::int64_t>(b0 + bi) * d.out_c + g * ocg) *
                  out_plane;
          for (int oc = 0; oc < ocg; ++oc)
            std::memcpy(gobuf.data() + static_cast<std::int64_t>(oc) * ncols +
                            static_cast<std::int64_t>(bi) * out_plane,
                        gob + static_cast<std::int64_t>(oc) * out_plane,
                        static_cast<std::size_t>(out_plane) * sizeof(float));
        }
        go_g = gobuf.data();
      }
      const float* w_g = w.data() + static_cast<std::int64_t>(g) * ocg * ckk;
      float* gw_g = gw.data() + static_cast<std::int64_t>(g) * ocg * ckk;
      // gW_g += dY_g · colᵀ (one batch-wide K reduction per tile)
      gemm(false, true, ocg, ckk, static_cast<int>(ncols), 1.0f, go_g,
           static_cast<int>(ncols), col.data(), static_cast<int>(ncols), 1.0f,
           gw_g, ckk);
      // dcol = W_gᵀ · dY_g, then scatter each image back into dx.
      gemm(true, false, ckk, static_cast<int>(ncols), ocg, 1.0f, w_g, ckk,
           go_g, static_cast<int>(ncols), 0.0f, dcol.data(),
           static_cast<int>(ncols));
      for (int bi = 0; bi < bt; ++bi)
        col2im(dcol.data() + static_cast<std::int64_t>(bi) * out_plane, icg, h,
               wdt, d.kernel, d.stride, d.pad,
               dx.data() +
                   (static_cast<std::int64_t>(b0 + bi) * d.in_c + g * icg) *
                       in_plane,
               ncols);
    }
  }
  return dx;
}

}  // namespace fedtrans
