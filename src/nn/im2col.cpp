#include "nn/im2col.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace fedtrans {

namespace {

ConvBackend initial_backend() {
  if (const char* env = std::getenv("FEDTRANS_CONV_BACKEND")) {
    if (std::strcmp(env, "direct") == 0) return ConvBackend::Direct;
  }
  return ConvBackend::Im2col;
}

std::atomic<ConvBackend> g_backend{initial_backend()};

inline int conv_out(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

ConvBackend conv_backend() { return g_backend.load(std::memory_order_relaxed); }
void set_conv_backend(ConvBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

void im2col(const float* im, int channels, int h, int w, int kernel,
            int stride, int pad, float* col) {
  const int oh = conv_out(h, kernel, stride, pad);
  const int ow = conv_out(w, kernel, stride, pad);
  float* out = col;
  for (int c = 0; c < channels; ++c) {
    const float* imc = im + static_cast<std::int64_t>(c) * h * w;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= h) {
            std::memset(out, 0, static_cast<std::size_t>(ow) * sizeof(float));
            out += ow;
            continue;
          }
          const float* row = imc + static_cast<std::int64_t>(iy) * w;
          if (pad == 0 && stride == 1) {
            // Fully in-bounds fast path: a contiguous copy.
            std::memcpy(out, row + kx,
                        static_cast<std::size_t>(ow) * sizeof(float));
          } else {
            for (int ox = 0; ox < ow; ++ox) {
              const int ix = ox * stride - pad + kx;
              out[ox] = (ix >= 0 && ix < w) ? row[ix] : 0.0f;
            }
          }
          out += ow;
        }
      }
    }
  }
}

void col2im(const float* col, int channels, int h, int w, int kernel,
            int stride, int pad, float* im) {
  const int oh = conv_out(h, kernel, stride, pad);
  const int ow = conv_out(w, kernel, stride, pad);
  const float* in = col;
  for (int c = 0; c < channels; ++c) {
    float* imc = im + static_cast<std::int64_t>(c) * h * w;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= h) {
            in += ow;
            continue;
          }
          float* row = imc + static_cast<std::int64_t>(iy) * w;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * stride - pad + kx;
            if (ix >= 0 && ix < w) row[ix] += in[ox];
          }
          in += ow;
        }
      }
    }
  }
}

void conv_forward_im2col(const Tensor& x, const Tensor& w, const Tensor* bias,
                         const ConvDims& d, Tensor& y) {
  const int n = x.dim(0), h = x.dim(2), wdt = x.dim(3);
  const int oh = y.dim(2), ow = y.dim(3);
  const int icg = d.in_c / d.groups;
  const int ocg = d.out_c / d.groups;
  const int ckk = icg * d.kernel * d.kernel;
  const auto in_plane = static_cast<std::int64_t>(h) * wdt;
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;

  thread_local std::vector<float> col;
  col.resize(static_cast<std::size_t>(ckk) * out_plane);

  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + b * d.in_c * in_plane;
    float* yb = y.data() + b * d.out_c * out_plane;
    for (int g = 0; g < d.groups; ++g) {
      im2col(xb + g * icg * in_plane, icg, h, wdt, d.kernel, d.stride, d.pad,
             col.data());
      gemm(false, false, ocg, static_cast<int>(out_plane), ckk, 1.0f,
           w.data() + static_cast<std::int64_t>(g) * ocg * ckk, ckk,
           col.data(), static_cast<int>(out_plane), 0.0f,
           yb + g * ocg * out_plane, static_cast<int>(out_plane));
    }
    if (bias) {
      for (int oc = 0; oc < d.out_c; ++oc) {
        const float bv = (*bias)[oc];
        float* row = yb + oc * out_plane;
        for (std::int64_t i = 0; i < out_plane; ++i) row[i] += bv;
      }
    }
  }
}

Tensor conv_backward_im2col(const Tensor& x, const Tensor& grad_out,
                            const Tensor& w, Tensor& gw, Tensor* gb,
                            const ConvDims& d) {
  const int n = x.dim(0), h = x.dim(2), wdt = x.dim(3);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  const int icg = d.in_c / d.groups;
  const int ocg = d.out_c / d.groups;
  const int ckk = icg * d.kernel * d.kernel;
  const auto in_plane = static_cast<std::int64_t>(h) * wdt;
  const auto out_plane = static_cast<std::int64_t>(oh) * ow;

  Tensor dx({n, d.in_c, h, wdt});
  thread_local std::vector<float> col;
  thread_local std::vector<float> dcol;
  col.resize(static_cast<std::size_t>(ckk) * out_plane);
  dcol.resize(static_cast<std::size_t>(ckk) * out_plane);

  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + b * d.in_c * in_plane;
    const float* gob = grad_out.data() + b * d.out_c * out_plane;
    float* dxb = dx.data() + b * d.in_c * in_plane;
    if (gb) {
      for (int oc = 0; oc < d.out_c; ++oc) {
        const float* go = gob + oc * out_plane;
        double s = 0.0;
        for (std::int64_t i = 0; i < out_plane; ++i) s += go[i];
        (*gb)[oc] += static_cast<float>(s);
      }
    }
    for (int g = 0; g < d.groups; ++g) {
      const float* go_g = gob + g * ocg * out_plane;
      const float* w_g = w.data() + static_cast<std::int64_t>(g) * ocg * ckk;
      float* gw_g = gw.data() + static_cast<std::int64_t>(g) * ocg * ckk;
      im2col(xb + g * icg * in_plane, icg, h, wdt, d.kernel, d.stride, d.pad,
             col.data());
      // gW_g += dY_g · colᵀ
      gemm(false, true, ocg, ckk, static_cast<int>(out_plane), 1.0f, go_g,
           static_cast<int>(out_plane), col.data(),
           static_cast<int>(out_plane), 1.0f, gw_g, ckk);
      // dcol = W_gᵀ · dY_g, then scatter back into dx.
      gemm(true, false, ckk, static_cast<int>(out_plane), ocg, 1.0f, w_g, ckk,
           go_g, static_cast<int>(out_plane), 0.0f, dcol.data(),
           static_cast<int>(out_plane));
      col2im(dcol.data(), icg, h, wdt, d.kernel, d.stride, d.pad,
             dxb + g * icg * in_plane);
    }
  }
  return dx;
}

}  // namespace fedtrans
