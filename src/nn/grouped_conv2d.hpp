#pragma once

#include "nn/conv2d.hpp"

namespace fedtrans {

/// Grouped 2-D convolution: input channels are split into `groups` equal
/// slices, each convolved with its own filter bank. groups == in_channels ==
/// out_channels gives a depthwise convolution (the MobileNet building
/// block). Weight layout [out_c, in_c/groups, k, k].
///
/// The paper's appendix notes that HeteroFL and SplitMix do not support
/// grouped convolutions, so grouped layers are converted to dense ones
/// before those baselines run — `to_dense()` implements exactly that
/// conversion (a dense conv whose cross-group weights are zero computes the
/// same function at higher MAC cost).
class GroupedConv2d : public Layer {
 public:
  GroupedConv2d(int in_channels, int out_channels, int kernel, int groups,
                int stride = 1, int padding = -1 /* -1 = same */,
                bool bias = true);

  void init(Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>& in_shape) const override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;
  std::string name() const override { return "GroupedConv2d"; }
  std::unique_ptr<Layer> clone() const override;

  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }
  int kernel() const { return k_; }
  int groups() const { return groups_; }
  int stride() const { return stride_; }
  int padding() const { return pad_; }
  bool has_bias() const { return has_bias_; }
  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }

  /// Equivalent dense (groups = 1) convolution: weights are block-diagonal
  /// across groups, zero elsewhere. Output is bit-identical on the same
  /// input; MACs grow by the group count (the "potentially increases the
  /// complexity" the paper accepts for baseline compatibility).
  std::unique_ptr<Conv2d> to_dense() const;

 private:
  int out_hw(int in_hw) const { return (in_hw + 2 * pad_ - k_) / stride_ + 1; }
  void forward_direct(const Tensor& x, Tensor& y);
  Tensor backward_direct(const Tensor& grad_out);

  int in_c_, out_c_, k_, groups_, stride_, pad_;
  bool has_bias_;
  Tensor w_, gw_;
  Tensor b_, gb_;
  Tensor cached_x_;
};

/// Depthwise-separable convolution block (depthwise k×k + pointwise 1×1),
/// the MobileNet-family primitive, assembled from the substrate layers.
std::unique_ptr<Layer> make_depthwise_separable(int in_channels,
                                                int out_channels, int kernel,
                                                int stride, Rng& rng);

}  // namespace fedtrans
