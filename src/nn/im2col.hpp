#pragma once

#include "tensor/tensor.hpp"

namespace fedtrans {

/// Which convolution implementation Conv2d / GroupedConv2d dispatch to.
/// `Im2col` (default) lowers the convolution onto the blocked GEMM; `Direct`
/// keeps the original loop nest as an auditable reference for parity tests.
/// Initial value can be forced with FEDTRANS_CONV_BACKEND=direct|im2col.
enum class ConvBackend { Im2col, Direct };
ConvBackend conv_backend();
void set_conv_backend(ConvBackend backend);

/// Unfold one NCHW image plane-stack (`channels` × h × w) into a
/// [channels·k·k, oh·ow] column matrix (Caffe layout: channel-major rows,
/// spatial-major columns); out-of-bounds taps are zero. `ld` is the row
/// stride of the destination (row r starts at col + r·ld), which lets
/// several images unfold side by side into one wide batch panel; the
/// default -1 means oh·ow (a self-contained single-image matrix).
void im2col(const float* im, int channels, int h, int w, int kernel,
            int stride, int pad, float* col, std::int64_t ld = -1);

/// Scatter-add a [channels·k·k, oh·ow] column matrix back into the image it
/// was unfolded from (the adjoint of im2col). Accumulates into `im`. `ld`
/// strides the source rows exactly as in im2col.
void col2im(const float* col, int channels, int h, int w, int kernel,
            int stride, int pad, float* im, std::int64_t ld = -1);

/// Grouped-convolution geometry shared by Conv2d (groups == 1) and
/// GroupedConv2d. Weight layout [out_c, in_c/groups, k, k].
struct ConvDims {
  int in_c = 0;
  int out_c = 0;
  int kernel = 0;
  int stride = 1;
  int pad = 0;
  int groups = 1;
};

/// y[N, out_c, oh, ow] = conv(x) + bias, lowered per group onto
/// gemm(W_g [ocg, icg·k·k] × col_g [icg·k·k, bt·oh·ow]) where the column
/// panel concatenates a tile of `bt` batch images along N — so grouped
/// models get dense-sized GEMMs instead of one sliver per (image, group).
/// `bias` may be null.
void conv_forward_im2col(const Tensor& x, const Tensor& w, const Tensor* bias,
                         const ConvDims& d, Tensor& y);

/// Backward pass of the same lowering: accumulates into `gw` (and `gb` if
/// non-null) and returns dL/dx. `grad_out` is [N, out_c, oh, ow].
Tensor conv_backward_im2col(const Tensor& x, const Tensor& grad_out,
                            const Tensor& w, Tensor& gw, Tensor* gb,
                            const ConvDims& d);

}  // namespace fedtrans
