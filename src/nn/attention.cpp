#include "nn/attention.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

namespace {
// y[N*T, out] = x[N*T, in] * W^T + b. Shared by the token-wise projections.
Tensor project(const Tensor& x2d, const Tensor& w, const Tensor& b) {
  const int rows = x2d.dim(0), in = x2d.dim(1), out = w.dim(0);
  Tensor y({rows, out});
  gemm(false, true, rows, out, in, 1.0f, x2d.data(), in, w.data(), in, 0.0f,
       y.data(), out);
  if (!b.empty())
    for (int i = 0; i < rows; ++i)
      for (int j = 0; j < out; ++j) y.at(i, j) += b[j];
  return y;
}

// Accumulate grads for a projection: gW += g^T x; gb += colsum(g); returns
// dx = g W.
Tensor project_backward(const Tensor& g2d, const Tensor& x2d, const Tensor& w,
                        Tensor& gw, Tensor& gb) {
  const int rows = g2d.dim(0), out = g2d.dim(1), in = x2d.dim(1);
  gemm(true, false, out, in, rows, 1.0f, g2d.data(), out, x2d.data(), in, 1.0f,
       gw.data(), in);
  if (!gb.empty())
    for (int i = 0; i < rows; ++i)
      for (int j = 0; j < out; ++j) gb[j] += g2d.at(i, j);
  Tensor dx({rows, in});
  gemm(false, false, rows, in, out, 1.0f, g2d.data(), out, w.data(), in, 0.0f,
       dx.data(), in);
  return dx;
}
}  // namespace

Attention::Attention(int dim)
    : d_(dim),
      wq_({dim, dim}), gwq_({dim, dim}), bq_({dim}), gbq_({dim}),
      wk_({dim, dim}), gwk_({dim, dim}), bk_({dim}), gbk_({dim}),
      wv_({dim, dim}), gwv_({dim, dim}), bv_({dim}), gbv_({dim}),
      wo_({dim, dim}), gwo_({dim, dim}), bo_({dim}), gbo_({dim}) {
  FT_CHECK(dim > 0);
}

void Attention::init(Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(d_));
  for (Tensor* w : {&wq_, &wk_, &wv_, &wo_}) w->rand_uniform(rng, -bound, bound);
  for (Tensor* b : {&bq_, &bk_, &bv_, &bo_}) b->zero();
}

void Attention::zero_output_projection() {
  wo_.zero();
  bo_.zero();
}

Tensor Attention::forward(const Tensor& x, bool /*train*/) {
  FT_CHECK_MSG(x.ndim() == 3 && x.dim(2) == d_,
               "Attention expects [N,T," << d_ << "]");
  x_ = x;
  const int n = x.dim(0), t = x.dim(1);
  const Tensor x2d = x.reshape({n * t, d_});
  q_ = project(x2d, wq_, bq_);
  k_ = project(x2d, wk_, bk_);
  v_ = project(x2d, wv_, bv_);

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(d_));
  attn_ = Tensor({n, t, t});
  for (int b = 0; b < n; ++b) {
    const float* qb = q_.data() + static_cast<std::int64_t>(b) * t * d_;
    const float* kb = k_.data() + static_cast<std::int64_t>(b) * t * d_;
    float* ab = attn_.data() + static_cast<std::int64_t>(b) * t * t;
    gemm(false, true, t, t, d_, inv_sqrt, qb, d_, kb, d_, 0.0f, ab, t);
    // row-wise softmax
    for (int i = 0; i < t; ++i) {
      float* row = ab + static_cast<std::int64_t>(i) * t;
      float mx = row[0];
      for (int j = 1; j < t; ++j) mx = std::max(mx, row[j]);
      double denom = 0.0;
      for (int j = 0; j < t; ++j) {
        row[j] = std::exp(row[j] - mx);
        denom += row[j];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int j = 0; j < t; ++j) row[j] *= inv;
    }
  }

  o_ = Tensor({n * t, d_});
  for (int b = 0; b < n; ++b) {
    const float* ab = attn_.data() + static_cast<std::int64_t>(b) * t * t;
    const float* vb = v_.data() + static_cast<std::int64_t>(b) * t * d_;
    float* ob = o_.data() + static_cast<std::int64_t>(b) * t * d_;
    gemm(false, false, t, d_, t, 1.0f, ab, t, vb, d_, 0.0f, ob, d_);
  }
  Tensor y2d = project(o_, wo_, bo_);
  return y2d.reshape({n, t, d_});
}

Tensor Attention::backward(const Tensor& grad_out) {
  const int n = x_.dim(0), t = x_.dim(1);
  FT_CHECK(grad_out.ndim() == 3 && grad_out.dim(0) == n &&
           grad_out.dim(1) == t && grad_out.dim(2) == d_);
  const Tensor g2d = grad_out.reshape({n * t, d_});
  Tensor d_o = project_backward(g2d, o_, wo_, gwo_, gbo_);

  Tensor d_attn({n, t, t});
  Tensor d_v({n * t, d_});
  for (int b = 0; b < n; ++b) {
    const std::int64_t tb = static_cast<std::int64_t>(b) * t;
    const float* dob = d_o.data() + tb * d_;
    const float* vb = v_.data() + tb * d_;
    const float* ab = attn_.data() + static_cast<std::int64_t>(b) * t * t;
    float* dab = d_attn.data() + static_cast<std::int64_t>(b) * t * t;
    float* dvb = d_v.data() + tb * d_;
    // dA = dO V^T ; dV = A^T dO
    gemm(false, true, t, t, d_, 1.0f, dob, d_, vb, d_, 0.0f, dab, t);
    gemm(true, false, t, d_, t, 1.0f, ab, t, dob, d_, 0.0f, dvb, d_);
    // softmax backward per row: dS = A * (dA - sum(dA*A))
    for (int i = 0; i < t; ++i) {
      const float* arow = ab + static_cast<std::int64_t>(i) * t;
      float* drow = dab + static_cast<std::int64_t>(i) * t;
      double dot = 0.0;
      for (int j = 0; j < t; ++j) dot += static_cast<double>(drow[j]) * arow[j];
      for (int j = 0; j < t; ++j)
        drow[j] = arow[j] * (drow[j] - static_cast<float>(dot));
    }
  }

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(d_));
  Tensor d_q({n * t, d_});
  Tensor d_k({n * t, d_});
  for (int b = 0; b < n; ++b) {
    const std::int64_t tb = static_cast<std::int64_t>(b) * t;
    const float* dab = d_attn.data() + static_cast<std::int64_t>(b) * t * t;
    const float* qb = q_.data() + tb * d_;
    const float* kb = k_.data() + tb * d_;
    // dQ = dS K / sqrt(d) ; dK = dS^T Q / sqrt(d)
    gemm(false, false, t, d_, t, inv_sqrt, dab, t, kb, d_, 0.0f,
         d_q.data() + tb * d_, d_);
    gemm(true, false, t, d_, t, inv_sqrt, dab, t, qb, d_, 0.0f,
         d_k.data() + tb * d_, d_);
  }

  const Tensor x2d = x_.reshape({n * t, d_});
  Tensor dx = project_backward(d_q, x2d, wq_, gwq_, gbq_);
  dx.add_(project_backward(d_k, x2d, wk_, gwk_, gbk_));
  dx.add_(project_backward(d_v, x2d, wv_, gwv_, gbv_));
  return dx.reshape({n, t, d_});
}

std::vector<ParamRef> Attention::params() {
  return {{&wq_, &gwq_, "wq"}, {&bq_, &gbq_, "bq"}, {&wk_, &gwk_, "wk"},
          {&bk_, &gbk_, "bk"}, {&wv_, &gwv_, "wv"}, {&bv_, &gbv_, "bv"},
          {&wo_, &gwo_, "wo"}, {&bo_, &gbo_, "bo"}};
}

std::int64_t Attention::macs(const std::vector<int>& in_shape) const {
  FT_CHECK(in_shape.size() == 2 && in_shape[1] == d_);
  const std::int64_t t = in_shape[0];
  return 4 * t * d_ * d_ + 2 * t * t * d_;
}

std::unique_ptr<Layer> Attention::clone() const {
  auto copy = std::make_unique<Attention>(d_);
  copy->wq_ = wq_; copy->bq_ = bq_;
  copy->wk_ = wk_; copy->bk_ = bk_;
  copy->wv_ = wv_; copy->bv_ = bv_;
  copy->wo_ = wo_; copy->bo_ = bo_;
  return copy;
}

TokenMlp::TokenMlp(int dim, int hidden)
    : d_(dim), h_(hidden), w1_({hidden, dim}), gw1_({hidden, dim}),
      b1_({hidden}), gb1_({hidden}), w2_({dim, hidden}), gw2_({dim, hidden}),
      b2_({dim}), gb2_({dim}) {
  FT_CHECK(dim > 0 && hidden > 0);
}

void TokenMlp::init(Rng& rng) {
  const float bound1 = std::sqrt(6.0f / static_cast<float>(d_));
  const float bound2 = std::sqrt(6.0f / static_cast<float>(h_));
  w1_.rand_uniform(rng, -bound1, bound1);
  w2_.rand_uniform(rng, -bound2, bound2);
  b1_.zero();
  b2_.zero();
}

void TokenMlp::zero_output_projection() {
  w2_.zero();
  b2_.zero();
}

Tensor TokenMlp::forward(const Tensor& x, bool /*train*/) {
  FT_CHECK_MSG(x.ndim() == 3 && x.dim(2) == d_,
               "TokenMlp expects [N,T," << d_ << "]");
  x_ = x;
  const int n = x.dim(0), t = x.dim(1);
  const Tensor x2d = x.reshape({n * t, d_});
  hpre_ = project(x2d, w1_, b1_);
  hact_ = hpre_;
  for (std::int64_t i = 0; i < hact_.numel(); ++i)
    if (hact_[i] < 0.0f) hact_[i] = 0.0f;
  Tensor y = project(hact_, w2_, b2_);
  return y.reshape({n, t, d_});
}

Tensor TokenMlp::backward(const Tensor& grad_out) {
  const int n = x_.dim(0), t = x_.dim(1);
  const Tensor g2d = grad_out.reshape({n * t, d_});
  Tensor dh = project_backward(g2d, hact_, w2_, gw2_, gb2_);
  for (std::int64_t i = 0; i < dh.numel(); ++i)
    if (hpre_[i] <= 0.0f) dh[i] = 0.0f;
  const Tensor x2d = x_.reshape({n * t, d_});
  Tensor dx = project_backward(dh, x2d, w1_, gw1_, gb1_);
  return dx.reshape({n, t, d_});
}

std::vector<ParamRef> TokenMlp::params() {
  return {{&w1_, &gw1_, "w1"}, {&b1_, &gb1_, "b1"},
          {&w2_, &gw2_, "w2"}, {&b2_, &gb2_, "b2"}};
}

std::int64_t TokenMlp::macs(const std::vector<int>& in_shape) const {
  FT_CHECK(in_shape.size() == 2 && in_shape[1] == d_);
  const std::int64_t t = in_shape[0];
  return 2 * t * d_ * h_;
}

std::unique_ptr<Layer> TokenMlp::clone() const {
  auto copy = std::make_unique<TokenMlp>(d_, h_);
  copy->w1_ = w1_; copy->b1_ = b1_;
  copy->w2_ = w2_; copy->b2_ = b2_;
  return copy;
}

Tensor PatchToTokens::forward(const Tensor& x, bool /*train*/) {
  FT_CHECK_MSG(x.ndim() == 4, "PatchToTokens expects NCHW");
  cached_shape_ = x.shape();
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int t = h * w;
  Tensor y({n, t, c});
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch)
      for (int i = 0; i < t; ++i)
        y.at(b, i, ch) = x[((static_cast<std::int64_t>(b) * c + ch) * t) + i];
  return y;
}

Tensor PatchToTokens::backward(const Tensor& grad_out) {
  const int n = cached_shape_[0], c = cached_shape_[1], h = cached_shape_[2],
            w = cached_shape_[3];
  const int t = h * w;
  Tensor dx({n, c, h, w});
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch)
      for (int i = 0; i < t; ++i)
        dx[((static_cast<std::int64_t>(b) * c + ch) * t) + i] =
            grad_out.at(b, i, ch);
  return dx;
}

std::vector<int> PatchToTokens::out_shape(const std::vector<int>& in) const {
  FT_CHECK(in.size() == 3);
  return {in[1] * in[2], in[0]};
}

Tensor MeanTokens::forward(const Tensor& x, bool /*train*/) {
  FT_CHECK_MSG(x.ndim() == 3, "MeanTokens expects [N,T,D]");
  cached_shape_ = x.shape();
  const int n = x.dim(0), t = x.dim(1), d = x.dim(2);
  Tensor y({n, d});
  const float inv = 1.0f / static_cast<float>(t);
  for (int b = 0; b < n; ++b)
    for (int i = 0; i < t; ++i)
      for (int j = 0; j < d; ++j) y.at(b, j) += x.at(b, i, j) * inv;
  return y;
}

Tensor MeanTokens::backward(const Tensor& grad_out) {
  const int n = cached_shape_[0], t = cached_shape_[1], d = cached_shape_[2];
  FT_CHECK(grad_out.ndim() == 2 && grad_out.dim(0) == n && grad_out.dim(1) == d);
  Tensor dx({n, t, d});
  const float inv = 1.0f / static_cast<float>(t);
  for (int b = 0; b < n; ++b)
    for (int i = 0; i < t; ++i)
      for (int j = 0; j < d; ++j) dx.at(b, i, j) = grad_out.at(b, j) * inv;
  return dx;
}

std::vector<int> MeanTokens::out_shape(const std::vector<int>& in) const {
  FT_CHECK(in.size() == 2);
  return {in[1]};
}

}  // namespace fedtrans
