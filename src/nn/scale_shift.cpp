#include "nn/scale_shift.hpp"

#include "common/check.hpp"

namespace fedtrans {

ScaleShift::ScaleShift(int channels)
    : c_(channels), s_({channels}, 1.0f), gs_({channels}), b_({channels}),
      gb_({channels}) {
  FT_CHECK(channels > 0);
}

Tensor ScaleShift::forward(const Tensor& x, bool /*train*/) {
  FT_CHECK_MSG((x.ndim() == 4 || x.ndim() == 2) && x.dim(1) == c_,
               "ScaleShift expects channel dim " << c_);
  cached_x_ = x;
  Tensor y = x;
  const int n = x.dim(0);
  const auto plane = x.ndim() == 4
                         ? static_cast<std::int64_t>(x.dim(2)) * x.dim(3)
                         : 1;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c_; ++ch) {
      float* p = y.data() + (static_cast<std::int64_t>(b) * c_ + ch) * plane;
      const float sc = s_[ch], sh = b_[ch];
      for (std::int64_t i = 0; i < plane; ++i) p[i] = p[i] * sc + sh;
    }
  }
  return y;
}

Tensor ScaleShift::backward(const Tensor& grad_out) {
  FT_CHECK(grad_out.same_shape(cached_x_));
  const int n = grad_out.dim(0);
  const auto plane =
      grad_out.ndim() == 4
          ? static_cast<std::int64_t>(grad_out.dim(2)) * grad_out.dim(3)
          : 1;
  Tensor dx = grad_out;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c_; ++ch) {
      const std::int64_t base = (static_cast<std::int64_t>(b) * c_ + ch) *
                                plane;
      double ds = 0.0, db = 0.0;
      const float sc = s_[ch];
      for (std::int64_t i = 0; i < plane; ++i) {
        const float g = grad_out[base + i];
        ds += static_cast<double>(g) * cached_x_[base + i];
        db += g;
        dx[base + i] = g * sc;
      }
      gs_[ch] += static_cast<float>(ds);
      gb_[ch] += static_cast<float>(db);
    }
  }
  return dx;
}

std::vector<ParamRef> ScaleShift::params() {
  return {{&s_, &gs_, "scale"}, {&b_, &gb_, "shift"}};
}

std::unique_ptr<Layer> ScaleShift::clone() const {
  auto copy = std::make_unique<ScaleShift>(c_);
  copy->s_ = s_;
  copy->b_ = b_;
  return copy;
}

}  // namespace fedtrans
