#include "nn/pool.hpp"

#include <limits>

#include "common/check.hpp"

namespace fedtrans {

namespace {

void check_pool_input(const Tensor& x, int k, int stride) {
  FT_CHECK_MSG(x.ndim() == 4, "pooling expects NCHW input");
  FT_CHECK_MSG(x.dim(2) >= k && x.dim(3) >= k,
               "pool window " << k << " larger than input "
                              << x.dim(2) << "x" << x.dim(3));
  FT_CHECK(stride > 0);
}

}  // namespace

MaxPool2d::MaxPool2d(int kernel, int stride)
    : k_(kernel), stride_(stride <= 0 ? kernel : stride) {
  FT_CHECK(k_ > 0);
}

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  check_pool_input(x, k_, stride_);
  cached_shape_ = x.shape();
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = out_hw(h), ow = out_hw(w);
  Tensor y({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(y.numel()), 0);

  std::int64_t out_i = 0;
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      const std::int64_t base =
          (static_cast<std::int64_t>(b) * c + ch) * h * w;
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox, ++out_i) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_i = base;
          for (int ky = 0; ky < k_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < k_; ++kx) {
              const int ix = ox * stride_ + kx;
              const std::int64_t i = base + static_cast<std::int64_t>(iy) * w +
                                     ix;
              if (x[i] > best) {
                best = x[i];
                best_i = i;
              }
            }
          }
          y[out_i] = best;
          argmax_[static_cast<std::size_t>(out_i)] = best_i;
        }
    }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  FT_CHECK_MSG(static_cast<std::size_t>(grad_out.numel()) == argmax_.size(),
               "MaxPool2d::backward called without matching forward");
  Tensor dx(cached_shape_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    dx[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  return dx;
}

std::vector<int> MaxPool2d::out_shape(const std::vector<int>& in) const {
  FT_CHECK(in.size() == 3);
  return {in[0], out_hw(in[1]), out_hw(in[2])};
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(k_, stride_);
}

AvgPool2d::AvgPool2d(int kernel, int stride)
    : k_(kernel), stride_(stride <= 0 ? kernel : stride) {
  FT_CHECK(k_ > 0);
}

Tensor AvgPool2d::forward(const Tensor& x, bool /*train*/) {
  check_pool_input(x, k_, stride_);
  cached_shape_ = x.shape();
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = out_hw(h), ow = out_hw(w);
  Tensor y({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(k_ * k_);

  std::int64_t out_i = 0;
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      const std::int64_t base =
          (static_cast<std::int64_t>(b) * c + ch) * h * w;
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox, ++out_i) {
          double s = 0.0;
          for (int ky = 0; ky < k_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < k_; ++kx)
              s += x[base + static_cast<std::int64_t>(iy) * w +
                     (ox * stride_ + kx)];
          }
          y[out_i] = static_cast<float>(s) * inv;
        }
    }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  FT_CHECK_MSG(!cached_shape_.empty(),
               "AvgPool2d::backward called without forward");
  Tensor dx(cached_shape_);
  const int n = cached_shape_[0], c = cached_shape_[1], h = cached_shape_[2],
            w = cached_shape_[3];
  const int oh = out_hw(h), ow = out_hw(w);
  FT_CHECK(grad_out.ndim() == 4 && grad_out.dim(2) == oh &&
           grad_out.dim(3) == ow);
  const float inv = 1.0f / static_cast<float>(k_ * k_);

  std::int64_t out_i = 0;
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      const std::int64_t base =
          (static_cast<std::int64_t>(b) * c + ch) * h * w;
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox, ++out_i) {
          const float g = grad_out[out_i] * inv;
          for (int ky = 0; ky < k_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < k_; ++kx)
              dx[base + static_cast<std::int64_t>(iy) * w +
                 (ox * stride_ + kx)] += g;
          }
        }
    }
  return dx;
}

std::vector<int> AvgPool2d::out_shape(const std::vector<int>& in) const {
  FT_CHECK(in.size() == 3);
  return {in[0], out_hw(in[1]), out_hw(in[2])};
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(k_, stride_);
}

}  // namespace fedtrans
