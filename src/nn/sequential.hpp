#pragma once

#include "nn/layer.hpp"

namespace fedtrans {

/// A layer that chains owned sub-layers. This is the container for building
/// *custom* architectures against the substrate directly (see
/// examples/custom_layers.cpp) without going through the Cell-based
/// ModelSpec machinery — useful for reference models and for users who only
/// want the NN library.
class Sequential : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::unique_ptr<Layer>> layers);

  /// Append a layer; returns *this for fluent construction.
  Sequential& add(std::unique_ptr<Layer> layer);
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>& in_shape) const override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;
  std::string name() const override { return "Sequential"; }
  std::unique_ptr<Layer> clone() const override;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fedtrans
