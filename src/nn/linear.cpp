#include "nn/linear.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

Linear::Linear(int in_features, int out_features, bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      w_({out_features, in_features}),
      gw_({out_features, in_features}),
      b_(bias ? Tensor({out_features}) : Tensor()),
      gb_(bias ? Tensor({out_features}) : Tensor()) {
  FT_CHECK(in_ > 0 && out_ > 0);
}

void Linear::init(Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_));
  w_.rand_uniform(rng, -bound, bound);
  if (has_bias_) b_.zero();
}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  FT_CHECK_MSG(x.ndim() == 2 && x.dim(1) == in_,
               "Linear expects [N," << in_ << "], got [" << x.dim(0) << ","
                                    << (x.ndim() > 1 ? x.dim(1) : -1) << "]");
  cached_x_ = x;
  const int n = x.dim(0);
  Tensor y({n, out_});
  // y = x * W^T
  gemm(false, true, n, out_, in_, 1.0f, x.data(), in_, w_.data(), in_, 0.0f,
       y.data(), out_);
  if (has_bias_) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < out_; ++j) y.at(i, j) += b_[j];
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  FT_CHECK(grad_out.ndim() == 2 && grad_out.dim(1) == out_);
  const int n = grad_out.dim(0);
  FT_CHECK(cached_x_.ndim() == 2 && cached_x_.dim(0) == n);
  // gW += grad_out^T * x
  gemm(true, false, out_, in_, n, 1.0f, grad_out.data(), out_,
       cached_x_.data(), in_, 1.0f, gw_.data(), in_);
  if (has_bias_) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < out_; ++j) gb_[j] += grad_out.at(i, j);
  }
  // dx = grad_out * W
  Tensor dx({n, in_});
  gemm(false, false, n, in_, out_, 1.0f, grad_out.data(), out_, w_.data(), in_,
       0.0f, dx.data(), in_);
  return dx;
}

std::vector<ParamRef> Linear::params() {
  std::vector<ParamRef> ps{{&w_, &gw_, "weight"}};
  if (has_bias_) ps.push_back({&b_, &gb_, "bias"});
  return ps;
}

std::int64_t Linear::macs(const std::vector<int>& /*in_shape*/) const {
  return static_cast<std::int64_t>(in_) * out_;
}

std::vector<int> Linear::out_shape(const std::vector<int>& in_shape) const {
  FT_CHECK(in_shape.size() == 1 && in_shape[0] == in_);
  return {out_};
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(in_, out_, has_bias_);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

}  // namespace fedtrans
