#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace fedtrans {

struct SgdOptions {
  double lr = 0.05;           // paper Table 7 default learning rate
  double momentum = 0.0;
  double weight_decay = 0.0;
  /// FedProx proximal coefficient μ; when > 0, each step adds
  /// μ·(w − w_anchor) to the gradient (anchor = global weights at round
  /// start). Zero recovers plain local SGD / FedAvg.
  double prox_mu = 0.0;
  /// Global-norm gradient clip applied per step (0 disables). Keeps local
  /// training on pathological non-IID shards from diverging and poisoning
  /// the aggregate.
  double clip_norm = 10.0;
  /// Mixed-precision loss scale: the backward pass multiplied the loss
  /// gradient by this factor (to keep small fp16 gradients from flushing to
  /// zero), so step() divides every gradient by it before clipping or
  /// applying the update. 1 means no scaling.
  double loss_scale = 1.0;
};

/// Per-training-session SGD state over an explicit parameter list. A fresh
/// optimizer is created for each client's local training, which matches FL
/// semantics (momentum does not leak across clients or rounds).
class Sgd {
 public:
  Sgd(std::vector<ParamRef> params, SgdOptions opts);

  /// Capture current weights as the FedProx anchor (no-op when μ == 0).
  void set_prox_anchor();
  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  const SgdOptions& options() const { return opts_; }

 private:
  std::vector<ParamRef> params_;
  SgdOptions opts_;
  std::vector<Tensor> velocity_;
  std::vector<Tensor> anchor_;
};

}  // namespace fedtrans
