#pragma once

#include "nn/layer.hpp"

namespace fedtrans {

/// Learnable per-channel affine transform y[c] = x[c]*scale[c] + shift[c]
/// (a batch-statistics-free stand-in for BatchNorm's affine part). Using a
/// stateless affine keeps every transformation *exactly* function-preserving
/// and the whole simulation deterministic. Accepts NCHW (per-channel) or
/// [N,F] (per-feature) input.
class ScaleShift : public Layer {
 public:
  explicit ScaleShift(int channels);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  std::string name() const override { return "ScaleShift"; }
  std::unique_ptr<Layer> clone() const override;

  int channels() const { return c_; }
  Tensor& scale() { return s_; }
  Tensor& shift() { return b_; }

 private:
  int c_;
  Tensor s_, gs_;
  Tensor b_, gb_;
  Tensor cached_x_;
};

}  // namespace fedtrans
