#include "nn/sequential.hpp"

#include "common/check.hpp"

namespace fedtrans {

Sequential::Sequential(std::vector<std::unique_ptr<Layer>> layers)
    : layers_(std::move(layers)) {
  for (const auto& l : layers_) FT_CHECK(l != nullptr);
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  FT_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> ps;
  for (auto& l : layers_)
    for (auto& p : l->params()) ps.push_back(p);
  return ps;
}

std::int64_t Sequential::macs(const std::vector<int>& in_shape) const {
  std::int64_t total = 0;
  std::vector<int> shape = in_shape;
  for (const auto& l : layers_) {
    total += l->macs(shape);
    shape = l->out_shape(shape);
  }
  return total;
}

std::vector<int> Sequential::out_shape(
    const std::vector<int>& in_shape) const {
  std::vector<int> shape = in_shape;
  for (const auto& l : layers_) shape = l->out_shape(shape);
  return shape;
}

std::unique_ptr<Layer> Sequential::clone() const {
  std::vector<std::unique_ptr<Layer>> copies;
  copies.reserve(layers_.size());
  for (const auto& l : layers_) copies.push_back(l->clone());
  return std::make_unique<Sequential>(std::move(copies));
}

Layer& Sequential::layer(std::size_t i) {
  FT_CHECK(i < layers_.size());
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  FT_CHECK(i < layers_.size());
  return *layers_[i];
}

}  // namespace fedtrans
