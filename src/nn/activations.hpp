#pragma once

#include "nn/layer.hpp"

namespace fedtrans {

/// Element-wise rectified linear unit.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>();
  }

 private:
  Tensor cached_x_;
};

/// Flattens [N, ...] to [N, prod(...)].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  std::string name() const override { return "Flatten"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>();
  }

 private:
  std::vector<int> cached_shape_;
};

/// Global average pooling: [N,C,H,W] -> [N,C].
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  std::string name() const override { return "GlobalAvgPool"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool>();
  }

 private:
  std::vector<int> cached_shape_;
};

}  // namespace fedtrans
