#include "nn/dropout.hpp"

#include "common/check.hpp"

namespace fedtrans {

Dropout::Dropout(double p, std::uint64_t seed)
    : p_(p), seed_(seed), rng_(seed) {
  FT_CHECK_MSG(p >= 0.0 && p < 1.0, "dropout p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ == 0.0) {
    mask_.clear();
    return x;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  mask_.assign(static_cast<std::size_t>(x.numel()), 0.0f);
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (rng_.uniform() >= p_) {
      mask_[static_cast<std::size_t>(i)] = keep_scale;
      y[i] = x[i] * keep_scale;
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;  // eval-mode forward: identity
  FT_CHECK_MSG(static_cast<std::size_t>(grad_out.numel()) == mask_.size(),
               "Dropout::backward shape mismatch");
  Tensor dx(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    dx[i] = grad_out[i] * mask_[static_cast<std::size_t>(i)];
  return dx;
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(p_, seed_);
}

}  // namespace fedtrans
