#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

namespace {

// Per-channel element count and iteration helpers shared by forward and
// backward. For [N,C,H,W] a channel's elements are the N×H×W entries with
// that C; for [N,F] they are the N entries of feature F.
struct ChannelView {
  int n = 0, c = 0;
  std::int64_t plane = 1;  // H*W (1 for [N,F])

  std::int64_t count() const { return static_cast<std::int64_t>(n) * plane; }
  std::int64_t index(int b, int ch, std::int64_t p) const {
    return (static_cast<std::int64_t>(b) * c + ch) * plane + p;
  }
};

ChannelView make_view(const Tensor& x, int channels) {
  ChannelView v;
  if (x.ndim() == 4) {
    FT_CHECK_MSG(x.dim(1) == channels,
                 "BatchNorm expects [N," << channels << ",H,W]");
    v = {x.dim(0), x.dim(1), static_cast<std::int64_t>(x.dim(2)) * x.dim(3)};
  } else {
    FT_CHECK_MSG(x.ndim() == 2 && x.dim(1) == channels,
                 "BatchNorm expects [N," << channels << "]");
    v = {x.dim(0), x.dim(1), 1};
  }
  FT_CHECK_MSG(v.count() > 0, "BatchNorm needs a non-empty batch");
  return v;
}

}  // namespace

BatchNorm::BatchNorm(int channels, double momentum, double eps)
    : c_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}, 1.0f),
      g_gamma_({channels}),
      beta_({channels}),
      g_beta_({channels}),
      run_mean_({channels}),
      run_var_({channels}, 1.0f) {
  FT_CHECK(channels > 0 && momentum > 0.0 && momentum <= 1.0 && eps > 0.0);
}

void BatchNorm::reset_running_stats() {
  run_mean_.zero();
  run_var_.fill(1.0f);
}

Tensor BatchNorm::forward(const Tensor& x, bool train) {
  const ChannelView v = make_view(x, c_);
  cached_shape_ = x.shape();
  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_.assign(static_cast<std::size_t>(c_), 0.0f);

  for (int ch = 0; ch < c_; ++ch) {
    double mean, var;
    if (train) {
      double sum = 0.0, sq = 0.0;
      for (int b = 0; b < v.n; ++b)
        for (std::int64_t p = 0; p < v.plane; ++p) {
          const double e = x[v.index(b, ch, p)];
          sum += e;
          sq += e * e;
        }
      const double cnt = static_cast<double>(v.count());
      mean = sum / cnt;
      var = sq / cnt - mean * mean;
      if (var < 0.0) var = 0.0;  // numeric guard
      run_mean_[ch] = static_cast<float>((1.0 - momentum_) * run_mean_[ch] +
                                         momentum_ * mean);
      // Unbiased variance in the running estimate (PyTorch convention).
      const double unbiased = cnt > 1.0 ? var * cnt / (cnt - 1.0) : var;
      run_var_[ch] = static_cast<float>((1.0 - momentum_) * run_var_[ch] +
                                        momentum_ * unbiased);
    } else {
      mean = run_mean_[ch];
      var = run_var_[ch];
    }
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    cached_inv_std_[static_cast<std::size_t>(ch)] = inv_std;
    const float g = gamma_[ch], bta = beta_[ch], mu = static_cast<float>(mean);
    for (int b = 0; b < v.n; ++b)
      for (std::int64_t p = 0; p < v.plane; ++p) {
        const std::int64_t i = v.index(b, ch, p);
        const float xhat = (x[i] - mu) * inv_std;
        cached_xhat_[i] = xhat;
        y[i] = g * xhat + bta;
      }
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& grad_out) {
  FT_CHECK_MSG(grad_out.shape() == cached_shape_,
               "BatchNorm::backward shape mismatch");
  const ChannelView v = make_view(grad_out, c_);
  Tensor dx(grad_out.shape());
  const double cnt = static_cast<double>(v.count());

  // Standard batch-norm backward (training-mode statistics):
  //   dxhat = dy * gamma
  //   dx = inv_std/N * (N*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
  for (int ch = 0; ch < c_; ++ch) {
    const float g = gamma_[ch];
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(ch)];
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int b = 0; b < v.n; ++b)
      for (std::int64_t p = 0; p < v.plane; ++p) {
        const std::int64_t i = v.index(b, ch, p);
        const double dy = grad_out[i];
        sum_dy += dy;
        sum_dy_xhat += dy * cached_xhat_[i];
      }
    g_beta_[ch] += static_cast<float>(sum_dy);
    g_gamma_[ch] += static_cast<float>(sum_dy_xhat);
    for (int b = 0; b < v.n; ++b)
      for (std::int64_t p = 0; p < v.plane; ++p) {
        const std::int64_t i = v.index(b, ch, p);
        const double dxhat = static_cast<double>(grad_out[i]) * g;
        dx[i] = static_cast<float>(
            inv_std *
            (dxhat - sum_dy * g / cnt - cached_xhat_[i] * sum_dy_xhat * g / cnt));
      }
  }
  return dx;
}

std::vector<ParamRef> BatchNorm::params() {
  return {{&gamma_, &g_gamma_, "gamma"}, {&beta_, &g_beta_, "beta"}};
}

std::unique_ptr<Layer> BatchNorm::clone() const {
  auto copy = std::make_unique<BatchNorm>(c_, momentum_, eps_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  copy->run_mean_ = run_mean_;
  copy->run_var_ = run_var_;
  return copy;
}

}  // namespace fedtrans
