#include "nn/loss.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    std::span<const int> labels) {
  FT_CHECK_MSG(logits.ndim() == 2, "loss expects [N, classes] logits");
  const int n = logits.dim(0), c = logits.dim(1);
  FT_CHECK_MSG(static_cast<int>(labels.size()) == n, "label count mismatch");
  probs_ = logits;
  labels_.assign(labels.begin(), labels.end());

  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    FT_CHECK_MSG(labels[i] >= 0 && labels[i] < c,
                 "label " << labels[i] << " out of range [0," << c << ")");
    float* row = probs_.data() + static_cast<std::int64_t>(i) * c;
    float mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int j = 0; j < c; ++j) denom += std::exp(static_cast<double>(row[j]) - mx);
    const double log_denom = std::log(denom);
    total += -(static_cast<double>(row[labels[i]]) - mx - log_denom);
    for (int j = 0; j < c; ++j)
      row[j] = static_cast<float>(
          std::exp(static_cast<double>(row[j]) - mx - log_denom));
  }
  return total / n;
}

Tensor SoftmaxCrossEntropy::backward() const {
  FT_CHECK_MSG(!probs_.empty(), "backward() before forward()");
  const int n = probs_.dim(0), c = probs_.dim(1);
  Tensor d = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    float* row = d.data() + static_cast<std::int64_t>(i) * c;
    row[labels_[static_cast<std::size_t>(i)]] -= 1.0f;
    for (int j = 0; j < c; ++j) row[j] *= inv_n;
  }
  return d;
}

std::vector<int> SoftmaxCrossEntropy::predictions() const {
  const int n = probs_.dim(0), c = probs_.dim(1);
  std::vector<int> preds(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const float* row = probs_.data() + static_cast<std::int64_t>(i) * c;
    int best = 0;
    for (int j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    preds[static_cast<std::size_t>(i)] = best;
  }
  return preds;
}

int count_correct(const Tensor& logits, std::span<const int> labels) {
  FT_CHECK(logits.ndim() == 2 &&
           logits.dim(0) == static_cast<int>(labels.size()));
  const int n = logits.dim(0), c = logits.dim(1);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const float* row = logits.data() + static_cast<std::int64_t>(i) * c;
    int best = 0;
    for (int j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    if (best == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace fedtrans
