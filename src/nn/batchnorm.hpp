#pragma once

#include "nn/layer.hpp"

namespace fedtrans {

/// Batch normalization over NCHW (per-channel) or [N,F] (per-feature) input
/// with learnable affine (gamma, beta) and running statistics.
///
/// Training mode normalizes with batch statistics and updates the running
/// mean/variance with exponential momentum; eval mode normalizes with the
/// running statistics. The Cell-based FedTrans models deliberately use the
/// statistics-free ScaleShift instead (running stats are neither aggregated
/// by FedAvg nor preserved exactly by widen/deepen), but the layer is part
/// of the public substrate: custom architectures (examples/custom_layers)
/// and the hand-designed Fig. 9 reference models can use it, and it is what
/// HeteroFL's "static batch norm" discussion is about.
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(int channels, double momentum = 0.1, double eps = 1e-5);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::int64_t macs(const std::vector<int>&) const override { return 0; }
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  std::string name() const override { return "BatchNorm"; }
  std::unique_ptr<Layer> clone() const override;

  int channels() const { return c_; }
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }
  /// Running statistics (buffers, not trainable parameters).
  Tensor& running_mean() { return run_mean_; }
  Tensor& running_var() { return run_var_; }
  /// Reset running statistics to (0, 1) — "static batch norm" re-calibration.
  void reset_running_stats();

 private:
  int c_;
  double momentum_, eps_;
  Tensor gamma_, g_gamma_;
  Tensor beta_, g_beta_;
  Tensor run_mean_, run_var_;

  // Backward caches (one forward per backward, like every layer here).
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  std::vector<int> cached_shape_;
};

}  // namespace fedtrans
