#pragma once

#include "tensor/tensor.hpp"

namespace fedtrans {

/// Fused softmax + cross-entropy over logits [N, classes] with integer
/// labels. forward() returns mean loss; backward() returns dLoss/dLogits.
class SoftmaxCrossEntropy {
 public:
  /// Mean negative log-likelihood; caches probabilities for backward().
  double forward(const Tensor& logits, std::span<const int> labels);
  /// d(mean loss)/d(logits) = (softmax - onehot)/N.
  Tensor backward() const;

  /// Class predictions (argmax of the cached probabilities).
  std::vector<int> predictions() const;
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

/// Count of argmax(logits) == label.
int count_correct(const Tensor& logits, std::span<const int> labels);

}  // namespace fedtrans
