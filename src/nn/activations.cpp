#include "nn/activations.hpp"

#include "common/check.hpp"

namespace fedtrans {

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  cached_x_ = x;
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i)
    if (y[i] < 0.0f) y[i] = 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  FT_CHECK(grad_out.same_shape(cached_x_));
  Tensor dx = grad_out;
  for (std::int64_t i = 0; i < dx.numel(); ++i)
    if (cached_x_[i] <= 0.0f) dx[i] = 0.0f;
  return dx;
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  cached_shape_ = x.shape();
  FT_CHECK(x.ndim() >= 2);
  const int n = x.dim(0);
  const auto rest = static_cast<int>(x.numel() / n);
  return x.reshape({n, rest});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshape(cached_shape_);
}

std::vector<int> Flatten::out_shape(const std::vector<int>& in) const {
  int prod = 1;
  for (int d : in) prod *= d;
  return {prod};
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool /*train*/) {
  FT_CHECK_MSG(x.ndim() == 4, "GlobalAvgPool expects NCHW");
  cached_shape_ = x.shape();
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const auto plane = static_cast<std::int64_t>(h) * w;
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(plane);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float* p = x.data() + (static_cast<std::int64_t>(b) * c + ch) *
                                      plane;
      double s = 0.0;
      for (std::int64_t i = 0; i < plane; ++i) s += p[i];
      y.at(b, ch) = static_cast<float>(s) * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const int n = cached_shape_[0], c = cached_shape_[1], h = cached_shape_[2],
            w = cached_shape_[3];
  FT_CHECK(grad_out.ndim() == 2 && grad_out.dim(0) == n && grad_out.dim(1) == c);
  const auto plane = static_cast<std::int64_t>(h) * w;
  const float inv = 1.0f / static_cast<float>(plane);
  Tensor dx({n, c, h, w});
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(b, ch) * inv;
      float* p = dx.data() + (static_cast<std::int64_t>(b) * c + ch) * plane;
      for (std::int64_t i = 0; i < plane; ++i) p[i] = g;
    }
  }
  return dx;
}

std::vector<int> GlobalAvgPool::out_shape(const std::vector<int>& in) const {
  FT_CHECK(in.size() == 3);
  return {in[0]};
}

}  // namespace fedtrans
