#include "trace/device.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace fedtrans {

DeviceProfile sample_device(const FleetConfig& cfg, Rng& rng) {
  DeviceProfile d;
  d.compute_macs_per_s =
      cfg.median_compute_macs_per_s * rng.lognormal(0.0, cfg.sigma_compute);
  d.bandwidth_bytes_per_s =
      cfg.median_bandwidth_bytes_per_s * rng.lognormal(0.0, cfg.sigma_bandwidth);
  d.capacity_macs = d.compute_macs_per_s * cfg.latency_budget_s;
  return d;
}

std::vector<DeviceProfile> sample_fleet(const FleetConfig& cfg) {
  FT_CHECK(cfg.num_devices > 0);
  Rng rng(cfg.seed);
  std::vector<DeviceProfile> fleet;
  fleet.reserve(static_cast<std::size_t>(cfg.num_devices));
  for (int i = 0; i < cfg.num_devices; ++i)
    fleet.push_back(sample_device(cfg, rng));
  return fleet;
}

bool device_available(const AvailabilityModel& m, std::uint32_t round,
                      std::uint32_t client, std::uint32_t phase) {
  if (m.base_online_frac >= 1.0 && m.diurnal_amplitude <= 0.0) return true;
  FT_CHECK(m.period_rounds > 0);
  const double t =
      static_cast<double>((round + phase) % static_cast<std::uint32_t>(
                                               m.period_rounds)) /
      static_cast<double>(m.period_rounds);
  const double p = std::clamp(
      m.base_online_frac +
          m.diurnal_amplitude * std::sin(2.0 * 3.141592653589793 * t),
      0.0, 1.0);
  return hash01(m.seed, 0xa7a11u, round, client) < p;
}

double fleet_disparity(const std::vector<DeviceProfile>& fleet) {
  FT_CHECK(!fleet.empty());
  double lo = fleet.front().compute_macs_per_s, hi = lo;
  for (const auto& d : fleet) {
    lo = std::min(lo, d.compute_macs_per_s);
    hi = std::max(hi, d.compute_macs_per_s);
  }
  return hi / lo;
}

double client_round_time_s(const DeviceProfile& dev, double model_macs,
                           int local_steps, int batch, double model_bytes) {
  FT_CHECK(dev.compute_macs_per_s > 0 && dev.bandwidth_bytes_per_s > 0);
  const double compute_s =
      3.0 * model_macs * local_steps * batch / dev.compute_macs_per_s;
  const double comm_s = 2.0 * model_bytes / dev.bandwidth_bytes_per_s;
  return compute_s + comm_s;
}

double inference_latency_ms(const DeviceProfile& dev, double model_macs) {
  return model_macs / dev.compute_macs_per_s * 1e3;
}

double transfer_time_s(const DeviceProfile& dev, double bytes) {
  FT_CHECK(dev.bandwidth_bytes_per_s > 0);
  return bytes / dev.bandwidth_bytes_per_s;
}

int most_capable_fit(const DeviceProfile& dev,
                     const std::vector<double>& model_macs) {
  int best = -1;
  double best_macs = -1.0;
  for (std::size_t i = 0; i < model_macs.size(); ++i) {
    if (model_macs[i] <= dev.capacity_macs && model_macs[i] > best_macs) {
      best = static_cast<int>(i);
      best_macs = model_macs[i];
    }
  }
  return best;
}

}  // namespace fedtrans
