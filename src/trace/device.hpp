#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace fedtrans {

/// Capability profile of one edge device. Substitutes for the FedScale
/// 500k-device hardware trace the paper samples from: compute and network
/// throughput are log-normal across the fleet (the shape of the AI-Benchmark
/// smartphone survey in Fig. 1a), with a ≥29× disparity between the most and
/// least capable devices.
struct DeviceProfile {
  /// Sustained multiply-accumulate throughput (MACs/second).
  double compute_macs_per_s = 1e8;
  /// Sustained network throughput (bytes/second), up == down.
  double bandwidth_bytes_per_s = 1e5;
  /// Largest per-sample model cost (MACs) this device accepts — the paper's
  /// hardware-compatibility constraint T_c (derived from a per-inference
  /// latency budget).
  double capacity_macs = 1e6;
};

struct FleetConfig {
  int num_devices = 64;
  /// Median compute throughput; per-device values are
  /// median * LogNormal(0, sigma).
  double median_compute_macs_per_s = 2e8;
  double sigma_compute = 1.0;
  double median_bandwidth_bytes_per_s = 2e5;
  double sigma_bandwidth = 0.8;
  /// Per-inference latency budget that converts compute into a MAC
  /// capacity: capacity = compute * budget.
  double latency_budget_s = 0.004;
  std::uint64_t seed = 7;

  /// Convenience: choose median compute so the median device's capacity
  /// equals `median_capacity_macs` (used by experiment presets to place the
  /// fleet relative to a dataset's initial/maximum model sizes).
  FleetConfig& with_median_capacity(double median_capacity_macs) {
    median_compute_macs_per_s = median_capacity_macs / latency_budget_s;
    return *this;
  }
};

/// Sample a heterogeneous device fleet.
std::vector<DeviceProfile> sample_fleet(const FleetConfig& cfg);

/// Sample one device from the fleet distribution using the caller's
/// generator — the per-client building block sample_fleet iterates, and
/// what the population layer (src/pop) uses with an independent
/// counter-hashed Rng per client so any subset of a million-device fleet
/// can be drawn without walking a sequential chain.
DeviceProfile sample_device(const FleetConfig& cfg, Rng& rng);

/// Diurnal availability model: a device is online with probability
///   clamp(base_online_frac + diurnal_amplitude ·
///         sin(2π · (round + phase) / period_rounds), 0, 1)
/// where `phase` spreads devices across timezones/habits. Substitutes for
/// the FedScale availability trace the paper samples participants under:
/// the population layer filters selection to clients whose counter-hashed
/// draw lands under this probability, so availability is deterministic per
/// (seed, round, client) and free of per-client state.
struct AvailabilityModel {
  /// Mean online fraction (1.0 = every device always online).
  double base_online_frac = 1.0;
  /// Peak-to-mean swing of the diurnal cycle (0 = flat).
  double diurnal_amplitude = 0.0;
  /// Rounds per simulated day.
  int period_rounds = 24;
  std::uint64_t seed = 0xa5a11ab1eULL;
};

/// Deterministic per-(round, client) availability draw. `phase` is the
/// client's diurnal offset in rounds (ClientDescriptor::avail_phase).
bool device_available(const AvailabilityModel& m, std::uint32_t round,
                      std::uint32_t client, std::uint32_t phase);

/// Max/min compute ratio across the fleet (paper reports ≥ 29×).
double fleet_disparity(const std::vector<DeviceProfile>& fleet);

/// Wall-clock seconds one client needs for a training round: forward+backward
/// compute (≈ 3× forward MACs) for steps × batch samples, plus model
/// download+upload.
double client_round_time_s(const DeviceProfile& dev, double model_macs,
                           int local_steps, int batch,
                           double model_bytes);

/// Per-sample inference latency in milliseconds (Fig. 1a metric).
double inference_latency_ms(const DeviceProfile& dev, double model_macs);

/// Seconds to move `bytes` over one direction of the device's link (the
/// per-frame latency model the federation fabric's simulated transport
/// uses; client_round_time_s's comm term is two such transfers of the
/// model).
double transfer_time_s(const DeviceProfile& dev, double bytes);

/// Largest value in `model_macs` that fits the device's capacity; -1 if none.
int most_capable_fit(const DeviceProfile& dev,
                     const std::vector<double>& model_macs);

}  // namespace fedtrans
