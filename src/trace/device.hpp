#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace fedtrans {

/// Capability profile of one edge device. Substitutes for the FedScale
/// 500k-device hardware trace the paper samples from: compute and network
/// throughput are log-normal across the fleet (the shape of the AI-Benchmark
/// smartphone survey in Fig. 1a), with a ≥29× disparity between the most and
/// least capable devices.
struct DeviceProfile {
  /// Sustained multiply-accumulate throughput (MACs/second).
  double compute_macs_per_s = 1e8;
  /// Sustained network throughput (bytes/second), up == down.
  double bandwidth_bytes_per_s = 1e5;
  /// Largest per-sample model cost (MACs) this device accepts — the paper's
  /// hardware-compatibility constraint T_c (derived from a per-inference
  /// latency budget).
  double capacity_macs = 1e6;
};

struct FleetConfig {
  int num_devices = 64;
  /// Median compute throughput; per-device values are
  /// median * LogNormal(0, sigma).
  double median_compute_macs_per_s = 2e8;
  double sigma_compute = 1.0;
  double median_bandwidth_bytes_per_s = 2e5;
  double sigma_bandwidth = 0.8;
  /// Per-inference latency budget that converts compute into a MAC
  /// capacity: capacity = compute * budget.
  double latency_budget_s = 0.004;
  std::uint64_t seed = 7;

  /// Convenience: choose median compute so the median device's capacity
  /// equals `median_capacity_macs` (used by experiment presets to place the
  /// fleet relative to a dataset's initial/maximum model sizes).
  FleetConfig& with_median_capacity(double median_capacity_macs) {
    median_compute_macs_per_s = median_capacity_macs / latency_budget_s;
    return *this;
  }
};

/// Sample a heterogeneous device fleet.
std::vector<DeviceProfile> sample_fleet(const FleetConfig& cfg);

/// Max/min compute ratio across the fleet (paper reports ≥ 29×).
double fleet_disparity(const std::vector<DeviceProfile>& fleet);

/// Wall-clock seconds one client needs for a training round: forward+backward
/// compute (≈ 3× forward MACs) for steps × batch samples, plus model
/// download+upload.
double client_round_time_s(const DeviceProfile& dev, double model_macs,
                           int local_steps, int batch,
                           double model_bytes);

/// Per-sample inference latency in milliseconds (Fig. 1a metric).
double inference_latency_ms(const DeviceProfile& dev, double model_macs);

/// Seconds to move `bytes` over one direction of the device's link (the
/// per-frame latency model the federation fabric's simulated transport
/// uses; client_round_time_s's comm term is two such transfers of the
/// model).
double transfer_time_s(const DeviceProfile& dev, double bytes);

/// Largest value in `model_macs` that fits the device's capacity; -1 if none.
int most_capable_fit(const DeviceProfile& dev,
                     const std::vector<double>& model_macs);

}  // namespace fedtrans
