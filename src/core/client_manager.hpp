#pragma once

#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "model/spec.hpp"

namespace fedtrans {

/// Utility-based model assignment (§4.2). For each registered client the
/// manager keeps a loss-based utility per model. Participants are assigned
/// a *compatible* model (MACs ≤ client capacity) sampled from the softmax of
/// utilities (Eq. 2–3); after training, the utilities of all compatible
/// models are jointly updated with the standardized loss weighted by
/// architectural similarity to the trained model (Eq. 4).
class ClientManager {
 public:
  ClientManager(std::vector<double> client_capacity_macs,
                double exploration_temp = 1.0);

  /// Register a new model; `parent_index` < 0 for the initial model. New
  /// models copy the parent's utilities (Algorithm 1 line 18).
  void add_model(const ModelSpec& spec, double macs, int parent_index);
  int num_models() const { return static_cast<int>(model_macs_.size()); }
  int num_clients() const {
    return static_cast<int>(capacity_.size());
  }

  /// Indices of models the client can run; falls back to {0} when even the
  /// initial model exceeds the client's capacity (the initial model is
  /// sized for the weakest device, so this is the sane degenerate answer).
  std::vector<int> compatible_models(int client) const;

  /// Sample a model for the client per Eq. 2–3.
  int assign(int client, Rng& rng) const;

  /// Eq. 4: for every compatible model k of the client,
  /// U_k ← U_k − L_std · sim(M_k, M_assigned).
  void update_utilities(int client, int assigned_model,
                        double standardized_loss);

  /// Deployment-time choice: the compatible model with the highest utility
  /// (ties broken toward the larger model).
  int best_model(int client) const;

  double utility(int client, int model) const;
  double similarity(int a, int b) const;
  double capacity(int client) const {
    return capacity_[static_cast<std::size_t>(client)];
  }

  /// Checkpointing: persist/restore the model registry (specs, MACs, cached
  /// similarities) and every client's utility vector. Capacities and the
  /// exploration temperature come from construction.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<double> capacity_;
  double temp_;
  std::vector<double> model_macs_;
  std::vector<ModelSpec> specs_;
  /// sim_[i][j] = model_similarity(spec_i, spec_j), cached on add_model.
  std::vector<std::vector<double>> sim_;
  /// utilities_[client][model].
  std::vector<std::vector<double>> utilities_;
};

}  // namespace fedtrans
