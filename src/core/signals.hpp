#pragma once

#include <deque>
#include <iosfwd>
#include <vector>

#include "fl/weights.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// Degree-of-convergence tracker (Eq. 1): the mean of γ consecutive training
/// loss slopes, each taken with step δ:
///   DoC = (1/γ) Σ_{i=1..γ} (L(i−δ) − L(i)) / δ
/// Transformation fires when DoC drops below the threshold β — the "elbow"
/// of the loss curve (§4.1).
class DoCTracker {
 public:
  DoCTracker(int gamma, int delta);

  void add_loss(double loss);
  /// True once γ+δ losses have been observed.
  bool ready() const;
  /// Current DoC (requires ready()).
  double doc() const;
  void reset();
  int history_size() const { return static_cast<int>(history_.size()); }

  /// Checkpointing: persist/restore the loss history (γ and δ come from the
  /// configuration the tracker is reconstructed with).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  int gamma_, delta_;
  std::deque<double> history_;
};

/// Per-Cell activeness tracker: ‖Δw_l‖ / ‖w_l‖ of the aggregate round
/// update, averaged over the last `window` rounds (paper's T = 5). The Cells
/// whose activeness exceeds α × max activeness are the accuracy bottlenecks
/// Model Transformer expands.
class ActivenessTracker {
 public:
  ActivenessTracker(int num_cells, int window);

  /// Record one round's aggregate update `delta` (aligned with
  /// model.params() order) for `model`.
  void add_round(Model& model, const WeightSet& delta);
  /// Moving-average activeness per Cell.
  std::vector<double> activeness() const;
  int num_cells() const { return static_cast<int>(per_cell_.size()); }

  /// Checkpointing: persist/restore the per-Cell activeness windows.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  int window_;
  std::vector<std::deque<double>> per_cell_;
};

}  // namespace fedtrans
