#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace fedtrans {

FedTransStrategy::FedTransStrategy(ModelSpec initial, FedTransConfig cfg)
    : initial_spec_(std::move(initial)),
      cfg_(cfg),
      aggregator_({cfg.eta, cfg.enable_soft_agg, cfg.enable_decay,
                   cfg.enable_l2s}),
      doc_(cfg.gamma, cfg.doc_delta) {}

void FedTransStrategy::attach(RoundContext& ctx, Rng& rng) {
  data_ = &ctx.data;
  fleet_ = &ctx.fleet;

  ModelEntry entry;
  entry.model = std::make_unique<Model>(std::move(initial_spec_), rng);
  entry.id = 0;
  entry.created_round = 0;
  entry.opt = make_server_opt(cfg_.server_opt);
  models_.push_back(std::move(entry));

  std::vector<double> caps;
  caps.reserve(fleet_->size());
  for (const auto& d : *fleet_) {
    caps.push_back(d.capacity_macs);
    max_capacity_ = std::max(max_capacity_, d.capacity_macs);
  }
  cm_ = std::make_unique<ClientManager>(std::move(caps));
  cm_->add_model(models_[0].model->spec(),
                 static_cast<double>(models_[0].model->macs()), -1);
  act_ = std::make_unique<ActivenessTracker>(models_[0].model->num_cells(),
                                             cfg_.act_window);
}

std::vector<Model*> FedTransStrategy::model_ptrs() {
  std::vector<Model*> ptrs;
  ptrs.reserve(models_.size());
  for (auto& e : models_) ptrs.push_back(e.model.get());
  return ptrs;
}

std::vector<ClientTask> FedTransStrategy::plan_round(RoundContext& ctx,
                                                     Rng& rng) {
  auto tasks = Strategy::plan_round(ctx, rng);
  const auto n_models = static_cast<std::size_t>(num_models());
  acc_.assign(n_models, WeightSet{});
  wsum_.assign(n_models, 0.0);
  loss_sum_.assign(n_models, 0.0);
  loss_cnt_.assign(n_models, 0);
  parts_.clear();
  parts_.reserve(tasks.size());
  slowest_ = 0.0;
  return tasks;
}

void FedTransStrategy::prepare_task(ClientTask& task, Rng& rng,
                                    RoundContext&) {
  // Model assignment consumes the coordinator Rng in task order — the same
  // sequential pre-pass (assign, fork, assign, fork, …) the legacy trainer
  // ran, so draws stay bit-identical.
  task.tag = cm_->assign(task.client, rng);
}

Model FedTransStrategy::client_payload(const ClientTask& task) {
  return *models_[static_cast<std::size_t>(task.tag)].model;
}

void FedTransStrategy::absorb_update(const ClientTask& task, Model*,
                                     LocalTrainResult& res,
                                     RoundContext& ctx) {
  const int c = task.client;
  const auto k = static_cast<std::size_t>(task.tag);
  Model& server_model = *models_[k].model;

  if (acc_[k].empty()) acc_[k] = ws_zeros_like(res.delta);
  ws_axpy(acc_[k], static_cast<float>(res.num_samples), res.delta);
  wsum_[k] += res.num_samples;
  loss_sum_[k] += res.avg_loss;
  ++loss_cnt_[k];
  parts_.push_back({c, task.tag, res.avg_loss});
  ctx.selector.report(c, res.avg_loss, res.num_samples);

  bill_trained_update(ctx, c, static_cast<double>(server_model.param_bytes()),
                      static_cast<double>(server_model.macs()), res, slowest_);
}

void FedTransStrategy::absorb_metrics(const ClientTask& task,
                                      const LocalTrainResult& res,
                                      RoundContext& ctx) {
  // Numeric tree round: per-client bookkeeping — utility learning inputs,
  // selector feedback, billing — exactly as absorb_update, minus the
  // weight accumulation (pre-summed by the tree per assigned model).
  const int c = task.client;
  const auto k = static_cast<std::size_t>(task.tag);
  Model& server_model = *models_[k].model;
  loss_sum_[k] += res.avg_loss;
  ++loss_cnt_[k];
  parts_.push_back({c, task.tag, res.avg_loss});
  ctx.selector.report(c, res.avg_loss, res.num_samples);
  bill_trained_update(ctx, c, static_cast<double>(server_model.param_bytes()),
                      static_cast<double>(server_model.macs()), res, slowest_);
}

void FedTransStrategy::absorb_reduced(const ClientTask& task, Model*,
                                      WeightSet& sum, double weight, int,
                                      RoundContext&) {
  const auto k = static_cast<std::size_t>(task.tag);
  if (acc_[k].empty()) acc_[k] = ws_zeros_like(sum);
  ws_axpy(acc_[k], 1.0f, sum);
  wsum_[k] += weight;
}

void FedTransStrategy::lost_update(const ClientTask& task,
                                   ClientOutcome outcome, RoundContext& ctx) {
  Model& m = *models_[static_cast<std::size_t>(task.tag)].model;
  bill_lost_update(ctx, outcome, static_cast<double>(m.param_bytes()),
                   static_cast<double>(m.macs()));
}

void FedTransStrategy::finish_round(RoundContext& ctx, RoundRecord& rec) {
  const int n_models = num_models();

  // Joint utility learning (Eq. 4) with per-round standardized losses.
  {
    std::vector<double> losses;
    losses.reserve(parts_.size());
    // Guard against diverged local runs: a non-finite loss is treated as
    // the worst finite loss of the round so it cannot poison utilities.
    double worst = 0.0;
    for (const auto& p : parts_)
      if (std::isfinite(p.loss)) worst = std::max(worst, p.loss);
    for (const auto& p : parts_)
      losses.push_back(std::isfinite(p.loss) ? p.loss : worst + 1.0);
    const auto std_losses = standardize(losses);
    for (std::size_t i = 0; i < parts_.size(); ++i)
      cm_->update_utilities(parts_[i].client, parts_[i].model, std_losses[i]);
  }

  // Per-model FedAvg.
  const int newest = n_models - 1;
  for (int k = 0; k < n_models; ++k) {
    const auto ki = static_cast<std::size_t>(k);
    if (wsum_[ki] <= 0.0) continue;
    ws_scale(acc_[ki], static_cast<float>(1.0 / wsum_[ki]));
    Model& m = *models_[ki].model;
    WeightSet w = m.weights();
    models_[ki].opt->apply(w, acc_[ki]);
    m.set_weights(w);
    if (k == newest) act_->add_round(m, acc_[ki]);
  }

  // Soft aggregation across the family (Eq. 5).
  {
    std::vector<std::vector<double>> sim(
        static_cast<std::size_t>(n_models),
        std::vector<double>(static_cast<std::size_t>(n_models), 0.0));
    for (int i = 0; i < n_models; ++i)
      for (int j = 0; j < n_models; ++j)
        sim[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            cm_->similarity(i, j);
    auto ptrs = model_ptrs();
    aggregator_.aggregate(ptrs, sim, ctx.round);
  }

  // DoC bookkeeping on the newest model, then maybe transform.
  double round_loss = 0.0;
  int loss_models = 0;
  for (int k = 0; k < n_models; ++k)
    if (loss_cnt_[static_cast<std::size_t>(k)] > 0) {
      round_loss += loss_sum_[static_cast<std::size_t>(k)] /
                    loss_cnt_[static_cast<std::size_t>(k)];
      ++loss_models;
    }
  const double mean_round_loss =
      loss_models > 0 ? round_loss / loss_models : 0.0;
  if (loss_cnt_[static_cast<std::size_t>(newest)] > 0)
    doc_.add_loss(loss_sum_[static_cast<std::size_t>(newest)] /
                  loss_cnt_[static_cast<std::size_t>(newest)]);
  maybe_transform(ctx);

  rec.avg_loss = mean_round_loss;
  rec.round_time_s = slowest_;
}

void FedTransStrategy::maybe_transform(RoundContext& ctx) {
  if (!cfg_.enable_transform || exhausted_ || num_models() >= cfg_.max_models)
    return;
  if (!doc_.ready() || doc_.doc() > cfg_.beta) return;

  ModelEntry& parent = models_.back();
  const auto activeness = act_->activeness();
  Rng trng = ctx.rng.fork();
  const TransformerOptions topts{cfg_.alpha, cfg_.widen_factor,
                                 cfg_.deepen_blocks,
                                 cfg_.enable_layer_selection,
                                 cfg_.scaling_policy};
  const auto plan =
      build_transform_plan(parent.model->spec(), activeness, topts, trng);
  const bool any = std::any_of(plan.begin(), plan.end(), [](const CellOp& op) {
    return op.kind != CellOp::Kind::Keep;
  });
  if (!any) return;

  const int child_id = next_model_id_++;
  std::string child_name = "M";
  child_name += std::to_string(child_id);
  Model child = transform_model(*parent.model, plan, child_id, child_name,
                                trng, cfg_.enable_warmup);
  if (static_cast<double>(child.macs()) > max_capacity_) {
    // No participant can run it: the family has reached the fleet's ceiling.
    exhausted_ = true;
    return;
  }

  const int parent_index = num_models() - 1;
  ModelEntry entry;
  entry.model = std::make_unique<Model>(std::move(child));
  entry.id = child_id;
  entry.created_round = ctx.round;
  entry.opt = make_server_opt(cfg_.server_opt);
  cm_->add_model(entry.model->spec(),
                 static_cast<double>(entry.model->macs()), parent_index);
  act_ = std::make_unique<ActivenessTracker>(entry.model->num_cells(),
                                             cfg_.act_window);
  doc_.reset();  // the newest model needs fresh γ+δ history
  models_.push_back(std::move(entry));
  ++transforms_;

  double storage = 0.0;
  for (const auto& e : models_)
    storage += static_cast<double>(e.model->param_bytes());
  ctx.costs.note_storage(storage);
}

double FedTransStrategy::probe_accuracy(const std::vector<int>& ids,
                                        RoundContext& ctx) {
  // Private model copies per evaluation: forward() mutates layer caches.
  std::vector<double> accs(ids.size(), 0.0);
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(ids.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const int c = ids[static_cast<std::size_t>(i)];
          const int best = cm_->best_model(c);
          Model probe = *models_[static_cast<std::size_t>(best)].model;
          accs[static_cast<std::size_t>(i)] =
              evaluate_accuracy(probe, ctx.data.client(c));
        }
      });
  double s = 0.0;
  for (double a : accs) s += a;
  return s / static_cast<double>(ids.size());
}

FinalEval FedTransStrategy::evaluate_final() {
  FinalEval ev;
  const auto n = static_cast<std::size_t>(data_->num_clients());
  ev.client_accuracy.assign(n, 0.0);
  ev.client_model.assign(n, 0);
  // Deployment evaluation is read-only on the family apart from layer
  // caches, so each worker probes private model copies; per-client slots
  // keep the result order (and thus mean/IQR) deterministic.
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(n), 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const int c = static_cast<int>(i);
          int best;
          if (cfg_.final_assignment ==
              FedTransConfig::FinalAssignment::Utility) {
            best = cm_->best_model(c);
          } else {
            // Client-side probe: among compatible models, the one with the
            // lowest loss on the client's own training shard (its data never
            // leaves the device; only the choice does).
            const auto compat = cm_->compatible_models(c);
            best = compat.front();
            double best_loss = 1e300;
            for (int k : compat) {
              Model probe = *models_[static_cast<std::size_t>(k)].model;
              const double l = evaluate_loss(probe, data_->client(c));
              if (l < best_loss) {
                best_loss = l;
                best = k;
              }
            }
          }
          ev.client_model[static_cast<std::size_t>(i)] = best;
          Model deploy = *models_[static_cast<std::size_t>(best)].model;
          ev.client_accuracy[static_cast<std::size_t>(i)] =
              evaluate_accuracy(deploy, data_->client(c));
        }
      });
  ev.mean_accuracy = mean(ev.client_accuracy);
  ev.accuracy_iqr = iqr(ev.client_accuracy);
  return ev;
}

FedTransTrainer::FedTransTrainer(ModelSpec initial,
                                 const FederatedDataset& data,
                                 std::vector<DeviceProfile> fleet,
                                 FedTransConfig cfg) {
  auto strategy =
      std::make_unique<FedTransStrategy>(std::move(initial), cfg);
  strategy_ = strategy.get();
  engine_ = std::make_unique<FederationEngine>(
      std::move(strategy), data, std::move(fleet),
      static_cast<const SessionConfig&>(cfg));
}

}  // namespace fedtrans
