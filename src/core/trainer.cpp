#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "fl/runner.hpp"

namespace fedtrans {

FedTransTrainer::FedTransTrainer(ModelSpec initial,
                                 const FederatedDataset& data,
                                 std::vector<DeviceProfile> fleet,
                                 FedTransConfig cfg)
    : data_(data),
      fleet_(std::move(fleet)),
      cfg_(cfg),
      rng_(cfg.seed),
      aggregator_({cfg.eta, cfg.enable_soft_agg, cfg.enable_decay,
                   cfg.enable_l2s}),
      doc_(cfg.gamma, cfg.doc_delta) {
  FT_CHECK_MSG(static_cast<int>(fleet_.size()) == data_.num_clients(),
               "fleet size must match client count");
  selector_ = make_selector(cfg_.selector);
  ModelEntry entry;
  entry.model = std::make_unique<Model>(std::move(initial), rng_);
  entry.id = 0;
  entry.created_round = 0;
  entry.opt = make_server_opt(cfg_.server_opt);
  models_.push_back(std::move(entry));

  std::vector<double> caps;
  caps.reserve(fleet_.size());
  for (const auto& d : fleet_) {
    caps.push_back(d.capacity_macs);
    max_capacity_ = std::max(max_capacity_, d.capacity_macs);
  }
  cm_ = std::make_unique<ClientManager>(std::move(caps));
  cm_->add_model(models_[0].model->spec(),
                 static_cast<double>(models_[0].model->macs()), -1);
  act_ = std::make_unique<ActivenessTracker>(models_[0].model->num_cells(),
                                             cfg_.act_window);
  costs_.note_storage(static_cast<double>(models_[0].model->param_bytes()));
}

std::vector<Model*> FedTransTrainer::model_ptrs() {
  std::vector<Model*> ptrs;
  ptrs.reserve(models_.size());
  for (auto& e : models_) ptrs.push_back(e.model.get());
  return ptrs;
}

double FedTransTrainer::run_round() {
  const int n_models = num_models();
  auto selected = selector_->select(data_.num_clients(),
                                    cfg_.clients_per_round, rng_);

  // Per-model accumulators for FedAvg.
  std::vector<WeightSet> acc(static_cast<std::size_t>(n_models));
  std::vector<double> wsum(static_cast<std::size_t>(n_models), 0.0);
  std::vector<double> loss_sum(static_cast<std::size_t>(n_models), 0.0);
  std::vector<int> loss_cnt(static_cast<std::size_t>(n_models), 0);

  struct Participation {
    int client;
    int model;
    double loss;
  };
  std::vector<Participation> parts;
  parts.reserve(selected.size());

  // Sequential pre-pass: model assignment and Rng forking consume rng_ in
  // the exact order the serial loop did. The training itself is then
  // embarrassingly parallel (each client works on a private model copy), and
  // the reduction below runs in fixed selection order, so round metrics are
  // bitwise-independent of the thread count.
  std::vector<int> assigned(selected.size(), 0);
  std::vector<Rng> client_rngs;
  client_rngs.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    assigned[i] = cm_->assign(selected[i], rng_);
    client_rngs.push_back(rng_.fork());
  }
  std::vector<LocalTrainResult> results(selected.size());
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(selected.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          Model local_model =
              *models_[static_cast<std::size_t>(assigned[idx])].model;
          results[idx] = local_train(local_model, data_.client(selected[idx]),
                                     cfg_.local, client_rngs[idx]);
        }
      });

  double slowest = 0.0;
  for (std::size_t ci = 0; ci < selected.size(); ++ci) {
    const int c = selected[ci];
    const int k = assigned[ci];
    Model& server_model = *models_[static_cast<std::size_t>(k)].model;
    auto& res = results[ci];

    if (acc[static_cast<std::size_t>(k)].empty())
      acc[static_cast<std::size_t>(k)] = ws_zeros_like(res.delta);
    ws_axpy(acc[static_cast<std::size_t>(k)],
            static_cast<float>(res.num_samples), res.delta);
    wsum[static_cast<std::size_t>(k)] += res.num_samples;
    loss_sum[static_cast<std::size_t>(k)] += res.avg_loss;
    ++loss_cnt[static_cast<std::size_t>(k)];
    parts.push_back({c, k, res.avg_loss});
    selector_->report(c, res.avg_loss, res.num_samples);

    const double bytes = static_cast<double>(server_model.param_bytes());
    costs_.add_training_macs(res.macs_used);
    costs_.add_transfer(bytes, bytes);
    const double t = client_round_time_s(
        fleet_[static_cast<std::size_t>(c)],
        static_cast<double>(server_model.macs()), cfg_.local.steps,
        cfg_.local.batch, bytes);
    costs_.add_client_round_time(t);
    slowest = std::max(slowest, t);
  }

  // Joint utility learning (Eq. 4) with per-round standardized losses.
  {
    std::vector<double> losses;
    losses.reserve(parts.size());
    // Guard against diverged local runs: a non-finite loss is treated as
    // the worst finite loss of the round so it cannot poison utilities.
    double worst = 0.0;
    for (const auto& p : parts)
      if (std::isfinite(p.loss)) worst = std::max(worst, p.loss);
    for (const auto& p : parts)
      losses.push_back(std::isfinite(p.loss) ? p.loss : worst + 1.0);
    const auto std_losses = standardize(losses);
    for (std::size_t i = 0; i < parts.size(); ++i)
      cm_->update_utilities(parts[i].client, parts[i].model, std_losses[i]);
  }

  // Per-model FedAvg.
  const int newest = n_models - 1;
  for (int k = 0; k < n_models; ++k) {
    if (wsum[static_cast<std::size_t>(k)] <= 0.0) continue;
    ws_scale(acc[static_cast<std::size_t>(k)],
             static_cast<float>(1.0 / wsum[static_cast<std::size_t>(k)]));
    Model& m = *models_[static_cast<std::size_t>(k)].model;
    WeightSet w = m.weights();
    models_[static_cast<std::size_t>(k)].opt->apply(
        w, acc[static_cast<std::size_t>(k)]);
    m.set_weights(w);
    if (k == newest)
      act_->add_round(m, acc[static_cast<std::size_t>(k)]);
  }

  // Soft aggregation across the family (Eq. 5).
  {
    std::vector<std::vector<double>> sim(
        static_cast<std::size_t>(n_models),
        std::vector<double>(static_cast<std::size_t>(n_models), 0.0));
    for (int i = 0; i < n_models; ++i)
      for (int j = 0; j < n_models; ++j)
        sim[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            cm_->similarity(i, j);
    auto ptrs = model_ptrs();
    aggregator_.aggregate(ptrs, sim, round_);
  }

  // DoC bookkeeping on the newest model, then maybe transform.
  double round_loss = 0.0;
  int loss_models = 0;
  for (int k = 0; k < n_models; ++k)
    if (loss_cnt[static_cast<std::size_t>(k)] > 0) {
      round_loss += loss_sum[static_cast<std::size_t>(k)] /
                    loss_cnt[static_cast<std::size_t>(k)];
      ++loss_models;
    }
  const double mean_round_loss =
      loss_models > 0 ? round_loss / loss_models : 0.0;
  if (loss_cnt[static_cast<std::size_t>(newest)] > 0)
    doc_.add_loss(loss_sum[static_cast<std::size_t>(newest)] /
                  loss_cnt[static_cast<std::size_t>(newest)]);
  maybe_transform();

  RoundRecord rec;
  rec.round = round_;
  rec.avg_loss = mean_round_loss;
  rec.cum_macs = costs_.total_macs();
  rec.round_time_s = slowest;
  if (cfg_.eval_every > 0 && round_ % cfg_.eval_every == 0) {
    Rng erng(cfg_.seed + 977 + static_cast<std::uint64_t>(round_));
    const int k = cfg_.eval_clients > 0
                      ? std::min(cfg_.eval_clients, data_.num_clients())
                      : data_.num_clients();
    auto ids = FedAvgRunner::select_clients(data_.num_clients(), k, erng);
    // Private model copies per evaluation: forward() mutates layer caches.
    std::vector<double> accs(ids.size(), 0.0);
    ThreadPool::global().parallel_for(
        static_cast<std::int64_t>(ids.size()), 1,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const int c = ids[static_cast<std::size_t>(i)];
            const int best = cm_->best_model(c);
            Model probe = *models_[static_cast<std::size_t>(best)].model;
            accs[static_cast<std::size_t>(i)] =
                evaluate_accuracy(probe, data_.client(c));
          }
        });
    double s = 0.0;
    for (double a : accs) s += a;
    rec.accuracy = s / static_cast<double>(ids.size());
  }
  history_.push_back(rec);
  ++round_;
  return mean_round_loss;
}

void FedTransTrainer::maybe_transform() {
  if (!cfg_.enable_transform || exhausted_ || num_models() >= cfg_.max_models)
    return;
  if (!doc_.ready() || doc_.doc() > cfg_.beta) return;

  ModelEntry& parent = models_.back();
  const auto activeness = act_->activeness();
  Rng trng = rng_.fork();
  const TransformerOptions topts{cfg_.alpha, cfg_.widen_factor,
                                 cfg_.deepen_blocks,
                                 cfg_.enable_layer_selection,
                                 cfg_.scaling_policy};
  const auto plan =
      build_transform_plan(parent.model->spec(), activeness, topts, trng);
  const bool any = std::any_of(plan.begin(), plan.end(), [](const CellOp& op) {
    return op.kind != CellOp::Kind::Keep;
  });
  if (!any) return;

  const int child_id = next_model_id_++;
  std::string child_name = "M";
  child_name += std::to_string(child_id);
  Model child = transform_model(*parent.model, plan, child_id, child_name,
                                trng, cfg_.enable_warmup);
  if (static_cast<double>(child.macs()) > max_capacity_) {
    // No participant can run it: the family has reached the fleet's ceiling.
    exhausted_ = true;
    return;
  }

  const int parent_index = num_models() - 1;
  ModelEntry entry;
  entry.model = std::make_unique<Model>(std::move(child));
  entry.id = child_id;
  entry.created_round = round_;
  entry.opt = make_server_opt(cfg_.server_opt);
  cm_->add_model(entry.model->spec(),
                 static_cast<double>(entry.model->macs()), parent_index);
  act_ = std::make_unique<ActivenessTracker>(entry.model->num_cells(),
                                             cfg_.act_window);
  doc_.reset();  // the newest model needs fresh γ+δ history
  models_.push_back(std::move(entry));
  ++transforms_;

  double storage = 0.0;
  for (const auto& e : models_)
    storage += static_cast<double>(e.model->param_bytes());
  costs_.note_storage(storage);
}

void FedTransTrainer::run() {
  for (int r = 0; r < cfg_.rounds; ++r) run_round();
}

FinalEval FedTransTrainer::evaluate_final() {
  FinalEval ev;
  const auto n = static_cast<std::size_t>(data_.num_clients());
  ev.client_accuracy.assign(n, 0.0);
  ev.client_model.assign(n, 0);
  // Deployment evaluation is read-only on the family apart from layer
  // caches, so each worker probes private model copies; per-client slots
  // keep the result order (and thus mean/IQR) deterministic.
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(n), 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const int c = static_cast<int>(i);
          int best;
          if (cfg_.final_assignment ==
              FedTransConfig::FinalAssignment::Utility) {
            best = cm_->best_model(c);
          } else {
            // Client-side probe: among compatible models, the one with the
            // lowest loss on the client's own training shard (its data never
            // leaves the device; only the choice does).
            const auto compat = cm_->compatible_models(c);
            best = compat.front();
            double best_loss = 1e300;
            for (int k : compat) {
              Model probe = *models_[static_cast<std::size_t>(k)].model;
              const double l = evaluate_loss(probe, data_.client(c));
              if (l < best_loss) {
                best_loss = l;
                best = k;
              }
            }
          }
          ev.client_model[static_cast<std::size_t>(i)] = best;
          Model deploy = *models_[static_cast<std::size_t>(best)].model;
          ev.client_accuracy[static_cast<std::size_t>(i)] =
              evaluate_accuracy(deploy, data_.client(c));
        }
      });
  ev.mean_accuracy = mean(ev.client_accuracy);
  ev.accuracy_iqr = iqr(ev.client_accuracy);
  return ev;
}

}  // namespace fedtrans
