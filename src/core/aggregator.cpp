#include "core/aggregator.hpp"

#include <cmath>
#include <unordered_map>

#include "common/check.hpp"
#include "model/align.hpp"

namespace fedtrans {

void SoftAggregator::aggregate(std::vector<Model*>& models,
                               const std::vector<std::vector<double>>& sim,
                               int round) {
  const int n = static_cast<int>(models.size());
  if (!opts_.enable_cross || n <= 1) return;

  // Snapshot post-FedAvg weights so aggregation order does not matter.
  std::vector<WeightSet> snap;
  snap.reserve(static_cast<std::size_t>(n));
  for (auto* m : models) snap.push_back(m->weights());

  // Map parameter Tensor* -> index within each model's params() order, so
  // align_params pairs can be resolved against the snapshots.
  std::vector<std::unordered_map<const Tensor*, std::size_t>> index;
  index.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto ps = models[static_cast<std::size_t>(i)]->params();
    for (std::size_t p = 0; p < ps.size(); ++p)
      index[static_cast<std::size_t>(i)][ps[p].value] = p;
  }

  for (int j = 0; j < n; ++j) {
    Model& mj = *models[static_cast<std::size_t>(j)];
    WeightSet acc = ws_zeros_like(snap[static_cast<std::size_t>(j)]);
    WeightSet wsum = ws_zeros_like(acc);

    const int hi = opts_.enable_l2s ? n - 1 : j;
    for (int i = 0; i <= hi; ++i) {
      const double s = sim[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)];
      if (s <= 0.0) continue;
      const double decay =
          i == j ? 1.0
                 : (opts_.enable_decay ? std::pow(opts_.eta, round) : 1.0);
      const float coeff = static_cast<float>(decay * s);
      if (coeff <= 0.0f) continue;

      if (i == j) {
        // Full coverage of all of j's parameters.
        for (std::size_t p = 0; p < acc.size(); ++p) {
          const Tensor& src = snap[static_cast<std::size_t>(i)][p];
          for (std::int64_t e = 0; e < src.numel(); ++e) {
            acc[p][e] += coeff * src[e];
            wsum[p][e] += coeff;
          }
        }
        continue;
      }
      Model& mi = *models[static_cast<std::size_t>(i)];
      for (auto& pair : align_params(mj, mi)) {
        const auto dst_it = index[static_cast<std::size_t>(j)].find(pair.dst);
        const auto src_it = index[static_cast<std::size_t>(i)].find(pair.src);
        FT_CHECK(dst_it != index[static_cast<std::size_t>(j)].end());
        FT_CHECK(src_it != index[static_cast<std::size_t>(i)].end());
        Tensor& a = acc[dst_it->second];
        Tensor& w = wsum[dst_it->second];
        const Tensor& src = snap[static_cast<std::size_t>(i)][src_it->second];
        const Tensor& dst_shape =
            snap[static_cast<std::size_t>(j)][dst_it->second];
        for_each_overlap(dst_shape, src,
                         [&](std::int64_t di, std::int64_t si) {
                           a[di] += coeff * src[si];
                           w[di] += coeff;
                         });
      }
    }

    WeightSet blended = snap[static_cast<std::size_t>(j)];
    for (std::size_t p = 0; p < blended.size(); ++p)
      for (std::int64_t e = 0; e < blended[p].numel(); ++e)
        if (wsum[p][e] > 0.0f) blended[p][e] = acc[p][e] / wsum[p][e];
    mj.set_weights(blended);
  }
}

}  // namespace fedtrans
