#pragma once

#include "common/rng.hpp"
#include "model/transform.hpp"

namespace fedtrans {

/// How a selected Cell grows. `Compound` is the paper's design (§4.1 /
/// Fig. 5): alternate widen → deepen per Cell via CellSpec::widened_last,
/// inspired by EfficientNet's compound scaling. `WidenOnly` / `DeepenOnly`
/// are the counterparts the paper's §5.4 compares against.
enum class ScalingPolicy { Compound, WidenOnly, DeepenOnly };

const char* scaling_policy_name(ScalingPolicy p);

/// Model Transformer policy knobs (§4.1).
struct TransformerOptions {
  /// A Cell is selected when its activeness ≥ α × max activeness.
  double alpha = 0.9;
  double widen_factor = 2.0;
  int deepen_blocks = 1;
  /// Ablation '-l': when false, a single uniformly random Cell is selected
  /// instead of the gradient-based choice.
  bool layer_selection = true;
  ScalingPolicy scaling = ScalingPolicy::Compound;
};

/// Decide which Cells to transform and how (Fig. 5 control flow): selected
/// Cells alternate widen → deepen → widen… via CellSpec::widened_last
/// (compound scaling). Returns one CellOp per Cell of `spec`.
std::vector<CellOp> build_transform_plan(const ModelSpec& spec,
                                         const std::vector<double>& activeness,
                                         const TransformerOptions& opts,
                                         Rng& rng);

}  // namespace fedtrans
