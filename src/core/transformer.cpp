#include "core/transformer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace fedtrans {

std::vector<CellOp> build_transform_plan(const ModelSpec& spec,
                                         const std::vector<double>& activeness,
                                         const TransformerOptions& opts,
                                         Rng& rng) {
  FT_CHECK_MSG(activeness.size() == spec.cells.size(),
               "activeness/cell count mismatch");
  std::vector<CellOp> plan(spec.cells.size());

  std::vector<std::size_t> selected;
  if (opts.layer_selection) {
    const double max_act =
        *std::max_element(activeness.begin(), activeness.end());
    if (max_act <= 0.0) return plan;  // no signal: keep everything
    for (std::size_t l = 0; l < activeness.size(); ++l)
      if (activeness[l] >= opts.alpha * max_act) selected.push_back(l);
  } else {
    selected.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(spec.cells.size()) - 1)));
  }

  for (std::size_t l : selected) {
    bool widen = true;
    switch (opts.scaling) {
      case ScalingPolicy::Compound:
        widen = !spec.cells[l].widened_last;
        break;
      case ScalingPolicy::WidenOnly: widen = true; break;
      case ScalingPolicy::DeepenOnly: widen = false; break;
    }
    plan[l] = {widen ? CellOp::Kind::Widen : CellOp::Kind::Deepen,
               opts.widen_factor, opts.deepen_blocks};
  }
  return plan;
}

const char* scaling_policy_name(ScalingPolicy p) {
  switch (p) {
    case ScalingPolicy::Compound: return "compound";
    case ScalingPolicy::WidenOnly: return "widen-only";
    case ScalingPolicy::DeepenOnly: return "deepen-only";
  }
  return "compound";
}

}  // namespace fedtrans
