#include "core/signals.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/serial.hpp"

namespace fedtrans {

DoCTracker::DoCTracker(int gamma, int delta) : gamma_(gamma), delta_(delta) {
  FT_CHECK(gamma_ >= 1 && delta_ >= 1);
}

void DoCTracker::add_loss(double loss) {
  history_.push_back(loss);
  // Keep just enough history for the γ most recent slopes.
  const std::size_t need = static_cast<std::size_t>(gamma_ + delta_);
  while (history_.size() > need) history_.pop_front();
}

bool DoCTracker::ready() const {
  return history_.size() >= static_cast<std::size_t>(gamma_ + delta_);
}

double DoCTracker::doc() const {
  FT_CHECK_MSG(ready(), "DoC queried before enough loss history");
  const auto n = history_.size();
  double sum = 0.0;
  for (int j = 0; j < gamma_; ++j) {
    const double newer = history_[n - 1 - static_cast<std::size_t>(j)];
    const double older =
        history_[n - 1 - static_cast<std::size_t>(j) -
                 static_cast<std::size_t>(delta_)];
    sum += (older - newer) / delta_;
  }
  return sum / gamma_;
}

void DoCTracker::reset() { history_.clear(); }

void DoCTracker::save(std::ostream& os) const {
  write_vec(os, std::vector<double>(history_.begin(), history_.end()));
}

void DoCTracker::load(std::istream& is) {
  const auto v = read_vec<double>(is);
  history_.assign(v.begin(), v.end());
}

ActivenessTracker::ActivenessTracker(int num_cells, int window)
    : window_(window),
      per_cell_(static_cast<std::size_t>(num_cells)) {
  FT_CHECK(num_cells >= 1 && window >= 1);
}

void ActivenessTracker::add_round(Model& model, const WeightSet& delta) {
  FT_CHECK(model.num_cells() == num_cells());
  FT_CHECK(delta.size() == model.params().size());
  for (int l = 0; l < model.num_cells(); ++l) {
    const auto [begin, end] = model.cell_param_range(l);
    double g2 = 0.0, w2 = 0.0;
    auto ps = model.params();
    for (std::size_t i = begin; i < end; ++i) {
      const double gn = delta[i].l2_norm();
      const double wn = ps[i].value->l2_norm();
      g2 += gn * gn;
      w2 += wn * wn;
    }
    const double act = w2 > 0.0 ? std::sqrt(g2) / std::sqrt(w2) : 0.0;
    auto& dq = per_cell_[static_cast<std::size_t>(l)];
    dq.push_back(act);
    while (dq.size() > static_cast<std::size_t>(window_)) dq.pop_front();
  }
}

void ActivenessTracker::save(std::ostream& os) const {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(per_cell_.size()));
  for (const auto& dq : per_cell_)
    write_vec(os, std::vector<double>(dq.begin(), dq.end()));
}

void ActivenessTracker::load(std::istream& is) {
  const auto n = read_pod<std::uint32_t>(is);
  FT_CHECK_MSG(n == per_cell_.size(),
               "activeness checkpoint cell count mismatch");
  for (auto& dq : per_cell_) {
    const auto v = read_vec<double>(is);
    dq.assign(v.begin(), v.end());
  }
}

std::vector<double> ActivenessTracker::activeness() const {
  std::vector<double> out(per_cell_.size(), 0.0);
  for (std::size_t l = 0; l < per_cell_.size(); ++l) {
    const auto& dq = per_cell_[l];
    if (dq.empty()) continue;
    double s = 0.0;
    for (double v : dq) s += v;
    out[l] = s / static_cast<double>(dq.size());
  }
  return out;
}

}  // namespace fedtrans
