#include "core/client_manager.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/serial.hpp"
#include "model/similarity.hpp"

namespace fedtrans {

ClientManager::ClientManager(std::vector<double> client_capacity_macs,
                             double exploration_temp)
    : capacity_(std::move(client_capacity_macs)), temp_(exploration_temp) {
  FT_CHECK(!capacity_.empty());
  FT_CHECK(temp_ > 0.0);
  utilities_.assign(capacity_.size(), {});
}

void ClientManager::add_model(const ModelSpec& spec, double macs,
                              int parent_index) {
  FT_CHECK(parent_index < num_models());
  const int idx = num_models();
  model_macs_.push_back(macs);
  specs_.push_back(spec);
  // Extend the cached similarity matrix.
  sim_.emplace_back();
  for (int i = 0; i <= idx; ++i) {
    const double s = model_similarity(specs_[static_cast<std::size_t>(i)],
                                      specs_[static_cast<std::size_t>(idx)]);
    sim_[static_cast<std::size_t>(idx)].push_back(s);
    if (i < idx) sim_[static_cast<std::size_t>(i)].push_back(s);
  }
  for (auto& u : utilities_) {
    const double init =
        parent_index >= 0 ? u[static_cast<std::size_t>(parent_index)] : 0.0;
    u.push_back(init);
  }
}

std::vector<int> ClientManager::compatible_models(int client) const {
  FT_CHECK(client >= 0 && client < num_clients());
  std::vector<int> out;
  for (int k = 0; k < num_models(); ++k)
    if (model_macs_[static_cast<std::size_t>(k)] <=
        capacity_[static_cast<std::size_t>(client)])
      out.push_back(k);
  if (out.empty()) out.push_back(0);
  return out;
}

int ClientManager::assign(int client, Rng& rng) const {
  const auto compat = compatible_models(client);
  const auto& u = utilities_[static_cast<std::size_t>(client)];
  // Softmax over utilities of compatible models (Eq. 3), numerically
  // stabilized by subtracting the max.
  double mx = -1e300;
  for (int k : compat) mx = std::max(mx, u[static_cast<std::size_t>(k)]);
  std::vector<double> w;
  w.reserve(compat.size());
  for (int k : compat)
    w.push_back(std::exp((u[static_cast<std::size_t>(k)] - mx) / temp_));
  const int pick = rng.categorical(w);
  return compat[static_cast<std::size_t>(pick)];
}

void ClientManager::update_utilities(int client, int assigned_model,
                                     double standardized_loss) {
  FT_CHECK(assigned_model >= 0 && assigned_model < num_models());
  auto& u = utilities_[static_cast<std::size_t>(client)];
  for (int k : compatible_models(client)) {
    const double s = sim_[static_cast<std::size_t>(k)]
                         [static_cast<std::size_t>(assigned_model)];
    u[static_cast<std::size_t>(k)] -= standardized_loss * s;
  }
}

int ClientManager::best_model(int client) const {
  const auto compat = compatible_models(client);
  const auto& u = utilities_[static_cast<std::size_t>(client)];
  int best = compat.front();
  for (int k : compat) {
    const double uk = u[static_cast<std::size_t>(k)];
    const double ub = u[static_cast<std::size_t>(best)];
    // Strict improvement required: exact ties (which arise when a fresh
    // child inherits its parent's utility verbatim) stay with the earlier,
    // longer-trained model until the child proves itself.
    if (uk > ub) best = k;
  }
  return best;
}

double ClientManager::utility(int client, int model) const {
  FT_CHECK(client >= 0 && client < num_clients());
  FT_CHECK(model >= 0 && model < num_models());
  return utilities_[static_cast<std::size_t>(client)]
                   [static_cast<std::size_t>(model)];
}

double ClientManager::similarity(int a, int b) const {
  FT_CHECK(a >= 0 && a < num_models() && b >= 0 && b < num_models());
  return sim_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

void ClientManager::save(std::ostream& os) const {
  write_vec(os, model_macs_);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(specs_.size()));
  for (const auto& s : specs_) write_string(os, s.serialize());
  for (const auto& row : sim_) write_vec(os, row);
  write_pod<std::uint64_t>(os, utilities_.size());
  for (const auto& u : utilities_) write_vec(os, u);
}

void ClientManager::load(std::istream& is) {
  model_macs_ = read_vec<double>(is);
  const auto n_specs = read_pod<std::uint32_t>(is);
  FT_CHECK_MSG(n_specs == model_macs_.size(),
               "client-manager checkpoint spec/macs count mismatch");
  specs_.clear();
  for (std::uint32_t i = 0; i < n_specs; ++i)
    specs_.push_back(ModelSpec::deserialize(read_string(is)));
  sim_.assign(n_specs, {});
  for (auto& row : sim_) row = read_vec<double>(is);
  const auto n_clients = read_pod<std::uint64_t>(is);
  FT_CHECK_MSG(n_clients == capacity_.size(),
               "client-manager checkpoint client count mismatch");
  utilities_.assign(capacity_.size(), {});
  for (auto& u : utilities_) u = read_vec<double>(is);
}

}  // namespace fedtrans
