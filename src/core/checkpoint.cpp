// FedTransTrainer checkpoint/resume. The checkpoint captures every piece of
// dynamic coordinator state so a restored trainer continues bit-identically:
// planet-scale FL runs span days and preemptible infrastructure, so the
// coordinator must be restartable without perturbing the training
// trajectory (FedScale and production systems like Papaya checkpoint the
// same way).

#include <fstream>

#include "common/check.hpp"
#include "common/serial.hpp"
#include "core/trainer.hpp"
#include "model/serialize.hpp"

namespace fedtrans {

namespace {

constexpr std::uint64_t kCheckpointMagic = 0xfed72a45c8c9ULL;
// v2: RoundRecord grew participants/lost_updates (PR 2 federation
// fabric); v1 checkpoints have a different record size and must be
// rejected by the version check rather than misparsed.
constexpr std::uint32_t kCheckpointVersion = 2;

}  // namespace

void FedTransTrainer::save_checkpoint(std::ostream& os) {
  write_pod(os, kCheckpointMagic);
  write_pod(os, kCheckpointVersion);
  // Compatibility fingerprint: restoring into a trainer with a different
  // fleet/dataset/seed would silently diverge, so fail loudly instead.
  write_pod<std::uint64_t>(os, cfg_.seed);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(fleet_.size()));

  // Model family.
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(models_.size()));
  for (auto& e : models_) {
    write_pod<std::int32_t>(os, e.id);
    write_pod<std::int32_t>(os, e.created_round);
    save_model(*e.model, os);
    e.opt->save_state(os);
  }

  cm_->save(os);
  doc_.save(os);
  act_->save(os);
  costs_.save(os);
  selector_->save_state(os);

  write_pod(os, rng_.state());
  write_pod<std::int32_t>(os, round_);
  write_pod<std::int32_t>(os, transforms_);
  write_pod<std::int32_t>(os, next_model_id_);
  write_pod<std::uint8_t>(os, exhausted_ ? 1 : 0);

  write_pod<std::uint64_t>(os, history_.size());
  for (const auto& rec : history_) write_pod(os, rec);
  FT_CHECK_MSG(os.good(), "checkpoint write failed");
}

void FedTransTrainer::load_checkpoint(std::istream& is) {
  FT_CHECK_MSG(read_pod<std::uint64_t>(is) == kCheckpointMagic,
               "not a FedTrans checkpoint");
  FT_CHECK_MSG(read_pod<std::uint32_t>(is) == kCheckpointVersion,
               "unsupported checkpoint version");
  FT_CHECK_MSG(read_pod<std::uint64_t>(is) == cfg_.seed,
               "checkpoint was written with a different seed");
  FT_CHECK_MSG(read_pod<std::uint32_t>(is) == fleet_.size(),
               "checkpoint was written with a different fleet");

  const auto n_models = read_pod<std::uint32_t>(is);
  FT_CHECK_MSG(n_models >= 1, "checkpoint holds no models");
  models_.clear();
  for (std::uint32_t i = 0; i < n_models; ++i) {
    ModelEntry e;
    e.id = read_pod<std::int32_t>(is);
    e.created_round = read_pod<std::int32_t>(is);
    e.model = std::make_unique<Model>(load_model(is));
    e.opt = make_server_opt(cfg_.server_opt);
    e.opt->load_state(is);
    models_.push_back(std::move(e));
  }

  cm_->load(is);
  FT_CHECK_MSG(cm_->num_models() == static_cast<int>(n_models),
               "checkpoint client-manager/model count mismatch");
  doc_.load(is);
  act_ = std::make_unique<ActivenessTracker>(
      models_.back().model->num_cells(), cfg_.act_window);
  act_->load(is);
  costs_.load(is);
  selector_->load_state(is);

  rng_.set_state(read_pod<std::array<std::uint64_t, 4>>(is));
  round_ = read_pod<std::int32_t>(is);
  transforms_ = read_pod<std::int32_t>(is);
  next_model_id_ = read_pod<std::int32_t>(is);
  exhausted_ = read_pod<std::uint8_t>(is) != 0;

  const auto n_hist = read_pod<std::uint64_t>(is);
  history_.clear();
  history_.reserve(static_cast<std::size_t>(n_hist));
  for (std::uint64_t i = 0; i < n_hist; ++i)
    history_.push_back(read_pod<RoundRecord>(is));
}

void FedTransTrainer::save_checkpoint_file(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  FT_CHECK_MSG(os.is_open(), "cannot open checkpoint file " << path);
  save_checkpoint(os);
}

void FedTransTrainer::load_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FT_CHECK_MSG(is.is_open(), "cannot open checkpoint file " << path);
  load_checkpoint(is);
}

}  // namespace fedtrans
