// FedTransTrainer checkpoint/resume. The checkpoint captures every piece of
// dynamic coordinator state so a restored trainer continues bit-identically:
// planet-scale FL runs span days and preemptible infrastructure, so the
// coordinator must be restartable without perturbing the training
// trajectory (FedScale and production systems like Papaya checkpoint the
// same way). Since the engine refactor the state is split between the
// FedTransStrategy (model family, utilities, DoC/activeness, transform
// counters) and the FederationEngine (Rng, costs, selector, round counter,
// history); the checkpoint serializes both.

#include <fstream>

#include "common/check.hpp"
#include "common/serial.hpp"
#include "core/trainer.hpp"
#include "model/serialize.hpp"

namespace fedtrans {

namespace {

constexpr std::uint64_t kCheckpointMagic = 0xfed72a45c8c9ULL;
// v2: RoundRecord grew participants/lost_updates (PR 2 federation fabric).
// v3: the engine refactor (PR 3) moved Rng/costs/round/history into the
// FederationEngine; the layout is unchanged but the compatibility break is
// versioned so older checkpoints fail loudly instead of misparsing.
// v4: RoundRecord grew leaf_failovers (PR 5 deep aggregation trees), which
// changes the POD history layout.
// v5: CostMeter caps its raw client-time samples and serializes the exact
// running stats (count / sum / sum-of-squares) ahead of the capped vector.
// v6: RoundRecord grew the Byzantine accounting (byzantine_updates /
// byzantine_l2 / byzantine_clients) — the attacker list makes the record
// non-POD, so history entries now serialize field by field.
constexpr std::uint32_t kCheckpointVersion = 6;

void write_record(std::ostream& os, const RoundRecord& r) {
  write_pod(os, r.round);
  write_pod(os, r.avg_loss);
  write_pod(os, r.cum_macs);
  write_pod(os, r.accuracy);
  write_pod(os, r.round_time_s);
  write_pod(os, r.participants);
  write_pod(os, r.lost_updates);
  write_pod(os, r.leaf_failovers);
  write_pod(os, r.byzantine_updates);
  write_pod(os, r.byzantine_l2);
  write_vec(os, r.byzantine_clients);
}

RoundRecord read_record(std::istream& is) {
  RoundRecord r;
  r.round = read_pod<int>(is);
  r.avg_loss = read_pod<double>(is);
  r.cum_macs = read_pod<double>(is);
  r.accuracy = read_pod<double>(is);
  r.round_time_s = read_pod<double>(is);
  r.participants = read_pod<int>(is);
  r.lost_updates = read_pod<int>(is);
  r.leaf_failovers = read_pod<int>(is);
  r.byzantine_updates = read_pod<int>(is);
  r.byzantine_l2 = read_pod<double>(is);
  r.byzantine_clients = read_vec<std::int32_t>(is);
  return r;
}

}  // namespace

void FedTransTrainer::save_checkpoint(std::ostream& os) {
  FedTransStrategy& s = *strategy_;
  write_pod(os, kCheckpointMagic);
  write_pod(os, kCheckpointVersion);
  // Compatibility fingerprint: restoring into a trainer with a different
  // fleet/dataset/seed would silently diverge, so fail loudly instead.
  write_pod<std::uint64_t>(os, s.cfg_.seed);
  write_pod<std::uint32_t>(os,
                           static_cast<std::uint32_t>(engine_->fleet().size()));

  // Model family.
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.models_.size()));
  for (auto& e : s.models_) {
    write_pod<std::int32_t>(os, e.id);
    write_pod<std::int32_t>(os, e.created_round);
    save_model(*e.model, os);
    e.opt->save_state(os);
  }

  s.cm_->save(os);
  s.doc_.save(os);
  s.act_->save(os);
  engine_->costs().save(os);
  engine_->selector().save_state(os);

  write_pod(os, engine_->rng().state());
  write_pod<std::int32_t>(os, engine_->rounds_done());
  write_pod<std::int32_t>(os, s.transforms_);
  write_pod<std::int32_t>(os, s.next_model_id_);
  write_pod<std::uint8_t>(os, s.exhausted_ ? 1 : 0);

  write_pod<std::uint64_t>(os, engine_->history().size());
  for (const auto& rec : engine_->history()) write_record(os, rec);
  FT_CHECK_MSG(os.good(), "checkpoint write failed");
}

void FedTransTrainer::load_checkpoint(std::istream& is) {
  FedTransStrategy& s = *strategy_;
  FT_CHECK_MSG(read_pod<std::uint64_t>(is) == kCheckpointMagic,
               "not a FedTrans checkpoint");
  FT_CHECK_MSG(read_pod<std::uint32_t>(is) == kCheckpointVersion,
               "unsupported checkpoint version");
  FT_CHECK_MSG(read_pod<std::uint64_t>(is) == s.cfg_.seed,
               "checkpoint was written with a different seed");
  FT_CHECK_MSG(read_pod<std::uint32_t>(is) == engine_->fleet().size(),
               "checkpoint was written with a different fleet");

  const auto n_models = read_pod<std::uint32_t>(is);
  FT_CHECK_MSG(n_models >= 1, "checkpoint holds no models");
  s.models_.clear();
  for (std::uint32_t i = 0; i < n_models; ++i) {
    ModelEntry e;
    e.id = read_pod<std::int32_t>(is);
    e.created_round = read_pod<std::int32_t>(is);
    e.model = std::make_unique<Model>(load_model(is));
    e.opt = make_server_opt(s.cfg_.server_opt);
    e.opt->load_state(is);
    s.models_.push_back(std::move(e));
  }

  s.cm_->load(is);
  FT_CHECK_MSG(s.cm_->num_models() == static_cast<int>(n_models),
               "checkpoint client-manager/model count mismatch");
  s.doc_.load(is);
  s.act_ = std::make_unique<ActivenessTracker>(
      s.models_.back().model->num_cells(), s.cfg_.act_window);
  s.act_->load(is);
  engine_->costs_mutable().load(is);
  engine_->selector().load_state(is);

  engine_->rng().set_state(read_pod<std::array<std::uint64_t, 4>>(is));
  engine_->set_rounds_done(read_pod<std::int32_t>(is));
  s.transforms_ = read_pod<std::int32_t>(is);
  s.next_model_id_ = read_pod<std::int32_t>(is);
  s.exhausted_ = read_pod<std::uint8_t>(is) != 0;

  const auto n_hist = read_pod<std::uint64_t>(is);
  auto& history = engine_->history_mutable();
  history.clear();
  history.reserve(static_cast<std::size_t>(n_hist));
  for (std::uint64_t i = 0; i < n_hist; ++i)
    history.push_back(read_record(is));
}

void FedTransTrainer::save_checkpoint_file(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  FT_CHECK_MSG(os.is_open(), "cannot open checkpoint file " << path);
  save_checkpoint(os);
}

void FedTransTrainer::load_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FT_CHECK_MSG(is.is_open(), "cannot open checkpoint file " << path);
  load_checkpoint(is);
}

}  // namespace fedtrans
