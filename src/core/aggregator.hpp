#pragma once

#include <vector>

#include "fl/weights.hpp"
#include "model/model.hpp"

namespace fedtrans {

/// Soft multi-model aggregation (§4.3, Eq. 5). After per-model FedAvg, every
/// model j blends in the weights of architecturally similar models:
///   w_j = Σ_{i≤j} η^{1(i≠j)·t} · sim(M_i, M_j) · w_i
///       / Σ_{i≤j} η^{1(i≠j)·t} · sim(M_i, M_j)
/// restricted to the Cell-id-aligned overlap regions ("crop to fit" as in
/// HeteroFL). The i ≤ j restriction means only smaller/earlier models feed
/// larger ones — Table 1 shows that large→small sharing (l2s) hurts — and η
/// decays the cross-model influence as training converges.
class SoftAggregator {
 public:
  struct Options {
    double eta = 0.98;        // decay factor (paper Table 7)
    bool enable_cross = true; // 's' ablation: false = per-model FedAvg only
    bool enable_decay = true; // 'd' ablation: false = constant cross factor
    bool enable_l2s = false;  // Table 1: also share large → small
  };

  explicit SoftAggregator(Options opts) : opts_(opts) {}

  /// Blend the freshly FedAvg'd weights across the model family. `models`
  /// are in creation order; `sim(i,j)` is the cached architectural
  /// similarity; `round` is the global round index t.
  void aggregate(std::vector<Model*>& models,
                 const std::vector<std::vector<double>>& sim, int round);

  const Options& options() const { return opts_; }

 private:
  Options opts_;
};

}  // namespace fedtrans
