#pragma once

#include <iosfwd>
#include <memory>

#include "core/aggregator.hpp"
#include "core/client_manager.hpp"
#include "core/signals.hpp"
#include "core/transformer.hpp"
#include "data/dataset.hpp"
#include "fl/engine.hpp"
#include "fl/local_train.hpp"
#include "fl/metrics.hpp"
#include "fl/selection.hpp"
#include "fl/server_opt.hpp"
#include "fl/session.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// Full FedTrans configuration (paper §5.1 / Table 7 defaults where noted):
/// the layered engine SessionConfig (shared runtime + scheduling/transport)
/// plus the Model Transformer / Model Aggregator knobs. Field-compatible
/// with the historical flat struct.
struct FedTransConfig : SessionConfig {
  FedTransConfig() { rounds = 60; }

  // Model Transformer.
  double alpha = 0.9;        // Cell activeness threshold
  double beta = 0.003;       // DoC threshold to transform
  int gamma = 10;            // #consecutive slopes for DoC
  int doc_delta = 5;         // loss-slope step δ (per-dataset in the paper)
  int act_window = 5;        // T: rounds averaged for activeness
  double widen_factor = 2.0;
  int deepen_blocks = 1;
  int max_models = 6;        // safety bound on the family size
  /// Compound (paper default, widen/deepen alternation) vs the widen-only /
  /// deepen-only counterparts of the §5.4 scaling ablation.
  ScalingPolicy scaling_policy = ScalingPolicy::Compound;

  // Model Aggregator.
  double eta = 0.98;         // decay factor

  /// Server optimizer applied per model to the FedAvg'd delta (Fig. 8:
  /// FedTrans composes with FedYogi; FedProx composes via local.sgd.prox_mu).
  ServerOptKind server_opt = ServerOptKind::FedAvg;

  // Ablation switches (Table 3 / Table 1).
  bool enable_layer_selection = true;  // 'l'
  bool enable_soft_agg = true;         // 's'
  bool enable_warmup = true;           // 'w'
  bool enable_decay = true;            // 'd'
  bool enable_l2s = false;             // Table 1 (large→small sharing)
  /// Disable transformation entirely (degenerates to single-model FedAvg —
  /// the paper notes single-model training is a special case).
  bool enable_transform = true;
  /// Deployment-time assignment. `LossProbe` (default) refreshes each
  /// client's utility with one local-loss measurement per compatible model
  /// before picking — a client-side probe that sharpens the noisy
  /// accumulated utilities at reduced round budgets. `Utility` uses the
  /// accumulated utilities verbatim (Algorithm 1's U_c).
  enum class FinalAssignment { LossProbe, Utility };
  FinalAssignment final_assignment = FinalAssignment::LossProbe;
};

/// One member of the model family being co-trained.
struct ModelEntry {
  std::unique_ptr<Model> model;
  int id = 0;
  int created_round = 0;
  /// Per-model server optimizer state (FedAvg / FedYogi).
  std::unique_ptr<ServerOptimizer> opt;
};

/// Deployment-time evaluation report (paper metric: every client evaluated
/// on its best-utility compatible model).
struct FinalEval {
  std::vector<double> client_accuracy;
  std::vector<int> client_model;
  double mean_accuracy = 0.0;
  double accuracy_iqr = 0.0;
};

class FedTransTrainer;

/// The FedTrans coordinator (Algorithm 1) as an engine Strategy: per round
/// it assigns every participant a compatible model by utility (the
/// prepare_task hook), trains locally, jointly updates utilities,
/// FedAvg-aggregates per model, soft-aggregates across models, and — the
/// transform hook — transforms the newest model when its DoC crosses β.
class FedTransStrategy : public Strategy {
 public:
  FedTransStrategy(ModelSpec initial, FedTransConfig cfg);

  std::string name() const override { return "fedtrans"; }
  void attach(RoundContext& ctx, Rng& rng) override;
  std::vector<ClientTask> plan_round(RoundContext& ctx, Rng& rng) override;
  void prepare_task(ClientTask& task, Rng& rng, RoundContext& ctx) override;
  Model client_payload(const ClientTask& task) override;
  // Tasks assigned the same family model download identical weights.
  int payload_key(const ClientTask& task) const override { return task.tag; }
  const Model& reference_model() const override {
    return *models_.front().model;
  }
  void absorb_update(const ClientTask& task, Model* trained,
                     LocalTrainResult& res, RoundContext& ctx) override;
  void lost_update(const ClientTask& task, ClientOutcome outcome,
                   RoundContext& ctx) override;
  void finish_round(RoundContext& ctx, RoundRecord& rec) override;
  double probe_accuracy(const std::vector<int>& ids,
                        RoundContext& ctx) override;
  /// Per-model FedAvg is a weighted linear sum per family member (the
  /// reduce key is the assigned model index); utility learning only needs
  /// the per-client losses, which ride the tree verbatim as metrics.
  bool supports_partial_aggregation() const override { return true; }
  void absorb_metrics(const ClientTask& task, const LocalTrainResult& res,
                      RoundContext& ctx) override;
  void absorb_reduced(const ClientTask& task, Model* payload, WeightSet& sum,
                      double weight, int count, RoundContext& ctx) override;

  FinalEval evaluate_final();

  int num_models() const { return static_cast<int>(models_.size()); }
  Model& model(int i) { return *models_[static_cast<std::size_t>(i)].model; }
  const std::vector<ModelEntry>& entries() const { return models_; }
  const ClientManager& client_manager() const { return *cm_; }
  int transforms_done() const { return transforms_; }
  const FedTransConfig& config() const { return cfg_; }

 private:
  friend class FedTransTrainer;  // checkpointing serializes private state

  /// The transform hook: grow the family when the newest model's DoC
  /// crosses β (consumes ctx.rng exactly like the legacy coordinator).
  void maybe_transform(RoundContext& ctx);
  std::vector<Model*> model_ptrs();

  ModelSpec initial_spec_;
  FedTransConfig cfg_;
  const ClientDataProvider* data_ = nullptr;
  const std::vector<DeviceProfile>* fleet_ = nullptr;

  std::vector<ModelEntry> models_;
  std::unique_ptr<ClientManager> cm_;
  SoftAggregator aggregator_;
  DoCTracker doc_;          // tracks the newest model's loss curve
  std::unique_ptr<ActivenessTracker> act_;  // newest model's cell activeness
  double max_capacity_ = 0.0;
  bool exhausted_ = false;  // no further growth possible
  int next_model_id_ = 1;
  int transforms_ = 0;

  // Per-round accumulators.
  struct Participation {
    int client;
    int model;
    double loss;
  };
  std::vector<WeightSet> acc_;
  std::vector<double> wsum_;
  std::vector<double> loss_sum_;
  std::vector<int> loss_cnt_;
  std::vector<Participation> parts_;
  double slowest_ = 0.0;
};

/// Historical entry point — a thin shim over FederationEngine +
/// FedTransStrategy (bitwise parity with direct engine use is
/// test-enforced).
class FedTransTrainer {
 public:
  FedTransTrainer(ModelSpec initial, const FederatedDataset& data,
                  std::vector<DeviceProfile> fleet, FedTransConfig cfg);

  /// Execute one round; returns mean participant loss.
  double run_round() { return engine_->run_round(); }
  void run() { engine_->run(); }  // cfg.rounds rounds

  FinalEval evaluate_final() { return strategy_->evaluate_final(); }

  /// Checkpointing. `save_checkpoint` persists the complete dynamic state:
  /// the model family (specs + weights + per-model optimizer state), client
  /// utilities, DoC/activeness histories, RNG state, cost meters and round
  /// counters. `load_checkpoint` restores it into a trainer constructed
  /// with the *same* dataset, fleet and config; resumed training then
  /// replays bit-identically to an uninterrupted run (verified by tests).
  void save_checkpoint(std::ostream& os);
  void load_checkpoint(std::istream& is);
  void save_checkpoint_file(const std::string& path);
  void load_checkpoint_file(const std::string& path);

  int num_models() const { return strategy_->num_models(); }
  Model& model(int i) { return strategy_->model(i); }
  const std::vector<ModelEntry>& entries() const {
    return strategy_->entries();
  }
  const ClientManager& client_manager() const {
    return strategy_->client_manager();
  }
  const CostMeter& costs() const { return engine_->costs(); }
  const std::vector<RoundRecord>& history() const {
    return engine_->history();
  }
  int rounds_done() const { return engine_->rounds_done(); }
  int transforms_done() const { return strategy_->transforms_done(); }
  FederationEngine& engine() { return *engine_; }

 private:
  FedTransStrategy* strategy_;  // owned by engine_
  std::unique_ptr<FederationEngine> engine_;
};

}  // namespace fedtrans
