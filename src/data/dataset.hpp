#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedtrans {

/// Configuration for the synthetic federated dataset generator.
///
/// The generator substitutes for the paper's real datasets (CIFAR-10,
/// FEMNIST, Speech Commands, OpenImage — unavailable offline). It creates a
/// class-conditional image distribution with two controllable skews that
/// drive every claim in the paper:
///  * label skew: each client's label distribution is Dirichlet(h) over the
///    classes (exactly the Fig. 13 protocol; smaller h = more heterogeneous);
///  * feature skew: each client adds a smooth client-specific "style" field
///    to its images, so models benefit from fitting individual clients.
struct DatasetConfig {
  std::string name = "synthetic";
  int num_classes = 10;
  int channels = 1;
  int hw = 12;  // square resolution
  int num_clients = 64;
  /// Dirichlet concentration over labels (paper's h; lower = more skew).
  double dirichlet_h = 1.0;
  /// Per-client sample counts are log-normal around this mean, clamped to
  /// at least min_samples (mirrors the long-tailed client volumes of
  /// real FL datasets).
  int mean_train_samples = 32;
  int min_train_samples = 8;
  int eval_samples = 10;
  /// Pixel noise stddev (task difficulty knob).
  double noise = 0.55;
  /// Strength of the per-client style field (feature heterogeneity).
  double style_strength = 0.45;
  /// Resolution of the coarse grid upsampled into prototypes/styles.
  int proto_grid = 4;
  std::uint64_t seed = 1;
};

/// One client's local shards.
struct ClientData {
  Tensor x_train;               // [n, C, H, W]
  std::vector<int> y_train;
  Tensor x_eval;                // [m, C, H, W]
  std::vector<int> y_eval;

  int train_size() const { return static_cast<int>(y_train.size()); }
  int eval_size() const { return static_cast<int>(y_eval.size()); }
};

/// A federated dataset: per-client train/eval shards plus metadata.
class FederatedDataset {
 public:
  static FederatedDataset generate(const DatasetConfig& cfg);

  const DatasetConfig& config() const { return cfg_; }
  int num_clients() const { return static_cast<int>(clients_.size()); }
  int num_classes() const { return cfg_.num_classes; }
  const ClientData& client(int c) const;

  /// Pool every client's train shard (the "cloud ML" upper-bound setting).
  ClientData pooled() const;

  /// Label histogram of one client (for tests / reporting).
  std::vector<int> label_histogram(int c) const;

 private:
  DatasetConfig cfg_;
  std::vector<ClientData> clients_;
};

/// Draw a batch (with replacement) from a client shard: x [B,C,H,W], labels.
void sample_batch(const ClientData& data, int batch, Rng& rng, Tensor& x_out,
                  std::vector<int>& y_out);

}  // namespace fedtrans
