#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedtrans {

/// Configuration for the synthetic federated dataset generator.
///
/// The generator substitutes for the paper's real datasets (CIFAR-10,
/// FEMNIST, Speech Commands, OpenImage — unavailable offline). It creates a
/// class-conditional image distribution with two controllable skews that
/// drive every claim in the paper:
///  * label skew: each client's label distribution is Dirichlet(h) over the
///    classes (exactly the Fig. 13 protocol; smaller h = more heterogeneous);
///  * feature skew: each client adds a smooth client-specific "style" field
///    to its images, so models benefit from fitting individual clients.
struct DatasetConfig {
  std::string name = "synthetic";
  int num_classes = 10;
  int channels = 1;
  int hw = 12;  // square resolution
  int num_clients = 64;
  /// Dirichlet concentration over labels (paper's h; lower = more skew).
  double dirichlet_h = 1.0;
  /// Per-client sample counts are log-normal around this mean, clamped to
  /// at least min_samples (mirrors the long-tailed client volumes of
  /// real FL datasets).
  int mean_train_samples = 32;
  int min_train_samples = 8;
  int eval_samples = 10;
  /// Pixel noise stddev (task difficulty knob).
  double noise = 0.55;
  /// Strength of the per-client style field (feature heterogeneity).
  double style_strength = 0.45;
  /// Resolution of the coarse grid upsampled into prototypes/styles.
  int proto_grid = 4;
  std::uint64_t seed = 1;
};

/// One client's local shards.
struct ClientData {
  Tensor x_train;               // [n, C, H, W]
  std::vector<int> y_train;
  Tensor x_eval;                // [m, C, H, W]
  std::vector<int> y_eval;

  int train_size() const { return static_cast<int>(y_train.size()); }
  int eval_size() const { return static_cast<int>(y_eval.size()); }
};

/// What the training stack actually needs from "a dataset": the shard of
/// one client, on demand. Every strategy, the engine, and the fabric server
/// consume this interface — which is what lets a million-client population
/// (src/pop) serve shards materialized lazily from compact descriptors,
/// while the eager FederatedDataset below stays the simple default.
class ClientDataProvider {
 public:
  virtual ~ClientDataProvider() = default;
  virtual int num_clients() const = 0;
  virtual int num_classes() const = 0;
  /// The client's local shards. The reference stays valid until the next
  /// call that may recycle materialized clients (for FederatedDataset,
  /// forever; for a cohort pool, until the cohort epoch advances).
  virtual const ClientData& client(int c) const = 0;
};

/// A federated dataset: per-client train/eval shards plus metadata, all
/// materialized up front.
class FederatedDataset : public ClientDataProvider {
 public:
  static FederatedDataset generate(const DatasetConfig& cfg);

  /// Wrap already-materialized shards (e.g. ShardGenerator output) — the
  /// eager baseline the population layer's parity tests compare against.
  static FederatedDataset from_clients(DatasetConfig cfg,
                                       std::vector<ClientData> clients);

  const DatasetConfig& config() const { return cfg_; }
  int num_clients() const override { return static_cast<int>(clients_.size()); }
  int num_classes() const override { return cfg_.num_classes; }
  const ClientData& client(int c) const override;

  /// Pool every client's train shard (the "cloud ML" upper-bound setting).
  ClientData pooled() const;

  /// Label histogram of one client (for tests / reporting).
  std::vector<int> label_histogram(int c) const;

 private:
  DatasetConfig cfg_;
  std::vector<ClientData> clients_;
};

/// Stateless per-client shard generator: the class prototypes (a function of
/// DatasetConfig::seed only) are built once, then any client's shards can be
/// produced from its own seed, in any order, on any thread.
///
/// This is the lazy counterpart of FederatedDataset::generate. generate()
/// forks its per-client generators *sequentially* from one root Rng — cheap
/// for 64 clients, but it would force a million-client population to walk
/// the whole chain to materialize client 999999. Here each client is keyed
/// by an independent seed (the population layer derives it by counter-
/// hashing the dataset seed with the client index), so shards for a
/// 128-client cohort out of 1M cost exactly 128 generations.
class ShardGenerator {
 public:
  explicit ShardGenerator(const DatasetConfig& cfg);

  const DatasetConfig& config() const { return cfg_; }

  /// Generate one client's train/eval shards from its seed. Deterministic
  /// in (config seed, client_seed); thread-safe (const state only).
  ClientData make_client(std::uint64_t client_seed) const;

 private:
  DatasetConfig cfg_;
  std::vector<std::vector<float>> protos_;  ///< per (class, channel)
};

/// Draw a batch (with replacement) from a client shard: x [B,C,H,W], labels.
void sample_batch(const ClientData& data, int batch, Rng& rng, Tensor& x_out,
                  std::vector<int>& y_out);

}  // namespace fedtrans
