#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

namespace {

/// Smooth random field: a coarse grid of N(0,1) values bilinearly upsampled
/// to hw × hw. Class prototypes and client styles are such fields — smooth
/// enough for small convolutions to pick up, distinct across seeds.
std::vector<float> smooth_field(int grid, int hw, Rng& rng) {
  std::vector<float> coarse(static_cast<std::size_t>(grid) * grid);
  for (auto& v : coarse) v = static_cast<float>(rng.normal());
  std::vector<float> out(static_cast<std::size_t>(hw) * hw);
  const float scale = static_cast<float>(grid - 1) / static_cast<float>(hw - 1);
  for (int y = 0; y < hw; ++y) {
    const float fy = y * scale;
    const int y0 = std::min(static_cast<int>(fy), grid - 2);
    const float ty = fy - y0;
    for (int x = 0; x < hw; ++x) {
      const float fx = x * scale;
      const int x0 = std::min(static_cast<int>(fx), grid - 2);
      const float tx = fx - x0;
      const float a = coarse[static_cast<std::size_t>(y0) * grid + x0];
      const float b = coarse[static_cast<std::size_t>(y0) * grid + x0 + 1];
      const float c = coarse[static_cast<std::size_t>(y0 + 1) * grid + x0];
      const float d = coarse[static_cast<std::size_t>(y0 + 1) * grid + x0 + 1];
      out[static_cast<std::size_t>(y) * hw + x] =
          a * (1 - ty) * (1 - tx) + b * (1 - ty) * tx + c * ty * (1 - tx) +
          d * ty * tx;
    }
  }
  return out;
}

/// One client's shards from its private generator. Shared between eager
/// generation (crng forked sequentially from the dataset root) and the lazy
/// ShardGenerator (crng seeded independently per client) — same bytes for
/// the same crng either way.
ClientData make_client_data(const DatasetConfig& cfg,
                            const std::vector<std::vector<float>>& protos,
                            Rng& crng) {
  const auto plane = static_cast<std::size_t>(cfg.hw) * cfg.hw;
  // Client style: one smooth field per channel, scaled by style_strength.
  std::vector<std::vector<float>> style(static_cast<std::size_t>(cfg.channels));
  for (auto& s : style) s = smooth_field(cfg.proto_grid, cfg.hw, crng);

  // Label distribution: Dirichlet(h) over classes.
  const std::vector<double> label_p =
      crng.dirichlet(cfg.dirichlet_h, cfg.num_classes);

  // Long-tailed volume.
  const double ln = crng.lognormal(std::log(cfg.mean_train_samples), 0.45);
  const int n_train =
      std::max(cfg.min_train_samples, static_cast<int>(std::lround(ln)));
  const int n_eval = cfg.eval_samples;

  auto make_shard = [&](int n, Tensor& x, std::vector<int>& y) {
    x = Tensor({n, cfg.channels, cfg.hw, cfg.hw});
    y.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int label = crng.categorical(label_p);
      y[static_cast<std::size_t>(i)] = label;
      for (int ch = 0; ch < cfg.channels; ++ch) {
        const auto& proto =
            protos[static_cast<std::size_t>(label) * cfg.channels + ch];
        const auto& st = style[static_cast<std::size_t>(ch)];
        float* px = x.data() +
                    (static_cast<std::int64_t>(i) * cfg.channels + ch) *
                        static_cast<std::int64_t>(plane);
        for (std::size_t p = 0; p < plane; ++p)
          px[p] = proto[p] + static_cast<float>(cfg.style_strength) * st[p] +
                  static_cast<float>(cfg.noise * crng.normal());
      }
    }
  };

  ClientData cd;
  make_shard(n_train, cd.x_train, cd.y_train);
  make_shard(n_eval, cd.x_eval, cd.y_eval);
  return cd;
}

/// Class prototypes: one smooth field per (class, channel), a function of
/// the dataset seed only.
std::vector<std::vector<float>> make_prototypes(const DatasetConfig& cfg,
                                                Rng& rng) {
  std::vector<std::vector<float>> protos(
      static_cast<std::size_t>(cfg.num_classes) * cfg.channels);
  for (auto& p : protos) p = smooth_field(cfg.proto_grid, cfg.hw, rng);
  return protos;
}

}  // namespace

FederatedDataset FederatedDataset::generate(const DatasetConfig& cfg) {
  FT_CHECK(cfg.num_classes >= 2 && cfg.num_clients >= 1 && cfg.hw >= 4);
  Rng rng(cfg.seed);
  const auto protos = make_prototypes(cfg, rng);

  FederatedDataset ds;
  ds.cfg_ = cfg;
  ds.clients_.reserve(static_cast<std::size_t>(cfg.num_clients));

  for (int c = 0; c < cfg.num_clients; ++c) {
    Rng crng = rng.fork();
    ds.clients_.push_back(make_client_data(cfg, protos, crng));
  }
  return ds;
}

FederatedDataset FederatedDataset::from_clients(DatasetConfig cfg,
                                                std::vector<ClientData> clients) {
  FT_CHECK_MSG(!clients.empty(), "dataset needs at least one client");
  FederatedDataset ds;
  ds.cfg_ = std::move(cfg);
  ds.cfg_.num_clients = static_cast<int>(clients.size());
  ds.clients_ = std::move(clients);
  return ds;
}

ShardGenerator::ShardGenerator(const DatasetConfig& cfg) : cfg_(cfg) {
  FT_CHECK(cfg.num_classes >= 2 && cfg.hw >= 4);
  Rng rng(cfg_.seed);
  protos_ = make_prototypes(cfg_, rng);
}

ClientData ShardGenerator::make_client(std::uint64_t client_seed) const {
  Rng crng(client_seed);
  return make_client_data(cfg_, protos_, crng);
}

const ClientData& FederatedDataset::client(int c) const {
  FT_CHECK(c >= 0 && c < num_clients());
  return clients_[static_cast<std::size_t>(c)];
}

ClientData FederatedDataset::pooled() const {
  std::int64_t total_train = 0, total_eval = 0;
  for (const auto& c : clients_) {
    total_train += c.train_size();
    total_eval += c.eval_size();
  }
  ClientData out;
  out.x_train = Tensor({static_cast<int>(total_train), cfg_.channels, cfg_.hw,
                        cfg_.hw});
  out.x_eval =
      Tensor({static_cast<int>(total_eval), cfg_.channels, cfg_.hw, cfg_.hw});
  const auto sample_sz =
      static_cast<std::int64_t>(cfg_.channels) * cfg_.hw * cfg_.hw;
  std::int64_t ti = 0, ei = 0;
  for (const auto& c : clients_) {
    std::copy_n(c.x_train.data(), c.x_train.numel(),
                out.x_train.data() + ti * sample_sz);
    ti += c.train_size();
    out.y_train.insert(out.y_train.end(), c.y_train.begin(), c.y_train.end());
    std::copy_n(c.x_eval.data(), c.x_eval.numel(),
                out.x_eval.data() + ei * sample_sz);
    ei += c.eval_size();
    out.y_eval.insert(out.y_eval.end(), c.y_eval.begin(), c.y_eval.end());
  }
  return out;
}

std::vector<int> FederatedDataset::label_histogram(int c) const {
  const auto& cd = client(c);
  std::vector<int> hist(static_cast<std::size_t>(cfg_.num_classes), 0);
  for (int y : cd.y_train) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

void sample_batch(const ClientData& data, int batch, Rng& rng, Tensor& x_out,
                  std::vector<int>& y_out) {
  FT_CHECK_MSG(data.train_size() > 0, "client has no training data");
  const auto& shape = data.x_train.shape();
  const auto sample_sz = data.x_train.numel() / shape[0];
  x_out = Tensor({batch, shape[1], shape[2], shape[3]});
  y_out.resize(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    const int j = rng.uniform_int(0, data.train_size() - 1);
    std::copy_n(data.x_train.data() + j * sample_sz, sample_sz,
                x_out.data() + i * sample_sz);
    y_out[static_cast<std::size_t>(i)] =
        data.y_train[static_cast<std::size_t>(j)];
  }
}

}  // namespace fedtrans
