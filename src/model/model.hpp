#pragma once

#include <memory>

#include "model/spec.hpp"
#include "nn/layer.hpp"

namespace fedtrans {

/// A unit of computation inside a Cell: a short sequence of layers with an
/// optional residual skip (y = x + f(x), post-activation add, which makes
/// zero-initialized insertions exactly identity).
class Block {
 public:
  Block(std::vector<std::unique_ptr<Layer>> layers, bool residual);

  Tensor forward(const Tensor& x, bool train);
  Tensor backward(const Tensor& grad_out);

  std::vector<ParamRef> params();
  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }
  bool residual() const { return residual_; }

  std::int64_t macs(const std::vector<int>& in_shape) const;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const;
  std::unique_ptr<Block> clone() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  bool residual_;
};

/// A trainable model instantiated from a ModelSpec:
///   stem -> Cell_0 ... Cell_{k-1} -> (pool) -> classifier.
/// Exposes parameters grouped per Cell — the granularity at which FedTrans
/// measures activeness, transforms architectures, and shares weights.
class Model {
 public:
  /// Fresh (randomly initialized) model.
  Model(ModelSpec spec, Rng& rng);
  Model(const Model& other);
  Model& operator=(const Model& other);
  Model(Model&&) noexcept = default;
  Model& operator=(Model&&) noexcept = default;

  /// Logits [N, classes] for input x ([N,C,H,W] or [N,F] for Mlp).
  Tensor forward(const Tensor& x, bool train);
  /// Backprop from dLoss/dLogits; accumulates all parameter gradients.
  void backward(const Tensor& grad_logits);
  void zero_grad();

  const ModelSpec& spec() const { return spec_; }
  int num_cells() const { return static_cast<int>(cells_.size()); }

  /// All trainable parameters in a stable order (stem, cells, classifier).
  std::vector<ParamRef> params();
  /// Parameters of one Cell (all its blocks).
  std::vector<ParamRef> cell_params(int cell);
  /// [begin, end) index range into params() covering one Cell's parameters
  /// (used to slice aggregate-update WeightSets per Cell).
  std::pair<std::size_t, std::size_t> cell_param_range(int cell);

  int blocks_in_cell(int cell) const;
  Block& cell_block(int cell, int block);
  Block& stem() { return *stem_; }
  Layer& classifier() { return *classifier_; }

  /// Per-sample forward MACs (computed once at construction).
  std::int64_t macs() const { return macs_; }
  std::int64_t num_params() const;
  /// fp32 in-memory / on-wire footprint of the weights.
  std::int64_t param_bytes() const { return num_params() * 4; }
  std::int64_t cell_macs(int cell) const;

  /// Snapshot / restore all weights (order matches params()).
  std::vector<Tensor> weights();
  void set_weights(const std::vector<Tensor>& ws);

 private:
  void build(Rng& rng);
  void compute_macs();

  ModelSpec spec_;
  std::unique_ptr<Block> stem_;
  std::vector<std::vector<std::unique_ptr<Block>>> cells_;
  std::unique_ptr<Layer> head_pool_;  // GAP / MeanTokens / null (Mlp)
  std::unique_ptr<Layer> classifier_;
  std::int64_t macs_ = 0;
  std::vector<std::int64_t> cell_macs_;
};

}  // namespace fedtrans
