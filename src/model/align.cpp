#include "model/align.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "common/check.hpp"

namespace fedtrans {

namespace {
void match_blocks(Block& dst, Block& src, std::vector<AlignedPair>& out) {
  auto dp = dst.params();
  auto sp = src.params();
  const std::size_t n = std::min(dp.size(), sp.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (dp[i].value->ndim() != sp[i].value->ndim()) continue;
    out.push_back({dp[i].value, sp[i].value});
  }
}
}  // namespace

std::vector<AlignedPair> align_params(Model& dst, Model& src) {
  std::vector<AlignedPair> pairs;
  match_blocks(dst.stem(), src.stem(), pairs);

  std::unordered_map<std::uint64_t, int> src_cell_by_id;
  for (int i = 0; i < src.num_cells(); ++i)
    src_cell_by_id[src.spec().cells[static_cast<std::size_t>(i)].id] = i;

  for (int j = 0; j < dst.num_cells(); ++j) {
    auto it = src_cell_by_id.find(
        dst.spec().cells[static_cast<std::size_t>(j)].id);
    if (it == src_cell_by_id.end()) continue;
    const int i = it->second;
    const int blocks = std::min(dst.blocks_in_cell(j), src.blocks_in_cell(i));
    for (int b = 0; b < blocks; ++b)
      match_blocks(dst.cell_block(j, b), src.cell_block(i, b), pairs);
  }

  auto dcp = dst.classifier().params();
  auto scp = src.classifier().params();
  const std::size_t n = std::min(dcp.size(), scp.size());
  for (std::size_t i = 0; i < n; ++i)
    pairs.push_back({dcp[i].value, scp[i].value});
  return pairs;
}

void for_each_overlap(
    const Tensor& a, const Tensor& b,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  FT_CHECK_MSG(a.ndim() == b.ndim(), "overlap requires equal rank");
  const int nd = a.ndim();
  std::vector<int> lim(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d)
    lim[static_cast<std::size_t>(d)] = std::min(a.dim(d), b.dim(d));

  // Iterative odometer over the overlap region, tracking both flat indices.
  std::vector<int> idx(static_cast<std::size_t>(nd), 0);
  while (true) {
    std::int64_t ai = 0, bi = 0;
    for (int d = 0; d < nd; ++d) {
      ai = ai * a.dim(d) + idx[static_cast<std::size_t>(d)];
      bi = bi * b.dim(d) + idx[static_cast<std::size_t>(d)];
    }
    fn(ai, bi);
    int d = nd - 1;
    while (d >= 0) {
      if (++idx[static_cast<std::size_t>(d)] <
          lim[static_cast<std::size_t>(d)])
        break;
      idx[static_cast<std::size_t>(d)] = 0;
      --d;
    }
    if (d < 0) break;
  }
}

void copy_overlap(Model& dst, Model& src) {
  for (auto& pair : align_params(dst, src)) {
    Tensor& d = *pair.dst;
    const Tensor& s = *pair.src;
    for_each_overlap(d, s,
                     [&](std::int64_t di, std::int64_t si) { d[di] = s[si]; });
  }
}

std::unordered_map<const Tensor*, std::size_t> param_index(Model& m) {
  std::unordered_map<const Tensor*, std::size_t> idx;
  auto ps = m.params();
  idx.reserve(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) idx[ps[i].value] = i;
  return idx;
}

ModelSpec scale_widths(const ModelSpec& full, double ratio) {
  FT_CHECK(ratio > 0.0 && ratio <= 1.0);
  ModelSpec s = full;
  auto scaled = [&](int w) {
    return std::max(1, static_cast<int>(std::lround(w * ratio)));
  };
  s.stem_width = scaled(full.stem_width);
  for (auto& c : s.cells) c.width = scaled(c.width);
  s.name = full.name + "@" + std::to_string(ratio);
  return s;
}

}  // namespace fedtrans
