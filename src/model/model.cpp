#include "model/model.hpp"

#include "common/check.hpp"
#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/scale_shift.hpp"

namespace fedtrans {

namespace {

// Mixed-precision activation seam: when the thread's activation dtype is a
// half format (set by local_train via ScopedActivationDtype), tensors
// crossing block boundaries are rounded onto that grid — modeling half
// activation storage between blocks while every in-block op accumulates in
// fp32. A no-op in the default fp32 mode.
inline void round_activation(Tensor& t) {
  const Dtype d = activation_dtype();
  if (d != Dtype::F32) round_to_dtype(t.values(), d);
}

}  // namespace

Block::Block(std::vector<std::unique_ptr<Layer>> layers, bool residual)
    : layers_(std::move(layers)), residual_(residual) {
  FT_CHECK(!layers_.empty());
}

Tensor Block::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  if (residual_) {
    FT_CHECK_MSG(h.same_shape(x), "residual block shape mismatch");
    h.add_(x);
  }
  round_activation(h);
  return h;
}

Tensor Block::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  if (residual_) g.add_(grad_out);
  round_activation(g);
  return g;
}

std::vector<ParamRef> Block::params() {
  std::vector<ParamRef> ps;
  for (auto& l : layers_)
    for (auto& p : l->params()) ps.push_back(p);
  return ps;
}

std::int64_t Block::macs(const std::vector<int>& in_shape) const {
  std::int64_t total = 0;
  std::vector<int> shape = in_shape;
  for (const auto& l : layers_) {
    total += l->macs(shape);
    shape = l->out_shape(shape);
  }
  return total;
}

std::vector<int> Block::out_shape(const std::vector<int>& in_shape) const {
  std::vector<int> shape = in_shape;
  for (const auto& l : layers_) shape = l->out_shape(shape);
  return shape;
}

std::unique_ptr<Block> Block::clone() const {
  std::vector<std::unique_ptr<Layer>> copies;
  copies.reserve(layers_.size());
  for (const auto& l : layers_) copies.push_back(l->clone());
  return std::make_unique<Block>(std::move(copies), residual_);
}

namespace {

std::unique_ptr<Block> make_conv_block(int in_c, int out_c, int stride,
                                       bool want_residual, Rng& rng) {
  auto conv = std::make_unique<Conv2d>(in_c, out_c, 3, stride);
  conv->init(rng);
  auto ss = std::make_unique<ScaleShift>(out_c);
  std::vector<std::unique_ptr<Layer>> ls;
  ls.push_back(std::move(conv));
  ls.push_back(std::move(ss));
  ls.push_back(std::make_unique<ReLU>());
  const bool residual = want_residual && in_c == out_c && stride == 1;
  return std::make_unique<Block>(std::move(ls), residual);
}

std::unique_ptr<Block> make_mlp_block(int in_f, int out_f, bool want_residual,
                                      Rng& rng) {
  auto lin = std::make_unique<Linear>(in_f, out_f);
  lin->init(rng);
  std::vector<std::unique_ptr<Layer>> ls;
  ls.push_back(std::move(lin));
  ls.push_back(std::make_unique<ReLU>());
  const bool residual = want_residual && in_f == out_f;
  return std::make_unique<Block>(std::move(ls), residual);
}

}  // namespace

Model::Model(ModelSpec spec, Rng& rng) : spec_(std::move(spec)) {
  build(rng);
  compute_macs();
}

Model::Model(const Model& other) : spec_(other.spec_) {
  stem_ = other.stem_->clone();
  cells_.reserve(other.cells_.size());
  for (const auto& cell : other.cells_) {
    std::vector<std::unique_ptr<Block>> blocks;
    blocks.reserve(cell.size());
    for (const auto& b : cell) blocks.push_back(b->clone());
    cells_.push_back(std::move(blocks));
  }
  head_pool_ = other.head_pool_ ? other.head_pool_->clone() : nullptr;
  classifier_ = other.classifier_->clone();
  macs_ = other.macs_;
  cell_macs_ = other.cell_macs_;
}

Model& Model::operator=(const Model& other) {
  if (this != &other) {
    Model tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

void Model::build(Rng& rng) {
  FT_CHECK_MSG(!spec_.cells.empty(), "model needs at least one cell");
  switch (spec_.kind) {
    case CellKind::Conv: {
      stem_ = make_conv_block(spec_.in_channels, spec_.stem_width, 1,
                              /*want_residual=*/false, rng);
      int prev = spec_.stem_width;
      for (const auto& c : spec_.cells) {
        FT_CHECK(c.kind == CellKind::Conv);
        std::vector<std::unique_ptr<Block>> blocks;
        for (int b = 0; b < c.blocks; ++b) {
          const int in_w = b == 0 ? prev : c.width;
          const int stride = b == 0 ? c.stride : 1;
          // The first block of a cell is never residual: widening changes
          // its input and output widths asymmetrically, which would break
          // the skip connection (and function preservation).
          blocks.push_back(
              make_conv_block(in_w, c.width, stride, c.residual && b > 0, rng));
        }
        cells_.push_back(std::move(blocks));
        prev = c.width;
      }
      head_pool_ = std::make_unique<GlobalAvgPool>();
      auto cls = std::make_unique<Linear>(prev, spec_.num_classes);
      cls->init(rng);
      classifier_ = std::move(cls);
      break;
    }
    case CellKind::Mlp: {
      const int in_f = spec_.in_channels * spec_.in_hw * spec_.in_hw;
      auto lin = std::make_unique<Linear>(in_f, spec_.stem_width);
      lin->init(rng);
      std::vector<std::unique_ptr<Layer>> stem_ls;
      stem_ls.push_back(std::make_unique<Flatten>());
      stem_ls.push_back(std::move(lin));
      stem_ls.push_back(std::make_unique<ReLU>());
      stem_ = std::make_unique<Block>(std::move(stem_ls), false);
      int prev = spec_.stem_width;
      for (const auto& c : spec_.cells) {
        FT_CHECK(c.kind == CellKind::Mlp);
        std::vector<std::unique_ptr<Block>> blocks;
        for (int b = 0; b < c.blocks; ++b) {
          const int in_w = b == 0 ? prev : c.width;
          blocks.push_back(
              make_mlp_block(in_w, c.width, c.residual && b > 0, rng));
        }
        cells_.push_back(std::move(blocks));
        prev = c.width;
      }
      head_pool_ = nullptr;
      auto cls = std::make_unique<Linear>(prev, spec_.num_classes);
      cls->init(rng);
      classifier_ = std::move(cls);
      break;
    }
    case CellKind::Attention: {
      FT_CHECK_MSG(spec_.in_hw % spec_.patch == 0,
                   "input not divisible by patch size");
      auto embed = std::make_unique<Conv2d>(spec_.in_channels, spec_.embed_dim,
                                            spec_.patch, spec_.patch, 0);
      embed->init(rng);
      std::vector<std::unique_ptr<Layer>> stem_ls;
      stem_ls.push_back(std::move(embed));
      stem_ls.push_back(std::make_unique<PatchToTokens>());
      stem_ = std::make_unique<Block>(std::move(stem_ls), false);
      for (const auto& c : spec_.cells) {
        FT_CHECK(c.kind == CellKind::Attention);
        std::vector<std::unique_ptr<Block>> blocks;
        for (int b = 0; b < c.blocks; ++b) {
          auto attn = std::make_unique<Attention>(spec_.embed_dim);
          attn->init(rng);
          std::vector<std::unique_ptr<Layer>> attn_ls;
          attn_ls.push_back(std::move(attn));
          blocks.push_back(std::make_unique<Block>(std::move(attn_ls), true));
          auto mlp = std::make_unique<TokenMlp>(spec_.embed_dim, c.width);
          mlp->init(rng);
          std::vector<std::unique_ptr<Layer>> mlp_ls;
          mlp_ls.push_back(std::move(mlp));
          blocks.push_back(std::make_unique<Block>(std::move(mlp_ls), true));
        }
        cells_.push_back(std::move(blocks));
      }
      head_pool_ = std::make_unique<MeanTokens>();
      auto cls = std::make_unique<Linear>(spec_.embed_dim, spec_.num_classes);
      cls->init(rng);
      classifier_ = std::move(cls);
      break;
    }
  }
}

void Model::compute_macs() {
  std::vector<int> shape;
  if (spec_.kind == CellKind::Mlp) {
    shape = {spec_.in_channels, spec_.in_hw, spec_.in_hw};
    if (spec_.in_hw == 1) shape = {spec_.in_channels, 1, 1};
  } else {
    shape = {spec_.in_channels, spec_.in_hw, spec_.in_hw};
  }
  macs_ = 0;
  cell_macs_.assign(cells_.size(), 0);
  // Stem expects 4-D (or flattenable) input shapes expressed as {C,H,W}.
  macs_ += stem_->macs(shape);
  shape = stem_->out_shape(shape);
  for (std::size_t l = 0; l < cells_.size(); ++l) {
    for (const auto& b : cells_[l]) {
      cell_macs_[l] += b->macs(shape);
      shape = b->out_shape(shape);
    }
    macs_ += cell_macs_[l];
  }
  if (head_pool_) {
    macs_ += head_pool_->macs(shape);
    shape = head_pool_->out_shape(shape);
  }
  macs_ += classifier_->macs(shape);
}

Tensor Model::forward(const Tensor& x, bool train) {
  Tensor h = x;
  if (spec_.kind == CellKind::Mlp && h.ndim() == 4) {
    // Mlp stem starts with Flatten, which accepts 4-D input directly.
  }
  h = stem_->forward(h, train);
  for (auto& cell : cells_)
    for (auto& b : cell) h = b->forward(h, train);
  if (head_pool_) h = head_pool_->forward(h, train);
  return classifier_->forward(h, train);
}

void Model::backward(const Tensor& grad_logits) {
  Tensor g = classifier_->backward(grad_logits);
  if (head_pool_) g = head_pool_->backward(g);
  for (auto cit = cells_.rbegin(); cit != cells_.rend(); ++cit)
    for (auto bit = cit->rbegin(); bit != cit->rend(); ++bit)
      g = (*bit)->backward(g);
  stem_->backward(g);
}

void Model::zero_grad() {
  for (auto& p : params()) p.grad->zero();
}

std::vector<ParamRef> Model::params() {
  std::vector<ParamRef> ps = stem_->params();
  for (auto& cell : cells_)
    for (auto& b : cell)
      for (auto& p : b->params()) ps.push_back(p);
  for (auto& p : classifier_->params()) ps.push_back(p);
  return ps;
}

std::vector<ParamRef> Model::cell_params(int cell) {
  FT_CHECK(cell >= 0 && cell < num_cells());
  std::vector<ParamRef> ps;
  for (auto& b : cells_[static_cast<std::size_t>(cell)])
    for (auto& p : b->params()) ps.push_back(p);
  return ps;
}

std::pair<std::size_t, std::size_t> Model::cell_param_range(int cell) {
  FT_CHECK(cell >= 0 && cell < num_cells());
  std::size_t begin = stem_->params().size();
  for (int l = 0; l < cell; ++l) begin += cell_params(l).size();
  const std::size_t end = begin + cell_params(cell).size();
  return {begin, end};
}

int Model::blocks_in_cell(int cell) const {
  FT_CHECK(cell >= 0 && cell < num_cells());
  return static_cast<int>(cells_[static_cast<std::size_t>(cell)].size());
}

Block& Model::cell_block(int cell, int block) {
  FT_CHECK(cell >= 0 && cell < num_cells());
  auto& blocks = cells_[static_cast<std::size_t>(cell)];
  FT_CHECK(block >= 0 && block < static_cast<int>(blocks.size()));
  return *blocks[static_cast<std::size_t>(block)];
}

std::int64_t Model::num_params() const {
  std::int64_t n = 0;
  auto* self = const_cast<Model*>(this);
  for (auto& p : self->params()) n += p.value->numel();
  return n;
}

std::int64_t Model::cell_macs(int cell) const {
  FT_CHECK(cell >= 0 && cell < num_cells());
  return cell_macs_[static_cast<std::size_t>(cell)];
}

std::vector<Tensor> Model::weights() {
  std::vector<Tensor> ws;
  for (auto& p : params()) ws.push_back(*p.value);
  return ws;
}

void Model::set_weights(const std::vector<Tensor>& ws) {
  auto ps = params();
  FT_CHECK_MSG(ws.size() == ps.size(), "weight list size mismatch");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    FT_CHECK_MSG(ps[i].value->same_shape(ws[i]), "weight shape mismatch");
    *ps[i].value = ws[i];
  }
}

}  // namespace fedtrans
