#include "model/spec.hpp"

#include <sstream>

#include "common/check.hpp"

namespace fedtrans {

namespace {
const char* kind_name(CellKind k) {
  switch (k) {
    case CellKind::Conv: return "conv";
    case CellKind::Mlp: return "mlp";
    case CellKind::Attention: return "attention";
  }
  return "?";
}

CellKind parse_kind(const std::string& s) {
  if (s == "conv") return CellKind::Conv;
  if (s == "mlp") return CellKind::Mlp;
  if (s == "attention") return CellKind::Attention;
  throw Error("unknown cell kind: " + s);
}
}  // namespace

ModelSpec ModelSpec::conv(int in_channels, int in_hw, int num_classes,
                          int stem_width, const std::vector<int>& cell_widths,
                          const std::vector<int>& cell_blocks,
                          const std::vector<int>& strides) {
  FT_CHECK(!cell_widths.empty());
  ModelSpec s;
  s.kind = CellKind::Conv;
  s.in_channels = in_channels;
  s.in_hw = in_hw;
  s.num_classes = num_classes;
  s.stem_width = stem_width;
  for (std::size_t i = 0; i < cell_widths.size(); ++i) {
    CellSpec c;
    c.kind = CellKind::Conv;
    c.width = cell_widths[i];
    c.blocks = i < cell_blocks.size() ? cell_blocks[i] : 1;
    c.stride = i < strides.size() ? strides[i] : 1;
    c.residual = true;
    c.id = s.fresh_cell_id();
    s.cells.push_back(c);
  }
  return s;
}

ModelSpec ModelSpec::mlp(int in_features, int num_classes, int stem_width,
                         const std::vector<int>& cell_widths,
                         const std::vector<int>& cell_blocks) {
  FT_CHECK(!cell_widths.empty());
  ModelSpec s;
  s.kind = CellKind::Mlp;
  s.in_channels = in_features;
  s.in_hw = 1;
  s.num_classes = num_classes;
  s.stem_width = stem_width;
  for (std::size_t i = 0; i < cell_widths.size(); ++i) {
    CellSpec c;
    c.kind = CellKind::Mlp;
    c.width = cell_widths[i];
    c.blocks = i < cell_blocks.size() ? cell_blocks[i] : 1;
    c.residual = true;
    c.id = s.fresh_cell_id();
    s.cells.push_back(c);
  }
  return s;
}

ModelSpec ModelSpec::attention(int in_channels, int in_hw, int num_classes,
                               int patch, int embed_dim,
                               const std::vector<int>& mlp_hidden,
                               const std::vector<int>& cell_blocks) {
  FT_CHECK(!mlp_hidden.empty());
  FT_CHECK_MSG(in_hw % patch == 0, "in_hw must be divisible by patch size");
  ModelSpec s;
  s.kind = CellKind::Attention;
  s.in_channels = in_channels;
  s.in_hw = in_hw;
  s.num_classes = num_classes;
  s.patch = patch;
  s.embed_dim = embed_dim;
  s.stem_width = embed_dim;
  for (std::size_t i = 0; i < mlp_hidden.size(); ++i) {
    CellSpec c;
    c.kind = CellKind::Attention;
    c.width = mlp_hidden[i];
    c.blocks = i < cell_blocks.size() ? cell_blocks[i] : 1;
    c.residual = true;
    c.id = s.fresh_cell_id();
    s.cells.push_back(c);
  }
  return s;
}

std::string ModelSpec::summary() const {
  std::ostringstream os;
  os << name << "[" << kind_name(kind) << " ";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os << "-";
    os << cells[i].width;
    if (cells[i].blocks > 1) os << "x" << cells[i].blocks;
    if (cells[i].stride > 1) os << "s" << cells[i].stride;
  }
  os << "]";
  return os.str();
}

std::string ModelSpec::serialize() const {
  std::ostringstream os;
  os << "fedtrans-spec v1\n";
  os << "name " << name << "\n";
  os << "ids " << model_id << " " << parent_id << " " << next_cell_id << "\n";
  os << "kind " << kind_name(kind) << "\n";
  os << "input " << in_channels << " " << in_hw << " " << num_classes << "\n";
  os << "stem " << stem_width << " " << patch << " " << embed_dim << "\n";
  os << "cells " << cells.size() << "\n";
  for (const auto& c : cells) {
    os << "cell " << kind_name(c.kind) << " " << c.width << " " << c.blocks
       << " " << c.stride << " " << (c.residual ? 1 : 0) << " " << c.id << " "
       << (c.widened_last ? 1 : 0) << "\n";
  }
  return os.str();
}

ModelSpec ModelSpec::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tok, version;
  ModelSpec s;
  is >> tok >> version;
  FT_CHECK_MSG(tok == "fedtrans-spec" && version == "v1",
               "unrecognized spec header");
  std::size_t n_cells = 0;
  std::string kind_s;
  while (is >> tok) {
    if (tok == "name") {
      is >> s.name;
    } else if (tok == "ids") {
      is >> s.model_id >> s.parent_id >> s.next_cell_id;
    } else if (tok == "kind") {
      is >> kind_s;
      s.kind = parse_kind(kind_s);
    } else if (tok == "input") {
      is >> s.in_channels >> s.in_hw >> s.num_classes;
    } else if (tok == "stem") {
      is >> s.stem_width >> s.patch >> s.embed_dim;
    } else if (tok == "cells") {
      is >> n_cells;
    } else if (tok == "cell") {
      CellSpec c;
      int residual = 0, widened = 0;
      is >> kind_s >> c.width >> c.blocks >> c.stride >> residual >> c.id >>
          widened;
      c.kind = parse_kind(kind_s);
      c.residual = residual != 0;
      c.widened_last = widened != 0;
      s.cells.push_back(c);
    } else {
      throw Error("unknown spec token: " + tok);
    }
  }
  FT_CHECK_MSG(s.cells.size() == n_cells, "cell count mismatch in spec");
  return s;
}

std::vector<std::int64_t> cell_param_counts(const ModelSpec& spec) {
  std::vector<std::int64_t> counts;
  counts.reserve(spec.cells.size());
  int prev_w = spec.kind == CellKind::Attention ? spec.embed_dim
                                                : spec.stem_width;
  for (const auto& c : spec.cells) {
    std::int64_t n = 0;
    for (int b = 0; b < c.blocks; ++b) {
      const int in_w = b == 0 ? prev_w : c.width;
      switch (c.kind) {
        case CellKind::Conv:
          // conv weight + bias + scale/shift
          n += static_cast<std::int64_t>(c.width) * in_w * 9 + c.width +
               2 * c.width;
          break;
        case CellKind::Mlp:
          n += static_cast<std::int64_t>(c.width) * in_w + c.width;
          break;
        case CellKind::Attention: {
          const std::int64_t d = spec.embed_dim, h = c.width;
          // Wq/Wk/Wv/Wo + biases, then MLP D->h->D with biases.
          n += 4 * d * d + 4 * d + d * h + h + h * d + d;
          break;
        }
      }
    }
    counts.push_back(n);
    if (c.kind != CellKind::Attention) prev_w = c.width;
  }
  return counts;
}

}  // namespace fedtrans
