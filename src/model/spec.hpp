#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fedtrans {

/// The paper's minimum transformable architecture unit ("Cell", §3): a
/// stack of identically-sized blocks (conv / MLP / transformer blocks).
/// FedTrans widens a Cell (multiply `width`) or deepens around it (insert a
/// fresh Cell). Cells carry a stable `id` so lineage-related models can be
/// aligned Cell-by-Cell for similarity scoring and weight sharing.
enum class CellKind { Conv, Mlp, Attention };

struct CellSpec {
  CellKind kind = CellKind::Conv;
  /// Output channels (Conv), hidden features (Mlp), or MLP hidden dim of the
  /// transformer block (Attention — the embed dim stays fixed).
  int width = 8;
  /// Number of stacked blocks inside the Cell.
  int blocks = 1;
  /// Spatial stride applied by the Cell's first block (Conv only).
  int stride = 1;
  /// Residual blocks compute y = x + f(x); requires in==out per block (all
  /// blocks after the first; the first too when widths line up).
  bool residual = false;
  /// Stable lineage id (allocated by ModelSpec::fresh_cell_id).
  std::uint64_t id = 0;
  /// True when the last transformation that touched this Cell widened it —
  /// drives the paper's widen/deepen alternation (Fig. 5 control flow).
  bool widened_last = false;

  bool operator==(const CellSpec&) const = default;
};

/// Complete, serializable architecture description. A Model is built from a
/// ModelSpec; transformations produce new ModelSpecs (plus warm-started
/// weights).
struct ModelSpec {
  std::string name = "M0";
  int model_id = 0;
  int parent_id = -1;

  CellKind kind = CellKind::Conv;
  int in_channels = 1;
  int in_hw = 16;       // square input resolution
  int num_classes = 10;
  int stem_width = 8;   // Conv/Mlp stem output width (fixed, not transformed)

  // Attention-only fields.
  int patch = 4;      // patch-embedding size (in_hw must be divisible)
  int embed_dim = 16; // token dimension

  std::vector<CellSpec> cells;

  /// Monotone id allocator shared along a lineage (children copy the
  /// parent's counter so ids never collide within a family).
  std::uint64_t next_cell_id = 1;
  std::uint64_t fresh_cell_id() { return next_cell_id++; }

  /// Convenience builder: a Conv model with the given cell widths,
  /// one block per cell, stride-2 on cells marked in `downsample`.
  static ModelSpec conv(int in_channels, int in_hw, int num_classes,
                        int stem_width, const std::vector<int>& cell_widths,
                        const std::vector<int>& cell_blocks = {},
                        const std::vector<int>& strides = {});
  static ModelSpec mlp(int in_features, int num_classes, int stem_width,
                       const std::vector<int>& cell_widths,
                       const std::vector<int>& cell_blocks = {});
  static ModelSpec attention(int in_channels, int in_hw, int num_classes,
                             int patch, int embed_dim,
                             const std::vector<int>& mlp_hidden,
                             const std::vector<int>& cell_blocks = {});

  /// Human-readable one-liner ("M2[conv 8-16x2-32]").
  std::string summary() const;

  /// Text round-trip serialization.
  std::string serialize() const;
  static ModelSpec deserialize(const std::string& text);

  bool operator==(const ModelSpec&) const = default;
};

/// Parameter count of each Cell, given the widths feeding into it (stem and
/// preceding cells). Matches Model::cell_params() exactly; used by
/// similarity scoring without having to instantiate weights.
std::vector<std::int64_t> cell_param_counts(const ModelSpec& spec);

}  // namespace fedtrans
