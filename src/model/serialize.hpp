#pragma once

#include <iosfwd>

#include "model/model.hpp"

namespace fedtrans {

/// Persist a model (architecture spec + all weights) to a binary stream /
/// file. Format: magic, spec text block, tensor count, tensors in params()
/// order. Round-trips exactly (bit-identical weights).
void save_model(Model& model, std::ostream& os);
Model load_model(std::istream& is);

void save_model_file(Model& model, const std::string& path);
Model load_model_file(const std::string& path);

}  // namespace fedtrans
