#pragma once

#include <functional>

#include "model/model.hpp"

namespace fedtrans {

/// A parameter tensor of `src` matched (by role) with one of `dst`:
/// stem ↔ stem, Cell-id-matched blocks by index, classifier ↔ classifier.
/// Shapes may differ (different widths); use for_each_overlap to visit the
/// shared prefix region.
struct AlignedPair {
  Tensor* dst = nullptr;
  Tensor* src = nullptr;
};

/// Enumerate aligned parameter tensors between two models of the same
/// lineage family. Because widening uses identity-prefix channel maps,
/// prefix overlap is the semantically meaningful shared region (the
/// HeteroFL-style "crop" the paper references for Eq. 5).
std::vector<AlignedPair> align_params(Model& dst, Model& src);

/// Visit the overlapping prefix hyper-rectangle of two same-rank tensors:
/// fn(a_flat_index, b_flat_index) for every coordinate < min(shape_a,
/// shape_b) element-wise.
void for_each_overlap(const Tensor& a, const Tensor& b,
                      const std::function<void(std::int64_t, std::int64_t)>& fn);

/// dst op over overlap: dst = src (copy overlapping prefix region).
void copy_overlap(Model& dst, Model& src);

/// Map parameter Tensor* -> index in model.params() order (to resolve
/// AlignedPair entries against external WeightSets such as client deltas).
std::unordered_map<const Tensor*, std::size_t> param_index(Model& m);

/// Width-scaled variant of a spec (HeteroFL/SplitMix-style submodels): every
/// Cell width and the stem width multiplied by `ratio` (min 1), Cell ids
/// preserved so weights align by prefix crop.
ModelSpec scale_widths(const ModelSpec& full, double ratio);

}  // namespace fedtrans
