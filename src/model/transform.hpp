#pragma once

#include "model/model.hpp"

namespace fedtrans {

/// One transformation decision for a Cell of the parent model (§4.1, Fig. 5).
/// The widen/deepen alternation means a Cell is never widened and deepened
/// in the same transformation.
struct CellOp {
  enum class Kind { Keep, Widen, Deepen };
  Kind kind = Kind::Keep;
  /// Widen: new width = ceil(old * widen_factor), must be > 1.0.
  double widen_factor = 2.0;
  /// Deepen: number of blocks in the freshly inserted Cell.
  int deepen_blocks = 1;
};

/// Derive a child model from `parent` by applying `plan` (one CellOp per
/// parent Cell). With `warm_start` the child's weights are inherited through
/// the function-preserving Net2Net construction:
///  * Widen uses an identity-prefix channel map (original channels keep their
///    positions; extra channels copy random originals) with pure-copy output
///    duplication and count-rescaled input consumption — exact through
///    residual blocks.
///  * Deepen inserts a residual Cell whose last projection is
///    zero-initialized — exactly the identity function.
/// Without `warm_start` the child is freshly initialized (the `-w` ablation).
Model transform_model(Model& parent, const std::vector<CellOp>& plan,
                      int child_model_id, const std::string& child_name,
                      Rng& rng, bool warm_start = true);

/// Convenience single-cell operations (used by tests and examples).
Model widen_cell(Model& parent, int cell, double factor, int child_id,
                 Rng& rng);
Model deepen_cell(Model& parent, int cell, int blocks, int child_id, Rng& rng);

}  // namespace fedtrans
