#include "model/similarity.hpp"

#include <algorithm>
#include <unordered_map>

namespace fedtrans {

double model_similarity(const ModelSpec& a, const ModelSpec& b) {
  if (a.cells.empty() || b.cells.empty()) return 0.0;
  const auto pa = cell_param_counts(a);
  const auto pb = cell_param_counts(b);
  std::unordered_map<std::uint64_t, std::int64_t> by_id;
  by_id.reserve(a.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) by_id[a.cells[i].id] = pa[i];

  double total = 0.0;
  for (std::size_t j = 0; j < b.cells.size(); ++j) {
    auto it = by_id.find(b.cells[j].id);
    if (it == by_id.end()) continue;  // inserted cell: no inherited weights
    const double lo = static_cast<double>(std::min(it->second, pb[j]));
    const double hi = static_cast<double>(std::max(it->second, pb[j]));
    if (hi > 0.0) total += lo / hi;
  }
  const double denom =
      static_cast<double>(std::max(a.cells.size(), b.cells.size()));
  return std::clamp(total / denom, 0.0, 1.0);
}

}  // namespace fedtrans
