#include "model/transform.hpp"

#include <cmath>

#include "common/check.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/scale_shift.hpp"

namespace fedtrans {

namespace {

/// Channel map for a widened Cell: identity prefix, random sources for the
/// extra channels, plus replication counts of each source channel.
struct ChannelMap {
  std::vector<int> map;     // new index -> source index
  std::vector<int> counts;  // source index -> #times selected
};

ChannelMap identity_map(int width) {
  ChannelMap m;
  m.map.resize(static_cast<std::size_t>(width));
  m.counts.assign(static_cast<std::size_t>(width), 1);
  for (int i = 0; i < width; ++i) m.map[static_cast<std::size_t>(i)] = i;
  return m;
}

ChannelMap widen_map(int old_width, int new_width, Rng& rng) {
  FT_CHECK(new_width >= old_width);
  ChannelMap m;
  m.map.resize(static_cast<std::size_t>(new_width));
  m.counts.assign(static_cast<std::size_t>(old_width), 0);
  for (int j = 0; j < new_width; ++j) {
    const int src = j < old_width ? j : rng.uniform_int(0, old_width - 1);
    m.map[static_cast<std::size_t>(j)] = src;
    ++m.counts[static_cast<std::size_t>(src)];
  }
  return m;
}

/// dst[jo, ji, ky, kx] = src[out.map[jo], in.map[ji], ky, kx] / in.counts[...]
/// — pure-copy duplication on the output axis, count-rescaled remap on the
/// input axis (the exact Net2Net widen rule).
void copy_conv_mapped(const Conv2d& src, Conv2d& dst, const ChannelMap& out,
                      const ChannelMap& in) {
  FT_CHECK(src.kernel() == dst.kernel());
  const int k = src.kernel();
  const auto& sw = src.weight();
  auto& dw = dst.weight();
  for (int jo = 0; jo < dst.out_channels(); ++jo) {
    const int so = out.map[static_cast<std::size_t>(jo)];
    for (int ji = 0; ji < dst.in_channels(); ++ji) {
      const int si = in.map[static_cast<std::size_t>(ji)];
      const float inv =
          1.0f / static_cast<float>(in.counts[static_cast<std::size_t>(si)]);
      for (int ky = 0; ky < k; ++ky)
        for (int kx = 0; kx < k; ++kx)
          dw.at(jo, ji, ky, kx) = sw.at(so, si, ky, kx) * inv;
    }
    if (src.has_bias()) dst.bias()[jo] = src.bias()[so];
  }
}

void copy_linear_mapped(const Linear& src, Linear& dst, const ChannelMap& out,
                        const ChannelMap& in) {
  const auto& sw = src.weight();
  auto& dw = dst.weight();
  for (int jo = 0; jo < dst.out_features(); ++jo) {
    const int so = out.map[static_cast<std::size_t>(jo)];
    for (int ji = 0; ji < dst.in_features(); ++ji) {
      const int si = in.map[static_cast<std::size_t>(ji)];
      const float inv =
          1.0f / static_cast<float>(in.counts[static_cast<std::size_t>(si)]);
      dw.at(jo, ji) = sw.at(so, si) * inv;
    }
    if (src.has_bias()) dst.bias()[jo] = src.bias()[so];
  }
}

void copy_scale_shift_mapped(ScaleShift& src, ScaleShift& dst,
                             const ChannelMap& out) {
  for (int jo = 0; jo < dst.channels(); ++jo) {
    const int so = out.map[static_cast<std::size_t>(jo)];
    dst.scale()[jo] = src.scale()[so];
    dst.shift()[jo] = src.shift()[so];
  }
}

/// Copy every tensor of `src` block into `dst` verbatim (matching shapes).
void copy_block_verbatim(Block& src, Block& dst) {
  auto sp = src.params();
  auto dp = dst.params();
  FT_CHECK(sp.size() == dp.size());
  for (std::size_t i = 0; i < sp.size(); ++i) {
    FT_CHECK_MSG(sp[i].value->same_shape(*dp[i].value),
                 "verbatim block copy shape mismatch");
    *dp[i].value = *sp[i].value;
  }
}

/// Identity-initialize a freshly inserted block so the whole block computes
/// y = x exactly. Residual blocks zero their projection (x + 0 = x
/// everywhere); the cell's first block is structurally non-residual, so it
/// uses a Dirac/eye identity instead — exact because its input is
/// post-ReLU (non-negative), where ReLU∘identity is the identity.
void init_inserted_block(Block& blk, CellKind kind) {
  switch (kind) {
    case CellKind::Conv: {
      auto* conv = dynamic_cast<Conv2d*>(&blk.layer(0));
      auto* ss = dynamic_cast<ScaleShift*>(&blk.layer(1));
      FT_CHECK(conv != nullptr && ss != nullptr);
      if (blk.residual()) {
        conv->weight().zero();
        conv->bias().zero();
      } else {
        conv->init_identity();
      }
      ss->scale().fill(1.0f);
      ss->shift().zero();
      break;
    }
    case CellKind::Mlp: {
      auto* lin = dynamic_cast<Linear*>(&blk.layer(0));
      FT_CHECK(lin != nullptr);
      lin->weight().zero();
      lin->bias().zero();
      if (!blk.residual()) {
        FT_CHECK_MSG(lin->in_features() == lin->out_features(),
                     "identity insertion requires square linear");
        for (int i = 0; i < lin->in_features(); ++i)
          lin->weight().at(i, i) = 1.0f;
      }
      break;
    }
    case CellKind::Attention: {
      if (auto* attn = dynamic_cast<Attention*>(&blk.layer(0))) {
        attn->zero_output_projection();
      } else if (auto* mlp = dynamic_cast<TokenMlp*>(&blk.layer(0))) {
        mlp->zero_output_projection();
      } else {
        FT_CHECK_MSG(false, "unexpected layer in inserted attention block");
      }
      break;
    }
  }
}

}  // namespace

Model transform_model(Model& parent, const std::vector<CellOp>& plan,
                      int child_model_id, const std::string& child_name,
                      Rng& rng, bool warm_start) {
  const ModelSpec& pspec = parent.spec();
  FT_CHECK_MSG(plan.size() == pspec.cells.size(),
               "plan must cover every parent cell");

  // --- 1. Build the child spec. ---------------------------------------
  ModelSpec cspec = pspec;
  cspec.name = child_name;
  cspec.model_id = child_model_id;
  cspec.parent_id = pspec.model_id;

  std::vector<ChannelMap> out_maps(pspec.cells.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    auto& cell = cspec.cells[i];
    switch (plan[i].kind) {
      case CellOp::Kind::Keep:
        out_maps[i] = identity_map(cell.width);
        break;
      case CellOp::Kind::Widen: {
        FT_CHECK_MSG(plan[i].widen_factor > 1.0, "widen factor must be > 1");
        const int new_w = static_cast<int>(
            std::ceil(cell.width * plan[i].widen_factor));
        out_maps[i] = widen_map(cell.width, new_w, rng);
        cell.width = new_w;
        cell.widened_last = true;
        break;
      }
      case CellOp::Kind::Deepen:
        out_maps[i] = identity_map(cell.width);
        cell.widened_last = false;
        break;
    }
  }
  // Insert deepened cells back-to-front so indices stay valid.
  for (int i = static_cast<int>(plan.size()) - 1; i >= 0; --i) {
    if (plan[static_cast<std::size_t>(i)].kind != CellOp::Kind::Deepen)
      continue;
    CellSpec inserted;
    inserted.kind = cspec.cells[static_cast<std::size_t>(i)].kind;
    inserted.width = cspec.cells[static_cast<std::size_t>(i)].width;
    inserted.blocks = plan[static_cast<std::size_t>(i)].deepen_blocks;
    inserted.stride = 1;
    inserted.residual = true;
    inserted.id = cspec.fresh_cell_id();
    cspec.cells.insert(
        cspec.cells.begin() + static_cast<std::ptrdiff_t>(i) + 1, inserted);
  }

  // --- 2. Instantiate the child (random init). ------------------------
  Model child(cspec, rng);
  if (!warm_start) return child;

  // --- 3. Warm start: copy transformed parent weights. ----------------
  copy_block_verbatim(parent.stem(), child.stem());

  const bool attention = pspec.kind == CellKind::Attention;
  ChannelMap stem_map = identity_map(
      attention ? pspec.embed_dim : pspec.stem_width);

  int child_cell = 0;
  ChannelMap prev_out = stem_map;
  for (std::size_t i = 0; i < pspec.cells.size(); ++i) {
    const ChannelMap& g = out_maps[i];
    const int blocks = parent.blocks_in_cell(static_cast<int>(i));
    FT_CHECK(blocks == child.blocks_in_cell(child_cell));
    for (int b = 0; b < blocks; ++b) {
      Block& sb = parent.cell_block(static_cast<int>(i), b);
      Block& db = child.cell_block(child_cell, b);
      if (attention) {
        // Attention cells: embed dim is fixed, only the TokenMlp hidden is
        // widened, and that hidden axis is block-internal.
        if (auto* smlp = dynamic_cast<TokenMlp*>(&sb.layer(0))) {
          auto* dmlp = dynamic_cast<TokenMlp*>(&db.layer(0));
          FT_CHECK(dmlp != nullptr);
          // w1: rows duplicated (pure copy); w2: columns count-rescaled.
          for (int jo = 0; jo < dmlp->hidden(); ++jo) {
            const int so = g.map[static_cast<std::size_t>(jo)];
            for (int ji = 0; ji < dmlp->dim(); ++ji)
              dmlp->w1().at(jo, ji) = smlp->w1().at(so, ji);
            dmlp->b1()[jo] = smlp->b1()[so];
          }
          auto dps = dmlp->params();
          auto sps = smlp->params();
          // params: w1,b1,w2,b2 — handle w2/b2 here.
          Tensor& dw2 = *dps[2].value;
          const Tensor& sw2 = *sps[2].value;
          for (int jo = 0; jo < dmlp->dim(); ++jo)
            for (int ji = 0; ji < dmlp->hidden(); ++ji) {
              const int si = g.map[static_cast<std::size_t>(ji)];
              dw2.at(jo, ji) =
                  sw2.at(jo, si) /
                  static_cast<float>(g.counts[static_cast<std::size_t>(si)]);
            }
          *dps[3].value = *sps[3].value;  // b2
        } else {
          copy_block_verbatim(sb, db);  // attention sub-block: unchanged
        }
      } else {
        const ChannelMap& in_map = b == 0 ? prev_out : g;
        if (pspec.kind == CellKind::Conv) {
          auto* sconv = dynamic_cast<Conv2d*>(&sb.layer(0));
          auto* dconv = dynamic_cast<Conv2d*>(&db.layer(0));
          auto* sss = dynamic_cast<ScaleShift*>(&sb.layer(1));
          auto* dss = dynamic_cast<ScaleShift*>(&db.layer(1));
          FT_CHECK(sconv && dconv && sss && dss);
          copy_conv_mapped(*sconv, *dconv, g, in_map);
          copy_scale_shift_mapped(*sss, *dss, g);
        } else {
          auto* slin = dynamic_cast<Linear*>(&sb.layer(0));
          auto* dlin = dynamic_cast<Linear*>(&db.layer(0));
          FT_CHECK(slin && dlin);
          copy_linear_mapped(*slin, *dlin, g, in_map);
        }
      }
    }
    ++child_cell;
    // Skip over a freshly inserted cell (identity-initialize it).
    if (plan[i].kind == CellOp::Kind::Deepen) {
      for (int b = 0; b < child.blocks_in_cell(child_cell); ++b)
        init_inserted_block(child.cell_block(child_cell, b),
                            pspec.cells[i].kind);
      ++child_cell;
    }
    if (!attention) prev_out = g;
  }
  FT_CHECK(child_cell == child.num_cells());

  // Classifier: input comes from the last cell (or fixed embed dim).
  {
    auto* scls = dynamic_cast<Linear*>(&parent.classifier());
    auto* dcls = dynamic_cast<Linear*>(&child.classifier());
    FT_CHECK(scls && dcls);
    const ChannelMap out_id = identity_map(scls->out_features());
    const ChannelMap& in_map =
        attention ? stem_map : prev_out;
    copy_linear_mapped(*scls, *dcls, out_id, in_map);
  }
  return child;
}

Model widen_cell(Model& parent, int cell, double factor, int child_id,
                 Rng& rng) {
  std::vector<CellOp> plan(parent.spec().cells.size());
  FT_CHECK(cell >= 0 && cell < parent.num_cells());
  plan[static_cast<std::size_t>(cell)] = {CellOp::Kind::Widen, factor, 1};
  std::string child_name = "M";
  child_name += std::to_string(child_id);
  return transform_model(parent, plan, child_id, child_name, rng);
}

Model deepen_cell(Model& parent, int cell, int blocks, int child_id,
                  Rng& rng) {
  std::vector<CellOp> plan(parent.spec().cells.size());
  FT_CHECK(cell >= 0 && cell < parent.num_cells());
  plan[static_cast<std::size_t>(cell)] = {CellOp::Kind::Deepen, 2.0, blocks};
  std::string child_name = "M";
  child_name += std::to_string(child_id);
  return transform_model(parent, plan, child_id, child_name, rng);
}

}  // namespace fedtrans
