#include "model/serialize.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace fedtrans {

namespace {
constexpr std::uint32_t kMagic = 0xfed7a25u;
}

void save_model(Model& model, std::ostream& os) {
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const std::string spec = model.spec().serialize();
  const auto spec_len = static_cast<std::uint32_t>(spec.size());
  os.write(reinterpret_cast<const char*>(&spec_len), sizeof(spec_len));
  os.write(spec.data(), static_cast<std::streamsize>(spec.size()));
  auto ps = model.params();
  const auto count = static_cast<std::uint32_t>(ps.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (auto& p : ps) p.value->save(os);
  FT_CHECK_MSG(os.good(), "model serialization stream failure");
}

Model load_model(std::istream& is) {
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  FT_CHECK_MSG(is.good() && magic == kMagic, "not a fedtrans model stream");
  std::uint32_t spec_len = 0;
  is.read(reinterpret_cast<char*>(&spec_len), sizeof(spec_len));
  FT_CHECK_MSG(is.good() && spec_len < (1u << 20), "corrupt spec length");
  std::string spec_text(spec_len, '\0');
  is.read(spec_text.data(), static_cast<std::streamsize>(spec_len));
  const ModelSpec spec = ModelSpec::deserialize(spec_text);

  Rng rng(0);  // weights are overwritten below
  Model model(spec, rng);
  std::uint32_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  auto ps = model.params();
  FT_CHECK_MSG(count == ps.size(), "parameter count mismatch in stream");
  for (auto& p : ps) {
    Tensor t = Tensor::load(is);
    FT_CHECK_MSG(t.same_shape(*p.value), "parameter shape mismatch in stream");
    *p.value = std::move(t);
  }
  return model;
}

void save_model_file(Model& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  FT_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  save_model(model, os);
}

Model load_model_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FT_CHECK_MSG(is.good(), "cannot open " << path << " for reading");
  return load_model(is);
}

}  // namespace fedtrans
