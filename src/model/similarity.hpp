#pragma once

#include "model/spec.hpp"

namespace fedtrans {

/// Architectural similarity sim(A, B) ∈ [0, 1] between two models of the
/// same lineage family (§4.2). Cells are matched by their stable lineage
/// ids; each matched Cell contributes the fraction of inherited parameters
/// min(#param_A, #param_B) / max(#param_A, #param_B) (1 when unchanged,
/// < 1 when one side was widened); unmatched Cells (inserted by deepening)
/// contribute 0. The per-Cell scores are averaged over the larger Cell
/// count. This reduces to the paper's parent/child matching-degree rule and
/// extends it to arbitrary pairs within a family tree.
double model_similarity(const ModelSpec& a, const ModelSpec& b);

}  // namespace fedtrans
