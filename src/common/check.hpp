#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fedtrans {

/// Error type thrown by all FT_CHECK* failures. Invariant violations inside
/// the library surface as this exception rather than UB or silent corruption.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "FT_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace fedtrans

/// Always-on invariant check (library is simulation-scale; the cost of checks
/// is negligible next to GEMMs, so they stay on in release builds).
#define FT_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) ::fedtrans::detail::check_failed(#cond, __FILE__, __LINE__, \
                                                  "");                       \
  } while (0)

#define FT_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream ft_os_;                                            \
      ft_os_ << msg; /* NOLINT */                                           \
      ::fedtrans::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                       ft_os_.str());                       \
    }                                                                       \
  } while (0)
