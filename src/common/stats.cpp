#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace fedtrans {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, v.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double iqr(std::span<const double> xs) {
  return percentile(xs, 75.0) - percentile(xs, 25.0);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

BoxStats box_stats(std::span<const double> xs) {
  BoxStats b;
  b.min = min_of(xs);
  b.q1 = percentile(xs, 25.0);
  b.median = median(xs);
  b.q3 = percentile(xs, 75.0);
  b.max = max_of(xs);
  return b;
}

std::vector<double> standardize(std::span<const double> xs) {
  std::vector<double> out(xs.size(), 0.0);
  double m = mean(xs);
  double s = stddev(xs);
  if (s < 1e-12) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - m) / s;
  return out;
}

}  // namespace fedtrans
