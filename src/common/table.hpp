#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fedtrans {

/// Column-aligned plain-text table writer used by the benchmark harness to
/// print paper-style result tables to stdout (and optionally CSV to disk).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Pretty-print with aligned columns and a header separator.
  void print(std::ostream& os) const;
  /// Emit RFC-4180-ish CSV (no quoting of commas required by our content).
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.34").
std::string fmt_fixed(double v, int precision = 2);
/// Scientific notation ("1.23e+14").
std::string fmt_sci(double v, int precision = 2);
/// Human-readable byte count ("10.6 MB").
std::string fmt_bytes(double bytes);
/// MAC count scaled to an SI-ish suffix ("0.86 PMACs").
std::string fmt_macs(double macs);

}  // namespace fedtrans
