#pragma once

#include <span>
#include <vector>

namespace fedtrans {

/// Small descriptive-statistics helpers used by metrics collection and the
/// benchmark harness. All functions tolerate empty input by returning 0.
double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);  // population std-dev
/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);
/// Inter-quartile range (Q3 - Q1) — the per-client accuracy spread metric
/// the paper reports in Table 2.
double iqr(std::span<const double> xs);
double median(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Five-number summary used for the Fig. 6 box plots.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};
BoxStats box_stats(std::span<const double> xs);

/// Standardize xs to zero mean / unit variance. Returns all-zeros when the
/// variance is (near) zero — the degenerate case Eq. 4 must survive.
std::vector<double> standardize(std::span<const double> xs);

}  // namespace fedtrans
