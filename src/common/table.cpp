#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace fedtrans {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FT_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  FT_CHECK_MSG(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, expected "
                          << headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt_fixed(bytes, 1) + " " + units[u];
}

std::string fmt_macs(double macs) {
  const char* units[] = {"MACs", "KMACs", "MMACs", "GMACs", "TMACs", "PMACs"};
  int u = 0;
  while (macs >= 1000.0 && u < 5) {
    macs /= 1000.0;
    ++u;
  }
  return fmt_fixed(macs, 2) + " " + units[u];
}

}  // namespace fedtrans
