#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fedtrans {

/// Persistent worker pool driving every data-parallel loop in the library:
/// GEMM row panels, im2col batches, and concurrent client rounds. One pool is
/// shared process-wide (see `global()`); its size comes from the
/// FEDTRANS_THREADS environment variable, defaulting to the hardware
/// concurrency.
///
/// Work is handed out as half-open index ranges. Nested `parallel_for` calls
/// issued from inside a worker run inline on the calling thread, so parallel
/// sections compose without oversubscription or deadlock (e.g. the threaded
/// GEMM invoked from a concurrently-training client simply runs serially
/// within that client's worker).
class ThreadPool {
 public:
  /// `threads` is the total degree of parallelism including the calling
  /// thread; `threads - 1` workers are spawned.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Degree of parallelism (workers + the participating caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invoke fn(begin, end) over a disjoint partition of [0, n) in chunks of
  /// at most `grain` indices. The caller participates and the call blocks
  /// until every chunk has finished; the first exception thrown by any chunk
  /// is rethrown here. Ranges are disjoint, so writes to per-index slots
  /// need no synchronization, and any reduction the caller performs
  /// afterwards sees fully ordered data — keeping results independent of the
  /// thread count.
  void parallel_for(std::int64_t n, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Process-wide pool. Built on first use with `global_threads()` threads.
  static ThreadPool& global();
  /// Thread count the global pool uses: FEDTRANS_THREADS if set (clamped to
  /// >= 1), otherwise std::thread::hardware_concurrency().
  static int global_threads();
  /// Rebuild the global pool with an explicit thread count. Test/bench hook
  /// for comparing thread counts within one process; must not be called
  /// while a parallel_for is in flight.
  static void set_global_threads(int threads);

 private:
  struct Task {
    std::int64_t n = 0;
    std::int64_t grain = 1;
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::atomic<std::int64_t> next{0};
    std::int64_t total_chunks = 0;
    std::int64_t done_chunks = 0;  // guarded by the pool mutex
    std::exception_ptr error;      // first failure, guarded by the pool mutex
  };

  void worker_loop();
  /// Claim and run chunks until the task is drained; returns the number of
  /// chunks this thread completed and the first exception it saw.
  static std::pair<std::int64_t, std::exception_ptr> run_chunks(Task& t);

  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_;       // wakes workers on a new task / stop
  std::condition_variable done_cv_;  // wakes the caller on completion
  std::shared_ptr<Task> task_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::mutex submit_m_;  // serializes top-level parallel_for calls
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::int64_t n, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace fedtrans
