#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace fedtrans {

/// Minimal binary (de)serialization primitives shared by checkpointing and
/// model persistence. Little-endian PODs, length-prefixed containers; every
/// read validates the stream so truncated checkpoints fail loudly instead
/// of yielding silently corrupt state.

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  FT_CHECK_MSG(is.good(), "truncated stream while reading POD");
  return v;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(os, v.size());
  if (!v.empty())
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Bytes left between the stream's read position and its end, or UINT64_MAX
/// when the stream is not seekable. Lets length-prefixed readers reject a
/// corrupt count before allocating for it.
inline std::uint64_t stream_remaining(std::istream& is) {
  const auto pos = is.tellg();
  if (pos < 0) return ~std::uint64_t{0};
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.seekg(pos);
  if (end < 0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(end - pos);
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(is);
  FT_CHECK_MSG(n <= stream_remaining(is) / sizeof(T),
               "vector length prefix exceeds remaining stream");
  std::vector<T> v(static_cast<std::size_t>(n));
  if (n > 0)
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
  FT_CHECK_MSG(is.good(), "truncated stream while reading vector");
  return v;
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  FT_CHECK_MSG(n <= stream_remaining(is),
               "string length prefix exceeds remaining stream");
  std::string s(static_cast<std::size_t>(n), '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  FT_CHECK_MSG(is.good(), "truncated stream while reading string");
  return s;
}

}  // namespace fedtrans
