#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  FT_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % range);
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::gamma(double shape) {
  FT_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Ahrens–Dieter boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    double u = 1.0 - uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = 1.0 - uniform();
    if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v)) return d * v;
  }
}

std::vector<double> Rng::dirichlet(double alpha, int k) {
  FT_CHECK(k > 0 && alpha > 0.0);
  std::vector<double> out(static_cast<std::size_t>(k));
  double sum = 0.0;
  for (auto& x : out) {
    x = gamma(alpha);
    sum += x;
  }
  if (sum <= 0.0) {
    for (auto& x : out) x = 1.0 / k;
    return out;
  }
  for (auto& x : out) x /= sum;
  return out;
}

int Rng::categorical(std::span<const double> weights) {
  FT_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FT_CHECK_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  if (total <= 0.0) return uniform_int(0, static_cast<int>(weights.size()) - 1);
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace fedtrans
