#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace fedtrans {

/// Deterministic, fork-able pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library draws from an
/// explicitly passed Rng so whole experiments replay bit-identically from a
/// single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);
  /// Standard Box–Muller normal.
  double normal(double mean = 0.0, double stddev = 1.0);
  /// exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Symmetric Dirichlet(alpha) sample of dimension k (each entry > 0,
  /// entries sum to 1).
  std::vector<double> dirichlet(double alpha, int k);
  /// Gamma(shape, 1) via Marsaglia–Tsang (with Ahrens–Dieter boost for
  /// shape < 1).
  double gamma(double shape);

  /// Sample an index from an unnormalized non-negative weight vector.
  /// Falls back to uniform choice if all weights are zero.
  int categorical(std::span<const double> weights);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      using std::swap;
      swap(v[static_cast<std::size_t>(i)],
           v[static_cast<std::size_t>(uniform_int(0, i))]);
    }
  }

  /// Derive an independent child stream (stable given call order).
  Rng fork();

  /// Full generator state (for checkpointing; replayable bit-exactly).
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace fedtrans
