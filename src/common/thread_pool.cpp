#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"

namespace fedtrans {

namespace {
/// Set while a thread is executing pool work; nested parallel sections from
/// such a thread run inline.
thread_local bool t_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  FT_CHECK_MSG(threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::pair<std::int64_t, std::exception_ptr> ThreadPool::run_chunks(Task& t) {
  std::int64_t done = 0;
  std::exception_ptr err;
  for (;;) {
    const std::int64_t begin = t.next.fetch_add(t.grain);
    if (begin >= t.n) break;
    const std::int64_t end = std::min<std::int64_t>(begin + t.grain, t.n);
    if (!err) {
      try {
        (*t.fn)(begin, end);
      } catch (...) {
        err = std::current_exception();
      }
    }
    ++done;
  }
  return {done, err};
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    std::shared_ptr<Task> t = task_;  // keep the task alive while unlocked
    if (!t) continue;
    lk.unlock();
    auto [done, err] = run_chunks(*t);
    lk.lock();
    t->done_chunks += done;
    if (err && !t->error) t->error = err;
    if (t->done_chunks == t->total_chunks) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(grain, 1);
  if (t_in_worker || workers_.empty() || n <= grain) {
    fn(0, n);
    return;
  }

  std::lock_guard<std::mutex> submit_lk(submit_m_);
  auto t = std::make_shared<Task>();
  t->n = n;
  t->grain = grain;
  t->fn = &fn;
  t->total_chunks = (n + grain - 1) / grain;
  {
    std::lock_guard<std::mutex> lk(m_);
    task_ = t;
    ++generation_;
  }
  cv_.notify_all();

  // The caller participates too; while it runs chunks it must behave like a
  // worker (nested parallel_for inline), or a nested call from its own chunk
  // would re-lock submit_m_ and self-deadlock.
  t_in_worker = true;
  auto [done, err] = run_chunks(*t);
  t_in_worker = false;

  std::unique_lock<std::mutex> lk(m_);
  t->done_chunks += done;
  if (err && !t->error) t->error = err;
  done_cv_.wait(lk, [&] { return t->done_chunks == t->total_chunks; });
  task_.reset();
  const std::exception_ptr first = t->error;
  lk.unlock();
  if (first) std::rethrow_exception(first);
}

namespace {
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::mutex g_global_m;
}  // namespace

int ThreadPool::global_threads() {
  if (const char* env = std::getenv("FEDTRANS_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(g_global_m);
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(global_threads());
  return *slot;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lk(g_global_m);
  global_slot() = std::make_unique<ThreadPool>(threads);
}

void parallel_for(std::int64_t n, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool::global().parallel_for(n, grain, fn);
}

}  // namespace fedtrans
