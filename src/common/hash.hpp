#pragma once

#include <cstdint>

namespace fedtrans {

/// splitmix64 finalizer — the hash behind every schedule-independent draw
/// (transport fault injection, device availability). Counter-hashed draws
/// answer the same question identically no matter which thread asks first,
/// which is what keeps fault and availability decisions bit-reproducible
/// under any schedule.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) draw keyed on four counters.
inline double hash01(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                     std::uint64_t d) {
  std::uint64_t h = mix64(a);
  h = mix64(h ^ b);
  h = mix64(h ^ c);
  h = mix64(h ^ d);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace fedtrans
