#pragma once

#include "baselines/common.hpp"
#include "fl/server_opt.hpp"
#include "harness/presets.hpp"

namespace fedtrans {

/// Uniform per-method result consumed by the table/figure benches.
struct MethodResult {
  std::string method;
  BaselineReport report;
  int num_models = 1;
  /// Largest model in the family (== the single model for baselines).
  ModelSpec largest_spec;
  double largest_macs = 0.0;
};

/// Run FedTrans on a preset. `eval_every` > 0 records accuracy probes in the
/// history (for Fig. 7 curves). The returned largest_spec is what the
/// paper's protocol feeds to HeteroFL/SplitMix/FLuID.
MethodResult run_fedtrans(const ExperimentPreset& p, int eval_every = 0);
/// Same but with an explicit (ablated / swept) FedTransConfig.
MethodResult run_fedtrans_cfg(const ExperimentPreset& p,
                              const FedTransConfig& cfg, int eval_every = 0);

MethodResult run_heterofl(const ExperimentPreset& p, const ModelSpec& largest,
                          int eval_every = 0);
MethodResult run_splitmix(const ExperimentPreset& p, const ModelSpec& largest,
                          int eval_every = 0);
MethodResult run_fluid(const ExperimentPreset& p, const ModelSpec& largest,
                       int eval_every = 0);
/// FedRolex (extension baseline): rolling sub-model extraction.
MethodResult run_fedrolex(const ExperimentPreset& p, const ModelSpec& largest,
                          int eval_every = 0);

/// Single-global-model FL (FedAvg / FedProx via prox_mu / FedYogi).
MethodResult run_single_model(const ExperimentPreset& p, const ModelSpec& spec,
                              ServerOptKind opt = ServerOptKind::FedAvg,
                              double prox_mu = 0.0, int eval_every = 0);

/// Centralized ("cloud ML") upper bound: pool all client data, train `spec`
/// with plain SGD for the same optimizer budget.
MethodResult run_centralized(const ExperimentPreset& p, const ModelSpec& spec);

}  // namespace fedtrans
