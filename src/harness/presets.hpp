#pragma once

#include <string>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "model/spec.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// Benchmark scale. Every experiment binary defaults to Tiny so the whole
/// suite runs in minutes on a laptop CPU; FEDTRANS_BENCH_SCALE=small|full
/// grows client counts and round budgets toward the paper's protocol.
enum class Scale { Tiny, Small, Full };

Scale bench_scale();
const char* scale_name(Scale s);

/// Everything one experiment needs: a dataset, a device fleet, the initial
/// model, and the FL/FedTrans hyper-parameters (per-dataset values follow
/// the paper's Table 7, rescaled to the reduced round budgets).
struct ExperimentPreset {
  std::string name;
  DatasetConfig dataset;
  FleetConfig fleet;
  ModelSpec initial_model;
  FedTransConfig fedtrans;
};

/// CIFAR-10-like: 3-channel images, 10 classes, 100 paper clients
/// (MobileNetV3-small initial model in the paper).
ExperimentPreset cifar_like(Scale s, std::uint64_t seed = 1);
/// FEMNIST-like: 1-channel, 62→scaled classes, 3,400 paper clients
/// (NASBench201 base initial model).
ExperimentPreset femnist_like(Scale s, std::uint64_t seed = 1);
/// Speech-Commands-like: 1-channel "spectrograms", 35→scaled classes,
/// 2,618 paper clients (small ResNet18 initial model).
ExperimentPreset speech_like(Scale s, std::uint64_t seed = 1);
/// OpenImage-like: 3-channel, 600→scaled classes, 14,477 paper clients
/// (small ResNet18 initial model).
ExperimentPreset openimage_like(Scale s, std::uint64_t seed = 1);

/// All four, in the paper's Table 2 order.
std::vector<ExperimentPreset> all_presets(Scale s, std::uint64_t seed = 1);

}  // namespace fedtrans
