#include "harness/presets.hpp"

#include <cstdlib>
#include <cstring>

namespace fedtrans {

Scale bench_scale() {
  const char* env = std::getenv("FEDTRANS_BENCH_SCALE");
  if (env == nullptr) return Scale::Tiny;
  if (std::strcmp(env, "full") == 0) return Scale::Full;
  if (std::strcmp(env, "small") == 0) return Scale::Small;
  return Scale::Tiny;
}

const char* scale_name(Scale s) {
  switch (s) {
    case Scale::Tiny: return "tiny";
    case Scale::Small: return "small";
    case Scale::Full: return "full";
  }
  return "?";
}

namespace {

int pick(Scale s, int tiny, int small, int full) {
  switch (s) {
    case Scale::Tiny: return tiny;
    case Scale::Small: return small;
    case Scale::Full: return full;
  }
  return tiny;
}

/// Shared FL/FedTrans knobs; per-dataset presets override a few fields.
FedTransConfig base_config(Scale s, std::uint64_t seed) {
  FedTransConfig cfg;
  cfg.rounds = pick(s, 40, 70, 150);
  cfg.clients_per_round = pick(s, 10, 14, 25);
  cfg.local.steps = pick(s, 8, 15, 20);
  cfg.local.batch = 10;
  cfg.local.sgd.lr = 0.05;
  cfg.local.sgd.momentum = 0.0;
  cfg.gamma = pick(s, 5, 6, 10);
  cfg.doc_delta = pick(s, 5, 6, 8);
  // The paper's β=0.003 is tuned for 2000-round loss curves; our reduced
  // budgets have proportionally steeper per-round slopes.
  cfg.beta = s == Scale::Tiny ? 0.04 : (s == Scale::Small ? 0.02 : 0.008);
  cfg.act_window = pick(s, 3, 5, 5);
  cfg.max_models = pick(s, 3, 5, 6);
  cfg.alpha = 0.9;
  cfg.eta = 0.98;
  cfg.widen_factor = 2.0;
  cfg.deepen_blocks = 1;
  cfg.seed = seed;
  return cfg;
}

FleetConfig base_fleet(int num_clients, double initial_macs,
                       std::uint64_t seed) {
  FleetConfig f;
  f.num_devices = num_clients;
  f.sigma_compute = 1.0;
  f.sigma_bandwidth = 0.8;
  f.median_bandwidth_bytes_per_s = 4e5;
  f.latency_budget_s = 0.004;
  f.seed = seed;
  // Median device ~4× the initial model's cost: the weak tail can only run
  // the initial model (§5.1: "initial complexity = weakest client") while
  // the strong tail has ~50× headroom — so capacity constraints genuinely
  // bite for baselines that ship one large model.
  f.with_median_capacity(4.0 * initial_macs);
  return f;
}

double spec_macs(const ModelSpec& spec) {
  Rng tmp(3);
  return static_cast<double>(Model(spec, tmp).macs());
}

}  // namespace

ExperimentPreset cifar_like(Scale s, std::uint64_t seed) {
  ExperimentPreset p;
  p.name = "cifar-like";
  p.dataset.name = p.name;
  p.dataset.num_classes = 10;
  p.dataset.channels = 3;
  p.dataset.hw = 12;
  p.dataset.num_clients = pick(s, 24, 48, 100);
  p.dataset.dirichlet_h = 0.5;
  p.dataset.mean_train_samples = 30;
  p.dataset.eval_samples = 10;
  p.dataset.seed = seed * 101 + 11;
  // MobileNetV3-small stand-in: two conv cells, second downsampling.
  p.initial_model = ModelSpec::conv(3, 12, 10, /*stem=*/3, {4, 6}, {1, 1},
                                    {1, 2});
  p.fedtrans = base_config(s, seed);
  p.fleet = base_fleet(p.dataset.num_clients, spec_macs(p.initial_model),
                       seed * 7 + 3);
  return p;
}

ExperimentPreset femnist_like(Scale s, std::uint64_t seed) {
  ExperimentPreset p;
  p.name = "femnist-like";
  p.dataset.name = p.name;
  p.dataset.num_classes = pick(s, 10, 24, 32);
  p.dataset.channels = 1;
  p.dataset.hw = 12;
  p.dataset.num_clients = pick(s, 32, 80, 200);
  p.dataset.dirichlet_h = 0.3;  // FEMNIST's writer partition is very skewed
  p.dataset.mean_train_samples = 30;
  p.dataset.eval_samples = 10;
  p.dataset.seed = seed * 101 + 23;
  // NASBench201 base-model stand-in.
  p.initial_model = ModelSpec::conv(1, 12, p.dataset.num_classes, 4, {6, 8},
                                    {1, 1}, {1, 2});
  p.fedtrans = base_config(s, seed);
  p.fleet = base_fleet(p.dataset.num_clients, spec_macs(p.initial_model),
                       seed * 7 + 5);
  return p;
}

ExperimentPreset speech_like(Scale s, std::uint64_t seed) {
  ExperimentPreset p;
  p.name = "speech-like";
  p.dataset.name = p.name;
  p.dataset.num_classes = pick(s, 10, 16, 35);
  p.dataset.channels = 1;
  p.dataset.hw = 12;
  p.dataset.num_clients = pick(s, 28, 64, 160);
  p.dataset.dirichlet_h = 0.5;
  p.dataset.mean_train_samples = 28;
  p.dataset.eval_samples = 10;
  p.dataset.seed = seed * 101 + 37;
  // Small-ResNet18 stand-in: residual cells with two blocks each.
  p.initial_model = ModelSpec::conv(1, 12, p.dataset.num_classes, 3, {4, 6},
                                    {2, 2}, {1, 2});
  p.fedtrans = base_config(s, seed);
  p.fedtrans.doc_delta += 1;  // paper uses the largest δ for Speech
  p.fleet = base_fleet(p.dataset.num_clients, spec_macs(p.initial_model),
                       seed * 7 + 9);
  return p;
}

ExperimentPreset openimage_like(Scale s, std::uint64_t seed) {
  ExperimentPreset p;
  p.name = "openimage-like";
  p.dataset.name = p.name;
  p.dataset.num_classes = pick(s, 16, 30, 60);
  p.dataset.channels = 3;
  p.dataset.hw = 12;
  p.dataset.num_clients = pick(s, 40, 96, 240);
  p.dataset.dirichlet_h = 0.3;
  p.dataset.mean_train_samples = 26;
  p.dataset.eval_samples = 10;
  p.dataset.seed = seed * 101 + 53;
  p.initial_model = ModelSpec::conv(3, 12, p.dataset.num_classes, 4, {6, 8},
                                    {1, 2}, {1, 2});
  p.fedtrans = base_config(s, seed);
  p.fedtrans.clients_per_round = pick(s, 6, 12, 25);
  p.fleet = base_fleet(p.dataset.num_clients, spec_macs(p.initial_model),
                       seed * 7 + 13);
  return p;
}

std::vector<ExperimentPreset> all_presets(Scale s, std::uint64_t seed) {
  return {cifar_like(s, seed), femnist_like(s, seed), speech_like(s, seed),
          openimage_like(s, seed)};
}

}  // namespace fedtrans
