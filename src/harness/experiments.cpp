#include "harness/experiments.hpp"

#include "baselines/fedrolex.hpp"
#include "baselines/fluid.hpp"
#include "baselines/hetero_fl.hpp"
#include "baselines/split_mix.hpp"
#include "common/stats.hpp"
#include "fl/runner.hpp"
#include "nn/loss.hpp"

namespace fedtrans {

namespace {
BaselineConfig to_baseline_cfg(const FedTransConfig& ft, int eval_every) {
  // The shared runtime block (rounds, clients, local, eval, seed) is one
  // definition since the SessionConfig refactor — slice it instead of
  // copying field by field.
  BaselineConfig cfg;
  static_cast<SessionRuntime&>(cfg) = ft;
  cfg.eval_every = eval_every;
  return cfg;
}
}  // namespace

MethodResult run_fedtrans(const ExperimentPreset& p, int eval_every) {
  return run_fedtrans_cfg(p, p.fedtrans, eval_every);
}

MethodResult run_fedtrans_cfg(const ExperimentPreset& p,
                              const FedTransConfig& cfg_in, int eval_every) {
  FedTransConfig cfg = cfg_in;
  cfg.eval_every = eval_every;
  auto data = FederatedDataset::generate(p.dataset);
  auto fleet = sample_fleet(p.fleet);
  FedTransTrainer trainer(p.initial_model, data, fleet, cfg);
  trainer.run();
  auto ev = trainer.evaluate_final();

  MethodResult res;
  res.method = "FedTrans";
  res.report.client_accuracy = ev.client_accuracy;
  res.report.mean_accuracy = ev.mean_accuracy;
  res.report.accuracy_iqr = ev.accuracy_iqr;
  res.report.costs = trainer.costs();
  res.report.history = trainer.history();
  res.num_models = trainer.num_models();
  Model& largest = trainer.model(trainer.num_models() - 1);
  res.largest_spec = largest.spec();
  res.largest_macs = static_cast<double>(largest.macs());
  return res;
}

MethodResult run_heterofl(const ExperimentPreset& p, const ModelSpec& largest,
                          int eval_every) {
  auto data = FederatedDataset::generate(p.dataset);
  auto fleet = sample_fleet(p.fleet);
  HeteroFLRunner runner(largest, data, fleet,
                        to_baseline_cfg(p.fedtrans, eval_every));
  runner.run();
  MethodResult res;
  res.method = "HeteroFL";
  res.report = runner.report();
  res.largest_spec = largest;
  res.largest_macs = static_cast<double>(runner.global().macs());
  return res;
}

MethodResult run_splitmix(const ExperimentPreset& p, const ModelSpec& largest,
                          int eval_every) {
  auto data = FederatedDataset::generate(p.dataset);
  auto fleet = sample_fleet(p.fleet);
  SplitMixRunner runner(largest, data, fleet,
                        to_baseline_cfg(p.fedtrans, eval_every));
  runner.run();
  MethodResult res;
  res.method = "SplitMix";
  res.report = runner.report();
  res.num_models = runner.num_bases();
  res.largest_spec = largest;
  return res;
}

MethodResult run_fedrolex(const ExperimentPreset& p, const ModelSpec& largest,
                          int eval_every) {
  auto data = FederatedDataset::generate(p.dataset);
  auto fleet = sample_fleet(p.fleet);
  FedRolexRunner runner(largest, data, fleet,
                        to_baseline_cfg(p.fedtrans, eval_every));
  runner.run();
  MethodResult res;
  res.method = "FedRolex";
  res.report = runner.report();
  res.num_models = runner.num_levels();
  res.largest_spec = largest;
  res.largest_macs = static_cast<double>(runner.global().macs());
  return res;
}

MethodResult run_fluid(const ExperimentPreset& p, const ModelSpec& largest,
                       int eval_every) {
  auto data = FederatedDataset::generate(p.dataset);
  auto fleet = sample_fleet(p.fleet);
  FluidRunner runner(largest, data, fleet,
                     to_baseline_cfg(p.fedtrans, eval_every));
  runner.run();
  MethodResult res;
  res.method = "FLuID";
  res.report = runner.report();
  res.largest_spec = largest;
  res.largest_macs = static_cast<double>(runner.global().macs());
  return res;
}

MethodResult run_single_model(const ExperimentPreset& p, const ModelSpec& spec,
                              ServerOptKind opt, double prox_mu,
                              int eval_every) {
  auto data = FederatedDataset::generate(p.dataset);
  auto fleet = sample_fleet(p.fleet);
  FlRunConfig cfg;
  cfg.rounds = p.fedtrans.rounds;
  cfg.clients_per_round = p.fedtrans.clients_per_round;
  cfg.local = p.fedtrans.local;
  cfg.local.sgd.prox_mu = prox_mu;
  cfg.server_opt = opt;
  cfg.eval_every = eval_every;
  cfg.eval_clients = p.fedtrans.eval_clients;
  cfg.seed = p.fedtrans.seed;
  Rng rng(p.fedtrans.seed + 41);
  FedAvgRunner runner(Model(spec, rng), data, fleet, cfg);
  runner.run();

  MethodResult res;
  res.method = opt == ServerOptKind::FedYogi
                   ? "FedYogi"
                   : (prox_mu > 0.0 ? "FedProx" : "FedAvg");
  res.report.client_accuracy = runner.per_client_accuracy();
  res.report.mean_accuracy = mean(res.report.client_accuracy);
  res.report.accuracy_iqr = iqr(res.report.client_accuracy);
  res.report.costs = runner.costs();
  res.report.history = runner.history();
  res.largest_spec = spec;
  res.largest_macs = static_cast<double>(runner.model().macs());
  return res;
}

MethodResult run_centralized(const ExperimentPreset& p,
                             const ModelSpec& spec) {
  auto data = FederatedDataset::generate(p.dataset);
  auto pooled = data.pooled();
  Rng rng(p.fedtrans.seed + 73);
  Model model(spec, rng);

  // Same optimizer budget as one FL run: rounds × clients × local steps.
  const int total_steps =
      p.fedtrans.rounds * p.fedtrans.clients_per_round * p.fedtrans.local.steps;
  SoftmaxCrossEntropy loss;
  Sgd sgd(model.params(), p.fedtrans.local.sgd);
  Tensor x;
  std::vector<int> y;
  MethodResult res;
  res.method = "Centralized";
  for (int s = 0; s < total_steps; ++s) {
    sample_batch(pooled, p.fedtrans.local.batch, rng, x, y);
    Tensor logits = model.forward(x, true);
    loss.forward(logits, y);
    model.backward(loss.backward());
    sgd.step();
    res.report.costs.add_training_macs(3.0 *
                                       static_cast<double>(model.macs()) *
                                       p.fedtrans.local.batch);
  }
  for (int c = 0; c < data.num_clients(); ++c)
    res.report.client_accuracy.push_back(
        evaluate_accuracy(model, data.client(c)));
  res.report.mean_accuracy = mean(res.report.client_accuracy);
  res.report.accuracy_iqr = iqr(res.report.client_accuracy);
  res.largest_spec = spec;
  res.largest_macs = static_cast<double>(model.macs());
  return res;
}

}  // namespace fedtrans
