#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "net/transport.hpp"

namespace fedtrans {

/// Byzantine client behavior, applied identically on every training path —
/// the in-process engine, ClientAgent workers on the fabric, and the async
/// fabric — so adversarial runs replay bit-identically whichever path
/// executes them (see docs/robustness.md for the threat model).
///
/// Whether a client attacks is the pure (seed, round, client) draw
/// `byzantine_client` (net/transport.hpp); *how* it attacks is
/// FaultConfig::byzantine_mode:
///  * SignFlip / ScaledUpdate corrupt the trained delta after honest
///    training (−Δ, λ·Δ);
///  * LabelFlip trains honestly on label-flipped local data (y → C−1−y);
///  * UtilityInflate uploads the honest update but reports a zero training
///    loss, gaming loss-driven coordinators (FedTrans utility learning).
///
/// In mixed-precision sessions the corrupted delta is re-snapped onto the
/// session's storage grid, so fabric serialization round-trips it exactly
/// and in-process/fabric parity is preserved.
LocalTrainResult byzantine_local_train(Model& model, const ClientData& data,
                                       int num_classes,
                                       const LocalTrainConfig& cfg, Rng& rng,
                                       const FaultConfig& faults,
                                       std::uint32_t round,
                                       std::int32_t client);

}  // namespace fedtrans
