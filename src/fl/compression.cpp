#include "fl/compression.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "obs/log.hpp"

namespace fedtrans {

TopKCompression::TopKCompression(double ratio) : ratio_(ratio) {
  FT_CHECK_MSG(ratio > 0.0 && ratio <= 1.0, "top-k ratio must be in (0, 1]");
}

void TopKCompression::compress(WeightSet& delta) {
  const std::int64_t total = ws_numel(delta);
  if (total == 0) return;
  const auto k = static_cast<std::int64_t>(
      std::max<double>(1.0, std::floor(ratio_ * static_cast<double>(total))));
  if (k >= total) return;

  // Threshold = k-th largest |value| across the whole set.
  std::vector<float> mags;
  mags.reserve(static_cast<std::size_t>(total));
  for (const Tensor& t : delta)
    for (std::int64_t i = 0; i < t.numel(); ++i)
      mags.push_back(std::fabs(t[i]));
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   mags.end(), std::greater<float>());
  const float thresh = mags[static_cast<std::size_t>(k - 1)];

  // Keep everything strictly above the threshold plus enough
  // threshold-equal entries (first-in-scan-order) to reach exactly k.
  std::int64_t strictly_greater = 0;
  for (const Tensor& t : delta)
    for (std::int64_t i = 0; i < t.numel(); ++i)
      if (std::fabs(t[i]) > thresh) ++strictly_greater;
  std::int64_t tie_budget = k - strictly_greater;

  for (Tensor& t : delta)
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      const float m = std::fabs(t[i]);
      if (m > thresh) continue;
      if (m == thresh && tie_budget > 0) {
        --tie_budget;
        continue;
      }
      t[i] = 0.0f;
    }
}

double TopKCompression::compressed_bytes(const WeightSet& delta) const {
  const std::int64_t dense_params = ws_numel(delta);
  const auto k = static_cast<std::int64_t>(std::max<double>(
      1.0, std::floor(ratio_ * static_cast<double>(dense_params))));
  return 8.0 * static_cast<double>(std::min(k, dense_params));
}

UniformQuantization::UniformQuantization(int bits) : bits_(bits) {
  FT_CHECK_MSG(bits >= 1 && bits <= 16, "quantization bits must be in [1,16]");
}

void UniformQuantization::compress(WeightSet& delta) {
  const float levels =
      static_cast<float>((1 << (bits_ - 1)) - 1);  // symmetric range
  for (Tensor& t : delta) {
    float mx = 0.0f;
    for (std::int64_t i = 0; i < t.numel(); ++i)
      mx = std::max(mx, std::fabs(t[i]));
    if (mx == 0.0f) continue;
    const float scale = levels > 0.0f ? mx / levels : mx;
    for (std::int64_t i = 0; i < t.numel(); ++i)
      t[i] = std::round(t[i] / scale) * scale;
  }
}

double UniformQuantization::compressed_bytes(const WeightSet& delta) const {
  return static_cast<double>(ws_numel(delta)) * bits_ / 8.0 +
         4.0 * static_cast<double>(delta.size());
}

std::unique_ptr<DeltaCompressor> make_compressor(CompressionKind kind,
                                                 double topk_ratio) {
  switch (kind) {
    case CompressionKind::None: return std::make_unique<NoCompression>();
    case CompressionKind::TopK:
      return std::make_unique<TopKCompression>(topk_ratio);
    case CompressionKind::Quant8:
      return std::make_unique<UniformQuantization>(8);
    case CompressionKind::Quant4:
      return std::make_unique<UniformQuantization>(4);
  }
  return std::make_unique<NoCompression>();
}

const char* compression_name(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::None: return "none";
    case CompressionKind::TopK: return "top-k";
    case CompressionKind::Quant8: return "quant-8bit";
    case CompressionKind::Quant4: return "quant-4bit";
  }
  return "none";
}

namespace {

/// Per-tensor shape equality — a tensor-count match alone is not enough:
/// FedTrans transforms can hand a returning client a same-depth model with
/// different layer widths, and element-wise folds across that would be
/// garbage (or an out-of-bounds walk).
bool ws_same_shapes(const WeightSet& a, const WeightSet& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].shape() != b[i].shape()) return false;
  return true;
}

}  // namespace

void ErrorFeedback::add_residual(int client, WeightSet& delta) {
  auto it = residuals_.find(client);
  if (it == residuals_.end()) return;
  if (!ws_same_shapes(it->second, delta)) {
    FT_LOG_WARN("error-feedback residual for client "
                << client << " no longer matches its delta shapes (model "
                << "spec changed between participations) — resetting the "
                << "residual instead of folding garbage");
    residuals_.erase(it);
    return;
  }
  ws_add(delta, it->second);
}

void ErrorFeedback::store_residual(int client, const WeightSet& pre,
                                   const WeightSet& post) {
  if (!ws_same_shapes(pre, post)) {
    FT_LOG_WARN("error-feedback store for client "
                << client << " got mismatched pre/post shapes — resetting "
                << "the residual instead of storing a garbage difference");
    residuals_.erase(client);
    return;
  }
  WeightSet residual = pre;
  ws_sub(residual, post);
  residuals_[client] = std::move(residual);
}

bool ErrorFeedback::has_residual(int client) const {
  return residuals_.count(client) > 0;
}

}  // namespace fedtrans
