#pragma once

#include <cstdint>

#include "fl/local_train.hpp"
#include "fl/selection.hpp"
#include "net/transport.hpp"

namespace fedtrans {

/// The shared runtime block every federated session carries — the one
/// definition of the fields that were historically copy-pasted across
/// FlRunConfig / FedTransConfig / BaselineConfig / AsyncRunConfig. The
/// legacy config structs now inherit from this block, so a field added here
/// is automatically available (and forwarded) everywhere.
struct SessionRuntime {
  /// Synchronous rounds to run (async sessions count aggregations instead).
  int rounds = 50;
  int clients_per_round = 10;
  LocalTrainConfig local{};
  /// Evaluate mean client accuracy every k rounds (0 = only on demand).
  int eval_every = 0;
  /// Client subsample size for periodic evaluation (0 = all clients).
  int eval_clients = 32;
  std::uint64_t seed = 1;
};

/// How the engine schedules client work: classic synchronous rounds, or
/// buffered-asynchronous (FedBuff-style) aggregation.
enum class SessionMode : std::uint8_t { Sync, Async };

/// On-wire encoding of reduced PartialUp group sums (wire v6 (a)). The
/// values mirror the wire's kPartialQuant* bytes: None ships dense fp32,
/// Int8 one fp32 scale per group plus 1 byte/param (~4× smaller uplink
/// hops), Fp16 dtype-tagged half floats (~2× smaller, ≲1e-3 relative error
/// on the final weights). Aggregators always dequantize to fp32 before
/// folding, so only the per-hop encoding is lossy — never the accumulation
/// — and rounds stay bitwise deterministic per tree shape and thread count.
enum class PartialQuant : std::uint8_t { None = 0, Int8 = 1, Fp16 = 2 };

/// Shape and reliability knobs of the federation fabric (only consulted
/// when `use_fabric` is set).
///
/// `levels`/`shards`/`branching` describe the aggregation tree: `levels ==
/// 1` is the flat FederationServer (every client talks to the root);
/// `levels >= 2` puts `levels - 1` aggregator tiers between the root and
/// the clients, with `shards` leaf aggregators on the bottom tier and
/// interior tiers shrinking by the `branching` factor going up. The root
/// ships one bundled `ShardDown` frame per child, interiors split bundles
/// among theirs, leaves fan out to their client partition (task slot i
/// lands on leaf i % shards), collect the partition's `UpdateUp`s in
/// parallel on the shared ThreadPool, and forward one bundled `PartialUp`
/// upstream, merged tier by tier back to the root. By default bundles
/// carry the per-task updates verbatim (the numeric reduction stays with
/// the engine, in fixed task order), so fault-free tree rounds of any
/// depth are bitwise identical to flat ones.
///
/// `partial_aggregation` is the opt-in associativity-tolerant mode: leaf
/// and interior aggregators numerically reduce the updates they collect —
/// per reduce group, a running `Σ num_samples·Δ` plus the weight total —
/// and forward one pre-summed `PartialUp` instead of the verbatim bundle,
/// collapsing root fan-in traffic from O(clients) to O(branching).
/// Per-task metrics (loss, samples, MACs) still ride verbatim, so billing,
/// selector feedback and FedTrans's utility learning are unchanged; only
/// the float summation order of the weight reduction moves into the tree.
/// Requires a strategy whose reduction is a weighted linear sum
/// (`Strategy::supports_partial_aggregation`): FedAvg (uncompressed),
/// FedTrans and HeteroFL qualify. Results match flat rounds to numeric
/// tolerance and stay bitwise deterministic per tree shape.
///
/// `ack_timeout_s`/`max_retries` are the retry policy: a sender whose frame
/// was lost resends it `ack_timeout_s` simulated seconds later, up to
/// `max_retries` times; resent frames are flagged on the wire, counted in
/// FabricStats, and billed through CostMeter. In async sessions the server
/// additionally waits one ack-timeout per allowed uplink attempt — a
/// dispatched client whose update has not arrived
/// `(max_retries + 1) × ack_timeout_s` after dispatch is counted lost and
/// replaced. Leaves are per-shard fault domains: a leaf that dies for a
/// round (FaultConfig::leaf_death_prob) has its client partition reassigned
/// to an alive sibling under the same parent — the redirected bundle is
/// billed and the failover recorded in FabricStats/RoundRecord.
struct FabricTopology {
  /// Aggregation tiers above the clients: 1 = flat root, 2 = root +
  /// leaves, 3+ = interior aggregator tiers between root and leaves.
  int levels = 1;
  /// Leaf aggregator count when levels >= 2 (task slot i lands on shard
  /// i % shards).
  int shards = 1;
  /// Interior fan-out for levels >= 3: each interior node owns up to
  /// `branching` children on the tier below (0 = auto: ceil square-ish
  /// root so the tiers shrink evenly).
  int branching = 0;
  /// Numeric leaf/interior reduction (see above). Ignored when levels < 2.
  bool partial_aggregation = false;
  /// Quantize reduced PartialUp group sums on the wire (requires
  /// partial_aggregation — the engine fails loudly otherwise).
  PartialQuant quantize_partials = PartialQuant::None;
  /// Content-addressed broadcast caching at the tree's aggregators: a
  /// ShardDown body the receiver already holds (same model spec, same
  /// bytes as last shipped) travels as a 64-bit hash instead of being
  /// re-shipped from the root. Cache-hit rounds are bitwise identical to
  /// cold ones; backbone savings land in FabricStats::cache_saved_bytes.
  bool broadcast_cache = false;
  /// Round-over-round delta ModelDowns: a client whose previous model the
  /// server still remembers receives a per-tensor {same, additive delta,
  /// literal} diff instead of full weights whenever that is smaller, and
  /// reconstructs bitwise-identical weights. Savings land in
  /// FabricStats::delta_saved_bytes and are credited back on CostMeter.
  bool delta_downlink = false;
  /// Simulated seconds between resend attempts / until async give-up.
  double ack_timeout_s = 60.0;
  /// Bounded resend budget for lost uplink/bundle frames (0 = no retries,
  /// the historical behavior).
  int max_retries = 0;
};

/// Which robust reduction a RobustStrategy (src/baselines/robust.hpp)
/// applies to the round's client deltas. None leaves a constructor-supplied
/// RobustConfig in force (and means "not configured" on SessionConfig).
enum class RobustAggregator : std::uint8_t {
  None = 0,
  /// Coordinate-wise median of the client deltas ("robust-median").
  CoordinateMedian,
  /// Coordinate-wise trimmed mean: drop the ⌈trim_fraction·n⌉ largest and
  /// smallest values per coordinate, average the rest ("trimmed-mean").
  TrimmedMean,
  /// Krum-style scoring plus norm clipping: drop the ⌈trim_fraction·n⌉
  /// highest-scoring (most outlying) updates, clip the survivors to
  /// clip_multiplier × their median L2 norm, average ("norm-clip").
  NormClip,
};

/// Byzantine-robust aggregation block (consumed by RobustStrategy; see
/// docs/robustness.md). Robust reductions are one-client-one-vote: they
/// deliberately ignore self-reported sample counts, which are themselves an
/// attack surface under the threat model.
struct RobustConfig {
  RobustAggregator aggregator = RobustAggregator::None;
  /// Per-side trim fraction (TrimmedMean) / outlier-discard fraction
  /// (NormClip's score cut). Clamped so at least one update survives.
  double trim_fraction = 0.2;
  /// NormClip survivors are clipped to this multiple of their median norm.
  double clip_multiplier = 1.0;
};

/// Asynchronous-scheduling block (FedBuff; Nguyen et al., AISTATS'22).
struct AsyncBlock {
  /// Number of client trainings kept in flight at all times.
  int concurrency = 10;
  /// Server aggregates after this many client updates arrive (FedBuff's K).
  int buffer_size = 10;
  /// Total number of server aggregations to perform.
  int aggregations = 50;
  /// Staleness discount exponent: update weight = (1 + τ)^(−p).
  double staleness_exponent = 0.5;
};

/// Engine-level session configuration: the shared runtime block plus the
/// scheduling / transport knobs that apply to *every* strategy. Built
/// fluently:
///
///   auto cfg = SessionConfig{}
///                  .with_rounds(30)
///                  .with_clients_per_round(8)
///                  .with_seed(7)
///                  .with_fabric();   // wire-protocol message passing
struct SessionConfig : SessionRuntime {
  SessionMode mode = SessionMode::Sync;
  /// Participant selection policy (Uniform reproduces the paper protocol).
  SelectorKind selector = SelectorKind::Uniform;
  /// Execute rounds over the federation fabric — wire-protocol messages on
  /// a simulated transport, collected by a multithreaded FederationServer —
  /// instead of direct in-process calls. With no fault injection the run is
  /// bitwise identical to the in-process path, for every strategy.
  bool use_fabric = false;
  /// Transport fault injection; the wire faults are only consulted when
  /// use_fabric is set, but the Byzantine client model (byzantine_prob /
  /// byzantine_mode) describes client behavior and applies to in-process
  /// sessions too — adversarial runs are path-independent.
  FaultConfig fabric_faults{};
  /// Fabric shape (flat vs sharded tree) + retry policy; only consulted
  /// when use_fabric is set.
  FabricTopology topology{};
  /// Which Transport implementation carries fabric frames. Fault-free
  /// rounds are bitwise identical across kinds; Socket pushes every frame
  /// through real non-blocking sockets with incremental reassembly.
  TransportKind transport = TransportKind::Sim;
  SocketOptions socket{};
  AsyncBlock async{};
  /// Byzantine-robust aggregation (RobustStrategy picks this up in attach
  /// when an aggregator is configured; other strategies ignore it).
  RobustConfig robust{};

  // Fluent builder.
  SessionConfig& with_rounds(int r) { rounds = r; return *this; }
  SessionConfig& with_clients_per_round(int k) {
    clients_per_round = k;
    return *this;
  }
  SessionConfig& with_local(const LocalTrainConfig& l) {
    local = l;
    return *this;
  }
  SessionConfig& with_eval(int every, int clients = 32) {
    eval_every = every;
    eval_clients = clients;
    return *this;
  }
  SessionConfig& with_seed(std::uint64_t s) { seed = s; return *this; }
  SessionConfig& with_selector(SelectorKind k) { selector = k; return *this; }
  SessionConfig& with_fabric(const FaultConfig& f = {}) {
    use_fabric = true;
    fabric_faults = f;
    return *this;
  }
  /// Run the fabric over real loopback sockets (implies with_fabric()).
  SessionConfig& with_socket_transport(const SocketOptions& s = {}) {
    use_fabric = true;
    transport = TransportKind::Socket;
    socket = s;
    return *this;
  }
  /// Sharded fabric: a 2-level aggregation tree with `k` leaf shards
  /// (implies with_fabric()).
  SessionConfig& with_shards(int k, int levels = 2) {
    use_fabric = true;
    topology.shards = k;
    topology.levels = levels;
    return *this;
  }
  /// Deep aggregation tree: `levels` tiers above the clients, `shards`
  /// leaves, interior fan-out `branching` (implies with_fabric()).
  SessionConfig& with_tree(int levels, int shards, int branching = 0) {
    use_fabric = true;
    topology.levels = levels;
    topology.shards = shards;
    topology.branching = branching;
    return *this;
  }
  /// Associativity-tolerant numeric reduction at the tree's aggregators
  /// (see FabricTopology::partial_aggregation).
  SessionConfig& with_partial_aggregation(bool on = true) {
    topology.partial_aggregation = on;
    return *this;
  }
  /// Quantize reduced PartialUp hops (see FabricTopology::quantize_partials;
  /// requires with_partial_aggregation(true), enforced loudly at engine
  /// construction).
  SessionConfig& with_quantized_partials(PartialQuant q = PartialQuant::Int8) {
    topology.quantize_partials = q;
    return *this;
  }
  /// Content-addressed ShardDown body caching at aggregators (see
  /// FabricTopology::broadcast_cache).
  SessionConfig& with_broadcast_cache(bool on = true) {
    topology.broadcast_cache = on;
    return *this;
  }
  /// Round-over-round delta ModelDowns (see FabricTopology::delta_downlink).
  SessionConfig& with_delta_downlink(bool on = true) {
    topology.delta_downlink = on;
    return *this;
  }
  /// Fabric retry policy: bounded resend of lost frames, `ack_timeout_s`
  /// simulated seconds apart.
  SessionConfig& with_retries(int max_retries, double ack_timeout_s = 60.0) {
    topology.max_retries = max_retries;
    topology.ack_timeout_s = ack_timeout_s;
    return *this;
  }
  SessionConfig& with_async(const AsyncBlock& a) {
    mode = SessionMode::Async;
    async = a;
    return *this;
  }
  /// Mixed-precision training: clients train with `d` (F16/BF16) weight and
  /// activation storage, fp32 accumulation, and ship half-width ModelDown /
  /// UpdateUp payloads (~2× fewer bytes per round on CostMeter/FabricStats).
  /// `loss_scale` 0 picks the dtype default (1024 for F16, 1 for BF16).
  SessionConfig& with_precision(Dtype d, double loss_scale = 0.0) {
    local.precision.dtype = d;
    local.precision.loss_scale = loss_scale;
    return *this;
  }
  /// Byzantine-robust aggregation (RobustStrategy): pick the reducer and
  /// its knobs. Robust reductions are non-linear, so they compose with
  /// aggregation trees only in verbatim-bundle mode — combining this with
  /// with_partial_aggregation(true) fails loudly at engine construction.
  SessionConfig& with_robust_aggregation(RobustAggregator kind,
                                         double trim_fraction = 0.2,
                                         double clip_multiplier = 1.0) {
    robust.aggregator = kind;
    robust.trim_fraction = trim_fraction;
    robust.clip_multiplier = clip_multiplier;
    return *this;
  }

  /// Lift a legacy config's shared block into an engine session config.
  static SessionConfig from(const SessionRuntime& rt) {
    SessionConfig cfg;
    static_cast<SessionRuntime&>(cfg) = rt;
    return cfg;
  }
};

}  // namespace fedtrans
