#pragma once

#include <vector>

#include "common/serial.hpp"

namespace fedtrans {

/// Cost accounting matching the paper's Table 2 columns: training MACs,
/// network transfer volume, and peak server-side model storage.
class CostMeter {
 public:
  void add_training_macs(double macs) { total_macs_ += macs; }
  void add_transfer(double down_bytes, double up_bytes) {
    bytes_down_ += down_bytes;
    bytes_up_ += up_bytes;
  }
  /// Record the current server-resident model footprint; the peak is kept.
  void note_storage(double bytes) {
    if (bytes > storage_peak_) storage_peak_ = bytes;
  }
  void add_client_round_time(double seconds) {
    client_times_s_.push_back(seconds);
  }

  double total_macs() const { return total_macs_; }
  double network_bytes() const { return bytes_down_ + bytes_up_; }
  double network_mb() const { return network_bytes() / (1024.0 * 1024.0); }
  double storage_bytes() const { return storage_peak_; }
  double storage_mb() const { return storage_peak_ / (1024.0 * 1024.0); }
  const std::vector<double>& client_times_s() const { return client_times_s_; }

  /// Checkpointing: persist/restore all accumulated counters.
  void save(std::ostream& os) const {
    write_pod(os, total_macs_);
    write_pod(os, bytes_down_);
    write_pod(os, bytes_up_);
    write_pod(os, storage_peak_);
    write_vec(os, client_times_s_);
  }
  void load(std::istream& is) {
    total_macs_ = read_pod<double>(is);
    bytes_down_ = read_pod<double>(is);
    bytes_up_ = read_pod<double>(is);
    storage_peak_ = read_pod<double>(is);
    client_times_s_ = read_vec<double>(is);
  }

 private:
  double total_macs_ = 0.0;
  double bytes_down_ = 0.0;
  double bytes_up_ = 0.0;
  double storage_peak_ = 0.0;
  std::vector<double> client_times_s_;
};

/// Per-round log entry for cost-to-accuracy curves (Fig. 7).
struct RoundRecord {
  int round = 0;
  double avg_loss = 0.0;
  double cum_macs = 0.0;
  /// Mean client accuracy at this round; -1 when not evaluated.
  double accuracy = -1.0;
  /// Simulated wall-clock of the synchronous round (slowest participant).
  double round_time_s = 0.0;
  /// Clients whose updates were aggregated this round.
  int participants = 0;
  /// Updates selected but never aggregated: deadline-dropped stragglers
  /// plus (on the federation fabric) message loss and client dropouts.
  int lost_updates = 0;
  /// Leaf-aggregator fault domains that failed over this round: dead
  /// leaves whose client partition was redirected to an alive sibling
  /// (tree fabrics only; see FabricTopology).
  int leaf_failovers = 0;
};

}  // namespace fedtrans
