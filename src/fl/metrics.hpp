#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/serial.hpp"
#include "obs/metrics.hpp"

namespace fedtrans {

/// Cost accounting matching the paper's Table 2 columns: training MACs,
/// network transfer volume, and peak server-side model storage.
class CostMeter {
 public:
  /// Raw per-client round-time samples kept verbatim for percentile /
  /// distribution views; past the cap a long async run would otherwise
  /// grow this vector one entry per dispatch forever, so the tail is
  /// folded into the running stats and the registry's
  /// `fedtrans_client_train_time_seconds` histogram instead.
  static constexpr std::size_t kMaxClientTimeSamples = 4096;

  void add_training_macs(double macs) { total_macs_ += macs; }
  void add_transfer(double down_bytes, double up_bytes) {
    bytes_down_ += down_bytes;
    bytes_up_ += up_bytes;
  }
  /// Record the current server-resident model footprint; the peak is kept.
  void note_storage(double bytes) {
    if (bytes > storage_peak_) storage_peak_ = bytes;
  }
  void add_client_round_time(double seconds) {
    ++time_count_;
    time_sum_ += seconds;
    time_sumsq_ += seconds * seconds;
    if (client_times_s_.size() < kMaxClientTimeSamples)
      client_times_s_.push_back(seconds);
    client_time_histogram().observe(seconds);
  }

  double total_macs() const { return total_macs_; }
  double bytes_down() const { return bytes_down_; }
  double bytes_up() const { return bytes_up_; }
  double network_bytes() const { return bytes_down_ + bytes_up_; }
  double network_mb() const { return network_bytes() / (1024.0 * 1024.0); }
  double storage_bytes() const { return storage_peak_; }
  double storage_mb() const { return storage_peak_ / (1024.0 * 1024.0); }
  /// Retained raw samples (the first kMaxClientTimeSamples of the run);
  /// use the exact accessors below for whole-run statistics.
  const std::vector<double>& client_times_s() const { return client_times_s_; }
  /// Exact whole-run per-client round-time statistics (running count /
  /// sum / sum-of-squares — unaffected by the raw-sample cap).
  std::uint64_t client_time_count() const { return time_count_; }
  double client_time_mean() const {
    return time_count_ != 0 ? time_sum_ / static_cast<double>(time_count_)
                            : 0.0;
  }
  double client_time_std() const {  // population std, matching stddev()
    if (time_count_ < 2) return 0.0;
    const double m = client_time_mean();
    const double var = time_sumsq_ / static_cast<double>(time_count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  /// Checkpointing: persist/restore all accumulated counters.
  void save(std::ostream& os) const {
    write_pod(os, total_macs_);
    write_pod(os, bytes_down_);
    write_pod(os, bytes_up_);
    write_pod(os, storage_peak_);
    write_pod(os, time_count_);
    write_pod(os, time_sum_);
    write_pod(os, time_sumsq_);
    write_vec(os, client_times_s_);
  }
  void load(std::istream& is) {
    total_macs_ = read_pod<double>(is);
    bytes_down_ = read_pod<double>(is);
    bytes_up_ = read_pod<double>(is);
    storage_peak_ = read_pod<double>(is);
    time_count_ = read_pod<std::uint64_t>(is);
    time_sum_ = read_pod<double>(is);
    time_sumsq_ = read_pod<double>(is);
    client_times_s_ = read_vec<double>(is);
  }

 private:
  static Histogram& client_time_histogram() {
    static Histogram h("fedtrans_client_train_time_seconds");
    return h;
  }

  double total_macs_ = 0.0;
  double bytes_down_ = 0.0;
  double bytes_up_ = 0.0;
  double storage_peak_ = 0.0;
  std::uint64_t time_count_ = 0;
  double time_sum_ = 0.0;
  double time_sumsq_ = 0.0;
  std::vector<double> client_times_s_;
};

/// Per-round log entry for cost-to-accuracy curves (Fig. 7).
struct RoundRecord {
  int round = 0;
  double avg_loss = 0.0;
  double cum_macs = 0.0;
  /// Mean client accuracy at this round; -1 when not evaluated.
  double accuracy = -1.0;
  /// Simulated wall-clock of the synchronous round (slowest participant).
  double round_time_s = 0.0;
  /// Clients whose updates were aggregated this round.
  int participants = 0;
  /// Updates selected but never aggregated: deadline-dropped stragglers
  /// plus (on the federation fabric) message loss and client dropouts.
  int lost_updates = 0;
  /// Leaf-aggregator fault domains that failed over this round: dead
  /// leaves whose client partition was redirected to an alive sibling
  /// (tree fabrics only; see FabricTopology).
  int leaf_failovers = 0;
  /// Byzantine participants whose (corrupted) updates reached aggregation
  /// this round (FaultConfig::byzantine_prob; docs/robustness.md). The
  /// engine re-derives the pure (seed, round, client) attack draw, so this
  /// is exact, not inferred from the updates.
  int byzantine_updates = 0;
  /// Damage proxy: summed L2 norm of the absorbed Byzantine deltas (0 in
  /// numeric partial-aggregation rounds, where deltas are pre-summed
  /// in-tree and per-update norms no longer exist at the root).
  double byzantine_l2 = 0.0;
  /// Attacker identity: the client ids behind byzantine_updates.
  std::vector<std::int32_t> byzantine_clients;
};

}  // namespace fedtrans
