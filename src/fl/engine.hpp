#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "fl/metrics.hpp"
#include "fl/session.hpp"
#include "model/model.hpp"
#include "net/server.hpp"
#include "trace/device.hpp"

namespace fedtrans {

class FederationEngine;

/// One unit of client work inside a round. Most strategies schedule one
/// task per selected client; SplitMix schedules one per (client, base).
/// `tag` is strategy-private (assigned model index, base index, level, …).
struct ClientTask {
  int client = 0;
  int tag = 0;
};

/// Everything a Strategy hook may touch while a round executes. Handed to
/// every hook so strategies stay free of engine back-pointers.
struct RoundContext {
  const ClientDataProvider& data;
  const std::vector<DeviceProfile>& fleet;
  const SessionConfig& session;
  CostMeter& costs;
  ClientSelector& selector;
  Rng& rng;
  int round = 0;
  /// Filled by the engine as updates are absorbed / lost.
  int trained = 0;
  int lost = 0;
};

/// Shared cost-billing vocabulary of the strategies. One absorbed update
/// bills its training compute, a dense down+up transfer of the model it
/// trained, and the device's simulated round time (tracking the slowest
/// participant); a lost update bills the wasted compute (unless the
/// downlink itself was lost) and the spent downlink.
/// `up_bytes` overrides the uplink transfer (compressed updates); negative
/// means a dense uplink of `model_bytes`.
void bill_trained_update(RoundContext& ctx, int client, double model_bytes,
                         double model_macs, const LocalTrainResult& res,
                         double& slowest, double up_bytes = -1.0);
void bill_lost_update(RoundContext& ctx, ClientOutcome outcome,
                      double model_bytes, double model_macs);

/// Observer of engine progress — the structured replacement for the ad-hoc
/// eval_every / history plumbing the legacy runners grew. Observers are
/// non-owning and invoked in registration order after each round (or, in
/// async mode, after each server aggregation).
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;
  virtual void on_round_start(int /*round*/) {}
  virtual void on_round_end(const RoundRecord& /*rec*/) {}
};

/// The pluggable algorithm seat of the FederationEngine. FedTrans's core
/// observation — multi-model transformation, single-model FL, and the
/// HeteroFL/SplitMix/FLuID/FedRolex baselines are all one
/// select → train → aggregate protocol with different per-model policies —
/// is expressed here: the engine owns the canonical loop, the strategy owns
/// the per-model policy. Hooks run in a fixed order per round:
///
///   plan_round         selection (+ strategy-specific trimming)
///   prepare_task ×n    per-task state (FedTrans model assignment); the
///                      engine forks the task's Rng right after each call,
///                      preserving legacy fork sequences bit-exactly
///   client_payload ×n  materialize the model each task trains
///   (engine trains concurrently, in-process or over the fabric)
///   absorb_update ×n   fixed task-order reduction (+ cost billing)
///   lost_update  ×k    billing for fabric casualties / dropped stragglers
///   finish_round       aggregate, optionally transform, fill the record
///   probe_accuracy     periodic eval probe (engine picks the client ids)
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;

  /// One-time binding, called from the engine constructor before any
  /// round: build server models (the legacy runner constructors consumed
  /// the coordinator Rng doing this — draws made here continue into round
  /// 1 bit-identically) and capture the data/fleet references the strategy
  /// needs outside of round hooks.
  virtual void attach(RoundContext& /*ctx*/, Rng& /*rng*/) {}

  /// Build this round's work list; may consume `rng` (selection draws).
  /// Default: one task per client chosen by the session's selector.
  virtual std::vector<ClientTask> plan_round(RoundContext& ctx, Rng& rng);

  /// Per-task pre-pass, in task order, immediately before the engine forks
  /// that task's Rng. Consume `rng` here (e.g. FedTrans model assignment)
  /// and the legacy draw order is preserved exactly.
  virtual void prepare_task(ClientTask& /*task*/, Rng& /*rng*/,
                            RoundContext& /*ctx*/) {}

  /// Materialize the model `task` trains — architecture and weights. Called
  /// concurrently from pool workers on the in-process path; must not mutate
  /// strategy state.
  virtual Model client_payload(const ClientTask& task) = 0;

  /// Non-null when every task of every round downloads this exact model
  /// (single-global-model strategies). Lets the engine broadcast one
  /// encoded weight blob over the fabric instead of per-task payloads, and
  /// is required for async scheduling.
  virtual Model* shared_model() { return nullptr; }

  /// Tasks reporting the same non-negative key within a round download
  /// byte-identical payloads (client_payload would return the same model).
  /// Lets the fabric path materialize and encode each distinct payload once
  /// per round — ladder strategies ship one submodel per capacity level, not
  /// per client. Default: every task's payload is assumed distinct.
  virtual int payload_key(const ClientTask& /*task*/) const { return -1; }

  /// A structurally representative model (fabric prototype).
  virtual const Model& reference_model() const = 0;

  /// Server-resident model bytes at session start (CostMeter storage note).
  virtual double initial_storage_bytes() const {
    return static_cast<double>(reference_model().param_bytes());
  }

  /// Fold one finished task into the strategy's accumulators, in task
  /// order. For shared-model strategies `trained` is always null — clients
  /// train transient copies; read the update from `res`. For heterogeneous
  /// strategies it is the task's payload model: its *structure* always
  /// matches what the client trained; its weights are post-training on the
  /// in-process path and pre-training on the fabric path (training happened
  /// remotely). Tasks in one payload_key group share the instance over the
  /// fabric, so treat it as read-only.
  virtual void absorb_update(const ClientTask& task, Model* trained,
                             LocalTrainResult& res, RoundContext& ctx) = 0;

  /// A task whose update never reached aggregation (fabric message loss,
  /// mid-round dropout). Default: no billing. The engine counts the loss.
  virtual void lost_update(const ClientTask& /*task*/,
                           ClientOutcome /*outcome*/, RoundContext& /*ctx*/) {}

  // --- numeric partial aggregation (associativity-tolerant tree mode) ----

  /// True when the per-task reduction this strategy applies in
  /// absorb_update is a weighted linear sum — `acc += num_samples · Δ`
  /// plus a weight total, per reduce group — which is the property that
  /// lets tree aggregators pre-sum updates numerically
  /// (FabricTopology::partial_aggregation). Opt-in: the default refuses,
  /// and the engine fails loudly when a numeric session is configured on a
  /// strategy that cannot honor it.
  virtual bool supports_partial_aggregation() const { return false; }

  /// Reduce-group key for the numeric reduction: tasks with equal keys
  /// must have shape-identical deltas and accumulate into the same
  /// strategy slot. Default: the task tag (FedTrans's model index,
  /// HeteroFL's capacity level; 0 for single-model strategies).
  virtual int reduce_key(const ClientTask& task) const { return task.tag; }

  /// Per-task bookkeeping of a numeric round, in task order: the metrics
  /// (loss, samples, MACs) arrived verbatim but the delta was consumed by
  /// the tree reduction — do everything absorb_update would except the
  /// weight accumulation (selector feedback, loss bookkeeping, billing).
  virtual void absorb_metrics(const ClientTask& task,
                              const LocalTrainResult& res, RoundContext& ctx);

  /// Fold one pre-summed reduce group into the strategy's accumulators:
  /// `sum` = Σ num_samples·Δ and `weight` = Σ num_samples over the group's
  /// `count` trained tasks. Called after the round's absorb_metrics
  /// passes, in ascending min-slot order; `task` is the group's smallest
  /// trained slot (its tag identifies the model family / capacity level)
  /// and `payload` its materialized payload model, as in absorb_update.
  virtual void absorb_reduced(const ClientTask& task, Model* payload,
                              WeightSet& sum, double weight, int count,
                              RoundContext& ctx);

  /// Apply the round's aggregate to the server model(s), run any model
  /// transformation, and fill the record's strategy-owned fields
  /// (avg_loss, round_time_s, lost_updates adjustments). The engine fills
  /// round / cum_macs / participants / accuracy.
  virtual void finish_round(RoundContext& ctx, RoundRecord& rec) = 0;

  /// Mean deployment accuracy over `ids` for the periodic probe.
  virtual double probe_accuracy(const std::vector<int>& ids,
                                RoundContext& ctx) = 0;

  // --- async scheduling mode (FedBuff) -----------------------------------

  /// Fold one completed async update, pre-weighted by the engine's
  /// staleness `discount`. Return the shipped server version's mean buffer
  /// loss when this update filled the buffer and a new version was applied;
  /// nullopt otherwise. Only strategies run in SessionMode::Async need this.
  virtual std::optional<double> absorb_async(int /*client*/,
                                             LocalTrainResult& /*res*/,
                                             double /*discount*/,
                                             RoundContext& /*ctx*/) {
    return std::nullopt;
  }
};

/// The one federation engine: owns the canonical round loop (select →
/// materialize per-client payloads → local train on the shared ThreadPool →
/// collect → aggregate → server-opt → eval/record) for every strategy, and
/// fronts both the in-process path and the wire-protocol FederationServer —
/// so any strategy runs over the fabric, with fault injection and
/// lost-update accounting, by flipping SessionConfig::use_fabric.
class FederationEngine {
 public:
  FederationEngine(std::unique_ptr<Strategy> strategy,
                   const ClientDataProvider& data,
                   std::vector<DeviceProfile> fleet, SessionConfig cfg);
  ~FederationEngine();
  // Not movable: strategies capture &fleet_/&data_ in attach(), so a moved
  // engine would leave them dangling. Shims hold engines by unique_ptr.
  FederationEngine(FederationEngine&&) = delete;
  FederationEngine& operator=(FederationEngine&&) = delete;

  /// Execute one synchronous round; returns the round's mean loss.
  double run_round();
  /// Execute the configured session: cfg.rounds synchronous rounds, or the
  /// async event loop until cfg.async.aggregations versions shipped.
  void run();

  // Observers. Raw pointers are borrowed (caller keeps them alive);
  // on_round registers an engine-owned callback observer.
  void add_observer(RoundObserver* obs) { observers_.push_back(obs); }
  void on_round(std::function<void(const RoundRecord&)> fn);

  Strategy& strategy() { return *strategy_; }
  const Strategy& strategy() const { return *strategy_; }
  template <typename T>
  T& strategy_as() {
    return static_cast<T&>(*strategy_);
  }

  const SessionConfig& config() const { return cfg_; }
  const ClientDataProvider& data() const { return data_; }
  const std::vector<DeviceProfile>& fleet() const { return fleet_; }
  const std::vector<RoundRecord>& history() const { return history_; }
  const CostMeter& costs() const { return costs_; }
  int rounds_done() const { return round_; }
  ClientSelector& selector() { return *selector_; }

  /// Replace the selector built from cfg.selector — e.g. the population
  /// layer's availability-aware selector (src/pop). Call before any round
  /// has run; the engine owns the replacement.
  void set_selector(std::unique_ptr<ClientSelector> selector);

  /// The federation fabric backing this session; null until the first
  /// use_fabric round executes (and always null without use_fabric).
  const FederationServer* fabric() const { return fabric_.get(); }

  // Async-mode state.
  double now_s() const { return now_s_; }
  int versions_done() const { return version_; }
  /// Mean staleness (server versions behind) across folded-in updates.
  double mean_staleness() const;

  // Checkpointing access: the engine's dynamic state is part of a session
  // checkpoint, so strategies' save/load routines reach it through these.
  Rng& rng() { return rng_; }
  CostMeter& costs_mutable() { return costs_; }
  std::vector<RoundRecord>& history_mutable() { return history_; }
  void set_rounds_done(int r) { round_ = r; }

 private:
  RoundContext make_context();
  void run_async();
  /// FedBuff's event loop over real fabric messages: completions are
  /// ordered by the server-side delivery instant of each UpdateUp, lost
  /// updates hit an ack-timeout and are replaced.
  void run_async_fabric();
  void dispatch_async();
  /// Periodic accuracy probe shared by both modes: fills rec.accuracy when
  /// eval_every divides `tick` (the round in sync mode, the shipped server
  /// version in async mode).
  void maybe_probe(int tick, RoundContext& ctx, RoundRecord& rec);
  ExchangeResult exchange(const std::vector<ClientTask>& tasks,
                          std::vector<Rng>& client_rngs,
                          std::vector<std::optional<Model>>& payloads,
                          std::vector<Model*>& task_models);
  /// True when this session's rounds run the numeric tree reduction
  /// (fabric + partial_aggregation topology; validated against the
  /// strategy's supports_partial_aggregation).
  bool numeric_rounds() const;

  std::unique_ptr<Strategy> strategy_;
  const ClientDataProvider& data_;
  std::vector<DeviceProfile> fleet_;
  SessionConfig cfg_;
  Rng rng_;
  CostMeter costs_;
  std::vector<RoundRecord> history_;
  std::unique_ptr<ClientSelector> selector_;
  std::unique_ptr<FederationServer> fabric_;
  std::vector<RoundObserver*> observers_;
  std::vector<std::unique_ptr<RoundObserver>> owned_observers_;
  int round_ = 0;

  // Async-mode scheduling state (same completion-ordered queue the legacy
  // FedBuffRunner used, so async runs replay bit-identically).
  struct InFlight {
    double finish_s = 0.0;
    int client = 0;
    int version = 0;  // server version the client started from
    /// Dispatch-order job id — the Byzantine draw's round key, matching the
    /// fabric async path (which keys draws on its job counter).
    std::uint32_t job = 0;
    bool operator>(const InFlight& o) const { return finish_s > o.finish_s; }
  };
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>>
      in_flight_;
  std::uint32_t next_async_job_ = 0;
  double now_s_ = 0.0;
  int version_ = 0;
  std::int64_t async_updates_ = 0;
  double staleness_sum_ = 0.0;
};

}  // namespace fedtrans
