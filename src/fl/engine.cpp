#include "fl/engine.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "fl/byzantine.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace fedtrans {

namespace {

/// Adapter turning a plain callback into a RoundObserver (the convenience
/// face of the observer API).
class CallbackObserver : public RoundObserver {
 public:
  explicit CallbackObserver(std::function<void(const RoundRecord&)> fn)
      : fn_(std::move(fn)) {}
  void on_round_end(const RoundRecord& rec) override { fn_(rec); }

 private:
  std::function<void(const RoundRecord&)> fn_;
};

/// Wire width of a weight payload relative to fp32: 0.5 in mixed-precision
/// sessions (tensors ship 2 bytes/element), 1 otherwise. Strategies quote
/// model_bytes as fp32 param_bytes; billing rescales here so CostMeter
/// matches what actually crosses the (real or simulated) wire.
double wire_dtype_scale(const SessionConfig& cfg) {
  const Precision& p = cfg.local.precision;
  return p.enabled() ? static_cast<double>(dtype_bytes(p.dtype)) / 4.0 : 1.0;
}

/// Snap a weight copy onto the session's storage grid so its fabric
/// serialization is half-width (and exactly what local_train would produce
/// by quantizing on entry — keeping fabric and in-process rounds in parity).
WeightSet quantized_for_wire(WeightSet ws, const Precision& p) {
  if (p.enabled())
    for (auto& t : ws) t.quantize_storage(p.dtype);
  return ws;
}

}  // namespace

void bill_trained_update(RoundContext& ctx, int client, double model_bytes,
                         double model_macs, const LocalTrainResult& res,
                         double& slowest, double up_bytes) {
  model_bytes *= wire_dtype_scale(ctx.session);
  ctx.costs.add_training_macs(res.macs_used);
  ctx.costs.add_transfer(model_bytes, up_bytes < 0.0 ? model_bytes : up_bytes);
  const double t = client_round_time_s(
      ctx.fleet[static_cast<std::size_t>(client)], model_macs,
      ctx.session.local.steps, ctx.session.local.batch, model_bytes);
  ctx.costs.add_client_round_time(t);
  slowest = std::max(slowest, t);
}

void bill_lost_update(RoundContext& ctx, ClientOutcome outcome,
                      double model_bytes, double model_macs) {
  if (outcome != ClientOutcome::LostDown)
    ctx.costs.add_training_macs(3.0 * model_macs * ctx.session.local.steps *
                                ctx.session.local.batch);
  ctx.costs.add_transfer(model_bytes * wire_dtype_scale(ctx.session), 0.0);
}

std::vector<ClientTask> Strategy::plan_round(RoundContext& ctx, Rng& rng) {
  auto selected = ctx.selector.select(ctx.data.num_clients(),
                                      ctx.session.clients_per_round, rng);
  std::vector<ClientTask> tasks;
  tasks.reserve(selected.size());
  for (int c : selected) tasks.push_back(ClientTask{c, 0});
  return tasks;
}

void Strategy::absorb_metrics(const ClientTask&, const LocalTrainResult&,
                              RoundContext&) {
  FT_CHECK_MSG(false, "strategy '"
                          << name()
                          << "' does not support numeric partial "
                             "aggregation (absorb_metrics not implemented)");
}

void Strategy::absorb_reduced(const ClientTask&, Model*, WeightSet&, double,
                              int, RoundContext&) {
  FT_CHECK_MSG(false, "strategy '"
                          << name()
                          << "' does not support numeric partial "
                             "aggregation (absorb_reduced not implemented)");
}

FederationEngine::FederationEngine(std::unique_ptr<Strategy> strategy,
                                   const ClientDataProvider& data,
                                   std::vector<DeviceProfile> fleet,
                                   SessionConfig cfg)
    : strategy_(std::move(strategy)),
      data_(data),
      fleet_(std::move(fleet)),
      cfg_(cfg),
      rng_(cfg.seed) {
  FT_CHECK_MSG(strategy_ != nullptr, "engine requires a strategy");
  FT_CHECK_MSG(static_cast<int>(fleet_.size()) == data_.num_clients(),
               "fleet size must match client count");
  // Validate the partial-aggregation/strategy combination here, at session
  // build time, instead of letting the first round throw: a numeric tree
  // can only pre-sum weighted-linear-sum reductions. Strategies that
  // reduce non-linearly (robust aggregators, compressed uplinks) still
  // compose with trees of any depth — in the default verbatim-bundle mode,
  // where interior aggregators forward updates untouched.
  if (cfg_.use_fabric && cfg_.topology.partial_aggregation &&
      cfg_.topology.levels >= 2 && cfg_.mode == SessionMode::Sync)
    FT_CHECK_MSG(
        strategy_->supports_partial_aggregation(),
        "SessionConfig: topology.partial_aggregation=true needs a strategy "
        "whose reduction is a weighted linear sum, but strategy '"
            << strategy_->name()
            << "' reduces non-linearly (supports_partial_aggregation() is "
               "false). Drop with_partial_aggregation() — verbatim bundles "
               "compose with aggregation trees of any depth — or pick a "
               "linear strategy (FedAvg without compression, FedTrans, "
               "HeteroFL).");
  FT_CHECK_MSG(
      cfg_.topology.quantize_partials == PartialQuant::None ||
          cfg_.topology.partial_aggregation,
      "SessionConfig: topology.quantize_partials needs "
      "topology.partial_aggregation — verbatim bundles must stay bit-exact, "
      "only numeric group sums may be quantized on the wire");
  selector_ = make_selector(cfg_.selector);
  {
    RoundContext ctx = make_context();
    strategy_->attach(ctx, rng_);
  }
  costs_.note_storage(strategy_->initial_storage_bytes());
}

FederationEngine::~FederationEngine() = default;

void FederationEngine::set_selector(std::unique_ptr<ClientSelector> selector) {
  FT_CHECK_MSG(selector != nullptr, "null selector");
  FT_CHECK_MSG(round_ == 0 && version_ == 0,
               "selector swap after rounds have run");
  selector_ = std::move(selector);
}

void FederationEngine::on_round(std::function<void(const RoundRecord&)> fn) {
  owned_observers_.push_back(
      std::make_unique<CallbackObserver>(std::move(fn)));
  observers_.push_back(owned_observers_.back().get());
}

RoundContext FederationEngine::make_context() {
  return RoundContext{data_, fleet_, cfg_,   costs_, *selector_,
                      rng_,  round_, 0,      0};
}

bool FederationEngine::numeric_rounds() const {
  if (!cfg_.use_fabric || !cfg_.topology.partial_aggregation ||
      cfg_.topology.levels < 2 || cfg_.mode != SessionMode::Sync)
    return false;
  FT_CHECK_MSG(strategy_->supports_partial_aggregation(),
               "partial_aggregation topology configured, but strategy '"
                   << strategy_->name()
                   << "' is not a weighted-linear-sum reduction");
  return true;
}

ExchangeResult FederationEngine::exchange(
    const std::vector<ClientTask>& tasks, std::vector<Rng>& client_rngs,
    std::vector<std::optional<Model>>& payloads,
    std::vector<Model*>& task_models) {
  ExchangeResult ex;
  if (cfg_.use_fabric) {
    // Message-passing path: payload models and forked Rngs ride ModelDown
    // frames over the simulated transport; ClientAgent workers train on
    // receipt and upload UpdateUp. The fixed-order reduction in run_round
    // is shared with the in-process path, so a fault-free fabric round is
    // bitwise identical to it — for every strategy.
    if (!fabric_)
      fabric_ = std::make_unique<FederationServer>(
          strategy_->reference_model(), data_, fleet_, cfg_.local,
          cfg_.fabric_faults, cfg_.topology, cfg_.transport, cfg_.socket);
    std::vector<int> clients;
    clients.reserve(tasks.size());
    for (const ClientTask& t : tasks) clients.push_back(t.client);

    // Numeric partial aggregation: hand the tree one reduce key per slot
    // so leaves know which updates sum into the same accumulator.
    std::vector<std::int32_t> reduce_keys;
    if (numeric_rounds()) {
      reduce_keys.reserve(tasks.size());
      for (const ClientTask& t : tasks)
        reduce_keys.push_back(strategy_->reduce_key(t));
    }

    if (Model* shared = strategy_->shared_model()) {
      // Single-global-model strategies broadcast one encoded weight blob
      // (snapped to the session's storage grid for half-width ModelDown).
      ex = fabric_->run_round(
          static_cast<std::uint32_t>(round_),
          quantized_for_wire(shared->weights(), cfg_.local.precision), clients,
          client_rngs, reduce_keys);
    } else {
      // Heterogeneous strategies ship per-task architectures on the wire.
      // Tasks sharing a payload_key reuse one materialized model (ladder
      // strategies: one submodel per capacity level, not per client); the
      // server then encodes each distinct instance once.
      std::vector<Model*> ptrs;
      ptrs.reserve(tasks.size());
      std::unordered_map<int, Model*> by_key;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        const int key = strategy_->payload_key(tasks[i]);
        Model* m = nullptr;
        if (key >= 0) {
          auto it = by_key.find(key);
          if (it != by_key.end()) m = it->second;
        }
        if (m == nullptr) {
          payloads[i].emplace(strategy_->client_payload(tasks[i]));
          m = &*payloads[i];
          if (cfg_.local.precision.enabled())
            for (auto& pr : m->params())
              pr.value->quantize_storage(cfg_.local.precision.dtype);
          if (key >= 0) by_key.emplace(key, m);
        }
        task_models[i] = m;
        ptrs.push_back(m);
      }
      ex = fabric_->run_round(static_cast<std::uint32_t>(round_), ptrs,
                              clients, client_rngs, reduce_keys);
    }
    // Retry-policy resends and leaf-failover redirects are real network
    // traffic the strategies never see (they bill one down + one up per
    // update); the engine bills them directly. Zero without faults, so
    // parity with in-process runs holds.
    if (ex.retry_down_bytes > 0.0 || ex.retry_up_bytes > 0.0 ||
        ex.failover_down_bytes > 0.0)
      costs_.add_transfer(ex.retry_down_bytes + ex.failover_down_bytes,
                          ex.retry_up_bytes);
    // Delta downlinks shipped fewer bytes than the full ModelDown the
    // strategies billed — credit the difference back so the meter matches
    // what actually crossed the wire.
    if (ex.delta_saved_bytes > 0.0)
      costs_.add_transfer(-ex.delta_saved_bytes, 0.0);
    return ex;
  }

  // In-process path. Tasks are embarrassingly parallel: the Rngs were
  // pre-forked in task order, each worker trains a private payload model,
  // and the reduction afterwards runs in fixed task order — so every
  // metric is bitwise-independent of the thread count. Shared-model
  // strategies train on transient copies (absorb hooks never read them);
  // heterogeneous strategies keep each payload alive for absorb's
  // structural walks.
  Model* shared = strategy_->shared_model();
  ex.results.resize(tasks.size());
  ex.outcomes.assign(tasks.size(), ClientOutcome::Trained);
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(tasks.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          // Byzantine behavior is a *client* property (drawn per (seed,
          // round, client)), so it applies on this path exactly as it does
          // on the fabric — keeping adversarial runs path-independent.
          if (shared != nullptr) {
            Model local = *shared;
            ex.results[idx] = byzantine_local_train(
                local, data_.client(tasks[idx].client), data_.num_classes(),
                cfg_.local, client_rngs[idx], cfg_.fabric_faults,
                static_cast<std::uint32_t>(round_), tasks[idx].client);
          } else {
            payloads[idx].emplace(strategy_->client_payload(tasks[idx]));
            ex.results[idx] = byzantine_local_train(
                *payloads[idx], data_.client(tasks[idx].client),
                data_.num_classes(), cfg_.local, client_rngs[idx],
                cfg_.fabric_faults, static_cast<std::uint32_t>(round_),
                tasks[idx].client);
          }
        }
      });
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (payloads[i].has_value()) task_models[i] = &*payloads[i];
  return ex;
}

double FederationEngine::run_round() {
  FT_CHECK_MSG(cfg_.mode == SessionMode::Sync,
               "run_round requires a synchronous session");
  FT_SPAN_ARG("engine", "round", "round", round_);
  for (RoundObserver* obs : observers_) obs->on_round_start(round_);
  RoundContext ctx = make_context();

  std::vector<ClientTask> tasks;
  std::vector<Rng> client_rngs;
  {
    FT_SPAN("engine", "select");
    tasks = strategy_->plan_round(ctx, rng_);
    client_rngs.reserve(tasks.size());
    for (ClientTask& t : tasks) {
      strategy_->prepare_task(t, rng_, ctx);
      client_rngs.push_back(rng_.fork());
    }
  }

  std::vector<std::optional<Model>> payloads(tasks.size());
  std::vector<Model*> task_models(tasks.size(), nullptr);
  ExchangeResult ex;
  {
    FT_SPAN_ARG("engine", "exchange", "tasks", tasks.size());
    ex = exchange(tasks, client_rngs, payloads, task_models);
  }

  // Byzantine accounting before aggregation (strategies may consume the
  // deltas): re-derive the pure (seed, round, client) attack draw per
  // trained task — no wire metadata needed — and record attacker identity
  // plus an L2 damage proxy on the round. In numeric tree rounds the
  // per-update deltas were pre-summed in-tree, so the proxy stays 0.
  int byz_updates = 0;
  double byz_l2 = 0.0;
  std::vector<std::int32_t> byz_clients;
  if (cfg_.fabric_faults.byzantine_prob > 0.0) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (ex.outcomes[i] != ClientOutcome::Trained) continue;
      if (!byzantine_client(cfg_.fabric_faults,
                            static_cast<std::uint32_t>(round_),
                            tasks[i].client))
        continue;
      ++byz_updates;
      byz_clients.push_back(tasks[i].client);
      byz_l2 += ws_l2_norm(ex.results[i].delta);
    }
  }

  FT_SPAN("engine", "aggregate");
  if (ex.reduced) {
    // Numeric tree round: per-task metrics arrived verbatim (billing,
    // selector feedback, loss bookkeeping stay per-client, in task order);
    // the deltas arrive pre-summed per reduce group, folded in ascending
    // min-slot order — the same canonical order the tree reduced them in.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (ex.outcomes[i] != ClientOutcome::Trained) {
        strategy_->lost_update(tasks[i], ex.outcomes[i], ctx);
        ++ctx.lost;
        continue;
      }
      strategy_->absorb_metrics(tasks[i], ex.results[i], ctx);
      ++ctx.trained;
    }
    for (ReducedGroup& g : ex.groups) {
      const auto slot = static_cast<std::size_t>(g.min_slot);
      FT_CHECK_MSG(slot < tasks.size(), "reduce group references slot "
                                            << g.min_slot << " of "
                                            << tasks.size());
      strategy_->absorb_reduced(tasks[slot], task_models[slot], g.sum,
                                g.weight, g.count, ctx);
    }
  } else {
    // Fixed task-order reduction: absorb arrived updates, bill casualties.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (ex.outcomes[i] != ClientOutcome::Trained) {
        strategy_->lost_update(tasks[i], ex.outcomes[i], ctx);
        ++ctx.lost;
        continue;
      }
      strategy_->absorb_update(tasks[i], task_models[i], ex.results[i], ctx);
      ++ctx.trained;
    }
  }

  RoundRecord rec;
  strategy_->finish_round(ctx, rec);
  rec.round = round_;
  rec.cum_macs = costs_.total_macs();
  rec.participants = ctx.trained;
  rec.lost_updates += ctx.lost;  // strategies may pre-add deadline drops
  rec.leaf_failovers = ex.leaf_failovers;
  rec.byzantine_updates = byz_updates;
  rec.byzantine_l2 = byz_l2;
  rec.byzantine_clients = std::move(byz_clients);
  if (byz_updates > 0) {
    static Counter byz_total("fedtrans_byzantine_updates_total");
    byz_total.add(byz_updates);
    static Counter byz_rounds("fedtrans_byzantine_rounds_total");
    byz_rounds.inc();
    static Histogram byz_damage("fedtrans_byzantine_round_l2");
    byz_damage.observe(byz_l2);
  }

  maybe_probe(round_, ctx, rec);
  static Counter rounds_total("fedtrans_engine_rounds_total");
  rounds_total.inc();
  if (trace_virtual_on()) {
    // Round envelope on the simulated timeline: rounds run back to back,
    // each lasting its slowest participant.
    double start_s = 0.0;
    for (const RoundRecord& h : history_) start_s += h.round_time_s;
    FT_VSPAN_ARG("engine", "round", start_s, rec.round_time_s, kTrackEngine,
                 "participants", rec.participants);
  }
  history_.push_back(rec);
  for (RoundObserver* obs : observers_) obs->on_round_end(rec);
  ++round_;
  return rec.avg_loss;
}

void FederationEngine::maybe_probe(int tick, RoundContext& ctx,
                                   RoundRecord& rec) {
  if (cfg_.eval_every <= 0 || tick % cfg_.eval_every != 0) return;
  FT_SPAN_ARG("engine", "eval", "tick", tick);
  // Subsampled accuracy probe for learning curves; the probe Rng and id
  // draw are engine-owned so every strategy probes the same cohort.
  Rng erng(cfg_.seed + 977 + static_cast<std::uint64_t>(tick));
  const int k = cfg_.eval_clients > 0
                    ? std::min(cfg_.eval_clients, data_.num_clients())
                    : data_.num_clients();
  auto eval_ids = uniform_select(data_.num_clients(), k, erng);
  rec.accuracy = strategy_->probe_accuracy(eval_ids, ctx);
}

void FederationEngine::run() {
  {
    FT_SPAN("engine", "run");
    if (cfg_.mode == SessionMode::Async) {
      run_async();
    } else {
      for (int r = 0; r < cfg_.rounds; ++r) run_round();
    }
  }
  maybe_write_run_report_env(*this);
}

void FederationEngine::dispatch_async() {
  const int c = rng_.uniform_int(0, data_.num_clients() - 1);
  const DeviceProfile& dev = fleet_[static_cast<std::size_t>(c)];
  Model* m = strategy_->shared_model();
  FT_CHECK_MSG(m != nullptr,
               "async scheduling requires a shared-model strategy");
  const double model_bytes = static_cast<double>(m->param_bytes()) *
                             wire_dtype_scale(cfg_);
  const double t =
      client_round_time_s(dev, static_cast<double>(m->macs()),
                          cfg_.local.steps, cfg_.local.batch, model_bytes);
  in_flight_.push(InFlight{now_s_ + t, c, version_, next_async_job_++});
  costs_.add_client_round_time(t);
}

void FederationEngine::run_async() {
  FT_CHECK(cfg_.async.concurrency > 0 && cfg_.async.buffer_size > 0 &&
           cfg_.async.aggregations > 0 &&
           cfg_.async.staleness_exponent >= 0.0);
  if (cfg_.use_fabric) {
    run_async_fabric();
    return;
  }
  RoundContext ctx = make_context();
  for (int i = 0; i < cfg_.async.concurrency; ++i) dispatch_async();
  while (version_ < cfg_.async.aggregations) {
    FT_CHECK_MSG(!in_flight_.empty(), "async scheduler starved");
    const InFlight job = in_flight_.top();
    in_flight_.pop();
    now_s_ = job.finish_s;

    // The client trains from the weights it downloaded at dispatch time.
    // The simulation trains lazily at completion instead of keeping
    // per-client snapshots; staleness enters through the FedBuff discount.
    Model local = strategy_->client_payload(ClientTask{job.client, 0});
    Rng crng = rng_.fork();
    LocalTrainResult res = byzantine_local_train(
        local, data_.client(job.client), data_.num_classes(), cfg_.local,
        crng, cfg_.fabric_faults, job.job, job.client);

    const int staleness = version_ - job.version;
    staleness_sum_ += staleness;
    ++async_updates_;
    const double discount =
        std::pow(1.0 + staleness, -cfg_.async.staleness_exponent);

    ctx.round = version_;
    const auto shipped =
        strategy_->absorb_async(job.client, res, discount, ctx);
    if (shipped.has_value()) {
      ++version_;
      RoundRecord rec;
      rec.round = version_;
      rec.avg_loss = *shipped;
      rec.cum_macs = costs_.total_macs();
      rec.round_time_s = now_s_;  // wall-clock at which this version shipped
      FT_VSPAN_ARG("engine", "version_shipped", now_s_, 0.0, kTrackEngine,
                   "version", version_);
      maybe_probe(version_, ctx, rec);
      history_.push_back(rec);
      for (RoundObserver* obs : observers_) obs->on_round_end(rec);
    }
    dispatch_async();
  }
}

void FederationEngine::run_async_fabric() {
  // FedBuff over real messages: every dispatch is a wire-level ModelDown /
  // UpdateUp round trip through the FederationServer, and the event loop
  // orders completions by the *server-side delivery instant* of each
  // UpdateUp — uplink latency, retries and reordering all shift when an
  // update is folded in, unlike the in-process approximation (which orders
  // by client finish time and forks Rngs at completion; the two modes are
  // deliberately distinct simulations, not bitwise twins). The staleness
  // here is also more faithful: weights ride the ModelDown frame, so a
  // client trains on the snapshot it downloaded at dispatch time.
  Model* shared = strategy_->shared_model();
  FT_CHECK_MSG(shared != nullptr,
               "async scheduling requires a shared-model strategy");
  if (!fabric_)
    fabric_ = std::make_unique<FederationServer>(
        strategy_->reference_model(), data_, fleet_, cfg_.local,
        cfg_.fabric_faults, cfg_.topology, cfg_.transport, cfg_.socket);
  RoundContext ctx = make_context();
  const double model_bytes = static_cast<double>(shared->param_bytes()) *
                             wire_dtype_scale(cfg_);
  // The server waits one ack-timeout per allowed uplink attempt: resend k
  // leaves the device ~k·ack_timeout_s after training ends, so a deadline
  // of a single timeout could never admit a retried update — the budget
  // would be billed traffic with zero recovery.
  const double deadline_s =
      static_cast<double>(cfg_.topology.max_retries + 1) *
      cfg_.topology.ack_timeout_s;

  // One pending server-side event per in-flight client: either the arrival
  // of its UpdateUp, or the ack-timeout at which the server gives up on it
  // (the update was lost despite retries, or lands too late to count).
  struct Pending {
    double t = 0.0;
    std::uint32_t job = 0;
    int client = 0;
    int version = 0;
    bool arrival = false;
    double macs_wasted = 0.0;
    LocalTrainResult res;  // valid iff arrival
  };
  auto later = [](const Pending& a, const Pending& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.job > b.job;  // deterministic tie-break: dispatch order
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(later)>
      pending(later);
  std::uint32_t next_job = 0;
  int lost_since_ship = 0;
  int failovers_since_ship = 0;

  auto dispatch = [&] {
    const int c = rng_.uniform_int(0, data_.num_clients() - 1);
    Rng crng = rng_.fork();
    AsyncTurnaround turn = fabric_->async_exchange(
        next_job, c, quantized_for_wire(shared->weights(), cfg_.local.precision),
        crng, now_s_);
    if (turn.retry_up_bytes > 0.0)
      costs_.add_transfer(0.0, turn.retry_up_bytes);
    costs_.add_client_round_time(turn.busy_s);
    // A dead leaf re-routed this job through a sibling; surface it on the
    // next shipped version's record, mirroring the sync path's accounting.
    if (turn.failed_over) ++failovers_since_ship;
    Pending p;
    p.job = next_job++;
    p.client = c;
    p.version = version_;
    if (turn.outcome == ClientOutcome::Trained &&
        turn.update_at_s <= now_s_ + deadline_s) {
      p.arrival = true;
      p.t = turn.update_at_s;
      p.res = std::move(turn.res);
    } else {
      p.arrival = false;
      p.t = now_s_ + deadline_s;
      p.macs_wasted = turn.outcome == ClientOutcome::LostDown
                          ? 0.0
                          : turn.res.macs_used;
    }
    pending.push(std::move(p));
  };

  // Zero-progress guard: if the deadline is shorter than every client's
  // round trip (slow fleet, huge model, tiny ack_timeout_s), every event
  // is a timeout and version_ never advances — fail loudly instead of
  // looping forever. Legitimate faulty runs fold arrivals in long before
  // this bound.
  const int max_consecutive_timeouts =
      std::max(1000, 64 * cfg_.async.concurrency);
  int consecutive_timeouts = 0;

  for (int i = 0; i < cfg_.async.concurrency; ++i) dispatch();
  while (version_ < cfg_.async.aggregations) {
    FT_CHECK_MSG(!pending.empty(), "async scheduler starved");
    // Move the event out (top() is const only to protect heap order, which
    // pop() discards anyway) — the delta is model-sized, a copy per
    // absorbed update would be pure memcpy waste.
    Pending ev = std::move(const_cast<Pending&>(pending.top()));
    pending.pop();
    now_s_ = ev.t;

    if (ev.arrival) {
      consecutive_timeouts = 0;
      const int staleness = version_ - ev.version;
      staleness_sum_ += staleness;
      ++async_updates_;
      const double discount =
          std::pow(1.0 + staleness, -cfg_.async.staleness_exponent);
      ctx.round = version_;
      const auto shipped =
          strategy_->absorb_async(ev.client, ev.res, discount, ctx);
      if (shipped.has_value()) {
        ++version_;
        RoundRecord rec;
        rec.round = version_;
        rec.avg_loss = *shipped;
        rec.cum_macs = costs_.total_macs();
        rec.round_time_s = now_s_;
        rec.lost_updates = lost_since_ship;
        rec.leaf_failovers = failovers_since_ship;
        lost_since_ship = 0;
        failovers_since_ship = 0;
        FT_VSPAN_ARG("engine", "version_shipped", now_s_, 0.0, kTrackEngine,
                     "version", version_);
        maybe_probe(version_, ctx, rec);
        history_.push_back(rec);
        for (RoundObserver* obs : observers_) obs->on_round_end(rec);
      }
    } else {
      // Ack-timeout: bill the spent downlink and any wasted device compute
      // (the strategies only bill updates they absorb), count the loss
      // against the next shipped version, and replace the client.
      ++lost_since_ship;
      costs_.add_transfer(model_bytes, 0.0);
      if (ev.macs_wasted > 0.0) costs_.add_training_macs(ev.macs_wasted);
      FT_CHECK_MSG(++consecutive_timeouts < max_consecutive_timeouts,
                   "fabric-backed async session makes no progress: no "
                   "update arrived within (max_retries + 1) * ack_timeout_s"
                   " — raise topology.ack_timeout_s above the fleet's round"
                   "-trip time");
    }
    dispatch();
  }
}

double FederationEngine::mean_staleness() const {
  return async_updates_ > 0
             ? staleness_sum_ / static_cast<double>(async_updates_)
             : 0.0;
}

}  // namespace fedtrans
