#include "fl/selection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/serial.hpp"

namespace fedtrans {

std::vector<int> uniform_select(int population, int k, Rng& rng) {
  FT_CHECK_MSG(population > 0, "cannot select from an empty population");
  std::vector<int> idx(static_cast<std::size_t>(population));
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  idx.resize(static_cast<std::size_t>(std::min(k, population)));
  return idx;
}

std::vector<int> UniformSelector::select(int population, int k, Rng& rng) {
  return uniform_select(population, k, rng);
}

void OortSelector::ensure_size(int population) {
  if (static_cast<int>(utility_.size()) < population) {
    utility_.resize(static_cast<std::size_t>(population), 0.0);
    last_round_.resize(static_cast<std::size_t>(population), -1);
    explored_.resize(static_cast<std::size_t>(population), false);
  }
}

double OortSelector::utility(int client) const {
  FT_CHECK(client >= 0 &&
           client < static_cast<int>(utility_.size()));
  return utility_[static_cast<std::size_t>(client)];
}

void OortSelector::report(int client, double loss, int samples) {
  ensure_size(client + 1);
  // Oort's statistical utility: |loss| × sqrt(#samples). Non-finite losses
  // (diverged clients) score zero rather than poisoning the ranking.
  const double u = std::isfinite(loss)
                       ? std::fabs(loss) * std::sqrt(std::max(1, samples))
                       : 0.0;
  utility_[static_cast<std::size_t>(client)] = u;
}

std::vector<int> OortSelector::select(int population, int k, Rng& rng) {
  ensure_size(population);
  k = std::min(k, population);
  ++round_;

  const int n_explore = std::min(
      k, static_cast<int>(std::lround(opts_.epsilon * k)));
  const int n_exploit = k - n_explore;

  // Exploit: rank explored clients by utility + staleness bonus.
  std::vector<int> explored_clients;
  for (int c = 0; c < population; ++c)
    if (explored_[static_cast<std::size_t>(c)]) explored_clients.push_back(c);
  auto score = [&](int c) {
    const double staleness =
        last_round_[static_cast<std::size_t>(c)] < 0
            ? 0.0
            : std::sqrt(static_cast<double>(
                  round_ - last_round_[static_cast<std::size_t>(c)]));
    return utility_[static_cast<std::size_t>(c)] +
           opts_.staleness_bonus * staleness;
  };
  std::sort(explored_clients.begin(), explored_clients.end(),
            [&](int a, int b) {
              const double sa = score(a), sb = score(b);
              return sa != sb ? sa > sb : a < b;
            });

  std::vector<int> chosen;
  std::vector<bool> taken(static_cast<std::size_t>(population), false);
  for (int c : explored_clients) {
    if (static_cast<int>(chosen.size()) >= n_exploit) break;
    chosen.push_back(c);
    taken[static_cast<std::size_t>(c)] = true;
  }

  // Explore: uniform over the never-selected remainder (fall back to any
  // not-yet-taken client when everyone has been explored).
  std::vector<int> fresh, rest;
  for (int c = 0; c < population; ++c) {
    if (taken[static_cast<std::size_t>(c)]) continue;
    (explored_[static_cast<std::size_t>(c)] ? rest : fresh).push_back(c);
  }
  rng.shuffle(fresh);
  rng.shuffle(rest);
  for (int c : fresh) {
    if (static_cast<int>(chosen.size()) >= k) break;
    chosen.push_back(c);
  }
  for (int c : rest) {
    if (static_cast<int>(chosen.size()) >= k) break;
    chosen.push_back(c);
  }

  for (int c : chosen) {
    explored_[static_cast<std::size_t>(c)] = true;
    last_round_[static_cast<std::size_t>(c)] = round_;
  }
  return chosen;
}

void OortSelector::save_state(std::ostream& os) const {
  write_vec(os, utility_);
  write_vec(os, last_round_);
  std::vector<std::uint8_t> explored(explored_.size());
  for (std::size_t i = 0; i < explored_.size(); ++i)
    explored[i] = explored_[i] ? 1 : 0;
  write_vec(os, explored);
  write_pod<std::int32_t>(os, round_);
}

void OortSelector::load_state(std::istream& is) {
  utility_ = read_vec<double>(is);
  last_round_ = read_vec<int>(is);
  const auto explored = read_vec<std::uint8_t>(is);
  explored_.assign(explored.size(), false);
  for (std::size_t i = 0; i < explored.size(); ++i)
    explored_[i] = explored[i] != 0;
  round_ = read_pod<std::int32_t>(is);
}

void PowerOfChoiceSelector::save_state(std::ostream& os) const {
  write_vec(os, last_loss_);
}

void PowerOfChoiceSelector::load_state(std::istream& is) {
  last_loss_ = read_vec<double>(is);
}

void PowerOfChoiceSelector::report(int client, double loss, int /*samples*/) {
  if (static_cast<int>(last_loss_.size()) <= client)
    last_loss_.resize(static_cast<std::size_t>(client) + 1, 0.0);
  last_loss_[static_cast<std::size_t>(client)] =
      std::isfinite(loss) ? loss : 0.0;
}

std::vector<int> PowerOfChoiceSelector::select(int population, int k,
                                               Rng& rng) {
  FT_CHECK(factor_ >= 1);
  k = std::min(k, population);
  if (static_cast<int>(last_loss_.size()) < population)
    last_loss_.resize(static_cast<std::size_t>(population), 0.0);
  auto candidates = uniform_select(population, std::min(population,
                                                        factor_ * k),
                                   rng);
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const double la = last_loss_[static_cast<std::size_t>(a)];
    const double lb = last_loss_[static_cast<std::size_t>(b)];
    return la != lb ? la > lb : a < b;
  });
  candidates.resize(static_cast<std::size_t>(k));
  return candidates;
}

std::unique_ptr<ClientSelector> make_selector(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::Uniform: return std::make_unique<UniformSelector>();
    case SelectorKind::Oort: return std::make_unique<OortSelector>();
    case SelectorKind::PowerOfChoice:
      return std::make_unique<PowerOfChoiceSelector>();
  }
  return std::make_unique<UniformSelector>();
}

}  // namespace fedtrans
