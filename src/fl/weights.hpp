#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace fedtrans {

/// A model's weights as an ordered tensor list (order = Model::params()).
using WeightSet = std::vector<Tensor>;

/// a += b (element-wise across the set; shapes must match).
void ws_add(WeightSet& a, const WeightSet& b);
/// a -= b.
void ws_sub(WeightSet& a, const WeightSet& b);
/// a *= s.
void ws_scale(WeightSet& a, float s);
/// a += s * b.
void ws_axpy(WeightSet& a, float s, const WeightSet& b);
/// Zero-initialized set with the same shapes as `like`.
WeightSet ws_zeros_like(const WeightSet& like);
/// Total element count.
std::int64_t ws_numel(const WeightSet& ws);
/// sqrt(sum of squared entries).
double ws_l2_norm(const WeightSet& ws);
/// True iff every entry of every tensor is finite (no NaN / ±Inf) — the
/// admission check robust aggregators run before trusting an update.
bool ws_all_finite(const WeightSet& ws);

}  // namespace fedtrans
