#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "fl/weights.hpp"

namespace fedtrans {

/// Client-update (uplink) compression. The paper's Table 2 reports network
/// volume as a first-class cost; these compressors are the standard
/// gradient-compression remedies (top-k sparsification, uniform
/// quantization) applied to the client delta before upload. The simulation
/// applies compress() in place (the server sees the lossy delta) and uses
/// compressed_bytes() for network accounting; the wire format itself is not
/// materialized.
class DeltaCompressor {
 public:
  virtual ~DeltaCompressor() = default;

  /// Lossy-compress `delta` in place (what the server would decode).
  virtual void compress(WeightSet& delta) = 0;
  /// Uplink bytes for shipping `delta` in this compressor's wire layout.
  /// Pure function of the delta's shape — no state from prior compress()
  /// calls — so one compressor instance bills identically regardless of
  /// call order or which thread's client asks.
  virtual double compressed_bytes(const WeightSet& delta) const = 0;
  virtual std::string name() const = 0;
};

/// No-op compressor: dense fp32 upload (4 bytes/param).
class NoCompression : public DeltaCompressor {
 public:
  void compress(WeightSet&) override {}
  double compressed_bytes(const WeightSet& delta) const override {
    return 4.0 * static_cast<double>(ws_numel(delta));
  }
  std::string name() const override { return "none"; }
};

/// Global top-k magnitude sparsification: keep the k = ratio × numel
/// largest-|v| entries across the whole delta, zero the rest. Wire cost is
/// (4-byte index + 4-byte value) per survivor.
class TopKCompression : public DeltaCompressor {
 public:
  explicit TopKCompression(double ratio);

  void compress(WeightSet& delta) override;
  double compressed_bytes(const WeightSet& delta) const override;
  std::string name() const override { return "topk"; }

  double ratio() const { return ratio_; }

 private:
  double ratio_;
};

/// Per-tensor uniform quantization to 2^bits symmetric levels around zero:
/// v → round(v/scale) · scale with scale = max|v| / (2^(bits−1) − 1).
/// Wire cost is `bits` per parameter plus one fp32 scale per tensor.
class UniformQuantization : public DeltaCompressor {
 public:
  explicit UniformQuantization(int bits);

  void compress(WeightSet& delta) override;
  double compressed_bytes(const WeightSet& delta) const override;
  std::string name() const override { return "quant"; }

  int bits() const { return bits_; }

 private:
  int bits_;
};

enum class CompressionKind { None, TopK, Quant8, Quant4 };

std::unique_ptr<DeltaCompressor> make_compressor(CompressionKind kind,
                                                 double topk_ratio = 0.1);
const char* compression_name(CompressionKind kind);

/// Error feedback (Seide et al. / EF-SGD): per-client residual memory that
/// re-injects what compression dropped into the next round's delta, which
/// recovers most of the accuracy a biased compressor loses. Keyed by client
/// id. A returning client whose model spec changed between participations
/// (possible under FedTrans transforms) presents deltas whose shapes no
/// longer match the stored residual — both hooks validate per-tensor shapes
/// and reset that client's residual with a warning instead of folding
/// garbage.
class ErrorFeedback {
 public:
  /// delta ← delta + residual[client]; call before compress(). A residual
  /// whose shapes drifted from `delta` is discarded (logged), not folded.
  void add_residual(int client, WeightSet& delta);
  /// residual[client] ← pre − post; call after compress() with the delta
  /// as it looked before (pre) and after (post) compression. Mismatched
  /// pre/post shapes reset the client's residual (logged) — storing their
  /// difference would poison every later round.
  void store_residual(int client, const WeightSet& pre, const WeightSet& post);

  bool has_residual(int client) const;
  std::size_t tracked_clients() const { return residuals_.size(); }

 private:
  std::unordered_map<int, WeightSet> residuals_;
};

}  // namespace fedtrans
