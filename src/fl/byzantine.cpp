#include "fl/byzantine.hpp"

#include "obs/metrics.hpp"

namespace fedtrans {

namespace {

/// The client's shards with every train label flipped to its mirror class.
/// Eval shards stay honest — the attacker poisons what it trains on, not
/// what the coordinator measures.
ClientData label_flipped(const ClientData& clean, int num_classes) {
  ClientData poisoned;
  poisoned.x_train = clean.x_train;
  poisoned.y_train = clean.y_train;
  poisoned.x_eval = clean.x_eval;
  poisoned.y_eval = clean.y_eval;
  for (int& y : poisoned.y_train) y = num_classes - 1 - y;
  return poisoned;
}

}  // namespace

LocalTrainResult byzantine_local_train(Model& model, const ClientData& data,
                                       int num_classes,
                                       const LocalTrainConfig& cfg, Rng& rng,
                                       const FaultConfig& faults,
                                       std::uint32_t round,
                                       std::int32_t client) {
  if (!byzantine_client(faults, round, client))
    return local_train(model, data, cfg, rng);

  static Counter attacks("fedtrans_byzantine_attacks_total");
  attacks.inc();

  LocalTrainResult res;
  switch (faults.byzantine_mode) {
    case ByzantineMode::LabelFlip:
      res = local_train(model, label_flipped(data, num_classes), cfg, rng);
      break;
    case ByzantineMode::SignFlip:
      res = local_train(model, data, cfg, rng);
      ws_scale(res.delta, -1.0f);
      break;
    case ByzantineMode::ScaledUpdate:
      res = local_train(model, data, cfg, rng);
      ws_scale(res.delta, static_cast<float>(faults.byzantine_lambda));
      break;
    case ByzantineMode::UtilityInflate:
      res = local_train(model, data, cfg, rng);
      res.avg_loss = 0.0;  // "my assigned model is perfect for me"
      break;
    case ByzantineMode::None:
      res = local_train(model, data, cfg, rng);
      break;
  }
  // Keep the corrupted delta on the session's wire grid: local_train
  // returns half-grid deltas in mixed-precision sessions, and a scaled
  // value off that grid would serialize differently than it lives in
  // process, breaking fabric/in-process parity.
  if (cfg.precision.enabled())
    for (auto& t : res.delta) t.quantize_storage(cfg.precision.dtype);
  return res;
}

}  // namespace fedtrans
