#include "fl/runner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "net/server.hpp"

namespace fedtrans {

FedAvgRunner::FedAvgRunner(Model init, const FederatedDataset& data,
                           std::vector<DeviceProfile> fleet, FlRunConfig cfg)
    : model_(std::move(init)),
      data_(data),
      fleet_(std::move(fleet)),
      cfg_(cfg),
      rng_(cfg.seed) {
  FT_CHECK_MSG(static_cast<int>(fleet_.size()) == data_.num_clients(),
               "fleet size must match client count");
  selector_ = make_selector(cfg_.selector);
  compressor_ = make_compressor(cfg_.compression, cfg_.topk_ratio);
  costs_.note_storage(static_cast<double>(model_.param_bytes()));
}

FedAvgRunner::~FedAvgRunner() = default;
FedAvgRunner::FedAvgRunner(FedAvgRunner&&) noexcept = default;

std::vector<int> FedAvgRunner::select_clients(int population, int k,
                                              Rng& rng) {
  std::vector<int> ids(static_cast<std::size_t>(population));
  std::iota(ids.begin(), ids.end(), 0);
  rng.shuffle(ids);
  ids.resize(static_cast<std::size_t>(std::min(k, population)));
  return ids;
}

double FedAvgRunner::run_round() {
  const int want = cfg_.overcommit > 0.0
                       ? static_cast<int>(std::ceil(
                             (1.0 + cfg_.overcommit) *
                             cfg_.clients_per_round))
                       : cfg_.clients_per_round;
  auto selected = selector_->select(data_.num_clients(), want, rng_);
  if (cfg_.respect_capacity) {
    const double macs = static_cast<double>(model_.macs());
    std::erase_if(selected, [&](int c) {
      return fleet_[static_cast<std::size_t>(c)].capacity_macs < macs;
    });
  }

  // Over-selection deadline: predict completion times, close the round at
  // the configured quantile, and drop (but still bill) the late tail.
  std::vector<int> dropped;
  double deadline = 0.0;
  if (!selected.empty() &&
      (cfg_.overcommit > 0.0 || cfg_.deadline_quantile < 1.0)) {
    std::vector<double> times;
    times.reserve(selected.size());
    for (int c : selected)
      times.push_back(client_round_time_s(
          fleet_[static_cast<std::size_t>(c)],
          static_cast<double>(model_.macs()), cfg_.local.steps,
          cfg_.local.batch, static_cast<double>(model_.param_bytes())));
    deadline = percentile(times, 100.0 * cfg_.deadline_quantile);
    std::vector<int> on_time;
    for (std::size_t i = 0; i < selected.size(); ++i) {
      if (times[i] <= deadline &&
          static_cast<int>(on_time.size()) < cfg_.clients_per_round) {
        on_time.push_back(selected[i]);
      } else {
        dropped.push_back(selected[i]);
      }
    }
    if (on_time.empty()) on_time.push_back(selected.front());  // degenerate
    selected = std::move(on_time);
  }

  WeightSet global = model_.weights();
  WeightSet acc = ws_zeros_like(global);
  double weight_sum = 0.0;
  double loss_sum = 0.0;
  double slowest = 0.0;
  const double model_bytes = static_cast<double>(model_.param_bytes());

  // Clients are embarrassingly parallel: pre-fork one deterministic Rng per
  // client in selection order (the same fork sequence the serial loop drew),
  // train concurrently on the pool, then reduce in fixed client order below
  // — so every metric is bitwise-independent of the thread count.
  std::vector<Rng> client_rngs;
  client_rngs.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i)
    client_rngs.push_back(rng_.fork());

  ExchangeResult ex;
  if (cfg_.use_fabric) {
    // Message-passing path: the weights and forked Rngs ride ModelDown
    // frames over the simulated transport; ClientAgent workers train on
    // receipt and upload UpdateUp. The fixed-order reduction below is
    // shared with the in-process path, so a fault-free fabric round is
    // bitwise identical to it.
    if (!fabric_)
      fabric_ = std::make_unique<FederationServer>(
          model_, data_, fleet_, cfg_.local, cfg_.fabric_faults);
    ex = fabric_->run_round(static_cast<std::uint32_t>(round_), global,
                            selected, client_rngs);
  } else {
    ex.results.resize(selected.size());
    ex.outcomes.assign(selected.size(), ClientOutcome::Trained);
    ThreadPool::global().parallel_for(
        static_cast<std::int64_t>(selected.size()), 1,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            Model local_model = model_;  // download global weights
            ex.results[static_cast<std::size_t>(i)] = local_train(
                local_model,
                data_.client(selected[static_cast<std::size_t>(i)]),
                cfg_.local, client_rngs[static_cast<std::size_t>(i)]);
          }
        });
  }

  int trained = 0;
  int lost = 0;
  const double macs_per_round = 3.0 * static_cast<double>(model_.macs()) *
                                cfg_.local.steps * cfg_.local.batch;
  for (std::size_t ci = 0; ci < selected.size(); ++ci) {
    const int c = selected[ci];
    if (ex.outcomes[ci] != ClientOutcome::Trained) {
      // Fabric casualties. A lost downlink burned only server egress; a
      // lost update or mid-round dropout burned a full local training pass
      // whose result never arrived.
      if (ex.outcomes[ci] != ClientOutcome::LostDown)
        costs_.add_training_macs(macs_per_round);
      costs_.add_transfer(model_bytes, 0.0);
      ++lost;
      continue;
    }
    auto& res = ex.results[ci];

    // Uplink compression (EF-SGD: fold in this client's residual, compress,
    // remember what was dropped for its next participation).
    double up_bytes = model_bytes;
    if (cfg_.compression != CompressionKind::None) {
      if (cfg_.error_feedback) ef_.add_residual(c, res.delta);
      const WeightSet pre = res.delta;
      compressor_->compress(res.delta);
      if (cfg_.error_feedback) ef_.store_residual(c, pre, res.delta);
      up_bytes = compressor_->compressed_bytes(ws_numel(res.delta));
    }

    const double w = static_cast<double>(res.num_samples);
    ws_axpy(acc, static_cast<float>(w), res.delta);
    weight_sum += w;
    loss_sum += res.avg_loss;
    ++trained;
    selector_->report(c, res.avg_loss, res.num_samples);

    costs_.add_training_macs(res.macs_used);
    costs_.add_transfer(model_bytes, up_bytes);
    const double t = client_round_time_s(
        fleet_[static_cast<std::size_t>(c)], static_cast<double>(model_.macs()),
        cfg_.local.steps, cfg_.local.batch, model_bytes);
    costs_.add_client_round_time(t);
    slowest = std::max(slowest, t);
  }

  // Late clients trained and downloaded but never uploaded: their device
  // compute and downlink are real costs; their updates are wasted.
  for (int c : dropped) {
    (void)c;
    costs_.add_training_macs(macs_per_round);
    costs_.add_transfer(model_bytes, 0.0);
  }
  if (deadline > 0.0) slowest = std::min(slowest, deadline);

  double avg_loss = trained > 0 ? loss_sum / trained : 0.0;
  if (weight_sum > 0.0) {
    ws_scale(acc, static_cast<float>(1.0 / weight_sum));
    if (!server_opt_) server_opt_ = make_server_opt(cfg_.server_opt);
    server_opt_->apply(global, acc);
    model_.set_weights(global);
  }

  RoundRecord rec;
  rec.round = round_;
  rec.avg_loss = avg_loss;
  rec.cum_macs = costs_.total_macs();
  rec.round_time_s = slowest;
  rec.participants = trained;
  rec.lost_updates = lost + static_cast<int>(dropped.size());
  if (cfg_.eval_every > 0 && (round_ % cfg_.eval_every == 0)) {
    // Subsampled accuracy probe for learning curves.
    Rng erng(cfg_.seed + 977 + static_cast<std::uint64_t>(round_));
    const int k = cfg_.eval_clients > 0
                      ? std::min(cfg_.eval_clients, data_.num_clients())
                      : data_.num_clients();
    auto eval_ids = select_clients(data_.num_clients(), k, erng);
    // Per-thread model copies: forward() mutates layer caches, so the shared
    // model cannot be evaluated concurrently. Fixed-order summation keeps
    // the probe deterministic.
    std::vector<double> accs(eval_ids.size(), 0.0);
    ThreadPool::global().parallel_for(
        static_cast<std::int64_t>(eval_ids.size()), 1,
        [&](std::int64_t lo, std::int64_t hi) {
          Model probe = model_;
          for (std::int64_t i = lo; i < hi; ++i)
            accs[static_cast<std::size_t>(i)] = evaluate_accuracy(
                probe, data_.client(eval_ids[static_cast<std::size_t>(i)]));
        });
    double acc_sum = 0.0;
    for (double a : accs) acc_sum += a;
    rec.accuracy = acc_sum / static_cast<double>(eval_ids.size());
  }
  history_.push_back(rec);
  ++round_;
  return avg_loss;
}

void FedAvgRunner::run() {
  for (int r = 0; r < cfg_.rounds; ++r) run_round();
}

double FedAvgRunner::mean_client_accuracy() {
  auto accs = per_client_accuracy();
  double s = 0.0;
  for (double a : accs) s += a;
  return accs.empty() ? 0.0 : s / static_cast<double>(accs.size());
}

std::vector<double> FedAvgRunner::per_client_accuracy() {
  std::vector<double> accs(static_cast<std::size_t>(data_.num_clients()), 0.0);
  ThreadPool::global().parallel_for(
      data_.num_clients(), 1, [&](std::int64_t lo, std::int64_t hi) {
        Model probe = model_;
        for (std::int64_t i = lo; i < hi; ++i)
          accs[static_cast<std::size_t>(i)] =
              evaluate_accuracy(probe, data_.client(static_cast<int>(i)));
      });
  return accs;
}

}  // namespace fedtrans
