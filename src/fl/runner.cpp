#include "fl/runner.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "net/server.hpp"

namespace fedtrans {

FedAvgStrategy::FedAvgStrategy(Model init, FedAvgOptions opts)
    : model_(std::move(init)), opts_(opts) {
  compressor_ = make_compressor(opts_.compression, opts_.topk_ratio);
}

std::vector<ClientTask> FedAvgStrategy::plan_round(RoundContext& ctx,
                                                   Rng& rng) {
  const SessionConfig& s = ctx.session;
  const int want =
      opts_.overcommit > 0.0
          ? static_cast<int>(std::ceil((1.0 + opts_.overcommit) *
                                       s.clients_per_round))
          : s.clients_per_round;
  auto selected = ctx.selector.select(ctx.data.num_clients(), want, rng);
  if (opts_.respect_capacity) {
    const double macs = static_cast<double>(model_.macs());
    std::erase_if(selected, [&](int c) {
      return ctx.fleet[static_cast<std::size_t>(c)].capacity_macs < macs;
    });
  }

  // Over-selection deadline: predict completion times, close the round at
  // the configured quantile, and drop (but still bill) the late tail.
  dropped_.clear();
  deadline_ = 0.0;
  if (!selected.empty() &&
      (opts_.overcommit > 0.0 || opts_.deadline_quantile < 1.0)) {
    std::vector<double> times;
    times.reserve(selected.size());
    for (int c : selected)
      times.push_back(client_round_time_s(
          ctx.fleet[static_cast<std::size_t>(c)],
          static_cast<double>(model_.macs()), s.local.steps, s.local.batch,
          static_cast<double>(model_.param_bytes())));
    deadline_ = percentile(times, 100.0 * opts_.deadline_quantile);
    std::vector<int> on_time;
    for (std::size_t i = 0; i < selected.size(); ++i) {
      if (times[i] <= deadline_ &&
          static_cast<int>(on_time.size()) < s.clients_per_round) {
        on_time.push_back(selected[i]);
      } else {
        dropped_.push_back(selected[i]);
      }
    }
    if (on_time.empty()) {
      // Degenerate round: every prediction missed the deadline. Keep the
      // first pick as a real participant — and take it back out of the
      // dropped list so it isn't also billed as a lost straggler.
      on_time.push_back(selected.front());
      dropped_.erase(dropped_.begin());
    }
    selected = std::move(on_time);
  }

  global_ = model_.weights();
  acc_ = ws_zeros_like(global_);
  weight_sum_ = 0.0;
  loss_sum_ = 0.0;
  slowest_ = 0.0;
  trained_ = 0;

  std::vector<ClientTask> tasks;
  tasks.reserve(selected.size());
  for (int c : selected) tasks.push_back(ClientTask{c, 0});
  return tasks;
}

Model FedAvgStrategy::client_payload(const ClientTask&) {
  return model_;  // download the global weights
}

void FedAvgStrategy::absorb_update(const ClientTask& task, Model*,
                                   LocalTrainResult& res, RoundContext& ctx) {
  const int c = task.client;
  const double model_bytes = static_cast<double>(model_.param_bytes());

  // Uplink compression (EF-SGD: fold in this client's residual, compress,
  // remember what was dropped for its next participation). Uncompressed
  // uplinks pass -1 so billing quotes the model bytes itself — scaled to
  // the session's wire dtype in mixed-precision runs.
  double up_bytes = -1.0;
  if (opts_.compression != CompressionKind::None) {
    if (opts_.error_feedback) ef_.add_residual(c, res.delta);
    const WeightSet pre = res.delta;
    compressor_->compress(res.delta);
    if (opts_.error_feedback) ef_.store_residual(c, pre, res.delta);
    up_bytes = compressor_->compressed_bytes(res.delta);
  }

  const double w = static_cast<double>(res.num_samples);
  ws_axpy(acc_, static_cast<float>(w), res.delta);
  weight_sum_ += w;
  loss_sum_ += res.avg_loss;
  ++trained_;
  ctx.selector.report(c, res.avg_loss, res.num_samples);

  bill_trained_update(ctx, c, model_bytes, static_cast<double>(model_.macs()),
                      res, slowest_, up_bytes);
}

void FedAvgStrategy::absorb_metrics(const ClientTask& task,
                                    const LocalTrainResult& res,
                                    RoundContext& ctx) {
  // Numeric tree round: everything absorb_update does except the weight
  // accumulation (the delta was pre-summed by the aggregation tree).
  // Uplink compression is per-client and incompatible with pre-summing —
  // supports_partial_aggregation() refuses it up front.
  loss_sum_ += res.avg_loss;
  ++trained_;
  ctx.selector.report(task.client, res.avg_loss, res.num_samples);
  const double model_bytes = static_cast<double>(model_.param_bytes());
  bill_trained_update(ctx, task.client, model_bytes,
                      static_cast<double>(model_.macs()), res, slowest_);
}

void FedAvgStrategy::absorb_reduced(const ClientTask&, Model*,
                                    WeightSet& sum, double weight, int,
                                    RoundContext&) {
  ws_axpy(acc_, 1.0f, sum);
  weight_sum_ += weight;
}

void FedAvgStrategy::lost_update(const ClientTask&, ClientOutcome outcome,
                                 RoundContext& ctx) {
  bill_lost_update(ctx, outcome, static_cast<double>(model_.param_bytes()),
                   static_cast<double>(model_.macs()));
}

void FedAvgStrategy::finish_round(RoundContext& ctx, RoundRecord& rec) {
  // Late clients trained and downloaded but never uploaded: their device
  // compute and downlink are real costs; their updates are wasted — the
  // same bill as a mid-round dropout on the fabric.
  for (std::size_t i = 0; i < dropped_.size(); ++i)
    bill_lost_update(ctx, ClientOutcome::Dropout,
                     static_cast<double>(model_.param_bytes()),
                     static_cast<double>(model_.macs()));
  if (deadline_ > 0.0) slowest_ = std::min(slowest_, deadline_);

  if (weight_sum_ > 0.0) {
    ws_scale(acc_, static_cast<float>(1.0 / weight_sum_));
    if (!server_opt_) server_opt_ = make_server_opt(opts_.server_opt);
    server_opt_->apply(global_, acc_);
    model_.set_weights(global_);
  }

  rec.avg_loss = trained_ > 0 ? loss_sum_ / trained_ : 0.0;
  rec.round_time_s = slowest_;
  rec.lost_updates = static_cast<int>(dropped_.size());  // engine adds wire losses
}

double FedAvgStrategy::probe_accuracy(const std::vector<int>& ids,
                                      RoundContext& ctx) {
  // Per-thread model copies: forward() mutates layer caches, so the shared
  // model cannot be evaluated concurrently. Fixed-order summation keeps
  // the probe deterministic.
  std::vector<double> accs(ids.size(), 0.0);
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(ids.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        Model probe = model_;
        for (std::int64_t i = lo; i < hi; ++i)
          accs[static_cast<std::size_t>(i)] = evaluate_accuracy(
              probe, ctx.data.client(ids[static_cast<std::size_t>(i)]));
      });
  double acc_sum = 0.0;
  for (double a : accs) acc_sum += a;
  return acc_sum / static_cast<double>(ids.size());
}

FedAvgRunner::FedAvgRunner(Model init, const FederatedDataset& data,
                           std::vector<DeviceProfile> fleet, FlRunConfig cfg)
    : data_(data) {
  auto strategy =
      std::make_unique<FedAvgStrategy>(std::move(init), cfg.options());
  strategy_ = strategy.get();
  engine_ = std::make_unique<FederationEngine>(
      std::move(strategy), data, std::move(fleet), cfg.to_session());
}

FedAvgRunner::~FedAvgRunner() = default;
FedAvgRunner::FedAvgRunner(FedAvgRunner&&) noexcept = default;

std::vector<int> FedAvgRunner::select_clients(int population, int k,
                                              Rng& rng) {
  return uniform_select(population, k, rng);
}

double FedAvgRunner::run_round() { return engine_->run_round(); }

void FedAvgRunner::run() { engine_->run(); }

double FedAvgRunner::mean_client_accuracy() {
  auto accs = per_client_accuracy();
  double s = 0.0;
  for (double a : accs) s += a;
  return accs.empty() ? 0.0 : s / static_cast<double>(accs.size());
}

std::vector<double> FedAvgRunner::per_client_accuracy() {
  std::vector<double> accs(static_cast<std::size_t>(data_.num_clients()), 0.0);
  ThreadPool::global().parallel_for(
      data_.num_clients(), 1, [&](std::int64_t lo, std::int64_t hi) {
        Model probe = strategy_->model();
        for (std::int64_t i = lo; i < hi; ++i)
          accs[static_cast<std::size_t>(i)] =
              evaluate_accuracy(probe, data_.client(static_cast<int>(i)));
      });
  return accs;
}

}  // namespace fedtrans
