#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "fl/weights.hpp"

namespace fedtrans {

/// Server-side optimizer: consumes the sample-weighted average client delta
/// (w_global − w_client_end) each round and updates the global weights.
/// The adaptive family (FedAdagrad / FedYogi / FedAdam) follows Reddi et
/// al., "Adaptive Federated Optimization" — the paper's Fig. 8 shows
/// FedTrans composing with these server optimizers.
class ServerOptimizer {
 public:
  virtual ~ServerOptimizer() = default;
  virtual void apply(WeightSet& global, const WeightSet& avg_delta) = 0;
  virtual std::string name() const = 0;

  /// Serialize/restore internal state (momenta etc.) for checkpointing.
  /// Stateless optimizers write/read nothing.
  virtual void save_state(std::ostream&) const {}
  virtual void load_state(std::istream&) {}
};

/// FedAvg: w ← w − lr · Δ (lr = 1 recovers classic FedAvg).
class FedAvgServerOpt : public ServerOptimizer {
 public:
  explicit FedAvgServerOpt(double lr = 1.0) : lr_(lr) {}
  void apply(WeightSet& global, const WeightSet& avg_delta) override;
  std::string name() const override { return "FedAvg"; }

 private:
  double lr_;
};

/// FedAvgM: server momentum over the average delta,
///   m ← β m + Δ;  w ← w − lr · m.
class FedAvgMServerOpt : public ServerOptimizer {
 public:
  explicit FedAvgMServerOpt(double lr = 1.0, double beta = 0.9)
      : lr_(lr), beta_(beta) {}
  void apply(WeightSet& global, const WeightSet& avg_delta) override;
  std::string name() const override { return "FedAvgM"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double lr_, beta_;
  WeightSet m_;
};

/// FedYogi (adaptive server optimizer; Reddi et al.):
///   m ← β1 m + (1−β1) Δ
///   v ← v − (1−β2) Δ² · sign(v − Δ²)
///   w ← w − η · m / (sqrt(v) + τ)
class FedYogiServerOpt : public ServerOptimizer {
 public:
  explicit FedYogiServerOpt(double eta = 0.03, double beta1 = 0.9,
                            double beta2 = 0.99, double tau = 1e-3)
      : eta_(eta), beta1_(beta1), beta2_(beta2), tau_(tau) {}
  void apply(WeightSet& global, const WeightSet& avg_delta) override;
  std::string name() const override { return "FedYogi"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double eta_, beta1_, beta2_, tau_;
  WeightSet m_, v_;
};

/// FedAdam: like FedYogi but with the Adam second-moment update
///   v ← β2 v + (1−β2) Δ².
class FedAdamServerOpt : public ServerOptimizer {
 public:
  explicit FedAdamServerOpt(double eta = 0.03, double beta1 = 0.9,
                            double beta2 = 0.99, double tau = 1e-3)
      : eta_(eta), beta1_(beta1), beta2_(beta2), tau_(tau) {}
  void apply(WeightSet& global, const WeightSet& avg_delta) override;
  std::string name() const override { return "FedAdam"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double eta_, beta1_, beta2_, tau_;
  WeightSet m_, v_;
};

/// FedAdagrad: accumulating second moment
///   v ← v + Δ²;  w ← w − η · Δ / (sqrt(v) + τ).
class FedAdagradServerOpt : public ServerOptimizer {
 public:
  explicit FedAdagradServerOpt(double eta = 0.03, double tau = 1e-3)
      : eta_(eta), tau_(tau) {}
  void apply(WeightSet& global, const WeightSet& avg_delta) override;
  std::string name() const override { return "FedAdagrad"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double eta_, tau_;
  WeightSet v_;
};

enum class ServerOptKind { FedAvg, FedAvgM, FedYogi, FedAdam, FedAdagrad };

std::unique_ptr<ServerOptimizer> make_server_opt(ServerOptKind kind);
const char* server_opt_name(ServerOptKind kind);

}  // namespace fedtrans
