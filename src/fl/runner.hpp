#pragma once

#include "data/dataset.hpp"
#include "fl/compression.hpp"
#include "fl/local_train.hpp"
#include "fl/metrics.hpp"
#include "fl/selection.hpp"
#include "fl/server_opt.hpp"
#include "model/model.hpp"
#include "net/transport.hpp"
#include "trace/device.hpp"

namespace fedtrans {

class FederationServer;

/// Configuration of a single-global-model FL run (the FedAvg substrate that
/// baselines and several experiments build on).
struct FlRunConfig {
  int rounds = 50;
  int clients_per_round = 10;
  LocalTrainConfig local{};
  ServerOptKind server_opt = ServerOptKind::FedAvg;
  /// Participant selection policy (Uniform reproduces the paper protocol).
  SelectorKind selector = SelectorKind::Uniform;
  /// Uplink (client → server) delta compression; downlink stays dense.
  CompressionKind compression = CompressionKind::None;
  double topk_ratio = 0.1;
  /// Per-client error feedback for biased compressors (EF-SGD).
  bool error_feedback = false;
  /// Straggler mitigation by over-selection (FedScale-style over-commit):
  /// select ceil((1 + overcommit) × k) participants and close the round at
  /// the `deadline_quantile` of their completion times. Late clients still
  /// burn device compute (and receive the model) but their updates are
  /// dropped. overcommit = 0 / quantile = 1 reproduces the paper protocol.
  double overcommit = 0.0;
  double deadline_quantile = 1.0;
  /// Evaluate mean client accuracy every k rounds (0 = only on demand).
  int eval_every = 0;
  /// Client subsample size for periodic evaluation (0 = all clients).
  int eval_clients = 32;
  /// When true, clients whose capacity is below the model's MACs skip the
  /// round (single-model FL typically ignores this — the straggler issue).
  bool respect_capacity = false;
  /// Execute rounds over the federation fabric — wire-protocol messages on
  /// a simulated transport, collected by a multithreaded FederationServer —
  /// instead of direct in-process calls. With no fault injection the run is
  /// bitwise identical to the in-process path.
  bool use_fabric = false;
  /// Transport fault injection (message drop/duplication/reordering and
  /// mid-round client dropout); only consulted when use_fabric is set.
  FaultConfig fabric_faults{};
  std::uint64_t seed = 1;
};

/// Classic single-model federated averaging over a simulated fleet.
class FedAvgRunner {
 public:
  FedAvgRunner(Model init, const FederatedDataset& data,
               std::vector<DeviceProfile> fleet, FlRunConfig cfg);
  ~FedAvgRunner();  // out of line: FederationServer is incomplete here
  FedAvgRunner(FedAvgRunner&&) noexcept;

  /// Execute one round; returns the mean participant training loss.
  double run_round();
  /// Execute cfg.rounds rounds.
  void run();

  Model& model() { return model_; }
  const std::vector<RoundRecord>& history() const { return history_; }
  const CostMeter& costs() const { return costs_; }
  int rounds_done() const { return round_; }

  /// Mean top-1 accuracy across every client's eval shard.
  double mean_client_accuracy();
  std::vector<double> per_client_accuracy();

  /// Uniformly select k distinct clients (shared helper).
  static std::vector<int> select_clients(int population, int k, Rng& rng);

  /// The federation fabric backing this run; null until the first
  /// use_fabric round executes (and always null without use_fabric).
  const FederationServer* fabric() const { return fabric_.get(); }

 private:
  Model model_;
  const FederatedDataset& data_;
  std::vector<DeviceProfile> fleet_;
  FlRunConfig cfg_;
  Rng rng_;
  CostMeter costs_;
  std::vector<RoundRecord> history_;
  std::unique_ptr<ServerOptimizer> server_opt_;
  std::unique_ptr<ClientSelector> selector_;
  std::unique_ptr<DeltaCompressor> compressor_;
  ErrorFeedback ef_;
  std::unique_ptr<FederationServer> fabric_;
  int round_ = 0;
};

}  // namespace fedtrans
