#pragma once

#include "data/dataset.hpp"
#include "fl/compression.hpp"
#include "fl/engine.hpp"
#include "fl/local_train.hpp"
#include "fl/metrics.hpp"
#include "fl/selection.hpp"
#include "fl/server_opt.hpp"
#include "fl/session.hpp"
#include "model/model.hpp"
#include "net/transport.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// FedAvg's per-strategy options block (everything beyond the shared
/// SessionConfig runtime).
struct FedAvgOptions {
  ServerOptKind server_opt = ServerOptKind::FedAvg;
  /// Uplink (client → server) delta compression; downlink stays dense.
  CompressionKind compression = CompressionKind::None;
  double topk_ratio = 0.1;
  /// Per-client error feedback for biased compressors (EF-SGD).
  bool error_feedback = false;
  /// Straggler mitigation by over-selection (FedScale-style over-commit):
  /// select ceil((1 + overcommit) × k) participants and close the round at
  /// the `deadline_quantile` of their completion times. Late clients still
  /// burn device compute (and receive the model) but their updates are
  /// dropped. overcommit = 0 / quantile = 1 reproduces the paper protocol.
  double overcommit = 0.0;
  double deadline_quantile = 1.0;
  /// When true, clients whose capacity is below the model's MACs skip the
  /// round (single-model FL typically ignores this — the straggler issue).
  bool respect_capacity = false;
};

/// Configuration of a single-global-model FL run: the layered session
/// config (shared runtime + scheduling/transport) plus FedAvg's options.
/// Field-compatible with the historical flat struct — `cfg.rounds`,
/// `cfg.compression`, `cfg.use_fabric`, … all keep working.
struct FlRunConfig : SessionConfig, FedAvgOptions {
  /// The engine-level slice of this config.
  SessionConfig to_session() const {
    return static_cast<const SessionConfig&>(*this);
  }
  FedAvgOptions options() const {
    return static_cast<const FedAvgOptions&>(*this);
  }
};

/// Classic single-model federated averaging expressed as an engine
/// Strategy: one shared global model, weighted-mean aggregation through a
/// pluggable server optimizer, optional uplink compression with error
/// feedback, and FedScale-style over-selection with deadline trimming.
class FedAvgStrategy : public Strategy {
 public:
  FedAvgStrategy(Model init, FedAvgOptions opts);

  std::string name() const override { return "fedavg"; }
  std::vector<ClientTask> plan_round(RoundContext& ctx, Rng& rng) override;
  Model client_payload(const ClientTask& task) override;
  Model* shared_model() override { return &model_; }
  const Model& reference_model() const override { return model_; }
  void absorb_update(const ClientTask& task, Model* trained,
                     LocalTrainResult& res, RoundContext& ctx) override;
  void lost_update(const ClientTask& task, ClientOutcome outcome,
                   RoundContext& ctx) override;
  void finish_round(RoundContext& ctx, RoundRecord& rec) override;
  double probe_accuracy(const std::vector<int>& ids,
                        RoundContext& ctx) override;
  /// The weighted mean is a linear sum — numeric tree reduction applies as
  /// long as no per-client uplink compression rewrites the deltas.
  bool supports_partial_aggregation() const override {
    return opts_.compression == CompressionKind::None;
  }
  void absorb_metrics(const ClientTask& task, const LocalTrainResult& res,
                      RoundContext& ctx) override;
  void absorb_reduced(const ClientTask& task, Model* payload, WeightSet& sum,
                      double weight, int count, RoundContext& ctx) override;

  Model& model() { return model_; }
  const FedAvgOptions& options() const { return opts_; }

 private:
  Model model_;
  FedAvgOptions opts_;
  std::unique_ptr<ServerOptimizer> server_opt_;
  std::unique_ptr<DeltaCompressor> compressor_;
  ErrorFeedback ef_;

  // Per-round accumulators (reset in plan_round, consumed in finish_round).
  WeightSet global_;  // weight snapshot the round's deltas apply to
  WeightSet acc_;
  double weight_sum_ = 0.0;
  double loss_sum_ = 0.0;
  double slowest_ = 0.0;
  int trained_ = 0;
  std::vector<int> dropped_;
  double deadline_ = 0.0;
};

/// Classic single-model federated averaging over a simulated fleet — a thin
/// shim over FederationEngine + FedAvgStrategy (kept as the historical
/// entry point; bitwise-parity with direct engine use is test-enforced).
class FedAvgRunner {
 public:
  FedAvgRunner(Model init, const FederatedDataset& data,
               std::vector<DeviceProfile> fleet, FlRunConfig cfg);
  ~FedAvgRunner();
  FedAvgRunner(FedAvgRunner&&) noexcept;

  /// Execute one round; returns the mean participant training loss.
  double run_round();
  /// Execute cfg.rounds rounds.
  void run();

  Model& model() { return strategy_->model(); }
  const std::vector<RoundRecord>& history() const {
    return engine_->history();
  }
  const CostMeter& costs() const { return engine_->costs(); }
  int rounds_done() const { return engine_->rounds_done(); }
  FederationEngine& engine() { return *engine_; }

  /// Mean top-1 accuracy across every client's eval shard.
  double mean_client_accuracy();
  std::vector<double> per_client_accuracy();

  /// Uniformly select k distinct clients (forwarding shim; the single
  /// implementation lives in fl/selection as uniform_select).
  static std::vector<int> select_clients(int population, int k, Rng& rng);

  /// The federation fabric backing this run; null until the first
  /// use_fabric round executes (and always null without use_fabric).
  const FederationServer* fabric() const { return engine_->fabric(); }

 private:
  const FederatedDataset& data_;
  FedAvgStrategy* strategy_;  // owned by engine_
  std::unique_ptr<FederationEngine> engine_;
};

}  // namespace fedtrans
