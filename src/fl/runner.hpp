#pragma once

#include "data/dataset.hpp"
#include "fl/compression.hpp"
#include "fl/local_train.hpp"
#include "fl/metrics.hpp"
#include "fl/selection.hpp"
#include "fl/server_opt.hpp"
#include "model/model.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// Configuration of a single-global-model FL run (the FedAvg substrate that
/// baselines and several experiments build on).
struct FlRunConfig {
  int rounds = 50;
  int clients_per_round = 10;
  LocalTrainConfig local{};
  ServerOptKind server_opt = ServerOptKind::FedAvg;
  /// Participant selection policy (Uniform reproduces the paper protocol).
  SelectorKind selector = SelectorKind::Uniform;
  /// Uplink (client → server) delta compression; downlink stays dense.
  CompressionKind compression = CompressionKind::None;
  double topk_ratio = 0.1;
  /// Per-client error feedback for biased compressors (EF-SGD).
  bool error_feedback = false;
  /// Straggler mitigation by over-selection (FedScale-style over-commit):
  /// select ceil((1 + overcommit) × k) participants and close the round at
  /// the `deadline_quantile` of their completion times. Late clients still
  /// burn device compute (and receive the model) but their updates are
  /// dropped. overcommit = 0 / quantile = 1 reproduces the paper protocol.
  double overcommit = 0.0;
  double deadline_quantile = 1.0;
  /// Evaluate mean client accuracy every k rounds (0 = only on demand).
  int eval_every = 0;
  /// Client subsample size for periodic evaluation (0 = all clients).
  int eval_clients = 32;
  /// When true, clients whose capacity is below the model's MACs skip the
  /// round (single-model FL typically ignores this — the straggler issue).
  bool respect_capacity = false;
  std::uint64_t seed = 1;
};

/// Classic single-model federated averaging over a simulated fleet.
class FedAvgRunner {
 public:
  FedAvgRunner(Model init, const FederatedDataset& data,
               std::vector<DeviceProfile> fleet, FlRunConfig cfg);

  /// Execute one round; returns the mean participant training loss.
  double run_round();
  /// Execute cfg.rounds rounds.
  void run();

  Model& model() { return model_; }
  const std::vector<RoundRecord>& history() const { return history_; }
  const CostMeter& costs() const { return costs_; }
  int rounds_done() const { return round_; }

  /// Mean top-1 accuracy across every client's eval shard.
  double mean_client_accuracy();
  std::vector<double> per_client_accuracy();

  /// Uniformly select k distinct clients (shared helper).
  static std::vector<int> select_clients(int population, int k, Rng& rng);

 private:
  Model model_;
  const FederatedDataset& data_;
  std::vector<DeviceProfile> fleet_;
  FlRunConfig cfg_;
  Rng rng_;
  CostMeter costs_;
  std::vector<RoundRecord> history_;
  std::unique_ptr<ServerOptimizer> server_opt_;
  std::unique_ptr<ClientSelector> selector_;
  std::unique_ptr<DeltaCompressor> compressor_;
  ErrorFeedback ef_;
  int round_ = 0;
};

}  // namespace fedtrans
