#pragma once

#include "data/dataset.hpp"
#include "fl/weights.hpp"
#include "model/model.hpp"
#include "nn/sgd.hpp"

namespace fedtrans {

/// Paper defaults (Table 7): 20 local steps, batch size 10, lr 0.05.
struct LocalTrainConfig {
  int steps = 20;
  int batch = 10;
  SgdOptions sgd{};
  /// Mixed-precision training (tensor/dtype.hpp). When enabled, weights,
  /// activations and the returned delta are kept on the f16/bf16 grid with
  /// fp32 accumulation, the loss gradient is scaled by the precision's
  /// loss scale (unscaled again inside Sgd::step), and the delta serializes
  /// half-width on the wire. Default: disabled (pure fp32).
  Precision precision{};
};

/// Outcome of one client's local training pass.
struct LocalTrainResult {
  /// w_start − w_end (the client's pseudo-gradient / "model update").
  WeightSet delta;
  /// Mean training loss across the local steps (the signal the coordinator
  /// uses for utilities and DoC).
  double avg_loss = 0.0;
  int num_samples = 0;
  /// Training compute spent: 3 × model MACs × steps × batch.
  double macs_used = 0.0;
};

/// Run local SGD on `model` (entered with the server weights, leaves with
/// the locally updated ones) over the client's train shard.
LocalTrainResult local_train(Model& model, const ClientData& data,
                             const LocalTrainConfig& cfg, Rng& rng);

/// Top-1 accuracy of `model` on the client's eval shard.
double evaluate_accuracy(Model& model, const ClientData& data,
                         int eval_batch = 64);

/// Mean training loss of `model` over (up to `max_samples` of) the client's
/// train shard, without updating weights. Used for utility probes.
double evaluate_loss(Model& model, const ClientData& data,
                     int max_samples = 64);

}  // namespace fedtrans
