#include "fl/local_train.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "nn/loss.hpp"

namespace fedtrans {

LocalTrainResult local_train(Model& model, const ClientData& data,
                             const LocalTrainConfig& cfg, Rng& rng) {
  FT_CHECK_MSG(data.train_size() > 0, "local_train on empty client shard");
  LocalTrainResult res;
  res.num_samples = data.train_size();

  const Precision& prec = cfg.precision;
  if (prec.enabled()) {
    // Snap incoming server weights onto the half grid so training starts
    // from exactly what a half-width ModelDown payload would deliver
    // (idempotent when the engine already quantized them for the wire).
    for (auto& p : model.params()) p.value->quantize_storage(prec.dtype);
  }
  WeightSet start = model.weights();

  SoftmaxCrossEntropy loss;
  SgdOptions sgd = cfg.sgd;
  const double loss_scale = prec.effective_loss_scale();
  if (prec.enabled()) sgd.loss_scale = loss_scale;
  Sgd opt(model.params(), sgd);
  // Activations round to the half grid at layer seams for the duration of
  // this client's steps (thread-local, so eval probes elsewhere stay fp32).
  ScopedActivationDtype amp(prec.enabled() ? prec.dtype : Dtype::F32);
  Tensor x;
  std::vector<int> y;
  double loss_sum = 0.0;
  for (int s = 0; s < cfg.steps; ++s) {
    sample_batch(data, cfg.batch, rng, x, y);
    Tensor logits = model.forward(x, /*train=*/true);
    loss_sum += loss.forward(logits, y);
    Tensor dlogits = loss.backward();
    if (loss_scale != 1.0) dlogits.mul_(static_cast<float>(loss_scale));
    model.backward(dlogits);
    opt.step();
    if (prec.enabled())
      for (auto& p : model.params()) p.value->quantize_storage(prec.dtype);
  }
  res.avg_loss = loss_sum / cfg.steps;
  res.macs_used = 3.0 * static_cast<double>(model.macs()) * cfg.steps *
                  cfg.batch;

  res.delta = std::move(start);
  WeightSet end = model.weights();
  ws_sub(res.delta, end);  // delta = start - end
  if (prec.enabled()) {
    // Both operands sat on the half grid, but their difference need not:
    // re-snap so the update ships 2 bytes/element exactly.
    for (auto& t : res.delta) t.quantize_storage(prec.dtype);
  }
  return res;
}

double evaluate_accuracy(Model& model, const ClientData& data,
                         int eval_batch) {
  const int n = data.eval_size();
  if (n == 0) return 0.0;
  const auto& shape = data.x_eval.shape();
  const auto sample_sz = data.x_eval.numel() / shape[0];
  int correct = 0;
  for (int off = 0; off < n; off += eval_batch) {
    const int b = std::min(eval_batch, n - off);
    Tensor x({b, shape[1], shape[2], shape[3]});
    std::copy_n(data.x_eval.data() + off * sample_sz, b * sample_sz, x.data());
    Tensor logits = model.forward(x, /*train=*/false);
    correct += count_correct(
        logits, std::span<const int>(data.y_eval).subspan(
                    static_cast<std::size_t>(off), static_cast<std::size_t>(b)));
  }
  return static_cast<double>(correct) / n;
}

double evaluate_loss(Model& model, const ClientData& data, int max_samples) {
  const int n = std::min(data.train_size(), max_samples);
  if (n == 0) return 0.0;
  const auto& shape = data.x_train.shape();
  const auto sample_sz = data.x_train.numel() / shape[0];
  Tensor x({n, shape[1], shape[2], shape[3]});
  std::copy_n(data.x_train.data(), n * sample_sz, x.data());
  SoftmaxCrossEntropy loss;
  Tensor logits = model.forward(x, /*train=*/false);
  return loss.forward(logits,
                      std::span<const int>(data.y_train).first(
                          static_cast<std::size_t>(n)));
}

}  // namespace fedtrans
