#include "fl/local_train.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "nn/loss.hpp"

namespace fedtrans {

LocalTrainResult local_train(Model& model, const ClientData& data,
                             const LocalTrainConfig& cfg, Rng& rng) {
  FT_CHECK_MSG(data.train_size() > 0, "local_train on empty client shard");
  LocalTrainResult res;
  res.num_samples = data.train_size();

  WeightSet start = model.weights();

  SoftmaxCrossEntropy loss;
  Sgd opt(model.params(), cfg.sgd);
  Tensor x;
  std::vector<int> y;
  double loss_sum = 0.0;
  for (int s = 0; s < cfg.steps; ++s) {
    sample_batch(data, cfg.batch, rng, x, y);
    Tensor logits = model.forward(x, /*train=*/true);
    loss_sum += loss.forward(logits, y);
    model.backward(loss.backward());
    opt.step();
  }
  res.avg_loss = loss_sum / cfg.steps;
  res.macs_used = 3.0 * static_cast<double>(model.macs()) * cfg.steps *
                  cfg.batch;

  res.delta = std::move(start);
  WeightSet end = model.weights();
  ws_sub(res.delta, end);  // delta = start - end
  return res;
}

double evaluate_accuracy(Model& model, const ClientData& data,
                         int eval_batch) {
  const int n = data.eval_size();
  if (n == 0) return 0.0;
  const auto& shape = data.x_eval.shape();
  const auto sample_sz = data.x_eval.numel() / shape[0];
  int correct = 0;
  for (int off = 0; off < n; off += eval_batch) {
    const int b = std::min(eval_batch, n - off);
    Tensor x({b, shape[1], shape[2], shape[3]});
    std::copy_n(data.x_eval.data() + off * sample_sz, b * sample_sz, x.data());
    Tensor logits = model.forward(x, /*train=*/false);
    correct += count_correct(
        logits, std::span<const int>(data.y_eval).subspan(
                    static_cast<std::size_t>(off), static_cast<std::size_t>(b)));
  }
  return static_cast<double>(correct) / n;
}

double evaluate_loss(Model& model, const ClientData& data, int max_samples) {
  const int n = std::min(data.train_size(), max_samples);
  if (n == 0) return 0.0;
  const auto& shape = data.x_train.shape();
  const auto sample_sz = data.x_train.numel() / shape[0];
  Tensor x({n, shape[1], shape[2], shape[3]});
  std::copy_n(data.x_train.data(), n * sample_sz, x.data());
  SoftmaxCrossEntropy loss;
  Tensor logits = model.forward(x, /*train=*/false);
  return loss.forward(logits,
                      std::span<const int>(data.y_train).first(
                          static_cast<std::size_t>(n)));
}

}  // namespace fedtrans
