#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace fedtrans {

/// Uniformly select k distinct clients from [0, population): full shuffle +
/// truncate. The single selection helper behind UniformSelector, every
/// strategy's ad-hoc draws, the engine's eval probes, and the legacy
/// FedAvgRunner::select_clients entry point — all consume the Rng
/// identically, so historical runs replay bit-exactly.
std::vector<int> uniform_select(int population, int k, Rng& rng);

/// Pluggable participant selection. The paper's protocol samples
/// participants uniformly (FedScale's default); Oort-style guided selection
/// (Lai et al., OSDI'21 — cited in the paper's related work) is provided as
/// an extension and exercised by the selection ablation bench.
class ClientSelector {
 public:
  virtual ~ClientSelector() = default;

  /// Choose k distinct clients from [0, population).
  virtual std::vector<int> select(int population, int k, Rng& rng) = 0;

  /// Feedback after a round: the loss each selected client reported and how
  /// many samples it trained on. Default: selection is stateless.
  virtual void report(int /*client*/, double /*loss*/, int /*samples*/) {}

  virtual std::string name() const = 0;

  /// Serialize/restore internal state for checkpointing (stateless
  /// selectors write/read nothing).
  virtual void save_state(std::ostream&) const {}
  virtual void load_state(std::istream&) {}
};

/// Uniform-without-replacement selection (the FedScale / paper default).
class UniformSelector : public ClientSelector {
 public:
  std::vector<int> select(int population, int k, Rng& rng) override;
  std::string name() const override { return "uniform"; }
};

/// Oort-like guided selection: clients carry a statistical utility
/// |loss| · sqrt(samples); each round the top (1−ε) fraction by utility is
/// exploited and an ε fraction is explored uniformly among never-or-rarely
/// seen clients. A staleness bonus keeps long-unselected clients from
/// starving (Lai et al. use a confidence interval term; the sqrt-staleness
/// bonus here preserves that behaviour at simulation scale).
class OortSelector : public ClientSelector {
 public:
  struct Options {
    double epsilon = 0.2;          // exploration fraction
    double staleness_bonus = 0.1;  // weight of the sqrt(rounds-since-seen)
  };

  OortSelector() : OortSelector(Options{0.2, 0.1}) {}
  explicit OortSelector(Options opts) : opts_(opts) {}

  std::vector<int> select(int population, int k, Rng& rng) override;
  void report(int client, double loss, int samples) override;
  std::string name() const override { return "oort"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  double utility(int client) const;

 private:
  void ensure_size(int population);

  Options opts_;
  std::vector<double> utility_;    // statistical utility per client
  std::vector<int> last_round_;    // last round the client was selected
  std::vector<bool> explored_;     // ever selected
  int round_ = 0;
};

/// Power-of-choice (π_pow-d): sample a candidate pool of d·k clients
/// uniformly, then keep the k with the highest reported loss (biases toward
/// clients the model fits worst, accelerating convergence on skewed data).
class PowerOfChoiceSelector : public ClientSelector {
 public:
  explicit PowerOfChoiceSelector(int candidate_factor = 3)
      : factor_(candidate_factor) {}

  std::vector<int> select(int population, int k, Rng& rng) override;
  void report(int client, double loss, int samples) override;
  std::string name() const override { return "pow-d"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  int factor_;
  std::vector<double> last_loss_;
};

enum class SelectorKind { Uniform, Oort, PowerOfChoice };

std::unique_ptr<ClientSelector> make_selector(SelectorKind kind);

}  // namespace fedtrans
