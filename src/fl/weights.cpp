#include "fl/weights.hpp"

#include <cmath>

#include "common/check.hpp"

namespace fedtrans {

void ws_add(WeightSet& a, const WeightSet& b) {
  FT_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i].add_(b[i]);
}

void ws_sub(WeightSet& a, const WeightSet& b) {
  FT_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i].sub_(b[i]);
}

void ws_scale(WeightSet& a, float s) {
  for (auto& t : a) t.mul_(s);
}

void ws_axpy(WeightSet& a, float s, const WeightSet& b) {
  FT_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i].axpy_(s, b[i]);
}

WeightSet ws_zeros_like(const WeightSet& like) {
  WeightSet out;
  out.reserve(like.size());
  for (const auto& t : like) out.emplace_back(t.shape());
  return out;
}

std::int64_t ws_numel(const WeightSet& ws) {
  std::int64_t n = 0;
  for (const auto& t : ws) n += t.numel();
  return n;
}

double ws_l2_norm(const WeightSet& ws) {
  double s = 0.0;
  for (const auto& t : ws) {
    const double n = t.l2_norm();
    s += n * n;
  }
  return std::sqrt(s);
}

bool ws_all_finite(const WeightSet& ws) {
  for (const auto& t : ws)
    for (std::int64_t e = 0; e < t.numel(); ++e)
      if (!std::isfinite(t[e])) return false;
  return true;
}

}  // namespace fedtrans
