#pragma once

#include <queue>

#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "fl/metrics.hpp"
#include "fl/server_opt.hpp"
#include "model/model.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// Configuration of a buffered-asynchronous FL run (FedBuff; Nguyen et al.,
/// AISTATS'22 — the asynchronous scheduling work the paper cites for
/// straggler mitigation).
struct AsyncRunConfig {
  /// Number of client trainings kept in flight at all times.
  int concurrency = 10;
  /// Server aggregates after this many client updates arrive (FedBuff's K).
  int buffer_size = 10;
  /// Total number of server aggregations to perform.
  int aggregations = 50;
  /// Staleness discount exponent: update weight = (1 + τ)^(−p) where τ is
  /// the number of server versions the client's weights are behind. p = 0.5
  /// is FedBuff's default polynomial discount.
  double staleness_exponent = 0.5;
  LocalTrainConfig local{};
  ServerOptKind server_opt = ServerOptKind::FedAvg;
  std::uint64_t seed = 1;
};

/// Event-driven simulation of buffered asynchronous federated learning.
///
/// Unlike the synchronous FedAvgRunner — whose wall-clock per round is the
/// *slowest* participant (the straggler issue, paper Appendix C) — the async
/// server dispatches a new client the moment one finishes, and folds late
/// updates in with a staleness discount. Client completion times come from
/// the same device-trace latency model the synchronous runner uses, so
/// sync-vs-async wall-clock comparisons are apples-to-apples.
class FedBuffRunner {
 public:
  FedBuffRunner(Model init, const FederatedDataset& data,
                std::vector<DeviceProfile> fleet, AsyncRunConfig cfg);

  /// Run until cfg.aggregations server updates have been applied.
  void run();

  Model& model() { return model_; }
  const CostMeter& costs() const { return costs_; }
  const std::vector<RoundRecord>& history() const { return history_; }
  /// Simulated seconds since the run started.
  double now_s() const { return now_s_; }
  int aggregations_done() const { return version_; }
  /// Mean staleness (server versions behind) across all folded-in updates.
  double mean_staleness() const;

  double mean_client_accuracy();

 private:
  struct InFlight {
    double finish_s = 0.0;
    int client = 0;
    int version = 0;  // server version the client started from
    bool operator>(const InFlight& o) const { return finish_s > o.finish_s; }
  };

  void dispatch_one();
  void fold_update(const InFlight& job);

  Model model_;
  const FederatedDataset& data_;
  std::vector<DeviceProfile> fleet_;
  AsyncRunConfig cfg_;
  Rng rng_;
  std::unique_ptr<ServerOptimizer> server_opt_;

  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>>
      in_flight_;
  WeightSet buffer_;        // staleness-weighted sum of pending deltas
  double buffer_weight_ = 0.0;
  int buffered_ = 0;
  double loss_accum_ = 0.0;
  int loss_count_ = 0;

  double now_s_ = 0.0;
  int version_ = 0;
  std::int64_t total_updates_ = 0;
  double staleness_sum_ = 0.0;
  CostMeter costs_;
  std::vector<RoundRecord> history_;
};

}  // namespace fedtrans
