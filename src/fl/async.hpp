#pragma once

#include "data/dataset.hpp"
#include "fl/engine.hpp"
#include "fl/local_train.hpp"
#include "fl/metrics.hpp"
#include "fl/server_opt.hpp"
#include "fl/session.hpp"
#include "model/model.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// Configuration of a buffered-asynchronous FL run (FedBuff; Nguyen et al.,
/// AISTATS'22 — the asynchronous scheduling work the paper cites for
/// straggler mitigation). Field-compatible with the historical flat struct;
/// the shared runtime block (local, seed, …) is inherited and the FedBuff
/// knobs map onto the engine's AsyncBlock via to_session().
struct AsyncRunConfig : SessionRuntime {
  /// Number of client trainings kept in flight at all times.
  int concurrency = 10;
  /// Server aggregates after this many client updates arrive (FedBuff's K).
  int buffer_size = 10;
  /// Total number of server aggregations to perform.
  int aggregations = 50;
  /// Staleness discount exponent: update weight = (1 + τ)^(−p) where τ is
  /// the number of server versions the client's weights are behind. p = 0.5
  /// is FedBuff's default polynomial discount.
  double staleness_exponent = 0.5;
  ServerOptKind server_opt = ServerOptKind::FedAvg;

  /// Run the event loop over the federation fabric: every dispatch is a
  /// real ModelDown/UpdateUp round trip, completions are ordered by
  /// server-side delivery time, and lost updates hit `topology`'s
  /// ack-timeout/retry policy (under `fabric_faults` injection).
  bool use_fabric = false;
  FaultConfig fabric_faults{};
  FabricTopology topology{};

  SessionConfig to_session() const {
    SessionConfig s = SessionConfig::from(*this);
    s.with_async(AsyncBlock{concurrency, buffer_size, aggregations,
                            staleness_exponent});
    if (use_fabric) s.with_fabric(fabric_faults);
    s.topology = topology;
    return s;
  }
};

/// FedBuff's aggregation policy as an engine Strategy: the engine's async
/// scheduling mode owns the event loop — dispatch a new client the moment
/// one finishes, fold completions in simulated-completion order, discount
/// by staleness — and this strategy owns the buffer and the server model.
class FedBuffStrategy : public Strategy {
 public:
  FedBuffStrategy(Model init, ServerOptKind server_opt);

  std::string name() const override { return "fedbuff"; }
  void attach(RoundContext& ctx, Rng& rng) override;
  Model client_payload(const ClientTask& task) override;
  Model* shared_model() override { return &model_; }
  const Model& reference_model() const override { return model_; }
  std::optional<double> absorb_async(int client, LocalTrainResult& res,
                                     double discount,
                                     RoundContext& ctx) override;

  // Synchronous hooks are not part of the async protocol.
  void absorb_update(const ClientTask&, Model*, LocalTrainResult&,
                     RoundContext&) override;
  void finish_round(RoundContext&, RoundRecord&) override;
  double probe_accuracy(const std::vector<int>&, RoundContext&) override;

  Model& model() { return model_; }

 private:
  Model model_;
  ServerOptKind opt_kind_;
  std::unique_ptr<ServerOptimizer> server_opt_;
  WeightSet buffer_;  // staleness-weighted sum of pending deltas
  double buffer_weight_ = 0.0;
  int buffered_ = 0;
  double loss_accum_ = 0.0;
  int loss_count_ = 0;
};

/// Event-driven simulation of buffered asynchronous federated learning —
/// the historical entry point, now a thin shim over the FederationEngine's
/// async scheduling mode + FedBuffStrategy.
///
/// Unlike the synchronous FedAvgRunner — whose wall-clock per round is the
/// *slowest* participant (the straggler issue, paper Appendix C) — the async
/// server dispatches a new client the moment one finishes, and folds late
/// updates in with a staleness discount. Client completion times come from
/// the same device-trace latency model the synchronous runner uses, so
/// sync-vs-async wall-clock comparisons are apples-to-apples.
class FedBuffRunner {
 public:
  FedBuffRunner(Model init, const FederatedDataset& data,
                std::vector<DeviceProfile> fleet, AsyncRunConfig cfg);

  /// Run until cfg.aggregations server updates have been applied.
  void run() { engine_->run(); }

  Model& model() { return strategy_->model(); }
  const CostMeter& costs() const { return engine_->costs(); }
  const std::vector<RoundRecord>& history() const {
    return engine_->history();
  }
  /// Simulated seconds since the run started.
  double now_s() const { return engine_->now_s(); }
  int aggregations_done() const { return engine_->versions_done(); }
  /// Mean staleness (server versions behind) across all folded-in updates.
  double mean_staleness() const { return engine_->mean_staleness(); }

  double mean_client_accuracy();
  FederationEngine& engine() { return *engine_; }

 private:
  const FederatedDataset& data_;
  FedBuffStrategy* strategy_;  // owned by engine_
  std::unique_ptr<FederationEngine> engine_;
};

}  // namespace fedtrans
