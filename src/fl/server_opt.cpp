#include "fl/server_opt.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace fedtrans {

namespace {

void save_weight_set(std::ostream& os, const WeightSet& ws) {
  const std::uint32_t n = static_cast<std::uint32_t>(ws.size());
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Tensor& t : ws) t.save(os);
}

WeightSet load_weight_set(std::istream& is) {
  std::uint32_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  FT_CHECK_MSG(is.good(), "truncated optimizer state");
  WeightSet ws;
  ws.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ws.push_back(Tensor::load(is));
  return ws;
}

}  // namespace

void FedAvgServerOpt::apply(WeightSet& global, const WeightSet& avg_delta) {
  ws_axpy(global, static_cast<float>(-lr_), avg_delta);
}

void FedAvgMServerOpt::apply(WeightSet& global, const WeightSet& avg_delta) {
  if (m_.empty()) m_ = ws_zeros_like(global);
  FT_CHECK(m_.size() == global.size());
  ws_scale(m_, static_cast<float>(beta_));
  ws_add(m_, avg_delta);
  ws_axpy(global, static_cast<float>(-lr_), m_);
}

void FedAvgMServerOpt::save_state(std::ostream& os) const {
  save_weight_set(os, m_);
}

void FedAvgMServerOpt::load_state(std::istream& is) {
  m_ = load_weight_set(is);
}

void FedYogiServerOpt::apply(WeightSet& global, const WeightSet& avg_delta) {
  if (m_.empty()) {
    m_ = ws_zeros_like(global);
    v_ = ws_zeros_like(global);
  }
  FT_CHECK(m_.size() == global.size());
  // The server "gradient" is the average delta (w_global − w_client).
  for (std::size_t i = 0; i < global.size(); ++i) {
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& w = global[i];
    const Tensor& g = avg_delta[i];
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      const float gj = g[j];
      m[j] = static_cast<float>(beta1_) * m[j] +
             static_cast<float>(1.0 - beta1_) * gj;
      const float g2 = gj * gj;
      const float sign = v[j] > g2 ? 1.0f : (v[j] < g2 ? -1.0f : 0.0f);
      v[j] = v[j] - static_cast<float>(1.0 - beta2_) * g2 * sign;
      w[j] -= static_cast<float>(eta_) * m[j] /
              (std::sqrt(std::max(v[j], 0.0f)) + static_cast<float>(tau_));
    }
  }
}

void FedYogiServerOpt::save_state(std::ostream& os) const {
  save_weight_set(os, m_);
  save_weight_set(os, v_);
}

void FedYogiServerOpt::load_state(std::istream& is) {
  m_ = load_weight_set(is);
  v_ = load_weight_set(is);
}

void FedAdamServerOpt::apply(WeightSet& global, const WeightSet& avg_delta) {
  if (m_.empty()) {
    m_ = ws_zeros_like(global);
    v_ = ws_zeros_like(global);
  }
  FT_CHECK(m_.size() == global.size());
  for (std::size_t i = 0; i < global.size(); ++i) {
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& w = global[i];
    const Tensor& g = avg_delta[i];
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      const float gj = g[j];
      m[j] = static_cast<float>(beta1_) * m[j] +
             static_cast<float>(1.0 - beta1_) * gj;
      v[j] = static_cast<float>(beta2_) * v[j] +
             static_cast<float>(1.0 - beta2_) * gj * gj;
      w[j] -= static_cast<float>(eta_) * m[j] /
              (std::sqrt(std::max(v[j], 0.0f)) + static_cast<float>(tau_));
    }
  }
}

void FedAdamServerOpt::save_state(std::ostream& os) const {
  save_weight_set(os, m_);
  save_weight_set(os, v_);
}

void FedAdamServerOpt::load_state(std::istream& is) {
  m_ = load_weight_set(is);
  v_ = load_weight_set(is);
}

void FedAdagradServerOpt::apply(WeightSet& global,
                                const WeightSet& avg_delta) {
  if (v_.empty()) v_ = ws_zeros_like(global);
  FT_CHECK(v_.size() == global.size());
  for (std::size_t i = 0; i < global.size(); ++i) {
    Tensor& v = v_[i];
    Tensor& w = global[i];
    const Tensor& g = avg_delta[i];
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      const float gj = g[j];
      v[j] += gj * gj;
      w[j] -= static_cast<float>(eta_) * gj /
              (std::sqrt(v[j]) + static_cast<float>(tau_));
    }
  }
}

void FedAdagradServerOpt::save_state(std::ostream& os) const {
  save_weight_set(os, v_);
}

void FedAdagradServerOpt::load_state(std::istream& is) {
  v_ = load_weight_set(is);
}

std::unique_ptr<ServerOptimizer> make_server_opt(ServerOptKind kind) {
  switch (kind) {
    case ServerOptKind::FedAvg: return std::make_unique<FedAvgServerOpt>();
    case ServerOptKind::FedAvgM: return std::make_unique<FedAvgMServerOpt>();
    case ServerOptKind::FedYogi: return std::make_unique<FedYogiServerOpt>();
    case ServerOptKind::FedAdam: return std::make_unique<FedAdamServerOpt>();
    case ServerOptKind::FedAdagrad:
      return std::make_unique<FedAdagradServerOpt>();
  }
  return std::make_unique<FedAvgServerOpt>();
}

const char* server_opt_name(ServerOptKind kind) {
  switch (kind) {
    case ServerOptKind::FedAvg: return "FedAvg";
    case ServerOptKind::FedAvgM: return "FedAvgM";
    case ServerOptKind::FedYogi: return "FedYogi";
    case ServerOptKind::FedAdam: return "FedAdam";
    case ServerOptKind::FedAdagrad: return "FedAdagrad";
  }
  return "FedAvg";
}

}  // namespace fedtrans
