#include "fl/async.hpp"

#include <cmath>

#include "common/check.hpp"
#include "fl/runner.hpp"

namespace fedtrans {

FedBuffRunner::FedBuffRunner(Model init, const FederatedDataset& data,
                             std::vector<DeviceProfile> fleet,
                             AsyncRunConfig cfg)
    : model_(std::move(init)),
      data_(data),
      fleet_(std::move(fleet)),
      cfg_(cfg),
      rng_(cfg.seed) {
  FT_CHECK_MSG(static_cast<int>(fleet_.size()) == data_.num_clients(),
               "fleet size must match client count");
  FT_CHECK(cfg_.concurrency > 0 && cfg_.buffer_size > 0 &&
           cfg_.aggregations > 0 && cfg_.staleness_exponent >= 0.0);
  server_opt_ = make_server_opt(cfg_.server_opt);
  buffer_ = ws_zeros_like(model_.weights());
  costs_.note_storage(static_cast<double>(model_.param_bytes()));
}

void FedBuffRunner::dispatch_one() {
  const int c = rng_.uniform_int(0, data_.num_clients() - 1);
  const auto& dev = fleet_[static_cast<std::size_t>(c)];
  const double model_bytes = static_cast<double>(model_.param_bytes());
  const double t = client_round_time_s(dev,
                                       static_cast<double>(model_.macs()),
                                       cfg_.local.steps, cfg_.local.batch,
                                       model_bytes);
  in_flight_.push(InFlight{now_s_ + t, c, version_});
  costs_.add_client_round_time(t);
}

void FedBuffRunner::fold_update(const InFlight& job) {
  // The client trains from the weights it downloaded at dispatch time. The
  // simulation trains lazily at completion instead of keeping per-client
  // weight snapshots; staleness enters through the FedBuff discount. (The
  // approximation ships *fresher* weights to the client than true async
  // would, which if anything understates async's advantage — acceptable for
  // the wall-clock comparison this runner exists for.)
  Model local_model = model_;
  Rng crng = rng_.fork();
  auto res = local_train(local_model, data_.client(job.client), cfg_.local,
                         crng);

  const int staleness = version_ - job.version;
  staleness_sum_ += staleness;
  ++total_updates_;
  const double discount =
      std::pow(1.0 + staleness, -cfg_.staleness_exponent);

  ws_axpy(buffer_, static_cast<float>(discount), res.delta);
  buffer_weight_ += discount;
  ++buffered_;
  loss_accum_ += res.avg_loss;
  ++loss_count_;

  const double model_bytes = static_cast<double>(model_.param_bytes());
  costs_.add_training_macs(res.macs_used);
  costs_.add_transfer(model_bytes, model_bytes);

  if (buffered_ >= cfg_.buffer_size) {
    WeightSet global = model_.weights();
    ws_scale(buffer_, static_cast<float>(1.0 / buffer_weight_));
    server_opt_->apply(global, buffer_);
    model_.set_weights(global);
    ++version_;

    RoundRecord rec;
    rec.round = version_;
    rec.avg_loss = loss_count_ > 0 ? loss_accum_ / loss_count_ : 0.0;
    rec.cum_macs = costs_.total_macs();
    rec.round_time_s = now_s_;  // wall-clock at which this version shipped
    history_.push_back(rec);

    buffer_ = ws_zeros_like(global);
    buffer_weight_ = 0.0;
    buffered_ = 0;
    loss_accum_ = 0.0;
    loss_count_ = 0;
  }
}

void FedBuffRunner::run() {
  for (int i = 0; i < cfg_.concurrency; ++i) dispatch_one();
  while (version_ < cfg_.aggregations) {
    FT_CHECK_MSG(!in_flight_.empty(), "async scheduler starved");
    const InFlight job = in_flight_.top();
    in_flight_.pop();
    now_s_ = job.finish_s;
    fold_update(job);
    dispatch_one();
  }
}

double FedBuffRunner::mean_staleness() const {
  return total_updates_ > 0 ? staleness_sum_ /
                                  static_cast<double>(total_updates_)
                            : 0.0;
}

double FedBuffRunner::mean_client_accuracy() {
  double s = 0.0;
  for (int c = 0; c < data_.num_clients(); ++c)
    s += evaluate_accuracy(model_, data_.client(c));
  return data_.num_clients() > 0 ? s / data_.num_clients() : 0.0;
}

}  // namespace fedtrans
