#include "fl/async.hpp"

#include "common/check.hpp"

namespace fedtrans {

FedBuffStrategy::FedBuffStrategy(Model init, ServerOptKind server_opt)
    : model_(std::move(init)), opt_kind_(server_opt) {}

void FedBuffStrategy::attach(RoundContext&, Rng&) {
  server_opt_ = make_server_opt(opt_kind_);
  buffer_ = ws_zeros_like(model_.weights());
}

Model FedBuffStrategy::client_payload(const ClientTask&) {
  return model_;  // download the current server weights
}

std::optional<double> FedBuffStrategy::absorb_async(int, LocalTrainResult& res,
                                                    double discount,
                                                    RoundContext& ctx) {
  ws_axpy(buffer_, static_cast<float>(discount), res.delta);
  buffer_weight_ += discount;
  ++buffered_;
  loss_accum_ += res.avg_loss;
  ++loss_count_;

  const double model_bytes = static_cast<double>(model_.param_bytes());
  ctx.costs.add_training_macs(res.macs_used);
  ctx.costs.add_transfer(model_bytes, model_bytes);

  if (buffered_ < ctx.session.async.buffer_size) return std::nullopt;

  WeightSet global = model_.weights();
  ws_scale(buffer_, static_cast<float>(1.0 / buffer_weight_));
  server_opt_->apply(global, buffer_);
  model_.set_weights(global);
  const double avg = loss_count_ > 0 ? loss_accum_ / loss_count_ : 0.0;

  buffer_ = ws_zeros_like(global);
  buffer_weight_ = 0.0;
  buffered_ = 0;
  loss_accum_ = 0.0;
  loss_count_ = 0;
  return avg;
}

void FedBuffStrategy::absorb_update(const ClientTask&, Model*,
                                    LocalTrainResult&, RoundContext&) {
  FT_CHECK_MSG(false, "FedBuff is an async strategy — run it in "
                      "SessionMode::Async");
}

void FedBuffStrategy::finish_round(RoundContext&, RoundRecord&) {
  FT_CHECK_MSG(false, "FedBuff is an async strategy — run it in "
                      "SessionMode::Async");
}

double FedBuffStrategy::probe_accuracy(const std::vector<int>& ids,
                                       RoundContext& ctx) {
  double s = 0.0;
  for (int c : ids) s += evaluate_accuracy(model_, ctx.data.client(c));
  return ids.empty() ? 0.0 : s / static_cast<double>(ids.size());
}

FedBuffRunner::FedBuffRunner(Model init, const FederatedDataset& data,
                             std::vector<DeviceProfile> fleet,
                             AsyncRunConfig cfg)
    : data_(data) {
  FT_CHECK(cfg.concurrency > 0 && cfg.buffer_size > 0 &&
           cfg.aggregations > 0 && cfg.staleness_exponent >= 0.0);
  auto strategy =
      std::make_unique<FedBuffStrategy>(std::move(init), cfg.server_opt);
  strategy_ = strategy.get();
  engine_ = std::make_unique<FederationEngine>(
      std::move(strategy), data, std::move(fleet), cfg.to_session());
}

double FedBuffRunner::mean_client_accuracy() {
  double s = 0.0;
  for (int c = 0; c < data_.num_clients(); ++c)
    s += evaluate_accuracy(strategy_->model(), data_.client(c));
  return data_.num_clients() > 0 ? s / data_.num_clients() : 0.0;
}

}  // namespace fedtrans
