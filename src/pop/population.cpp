#include "pop/population.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace fedtrans {

namespace {

/// Salts separating the population's per-client derivations.
constexpr std::uint64_t kDeviceSalt = 0xdef1ee70ULL;
constexpr std::uint64_t kShardSalt = 0x5eedda7aULL;
constexpr std::uint64_t kPhaseSalt = 0xd1a17e5ULL;

Counter& pop_materializations() {
  static Counter c("fedtrans_pop_materializations_total");
  return c;
}
Counter& pop_hits() {
  static Counter c("fedtrans_pop_pool_hits_total");
  return c;
}
Counter& pop_evictions() {
  static Counter c("fedtrans_pop_pool_evictions_total");
  return c;
}

}  // namespace

Population::Population(const PopulationConfig& cfg)
    : cfg_([&] {
        PopulationConfig c = cfg;
        c.shard.num_clients = c.num_clients;
        c.shard.seed = c.seed;
        c.fleet.num_devices = c.num_clients;
        return c;
      }()),
      shards_(cfg_.shard) {
  FT_CHECK_MSG(cfg_.num_clients >= 1, "population needs at least one client");
  FT_CHECK_MSG(cfg_.pool_capacity >= 1, "pool capacity must be positive");
  descriptors_.resize(static_cast<std::size_t>(cfg_.num_clients));
  // Every descriptor is a pure function of (population seed, client index):
  // construction parallelizes and any client regenerates identically in a
  // leaf-aggregator process that only ever builds its own partition.
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(cfg_.num_clients), 4096,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto c = static_cast<std::uint64_t>(i);
          ClientDescriptor& d = descriptors_[static_cast<std::size_t>(i)];
          Rng device_rng(mix64(mix64(cfg_.seed ^ kDeviceSalt) ^ c));
          d.profile = sample_device(cfg_.fleet, device_rng);
          d.data_seed = static_cast<std::uint32_t>(
              mix64(mix64(cfg_.seed ^ kShardSalt) ^ c));
          const std::uint64_t ph = mix64(mix64(cfg_.seed ^ kPhaseSalt) ^ c);
          const int period = std::max(1, cfg_.availability.period_rounds);
          d.avail_phase = static_cast<std::uint16_t>(
              ph % static_cast<std::uint64_t>(period));
          d.avail_group = static_cast<std::uint16_t>(ph >> 48);
        }
      });
}

const ClientDescriptor& Population::descriptor(int c) const {
  FT_CHECK_MSG(c >= 0 && c < num_clients(), "unknown client " << c);
  return descriptors_[static_cast<std::size_t>(c)];
}

std::uint64_t Population::shard_seed(int c) const {
  const ClientDescriptor& d = descriptor(c);
  return mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(c))
                << 32) ^
               d.data_seed ^ cfg_.seed);
}

bool Population::available(std::uint32_t round, int c) const {
  return device_available(cfg_.availability, round,
                          static_cast<std::uint32_t>(c),
                          descriptor(c).avail_phase);
}

ClientData Population::materialize(int c) const {
  return shards_.make_client(shard_seed(c));
}

std::vector<DeviceProfile> Population::fleet() const {
  std::vector<DeviceProfile> out;
  out.reserve(descriptors_.size());
  for (const auto& d : descriptors_) out.push_back(d.profile);
  return out;
}

std::vector<int> Population::select_cohort(std::uint32_t round, int k,
                                           Rng& rng) const {
  FT_CHECK_MSG(k >= 1, "cohort size must be positive");
  std::vector<int> avail;
  avail.reserve(static_cast<std::size_t>(num_clients()));
  for (int c = 0; c < num_clients(); ++c)
    if (available(round, c)) avail.push_back(c);
  const int n = static_cast<int>(avail.size());
  if (n <= k) return avail;  // everyone online participates
  // Partial Fisher–Yates: k swaps, not a full shuffle of the population.
  for (int i = 0; i < k; ++i)
    std::swap(avail[static_cast<std::size_t>(i)],
              avail[static_cast<std::size_t>(rng.uniform_int(i, n - 1))]);
  avail.resize(static_cast<std::size_t>(k));
  return avail;
}

FederatedDataset Population::materialize_all() const {
  std::vector<ClientData> clients(static_cast<std::size_t>(num_clients()));
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(num_clients()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          clients[static_cast<std::size_t>(i)] =
              materialize(static_cast<int>(i));
      });
  return FederatedDataset::from_clients(cfg_.shard, std::move(clients));
}

CohortPool::CohortPool(const Population& pop, int capacity)
    : pop_(&pop), capacity_(capacity) {
  FT_CHECK_MSG(capacity_ >= 1, "pool capacity must be positive");
  slots_.resize(static_cast<std::size_t>(capacity_));
  index_.reserve(static_cast<std::size_t>(capacity_));
}

void CohortPool::begin_round(const std::vector<int>& cohort) {
  std::lock_guard<std::mutex> lk(m_);
  FT_CHECK_MSG(static_cast<int>(cohort.size()) <= capacity_,
               "cohort of " << cohort.size()
                            << " exceeds pool capacity " << capacity_);
  ++epoch_;
  // Pin carried-over cohort members so this round can't evict them; their
  // data stays warm across consecutive selections (pool hit, not a regen).
  for (int c : cohort) {
    auto it = index_.find(c);
    if (it != index_.end())
      slots_[static_cast<std::size_t>(it->second)].epoch = epoch_;
  }
}

const ClientData& CohortPool::get(int client) const {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    auto it = index_.find(client);
    if (it != index_.end()) {
      Slot& s = slots_[static_cast<std::size_t>(it->second)];
      s.epoch = epoch_;  // touched this epoch → pinned until the next
      if (s.ready) {
        ++hits_;
        pop_hits().inc();
        return s.data;
      }
      // Another worker is generating this client: wait for it.
      cv_.wait(lk);
      continue;
    }
    // Miss: claim a slot — empty first, else the oldest-epoch idle entry.
    int victim = -1;
    std::uint64_t oldest = epoch_;
    for (int i = 0; i < capacity_; ++i) {
      Slot& s = slots_[static_cast<std::size_t>(i)];
      if (s.client < 0) {
        victim = i;
        break;
      }
      if (!s.filling && s.epoch < oldest) {
        victim = i;
        oldest = s.epoch;
      }
    }
    FT_CHECK_MSG(victim >= 0,
                 "cohort pool exhausted: every slot is pinned to the "
                 "current epoch (capacity " << capacity_ << ")");
    Slot& s = slots_[static_cast<std::size_t>(victim)];
    if (s.client >= 0) {
      index_.erase(s.client);
      ++evictions_;
      pop_evictions().inc();
    }
    s.client = client;
    s.epoch = epoch_;
    s.ready = false;
    s.filling = true;
    index_[client] = victim;

    lk.unlock();
    ClientData data = pop_->materialize(client);  // heavy work, no lock
    lk.lock();
    s.data = std::move(data);
    s.ready = true;
    s.filling = false;
    ++materializations_;
    pop_materializations().inc();
    cv_.notify_all();
    return s.data;
  }
}

int CohortPool::resident() const {
  std::lock_guard<std::mutex> lk(m_);
  int n = 0;
  for (const Slot& s : slots_)
    if (s.client >= 0 && s.ready) ++n;
  return n;
}

std::size_t CohortPool::resident_bytes() const {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t bytes = 0;
  for (const Slot& s : slots_) {
    if (s.client < 0 || !s.ready) continue;
    bytes += static_cast<std::size_t>(s.data.x_train.numel()) * sizeof(float);
    bytes += static_cast<std::size_t>(s.data.x_eval.numel()) * sizeof(float);
    bytes += s.data.y_train.size() * sizeof(int);
    bytes += s.data.y_eval.size() * sizeof(int);
  }
  return bytes;
}

PopulationDataView::PopulationDataView(const Population& pop)
    : pop_(&pop), pool_(pop, pop.config().pool_capacity) {}

PopulationSelector::PopulationSelector(const Population& pop,
                                       PopulationDataView* view)
    : pop_(&pop), view_(view) {}

std::vector<int> PopulationSelector::select(int population, int k, Rng& rng) {
  FT_CHECK_MSG(population == pop_->num_clients(),
               "selector population " << population
                                      << " != descriptor index size "
                                      << pop_->num_clients());
  std::vector<int> cohort = pop_->select_cohort(round_, k, rng);
  ++round_;
  if (view_ != nullptr) {
    view_->pool().begin_round(cohort);
    auto& reg = MetricsRegistry::global();
    reg.gauge_set("fedtrans_pop_population_size",
                  static_cast<double>(pop_->num_clients()));
    reg.gauge_set("fedtrans_pop_resident_clients",
                  static_cast<double>(view_->pool().resident()));
    reg.gauge_set("fedtrans_pop_descriptor_bytes",
                  static_cast<double>(pop_->descriptor_bytes()));
  }
  return cohort;
}

}  // namespace fedtrans
