#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "fl/selection.hpp"
#include "trace/device.hpp"

namespace fedtrans {

/// Everything the federation needs to know about one *idle* client, in a
/// few dozen bytes: its device profile, the seed its data shard regenerates
/// from, and its slot in the diurnal availability cycle. A million-client
/// population is a flat vector of these; live ClientData/agent state exists
/// only for the per-round cohort (CohortPool below).
struct ClientDescriptor {
  DeviceProfile profile;
  /// Per-client component of the shard seed (Population::shard_seed mixes
  /// it with the client index and population seed).
  std::uint32_t data_seed = 0;
  /// Diurnal offset in rounds (AvailabilityModel's `phase`).
  std::uint16_t avail_phase = 0;
  /// Cohort/timezone bucket — selection can stratify on it; also feeds the
  /// phase derivation.
  std::uint16_t avail_group = 0;
};
static_assert(sizeof(ClientDescriptor) <= 40,
              "descriptors must stay a few tens of bytes — a million idle "
              "clients ride in one flat vector");

struct PopulationConfig {
  int num_clients = 100000;
  /// Shard shape every client's data regenerates from (num_clients and seed
  /// inside are overridden by the population's own).
  DatasetConfig shard{};
  /// Fleet distribution device profiles are drawn from (num_devices/seed
  /// inside are overridden).
  FleetConfig fleet{};
  AvailabilityModel availability{};
  std::uint64_t seed = 42;
  /// Live-client budget of the cohort pool. Must cover one round's cohort.
  int pool_capacity = 256;
};

/// A sparse federated population: descriptors for every client, live data
/// for almost none.
///
/// Every per-client quantity is counter-hashed from (population seed,
/// client index) — device profile, shard seed, availability phase — so
/// descriptor construction parallelizes, any subset materializes without
/// walking a sequential RNG chain, and two Populations with the same config
/// are identical. `materialize_all()` produces the eager FederatedDataset
/// twin that parity tests run against: same shards, same order, fully
/// resident.
class Population {
 public:
  explicit Population(const PopulationConfig& cfg);

  const PopulationConfig& config() const { return cfg_; }
  int num_clients() const { return static_cast<int>(descriptors_.size()); }
  const ClientDescriptor& descriptor(int c) const;
  const DeviceProfile& profile(int c) const { return descriptor(c).profile; }

  /// The seed ShardGenerator::make_client regenerates client `c` from.
  std::uint64_t shard_seed(int c) const;

  /// Deterministic availability of client `c` in `round` (descriptor phase
  /// + the population's AvailabilityModel).
  bool available(std::uint32_t round, int c) const;

  /// Materialize one client's shards (stateless; any thread).
  ClientData materialize(int c) const;

  /// Expand the descriptor index into the dense fleet vector the engine
  /// wants (24 bytes/client — counted against the resident budget).
  std::vector<DeviceProfile> fleet() const;

  /// Uniformly select k distinct *available* clients for `round` by
  /// scanning the descriptor index — no live objects involved. Partial
  /// Fisher–Yates over the available set, so cost is O(population) scan +
  /// O(k) draws.
  std::vector<int> select_cohort(std::uint32_t round, int k, Rng& rng) const;

  /// Eager twin: every client materialized, wrapped as a FederatedDataset.
  FederatedDataset materialize_all() const;

  /// Bytes resident per idle client: descriptor storage only (the pool and
  /// the engine's fleet copy are accounted by their owners).
  std::size_t descriptor_bytes() const {
    return descriptors_.capacity() * sizeof(ClientDescriptor);
  }

 private:
  PopulationConfig cfg_;
  ShardGenerator shards_;
  std::vector<ClientDescriptor> descriptors_;
};

/// Fixed-capacity pool of materialized clients. A cohort is pinned per
/// epoch (round): begin_round() advances the epoch and marks the new
/// cohort's slots; get() materializes on miss — evicting only clients from
/// older epochs — and blocks briefly if another worker is already filling
/// the same slot. References returned by get() stay valid until the next
/// begin_round().
class CohortPool {
 public:
  CohortPool(const Population& pop, int capacity);

  /// Pin `cohort` for a new epoch. Not thread-safe against get() — call
  /// between rounds (the selector does).
  void begin_round(const std::vector<int>& cohort);

  /// The client's materialized shards; generates them on first touch.
  /// Thread-safe; concurrent gets of distinct clients materialize in
  /// parallel.
  const ClientData& get(int client) const;

  /// Live materialized clients right now.
  int resident() const;
  /// Heap bytes held by materialized shards (tensors + labels).
  std::size_t resident_bytes() const;
  std::uint64_t materializations() const { return materializations_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Slot {
    int client = -1;
    std::uint64_t epoch = 0;
    bool ready = false;
    bool filling = false;
    ClientData data;
  };

  const Population* pop_;
  int capacity_;
  mutable std::mutex m_;
  mutable std::condition_variable cv_;
  mutable std::vector<Slot> slots_;
  mutable std::unordered_map<int, int> index_;  ///< client → slot
  std::uint64_t epoch_ = 0;
  mutable std::uint64_t materializations_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t evictions_ = 0;
};

/// ClientDataProvider over a Population: `client(c)` serves from the cohort
/// pool, materializing on demand. Pair it with PopulationSelector (which
/// advances the pool's epoch each round) — with the two installed, a
/// FederationEngine over a million clients touches live data for the
/// selected cohort only. Also exports `fedtrans_pop_*` gauges on each
/// epoch.
class PopulationDataView : public ClientDataProvider {
 public:
  explicit PopulationDataView(const Population& pop);

  int num_clients() const override { return pop_->num_clients(); }
  int num_classes() const override { return pop_->config().shard.num_classes; }
  const ClientData& client(int c) const override { return pool_.get(c); }

  const Population& population() const { return *pop_; }
  CohortPool& pool() { return pool_; }
  const CohortPool& pool() const { return pool_; }

 private:
  const Population* pop_;
  mutable CohortPool pool_;
};

/// Availability-aware uniform selection over a Population's descriptor
/// index. Owns the round counter (one select() call per round, exactly how
/// the engine drives selectors) and, when bound to a view, pins each
/// round's cohort in the pool and refreshes the `fedtrans_pop_*` gauges.
class PopulationSelector : public ClientSelector {
 public:
  /// `view` may be null (pure selection, no pool management).
  explicit PopulationSelector(const Population& pop,
                              PopulationDataView* view = nullptr);

  std::vector<int> select(int population, int k, Rng& rng) override;
  std::string name() const override { return "population"; }

 private:
  const Population* pop_;
  PopulationDataView* view_;
  std::uint32_t round_ = 0;
};

}  // namespace fedtrans
