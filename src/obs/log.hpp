#pragma once

#include <sstream>

namespace fedtrans {

/// Leveled diagnostic logging — the structured replacement for the raw
/// std::cerr / fprintf sites that used to dot the library. Severity is
/// filtered at runtime: the initial level comes from FEDTRANS_LOG_LEVEL
/// (trace|debug|info|warn|error|off, or 0..5), defaulting to `warn` so
/// tests and benches run silent; set_log_level() overrides it in-process.
/// Emission is a single mutex-serialized write of one fully-formatted line
/// ("[fedtrans] LEVEL message\n") to stderr, so concurrent pool workers
/// never interleave partial lines.
///
/// Use through the macros — the stream expression after the level is only
/// evaluated when the level passes the filter:
///
///   FT_LOG_INFO("gemm backend: " << name);
///   FT_LOG_WARN("retry budget exhausted after " << k << " resends");
enum class LogLevel : int {
  Trace = 0,
  Debug = 1,
  Info = 2,
  Warn = 3,
  Error = 4,
  Off = 5,
};

/// Current severity floor (messages below it are dropped).
LogLevel log_level();
void set_log_level(LogLevel level);
/// Parse a FEDTRANS_LOG_LEVEL-style spelling; falls back to `fallback` on
/// anything unrecognized.
LogLevel parse_log_level(const char* text, LogLevel fallback);

namespace detail {
/// Format + emit one line (already filtered by the macro).
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

#define FT_LOG(level_, expr_)                                         \
  do {                                                                \
    if (static_cast<int>(level_) >=                                   \
        static_cast<int>(::fedtrans::log_level())) {                  \
      std::ostringstream ft_log_os_;                                  \
      ft_log_os_ << expr_;                                            \
      ::fedtrans::detail::log_emit(level_, ft_log_os_.str());         \
    }                                                                 \
  } while (0)

#define FT_LOG_TRACE(expr_) FT_LOG(::fedtrans::LogLevel::Trace, expr_)
#define FT_LOG_DEBUG(expr_) FT_LOG(::fedtrans::LogLevel::Debug, expr_)
#define FT_LOG_INFO(expr_) FT_LOG(::fedtrans::LogLevel::Info, expr_)
#define FT_LOG_WARN(expr_) FT_LOG(::fedtrans::LogLevel::Warn, expr_)
#define FT_LOG_ERROR(expr_) FT_LOG(::fedtrans::LogLevel::Error, expr_)

}  // namespace fedtrans
