#include "obs/report.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fl/engine.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fedtrans {

namespace {

const char* mode_name(SessionMode mode) {
  return mode == SessionMode::Async ? "async" : "sync";
}

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string run_report_json(const FederationEngine& engine) {
  const SessionConfig& cfg = engine.config();
  std::ostringstream os;
  os << "{\"strategy\":\"" << escaped(engine.strategy().name()) << "\"";
  os << ",\"config\":{";
  os << "\"mode\":\"" << mode_name(cfg.mode) << "\"";
  os << ",\"rounds\":" << cfg.rounds;
  os << ",\"clients_per_round\":" << cfg.clients_per_round;
  os << ",\"num_clients\":" << engine.fleet().size();
  os << ",\"seed\":" << cfg.seed;
  os << ",\"eval_every\":" << cfg.eval_every;
  os << ",\"use_fabric\":" << (cfg.use_fabric ? "true" : "false");
  if (cfg.use_fabric) {
    os << ",\"topology\":{\"levels\":" << cfg.topology.levels
       << ",\"shards\":" << cfg.topology.shards
       << ",\"branching\":" << cfg.topology.branching
       << ",\"partial_aggregation\":"
       << (cfg.topology.partial_aggregation ? "true" : "false")
       << ",\"max_retries\":" << cfg.topology.max_retries
       << ",\"ack_timeout_s\":" << cfg.topology.ack_timeout_s << "}";
  }
  if (cfg.mode == SessionMode::Async) {
    os << ",\"async\":{\"concurrency\":" << cfg.async.concurrency
       << ",\"buffer_size\":" << cfg.async.buffer_size
       << ",\"aggregations\":" << cfg.async.aggregations
       << ",\"staleness_exponent\":" << cfg.async.staleness_exponent << "}";
  }
  os << "}";

  os << ",\"rounds_done\":" << engine.rounds_done();
  os << ",\"rounds\":[";
  bool first = true;
  for (const RoundRecord& rec : engine.history()) {
    if (!first) os << ",";
    first = false;
    os << "{\"round\":" << rec.round << ",\"avg_loss\":" << rec.avg_loss
       << ",\"cum_macs\":" << rec.cum_macs
       << ",\"accuracy\":" << rec.accuracy
       << ",\"round_time_s\":" << rec.round_time_s
       << ",\"participants\":" << rec.participants
       << ",\"lost_updates\":" << rec.lost_updates
       << ",\"leaf_failovers\":" << rec.leaf_failovers
       << ",\"byzantine_updates\":" << rec.byzantine_updates << "}";
  }
  os << "]";

  // Final metric view with the legacy structs re-exported first, so the
  // report's counters reconcile exactly with CostMeter / FabricStats.
  auto& reg = MetricsRegistry::global();
  reg.export_cost_meter(engine.costs());
  if (engine.fabric() != nullptr)
    reg.export_fabric_stats(engine.fabric()->transport().stats());
  os << ",\"metrics\":" << reg.snapshot().to_json();

  os << ",\"trace\":{\"enabled\":" << (trace_enabled() ? "true" : "false")
     << ",\"events\":" << trace_event_count();
  const char* trace_out = std::getenv("FEDTRANS_TRACE_OUT");
  if (trace_out != nullptr && *trace_out != '\0')
    os << ",\"path\":\"" << escaped(trace_out) << "\"";
  os << "}}";
  os << "\n";
  return os.str();
}

void write_run_report(const FederationEngine& engine,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("run report: cannot open " + path);
  out << run_report_json(engine);
}

void maybe_write_run_report_env(const FederationEngine& engine) {
  const char* path = std::getenv("FEDTRANS_RUN_REPORT");
  if (path == nullptr || *path == '\0') return;
  write_run_report(engine, path);
}

}  // namespace fedtrans
