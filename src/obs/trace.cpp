#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/log.hpp"

namespace fedtrans {

std::atomic<int> g_trace_mode{0};

namespace {

// Clock of the most recent trace_start — export labels tracks by it even
// after trace_stop().
std::atomic<int> g_last_clock{1};

// Hard cap per thread buffer; past it events are counted as dropped so a
// FEDTRANS_TRACE=1 soak cannot grow without bound (~256k events * 56 B).
constexpr std::size_t kMaxEventsPerThread = 1u << 18;

struct ThreadBuffer {
  std::vector<TraceEvent> events;
  std::int32_t thread_index = 0;
};

struct TraceRegistry {
  std::mutex m;
  // Owned here (not thread_local) so buffers survive thread exit and a
  // single merge point sees every thread's events.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint64_t> dropped{0};
};

TraceRegistry& registry() {
  static TraceRegistry* reg = new TraceRegistry();  // leaked: outlive atexit
  return *reg;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    auto& reg = registry();
    std::lock_guard<std::mutex> lk(reg.m);
    raw->thread_index = static_cast<std::int32_t>(reg.buffers.size());
    reg.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

// Stable deterministic order for export: virtual-mode events from worker
// threads land in registration order otherwise, which depends on the
// schedule. (ts, track, name, dur, arg) is a total order for any trace the
// library emits.
bool event_less(const TraceEvent& a, const TraceEvent& b) {
  if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
  if (a.track != b.track) return a.track < b.track;
  const int byname = std::strcmp(a.name, b.name);
  if (byname != 0) return byname < 0;
  if (a.dur_us != b.dur_us) return a.dur_us < b.dur_us;
  return a.arg_val < b.arg_val;
}

void json_escape(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    switch (*s) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << *s;
    }
  }
}

// Timestamps print as integer microseconds when exact (the virtual clock
// produces round values), else with enough digits to round-trip.
void put_us(std::ostream& os, double us) {
  const long long ll = static_cast<long long>(us);
  if (static_cast<double>(ll) == us) {
    os << ll;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", us);
    os << buf;
  }
}

std::string track_label(std::int32_t track, bool virt) {
  std::ostringstream os;
  if (!virt) {
    os << "thread " << track;
  } else if (track == kTrackEngine) {
    os << "engine";
  } else if (track == kTrackRoot) {
    os << "server/root";
  } else if (track >= kTrackClients) {
    os << "client " << (track - kTrackClients);
  } else if (track >= kTrackAggregators) {
    os << "aggregator " << (track - kTrackAggregators);
  } else {
    os << "track " << track;
  }
  return os.str();
}

}  // namespace

double trace_now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void trace_record(const TraceEvent& ev) {
  auto& buf = local_buffer();
  if (buf.events.size() >= kMaxEventsPerThread) {
    registry().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(ev);
}

void trace_start(TraceClock clock) {
  const int mode = clock == TraceClock::Virtual ? 2 : 1;
  g_last_clock.store(mode, std::memory_order_relaxed);
  g_trace_mode.store(mode, std::memory_order_relaxed);
}

void trace_stop() { g_trace_mode.store(0, std::memory_order_relaxed); }

void trace_clear() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.m);
  for (auto& buf : reg.buffers) buf->events.clear();
  reg.dropped.store(0, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.m);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) n += buf->events.size();
  return n;
}

std::uint64_t trace_dropped_count() {
  return registry().dropped.load(std::memory_order_relaxed);
}

std::size_t trace_export_json(std::ostream& os) {
  const bool virt = g_last_clock.load(std::memory_order_relaxed) == 2;
  std::vector<TraceEvent> merged;
  std::vector<std::int32_t> tracks;
  {
    auto& reg = registry();
    std::lock_guard<std::mutex> lk(reg.m);
    for (const auto& buf : reg.buffers)
      merged.insert(merged.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(merged.begin(), merged.end(), event_less);
  for (const auto& ev : merged) tracks.push_back(ev.track);
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Track metadata first so Perfetto shows readable lane names.
  for (std::int32_t track : tracks) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << track
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << track_label(track, virt) << "\"}}";
  }
  for (const auto& ev : merged) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.track << ",\"cat\":\"";
    json_escape(os, ev.cat != nullptr ? ev.cat : "default");
    os << "\",\"name\":\"";
    json_escape(os, ev.name);
    os << "\",\"ts\":";
    put_us(os, ev.ts_us);
    os << ",\"dur\":";
    put_us(os, ev.dur_us);
    if (ev.arg_name != nullptr) {
      os << ",\"args\":{\"";
      json_escape(os, ev.arg_name);
      os << "\":" << ev.arg_val << "}";
    }
    os << "}";
  }
  os << "]}\n";
  return merged.size();
}

std::size_t trace_export_json_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("trace export: cannot open " + path);
  const std::size_t n = trace_export_json(out);
  const std::uint64_t dropped = trace_dropped_count();
  if (dropped != 0)
    FT_LOG_WARN("trace export dropped " << dropped
                                        << " events (buffer cap)");
  return n;
}

void trace_export_env() {
  const char* out = std::getenv("FEDTRANS_TRACE_OUT");
  if (out == nullptr || *out == '\0') return;
  if (trace_event_count() == 0) return;
  trace_export_json_file(out);
}

namespace {

// FEDTRANS_TRACE=1|wall|virtual autostarts tracing at load time; with
// FEDTRANS_TRACE_OUT the merged trace is written at process exit.
struct TraceEnvInit {
  TraceEnvInit() {
    const char* mode = std::getenv("FEDTRANS_TRACE");
    if (mode == nullptr || *mode == '\0' || std::strcmp(mode, "0") == 0)
      return;
    trace_start(std::strcmp(mode, "virtual") == 0 ? TraceClock::Virtual
                                                  : TraceClock::Wall);
    std::atexit([] { trace_export_env(); });
  }
};
const TraceEnvInit g_trace_env_init;

}  // namespace

}  // namespace fedtrans
