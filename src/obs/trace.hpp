#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fedtrans {

/// Lightweight structured tracing: spans recorded into per-thread buffers
/// and exported as Chrome `trace_event` JSON, loadable in Perfetto /
/// chrome://tracing. Two clock modes:
///
///   Wall     spans time the host execution (steady_clock, microseconds) —
///            the profiling view. `FT_SPAN("cat", "name")` is a scoped RAII
///            span on the current thread; tracks are physical threads.
///   Virtual  events are stamped with the *simulated* clock (seconds on the
///            SimTransport timeline) via `FT_VSPAN(...)` — frame transfers,
///            client train windows, round envelopes. Tracks are semantic
///            (endpoint / round), not physical threads, so the exported
///            trace is a deterministic function of the session: re-running
///            the same config yields a byte-identical file regardless of
///            the thread schedule. Wall-only RAII spans are skipped in this
///            mode (their durations are schedule-dependent).
///
/// Cost model: tracing is compiled out entirely under
/// -DFEDTRANS_TRACE_DISABLED; compiled in but disabled (the default at
/// runtime), every span macro is one relaxed atomic load and no
/// allocation. Enabled, a span is a thread-local bump append (~tens of ns).
/// Enable at runtime with trace_start(), or from the environment:
/// FEDTRANS_TRACE=1 (wall) / FEDTRANS_TRACE=virtual; with
/// FEDTRANS_TRACE_OUT=<path> the merged trace is written there at process
/// exit (or at trace_export_env(), whichever comes first).
enum class TraceClock : int { Wall = 0, Virtual = 1 };

/// One complete event ("ph":"X"). `name`/`cat`/`arg_name` must be string
/// literals (or otherwise outlive the tracer) — events store the pointers.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_name = nullptr;  ///< optional numeric payload, e.g. bytes
  double ts_us = 0.0;              ///< start, microseconds on the trace clock
  double dur_us = 0.0;
  double arg_val = 0.0;
  std::int32_t track = 0;  ///< wall: thread index; virtual: semantic track
};

/// Semantic track ids of the virtual timeline (exported as Perfetto
/// "thread" lanes with readable names). Client endpoints map to
/// kTrackClients + client id; aggregators to kTrackAggregators + index.
inline constexpr std::int32_t kTrackEngine = 0;
inline constexpr std::int32_t kTrackRoot = 1;
inline constexpr std::int32_t kTrackAggregators = 100;
inline constexpr std::int32_t kTrackClients = 100000;

/// Track of a fabric endpoint id (wire.hpp convention: -1 = root server,
/// >= 0 = client c, <= -2 = aggregator -2 - k).
inline std::int32_t track_of_endpoint(std::int32_t endpoint) {
  if (endpoint == -1) return kTrackRoot;
  if (endpoint >= 0) return kTrackClients + endpoint;
  return kTrackAggregators + (-endpoint - 2);
}

// ---- runtime control --------------------------------------------------------

/// 0 = off, 1 = wall, 2 = virtual — one relaxed load on every span site.
extern std::atomic<int> g_trace_mode;

inline bool trace_enabled() {
  return g_trace_mode.load(std::memory_order_relaxed) != 0;
}
inline bool trace_wall_on() {
  return g_trace_mode.load(std::memory_order_relaxed) == 1;
}
inline bool trace_virtual_on() {
  return g_trace_mode.load(std::memory_order_relaxed) == 2;
}

void trace_start(TraceClock clock);
void trace_stop();
/// Drop every buffered event (buffers stay registered with their threads).
void trace_clear();
/// Events currently buffered across all threads (post-merge count).
std::size_t trace_event_count();
/// Events dropped because a thread buffer hit its cap.
std::uint64_t trace_dropped_count();

/// Microseconds on the wall trace clock (steady, process-relative).
double trace_now_us();

/// Append one event to the calling thread's buffer (enabled mode only —
/// callers go through the macros, which check the mode first).
void trace_record(const TraceEvent& ev);

/// Merge every thread's buffer and write Chrome trace_event JSON. Events
/// are stably sorted by (ts, track, name) and virtual-mode tracks carry
/// thread_name metadata, so a virtual-mode export is deterministic for a
/// given session. Returns the number of events written.
std::size_t trace_export_json(std::ostream& os);
std::size_t trace_export_json_file(const std::string& path);
/// If FEDTRANS_TRACE_OUT is set and tracing is active, export there now
/// (also installed as an atexit hook by the env autostart).
void trace_export_env();

namespace detail {
/// RAII wall-clock span: records [construction, destruction) on the
/// current thread's track. A no-op unless wall tracing is on at entry.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name) {
    if (trace_wall_on()) {
      cat_ = cat;
      name_ = name;
      start_us_ = trace_now_us();
    }
  }
  ScopedSpan(const char* cat, const char* name, const char* arg_name,
             double arg_val)
      : ScopedSpan(cat, name) {
    arg_name_ = arg_name;
    arg_val_ = arg_val;
  }
  ~ScopedSpan() {
    if (name_ == nullptr || !trace_wall_on()) return;
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.ts_us = start_us_;
    ev.dur_us = trace_now_us() - start_us_;
    ev.arg_name = arg_name_;
    ev.arg_val = arg_val_;
    trace_record(ev);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  double start_us_ = 0.0;
  double arg_val_ = 0.0;
};

/// Complete event on the virtual (simulated-seconds) timeline.
inline void vspan(const char* cat, const char* name, double start_s,
                  double dur_s, std::int32_t track,
                  const char* arg_name = nullptr, double arg_val = 0.0) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = start_s * 1e6;
  ev.dur_us = dur_s * 1e6;
  ev.track = track;
  ev.arg_name = arg_name;
  ev.arg_val = arg_val;
  trace_record(ev);
}
}  // namespace detail

#ifndef FEDTRANS_TRACE_DISABLED

#define FT_TRACE_CONCAT2(a, b) a##b
#define FT_TRACE_CONCAT(a, b) FT_TRACE_CONCAT2(a, b)

/// Scoped wall-clock span over the enclosing block.
#define FT_SPAN(cat_, name_)                                  \
  ::fedtrans::detail::ScopedSpan FT_TRACE_CONCAT(ft_span_,    \
                                                 __LINE__) {  \
    cat_, name_                                               \
  }
/// Scoped wall-clock span carrying one numeric argument.
#define FT_SPAN_ARG(cat_, name_, arg_name_, arg_val_)         \
  ::fedtrans::detail::ScopedSpan FT_TRACE_CONCAT(ft_span_,    \
                                                 __LINE__) {  \
    cat_, name_, arg_name_, static_cast<double>(arg_val_)     \
  }
/// Complete event on the virtual timeline (simulated seconds + track).
#define FT_VSPAN(cat_, name_, start_s_, dur_s_, track_)                 \
  do {                                                                  \
    if (::fedtrans::trace_virtual_on())                                 \
      ::fedtrans::detail::vspan(cat_, name_, start_s_, dur_s_, track_); \
  } while (0)
#define FT_VSPAN_ARG(cat_, name_, start_s_, dur_s_, track_, arg_name_,  \
                     arg_val_)                                          \
  do {                                                                  \
    if (::fedtrans::trace_virtual_on())                                 \
      ::fedtrans::detail::vspan(cat_, name_, start_s_, dur_s_, track_,  \
                                arg_name_,                              \
                                static_cast<double>(arg_val_));         \
  } while (0)

#else  // FEDTRANS_TRACE_DISABLED: spans compile to nothing.

#define FT_SPAN(cat_, name_) \
  do {                       \
  } while (0)
#define FT_SPAN_ARG(cat_, name_, arg_name_, arg_val_) \
  do {                                                \
  } while (0)
#define FT_VSPAN(cat_, name_, start_s_, dur_s_, track_) \
  do {                                                  \
  } while (0)
#define FT_VSPAN_ARG(cat_, name_, start_s_, dur_s_, track_, arg_name_, \
                     arg_val_)                                         \
  do {                                                                 \
  } while (0)

#endif  // FEDTRANS_TRACE_DISABLED

}  // namespace fedtrans
