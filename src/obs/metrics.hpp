#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fedtrans {

class CostMeter;
struct FabricStats;

/// A merged view of one histogram: fixed log2-spaced buckets plus exact
/// count/sum/min/max. Buckets hold values in (le of previous, le], with a
/// final +Inf bucket; counts are cumulative in the Prometheus exposition
/// but stored per-bucket here.
struct HistogramSnapshot {
  std::vector<double> bucket_le;      ///< upper bounds, ascending
  std::vector<std::uint64_t> bucket_count;  ///< per-bucket (not cumulative)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Point-in-time merge of every instrument in the registry.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — keys sorted
  /// (std::map), so equal snapshots serialize identically.
  std::string to_json() const;
  /// Prometheus text exposition (counters as `counter`, gauges as `gauge`,
  /// histograms as `histogram` with _bucket/_sum/_count series).
  std::string to_prometheus() const;
};

/// Process-wide registry of named counters, gauges, and histograms.
///
/// Writes go to per-thread shards (plain doubles, no atomics — each shard
/// is touched by exactly one thread) and are merged under a mutex only on
/// snapshot(), so instrument updates on the hot path are a hash-map lookup
/// amortized to an array index via the Counter/Histogram handle types
/// below. Gauges are set-latest-wins and live in a single locked slot.
///
/// Names follow prometheus conventions: `fedtrans_<noun>_<unit>` (see
/// docs/observability.md for the catalog).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Stable id for a named instrument (creating it on first use).
  std::size_t counter_id(const std::string& name);
  std::size_t histogram_id(const std::string& name);

  void counter_add(std::size_t id, double delta);
  void gauge_set(const std::string& name, double value);
  void histogram_observe(std::size_t id, double value);

  /// Merge all shards into a point-in-time view. Does not reset anything.
  MetricsSnapshot snapshot();
  /// Zero every shard, gauge, and re-export (for test isolation).
  void reset();

  /// Re-export the engine's CostMeter into `fedtrans_cost_*` counters and
  /// the transport's FabricStats into `fedtrans_fabric_*`. Values are
  /// copied verbatim at snapshot time, so the registry view reconciles
  /// byte-for-byte with the legacy structs.
  void export_cost_meter(const CostMeter& costs);
  void export_fabric_stats(const FabricStats& stats);

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl();
};

/// Cached-handle counter: `static Counter c("fedtrans_x_total");` then
/// `c.add(n)` — the name lookup happens once.
class Counter {
 public:
  explicit Counter(const std::string& name)
      : id_(MetricsRegistry::global().counter_id(name)) {}
  void add(double delta) { MetricsRegistry::global().counter_add(id_, delta); }
  void inc() { add(1.0); }

 private:
  std::size_t id_;
};

class Histogram {
 public:
  explicit Histogram(const std::string& name)
      : id_(MetricsRegistry::global().histogram_id(name)) {}
  void observe(double value) {
    MetricsRegistry::global().histogram_observe(id_, value);
  }

 private:
  std::size_t id_;
};

}  // namespace fedtrans
