#pragma once

#include <string>

namespace fedtrans {

class FederationEngine;

/// One-session run report: a single JSON document capturing what the
/// session was (strategy, config, topology), what happened (per-round
/// records), and where the costs went (final MetricsRegistry snapshot with
/// CostMeter / FabricStats re-exported into it), plus the trace path when
/// FEDTRANS_TRACE_OUT is set — the artifact `scripts/`-side analysis and CI
/// consume instead of scraping stdout.
std::string run_report_json(const FederationEngine& engine);

void write_run_report(const FederationEngine& engine,
                      const std::string& path);

/// Engine end-of-run hook: writes the report to $FEDTRANS_RUN_REPORT when
/// that variable is set; a no-op otherwise.
void maybe_write_run_report_env(const FederationEngine& engine);

}  // namespace fedtrans
