#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "fl/metrics.hpp"
#include "net/transport.hpp"

namespace fedtrans {

namespace {

// Shared log2-spaced bucket ladder: 2^-20 (~1 µs) .. 2^30 (~1 GiB) + Inf.
// One ladder for every unit keeps shards flat arrays and snapshots of
// different histograms directly comparable.
constexpr int kBucketLo = -20;
constexpr int kBucketHi = 30;
constexpr std::size_t kNumBuckets =
    static_cast<std::size_t>(kBucketHi - kBucketLo + 1) + 1;  // + Inf

// Fixed shard capacity: no slot array ever reallocates, so snapshot() can
// merge while owner threads keep writing (single-writer relaxed atomics).
constexpr std::size_t kMaxCounters = 64;
constexpr std::size_t kMaxHistograms = 16;

std::vector<double> bucket_bounds() {
  std::vector<double> le;
  le.reserve(kNumBuckets);
  for (int k = kBucketLo; k <= kBucketHi; ++k) le.push_back(std::ldexp(1.0, k));
  le.push_back(std::numeric_limits<double>::infinity());
  return le;
}

std::size_t bucket_index(double v) {
  if (v <= std::ldexp(1.0, kBucketLo)) return 0;
  if (v > std::ldexp(1.0, kBucketHi)) return kNumBuckets - 1;
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  // Smallest p with 2^p >= v: exp, except exact powers of two (m == 0.5)
  // where v == 2^(exp-1) lands in its own inclusive bucket.
  const int p = m == 0.5 ? exp - 1 : exp;
  return static_cast<std::size_t>(p - kBucketLo);
}

// All shard fields are written by exactly one thread (the owner) and read
// by snapshot(); relaxed atomics make the race well-defined without
// hot-path synchronization (load+store, never CAS).
struct HistShard {
  std::atomic<std::uint64_t> bucket[kNumBuckets] = {};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

struct Shard {
  std::atomic<double> counters[kMaxCounters] = {};
  HistShard hists[kMaxHistograms];
};

// Full-precision number formatting shared by JSON and Prometheus output:
// integers print exactly, everything else with round-trip precision.
std::string num(double v) {
  const long long ll = static_cast<long long>(v);
  char buf[64];
  if (static_cast<double>(ll) == v && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", ll);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

}  // namespace

struct MetricsRegistry::Impl {
  std::mutex m;
  std::unordered_map<std::string, std::size_t> counter_ids;
  std::unordered_map<std::string, std::size_t> hist_ids;
  std::vector<std::string> counter_names;
  std::vector<std::string> hist_names;
  std::vector<std::unique_ptr<Shard>> shards;
  std::map<std::string, double> gauges;
  // Legacy-struct re-exports: copied verbatim (set-latest-wins) so they
  // reconcile byte-for-byte with CostMeter / FabricStats.
  std::map<std::string, double> exported;
  // Bumped by reset(); owner threads lazily re-register, orphaning their
  // old shard (which reset() already detached).
  std::atomic<std::uint64_t> epoch{0};

  Shard& local_shard() {
    thread_local Shard* shard = nullptr;
    thread_local std::uint64_t shard_epoch = ~0ull;
    const std::uint64_t now = epoch.load(std::memory_order_acquire);
    if (shard == nullptr || shard_epoch != now) {
      auto owned = std::make_unique<Shard>();
      Shard* raw = owned.get();
      {
        std::lock_guard<std::mutex> lk(m);
        shards.push_back(std::move(owned));
      }
      shard = raw;
      shard_epoch = now;
    }
    return *shard;
  }
};

MetricsRegistry::Impl& MetricsRegistry::impl() {
  static Impl* impl = new Impl();  // leaked: usable from atexit hooks
  return *impl;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

std::size_t MetricsRegistry::counter_id(const std::string& name) {
  auto& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  auto it = im.counter_ids.find(name);
  if (it != im.counter_ids.end()) return it->second;
  const std::size_t id = im.counter_names.size();
  if (id >= kMaxCounters)
    throw std::runtime_error("MetricsRegistry: counter capacity exhausted");
  im.counter_names.push_back(name);
  im.counter_ids.emplace(name, id);
  return id;
}

std::size_t MetricsRegistry::histogram_id(const std::string& name) {
  auto& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  auto it = im.hist_ids.find(name);
  if (it != im.hist_ids.end()) return it->second;
  const std::size_t id = im.hist_names.size();
  if (id >= kMaxHistograms)
    throw std::runtime_error("MetricsRegistry: histogram capacity exhausted");
  im.hist_names.push_back(name);
  im.hist_ids.emplace(name, id);
  return id;
}

void MetricsRegistry::counter_add(std::size_t id, double delta) {
  auto& c = impl().local_shard().counters[id];
  c.store(c.load(std::memory_order_relaxed) + delta,
          std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  auto& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  im.gauges[name] = value;
}

void MetricsRegistry::histogram_observe(std::size_t id, double value) {
  HistShard& h = impl().local_shard().hists[id];
  auto& b = h.bucket[bucket_index(value)];
  b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  h.count.store(h.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  if (value < h.min.load(std::memory_order_relaxed))
    h.min.store(value, std::memory_order_relaxed);
  if (value > h.max.load(std::memory_order_relaxed))
    h.max.store(value, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() {
  auto& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  MetricsSnapshot snap;
  for (std::size_t id = 0; id < im.counter_names.size(); ++id) {
    double total = 0.0;
    for (const auto& shard : im.shards)
      total += shard->counters[id].load(std::memory_order_relaxed);
    snap.counters[im.counter_names[id]] = total;
  }
  for (const auto& [name, value] : im.exported) snap.counters[name] = value;
  snap.gauges = im.gauges;
  const std::vector<double> le = bucket_bounds();
  for (std::size_t id = 0; id < im.hist_names.size(); ++id) {
    HistogramSnapshot hs;
    hs.bucket_le = le;
    hs.bucket_count.assign(kNumBuckets, 0);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& shard : im.shards) {
      const HistShard& h = shard->hists[id];
      for (std::size_t b = 0; b < kNumBuckets; ++b)
        hs.bucket_count[b] += h.bucket[b].load(std::memory_order_relaxed);
      hs.count += h.count.load(std::memory_order_relaxed);
      hs.sum += h.sum.load(std::memory_order_relaxed);
      lo = std::min(lo, h.min.load(std::memory_order_relaxed));
      hi = std::max(hi, h.max.load(std::memory_order_relaxed));
    }
    hs.min = hs.count != 0 ? lo : 0.0;
    hs.max = hs.count != 0 ? hi : 0.0;
    snap.histograms[im.hist_names[id]] = std::move(hs);
  }
  return snap;
}

void MetricsRegistry::reset() {
  auto& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  // Detach existing shards rather than zeroing them in place (which would
  // race their owners); threads re-register at their next write.
  im.shards.clear();
  im.epoch.fetch_add(1, std::memory_order_release);
  im.gauges.clear();
  im.exported.clear();
}

void MetricsRegistry::export_cost_meter(const CostMeter& costs) {
  auto& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  im.exported["fedtrans_cost_training_macs_total"] = costs.total_macs();
  im.exported["fedtrans_cost_bytes_down_total"] = costs.bytes_down();
  im.exported["fedtrans_cost_bytes_up_total"] = costs.bytes_up();
  im.gauges["fedtrans_cost_storage_peak_bytes"] = costs.storage_bytes();
}

void MetricsRegistry::export_fabric_stats(const FabricStats& stats) {
  auto& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  const auto put = [&im](const char* name,
                         const std::atomic<std::uint64_t>& v) {
    im.exported[name] = static_cast<double>(v.load(std::memory_order_relaxed));
  };
  put("fedtrans_fabric_frames_sent_total", stats.frames_sent);
  put("fedtrans_fabric_frames_delivered_total", stats.frames_delivered);
  put("fedtrans_fabric_frames_dropped_total", stats.frames_dropped);
  put("fedtrans_fabric_frames_duplicated_total", stats.frames_duplicated);
  put("fedtrans_fabric_frames_reordered_total", stats.frames_reordered);
  put("fedtrans_fabric_bytes_sent_total", stats.bytes_sent);
  put("fedtrans_fabric_bytes_delivered_total", stats.bytes_delivered);
  put("fedtrans_fabric_client_dropouts_total", stats.client_dropouts);
  put("fedtrans_fabric_frames_rejected_total", stats.frames_rejected);
  put("fedtrans_fabric_frames_retried_total", stats.frames_retried);
  put("fedtrans_fabric_retry_bytes_down_total", stats.retry_bytes_down);
  put("fedtrans_fabric_retry_bytes_up_total", stats.retry_bytes_up);
  put("fedtrans_fabric_leaf_failovers_total", stats.leaf_failovers);
  put("fedtrans_fabric_failover_bytes_down_total", stats.failover_bytes_down);
  put("fedtrans_fabric_bytes_root_in_total", stats.bytes_root_in);
  put("fedtrans_fabric_bytes_downlink_total", stats.bytes_downlink);
  put("fedtrans_fabric_cache_hits_total", stats.cache_hits);
  put("fedtrans_fabric_cache_saved_bytes_total", stats.cache_saved_bytes);
  put("fedtrans_fabric_delta_downlinks_total", stats.delta_downlinks);
  put("fedtrans_fabric_delta_saved_bytes_total", stats.delta_saved_bytes);
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << num(value);
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << num(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h.count
       << ",\"sum\":" << num(h.sum) << ",\"min\":" << num(h.min)
       << ",\"max\":" << num(h.max) << ",\"buckets\":[";
    // Elide empty buckets: emit [le, count] pairs for occupied ones only.
    bool bfirst = true;
    for (std::size_t b = 0; b < h.bucket_count.size(); ++b) {
      if (h.bucket_count[b] == 0) continue;
      if (!bfirst) os << ",";
      bfirst = false;
      os << "[" << (std::isinf(h.bucket_le[b]) ? std::string("\"+Inf\"")
                                               : num(h.bucket_le[b]))
         << "," << h.bucket_count[b] << "]";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << "# TYPE " << name << " counter\n";
    os << name << " " << num(value) << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << num(value) << "\n";
  }
  for (const auto& [name, h] : histograms) {
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.bucket_count.size(); ++b) {
      cum += h.bucket_count[b];
      // Occupied buckets and the terminal +Inf series keep the exposition
      // compact without losing cumulative-count information.
      if (h.bucket_count[b] == 0 && !std::isinf(h.bucket_le[b])) continue;
      os << name << "_bucket{le=\""
         << (std::isinf(h.bucket_le[b]) ? std::string("+Inf")
                                        : num(h.bucket_le[b]))
         << "\"} " << cum << "\n";
    }
    os << name << "_sum " << num(h.sum) << "\n";
    os << name << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace fedtrans
