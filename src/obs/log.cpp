#include "obs/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fedtrans {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

std::atomic<int>& level_state() {
  static std::atomic<int> state{static_cast<int>(parse_log_level(
      std::getenv("FEDTRANS_LOG_LEVEL"), LogLevel::Warn))};
  return state;
}

}  // namespace

LogLevel parse_log_level(const char* text, LogLevel fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  const struct {
    const char* name;
    LogLevel level;
  } table[] = {{"trace", LogLevel::Trace}, {"debug", LogLevel::Debug},
               {"info", LogLevel::Info},   {"warn", LogLevel::Warn},
               {"error", LogLevel::Error}, {"off", LogLevel::Off}};
  for (const auto& e : table)
    if (std::strcmp(text, e.name) == 0) return e.level;
  if (text[0] >= '0' && text[0] <= '5' && text[1] == '\0')
    return static_cast<LogLevel>(text[0] - '0');
  return fallback;
}

LogLevel log_level() {
  return static_cast<LogLevel>(
      level_state().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_state().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  static std::mutex emit_m;
  std::lock_guard<std::mutex> lk(emit_m);
  std::fprintf(stderr, "[fedtrans] %s %s\n", level_name(level),
               message.c_str());
}

}  // namespace detail

}  // namespace fedtrans
