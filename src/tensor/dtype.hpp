#pragma once

#include <cstdint>
#include <span>

namespace fedtrans {

/// Numeric *storage* formats understood by the library. Arithmetic is always
/// fp32 (and reductions fp64 where they already were); F16/BF16 only change
/// how values are held in tensors and serialized on the wire. A tensor
/// tagged F16/BF16 keeps an fp32 working copy whose values lie exactly on
/// the half-precision grid, so quantize → serialize → deserialize is an
/// exact round-trip and fabric-vs-in-process parity survives half storage.
enum class Dtype : std::uint8_t { F32 = 0, F16 = 1, BF16 = 2 };

/// Serialized bytes per element.
constexpr int dtype_bytes(Dtype d) { return d == Dtype::F32 ? 4 : 2; }

const char* dtype_name(Dtype d);

// Scalar conversions, round-to-nearest-even. f32→f16 saturates inf/NaN the
// IEEE way (overflow → ±inf); f32→bf16 keeps NaNs quiet (SNIPPETS.md's
// mantissa-rounding trick, done on the fp32 bit pattern).
std::uint16_t f32_to_f16_bits(float v);
float f16_bits_to_f32(std::uint16_t bits);
std::uint16_t f32_to_bf16_bits(float v);
float bf16_bits_to_f32(std::uint16_t bits);

std::uint16_t f32_to_half_bits(float v, Dtype d);
float half_bits_to_f32(std::uint16_t bits, Dtype d);

/// Batch converters (F16C-accelerated for F16 where the build allows; the
/// scalar fallbacks produce bit-identical results). `d` must not be F32.
void f32_to_half(const float* src, std::uint16_t* dst, std::int64_t n,
                 Dtype d);
void half_to_f32(const std::uint16_t* src, float* dst, std::int64_t n,
                 Dtype d);

/// Round every value in place to the nearest `d`-representable value
/// (no-op for F32). After this, serializing at width dtype_bytes(d) is
/// lossless.
void round_to_dtype(std::span<float> xs, Dtype d);

/// Mixed-precision training knobs carried by LocalTrainConfig. `dtype`
/// selects the weight/activation storage format; `loss_scale` multiplies
/// dLoss/dLogits before backprop (Sgd divides it back out before clipping)
/// so small half-storage gradients don't flush to zero. 0 = auto (1024 for
/// F16, 1 for BF16 — bf16 shares fp32's exponent range and needs none).
struct Precision {
  Dtype dtype = Dtype::F32;
  double loss_scale = 0.0;
  bool enabled() const { return dtype != Dtype::F32; }
  double effective_loss_scale() const {
    if (loss_scale > 0.0) return loss_scale;
    return dtype == Dtype::F16 ? 1024.0 : 1.0;
  }
};

/// Thread-local activation storage format consulted by Block/Model forward
/// and backward: activations (and activation gradients) crossing layer
/// boundaries are rounded to this grid. Defaults to F32 (no rounding);
/// local_train scopes it to the training loop of one client, so evaluation
/// probes always run full fp32. Thread-local because clients train in
/// parallel on the shared pool.
Dtype activation_dtype();
class ScopedActivationDtype {
 public:
  explicit ScopedActivationDtype(Dtype d);
  ~ScopedActivationDtype();
  ScopedActivationDtype(const ScopedActivationDtype&) = delete;
  ScopedActivationDtype& operator=(const ScopedActivationDtype&) = delete;

 private:
  Dtype prev_;
};

}  // namespace fedtrans
