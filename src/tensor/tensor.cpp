#include "tensor/tensor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace fedtrans {

namespace {
std::int64_t shape_numel(std::span<const int> shape) {
  std::int64_t n = 1;
  for (int d : shape) {
    FT_CHECK_MSG(d >= 0, "negative dimension " << d);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor Tensor::from(std::vector<int> shape, std::vector<float> values) {
  FT_CHECK_MSG(shape_numel(shape) == static_cast<std::int64_t>(values.size()),
               "shape/value count mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

int Tensor::dim(int i) const {
  FT_CHECK(i >= 0 && i < ndim());
  return shape_[static_cast<std::size_t>(i)];
}

std::int64_t Tensor::flat_index(std::span<const int> idx) const {
  FT_CHECK_MSG(static_cast<int>(idx.size()) == ndim(),
               "indexing " << idx.size() << "-d into " << ndim() << "-d tensor");
  std::int64_t flat = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    FT_CHECK_MSG(idx[d] >= 0 && idx[d] < shape_[d],
                 "index " << idx[d] << " out of bounds for dim " << d
                          << " (size " << shape_[d] << ")");
    flat = flat * shape_[d] + idx[d];
  }
  return flat;
}

float& Tensor::at(int i0) { return (*this)[flat_index(std::array{i0})]; }
float& Tensor::at(int i0, int i1) {
  return (*this)[flat_index(std::array{i0, i1})];
}
float& Tensor::at(int i0, int i1, int i2) {
  return (*this)[flat_index(std::array{i0, i1, i2})];
}
float& Tensor::at(int i0, int i1, int i2, int i3) {
  return (*this)[flat_index(std::array{i0, i1, i2, i3})];
}
float Tensor::at(int i0) const { return (*this)[flat_index(std::array{i0})]; }
float Tensor::at(int i0, int i1) const {
  return (*this)[flat_index(std::array{i0, i1})];
}
float Tensor::at(int i0, int i1, int i2) const {
  return (*this)[flat_index(std::array{i0, i1, i2})];
}
float Tensor::at(int i0, int i1, int i2, int i3) const {
  return (*this)[flat_index(std::array{i0, i1, i2, i3})];
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

Tensor Tensor::reshape(std::vector<int> new_shape) const {
  FT_CHECK_MSG(shape_numel(new_shape) == numel(), "reshape numel mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor& Tensor::add_(const Tensor& other) {
  FT_CHECK_MSG(same_shape(other), "add_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  FT_CHECK_MSG(same_shape(other), "sub_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::axpy_(float s, const Tensor& other) {
  FT_CHECK_MSG(same_shape(other), "axpy_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::l2_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

double Tensor::abs_max() const {
  double m = 0.0;
  for (float x : data_) m = std::max(m, static_cast<double>(std::fabs(x)));
  return m;
}

void Tensor::randn(Rng& rng, float stddev) {
  for (auto& x : data_)
    x = static_cast<float>(rng.normal(0.0, static_cast<double>(stddev)));
}

void Tensor::rand_uniform(Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::save(std::ostream& os) const {
  std::int32_t nd = ndim();
  os.write(reinterpret_cast<const char*>(&nd), sizeof(nd));
  for (int d : shape_) {
    std::int32_t v = d;
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  os.write(reinterpret_cast<const char*>(data_.data()),
           static_cast<std::streamsize>(data_.size() * sizeof(float)));
}

Tensor Tensor::load(std::istream& is) {
  std::int32_t nd = 0;
  is.read(reinterpret_cast<char*>(&nd), sizeof(nd));
  FT_CHECK_MSG(is.good() && nd >= 0 && nd <= 8, "corrupt tensor header");
  std::vector<int> shape(static_cast<std::size_t>(nd));
  for (auto& d : shape) {
    std::int32_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    d = v;
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  FT_CHECK_MSG(is.good(), "corrupt tensor payload");
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.add_(b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.sub_(b);
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  c.mul_(s);
  return c;
}

void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc) {
  FT_CHECK(m >= 0 && n >= 0 && k >= 0);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) c[i * ldc + j] *= beta;

  // i-k-j loop order keeps the innermost accesses contiguous for the common
  // (non-transposed) case.
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
      if (av == 0.0f) continue;
      const float s = alpha * av;
      float* crow = c + i * ldc;
      if (!trans_b) {
        const float* brow = b + p * ldb;
        for (int j = 0; j < n; ++j) crow[j] += s * brow[j];
      } else {
        for (int j = 0; j < n; ++j) crow[j] += s * b[j * ldb + p];
      }
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FT_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2, "matmul expects 2-D tensors");
  FT_CHECK_MSG(a.dim(1) == b.dim(0), "matmul inner dimension mismatch");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
       n);
  return c;
}

double squared_distance(const Tensor& a, const Tensor& b) {
  FT_CHECK_MSG(a.same_shape(b), "squared_distance shape mismatch");
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace fedtrans
