#include "tensor/tensor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace fedtrans {

namespace {
std::int64_t shape_numel(std::span<const int> shape) {
  std::int64_t n = 1;
  for (int d : shape) {
    FT_CHECK_MSG(d >= 0, "negative dimension " << d);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor Tensor::from(std::vector<int> shape, std::vector<float> values) {
  FT_CHECK_MSG(shape_numel(shape) == static_cast<std::int64_t>(values.size()),
               "shape/value count mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

int Tensor::dim(int i) const {
  FT_CHECK(i >= 0 && i < ndim());
  return shape_[static_cast<std::size_t>(i)];
}

std::int64_t Tensor::flat_index(std::span<const int> idx) const {
  FT_CHECK_MSG(static_cast<int>(idx.size()) == ndim(),
               "indexing " << idx.size() << "-d into " << ndim() << "-d tensor");
  std::int64_t flat = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    FT_CHECK_MSG(idx[d] >= 0 && idx[d] < shape_[d],
                 "index " << idx[d] << " out of bounds for dim " << d
                          << " (size " << shape_[d] << ")");
    flat = flat * shape_[d] + idx[d];
  }
  return flat;
}

float& Tensor::at(int i0) { return (*this)[flat_index(std::array{i0})]; }
float& Tensor::at(int i0, int i1) {
  return (*this)[flat_index(std::array{i0, i1})];
}
float& Tensor::at(int i0, int i1, int i2) {
  return (*this)[flat_index(std::array{i0, i1, i2})];
}
float& Tensor::at(int i0, int i1, int i2, int i3) {
  return (*this)[flat_index(std::array{i0, i1, i2, i3})];
}
float Tensor::at(int i0) const { return (*this)[flat_index(std::array{i0})]; }
float Tensor::at(int i0, int i1) const {
  return (*this)[flat_index(std::array{i0, i1})];
}
float Tensor::at(int i0, int i1, int i2) const {
  return (*this)[flat_index(std::array{i0, i1, i2})];
}
float Tensor::at(int i0, int i1, int i2, int i3) const {
  return (*this)[flat_index(std::array{i0, i1, i2, i3})];
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

Tensor Tensor::reshape(std::vector<int> new_shape) const {
  FT_CHECK_MSG(shape_numel(new_shape) == numel(), "reshape numel mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor& Tensor::add_(const Tensor& other) {
  FT_CHECK_MSG(same_shape(other), "add_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  FT_CHECK_MSG(same_shape(other), "sub_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::axpy_(float s, const Tensor& other) {
  FT_CHECK_MSG(same_shape(other), "axpy_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::l2_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

double Tensor::abs_max() const {
  double m = 0.0;
  for (float x : data_) m = std::max(m, static_cast<double>(std::fabs(x)));
  return m;
}

void Tensor::randn(Rng& rng, float stddev) {
  for (auto& x : data_)
    x = static_cast<float>(rng.normal(0.0, static_cast<double>(stddev)));
}

void Tensor::rand_uniform(Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::save(std::ostream& os) const {
  std::int32_t nd = ndim();
  os.write(reinterpret_cast<const char*>(&nd), sizeof(nd));
  for (int d : shape_) {
    std::int32_t v = d;
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  os.write(reinterpret_cast<const char*>(data_.data()),
           static_cast<std::streamsize>(data_.size() * sizeof(float)));
}

Tensor Tensor::load(std::istream& is) {
  std::int32_t nd = 0;
  is.read(reinterpret_cast<char*>(&nd), sizeof(nd));
  FT_CHECK_MSG(is.good() && nd >= 0 && nd <= 8, "corrupt tensor header");
  std::vector<int> shape(static_cast<std::size_t>(nd));
  for (auto& d : shape) {
    std::int32_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    d = v;
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  FT_CHECK_MSG(is.good(), "corrupt tensor payload");
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.add_(b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.sub_(b);
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  c.mul_(s);
  return c;
}

namespace {

// Blocking parameters for the packed GEMM. The micro-kernel computes an
// MR×NR tile of C held entirely in registers (6 × 16 floats = 6 AVX-512
// vectors of accumulators); MC×KC A-panels and KC×NC B-panels are sized to
// stay resident in L2.
constexpr int kMr = 6;
constexpr int kNr = 16;
constexpr int kMc = 96;
constexpr int kKc = 256;
constexpr int kNc = 512;
// Below this many MACs the packing overhead dominates; use the plain loop.
constexpr std::int64_t kSmallGemm = 32 * 32 * 32;

inline float a_elem(const float* a, int lda, bool trans, int i, int p) {
  return trans ? a[static_cast<std::size_t>(p) * lda + i]
               : a[static_cast<std::size_t>(i) * lda + p];
}

// Pack A(ic:ic+mc, pc:pc+kc) into kMr-row strips, column-major within each
// strip, zero-padding the ragged bottom strip so the micro-kernel never
// branches on the row count.
void pack_a(const float* a, int lda, bool trans, int ic, int mc, int pc,
            int kc, float* ap) {
  for (int ir = 0; ir < mc; ir += kMr) {
    const int mr = std::min(kMr, mc - ir);
    for (int p = 0; p < kc; ++p) {
      for (int i = 0; i < mr; ++i)
        ap[i] = a_elem(a, lda, trans, ic + ir + i, pc + p);
      for (int i = mr; i < kMr; ++i) ap[i] = 0.0f;
      ap += kMr;
    }
  }
}

// Pack op(B)(pc:pc+kc, jc:jc+nc) into kNr-column strips, row-major within
// each strip, zero-padding the ragged right strip.
void pack_b(const float* b, int ldb, bool trans, int pc, int kc, int jc,
            int nc, float* bp) {
  for (int jr = 0; jr < nc; jr += kNr) {
    const int nr = std::min(kNr, nc - jr);
    for (int p = 0; p < kc; ++p) {
      if (!trans) {
        const float* row = b + static_cast<std::size_t>(pc + p) * ldb + jc + jr;
        for (int j = 0; j < nr; ++j) bp[j] = row[j];
      } else {
        for (int j = 0; j < nr; ++j)
          bp[j] = b[static_cast<std::size_t>(jc + jr + j) * ldb + (pc + p)];
      }
      for (int j = nr; j < kNr; ++j) bp[j] = 0.0f;
      bp += kNr;
    }
  }
}

// C(0:mr, 0:nr) += alpha * Ap · Bp for one packed strip pair. Accumulates
// the full kMr×kNr tile in registers, then writes back the valid region.
void micro_kernel(int kc, float alpha, const float* ap, const float* bp,
                  float* c, int ldc, int mr, int nr) {
  float acc[kMr][kNr] = {};
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * kMr;
    const float* brow = bp + static_cast<std::size_t>(p) * kNr;
    for (int i = 0; i < kMr; ++i) {
      const float av = arow[i];
      for (int j = 0; j < kNr; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (int i = 0; i < mr; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += alpha * acc[i][j];
  }
}

// Reference i-k-j loop for small problems (attention tiles, tiny linears)
// where packing costs more than it saves.
void gemm_small(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
                const float* a, int lda, const float* b, int ldb, float* c,
                int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a_elem(a, lda, trans_a, i, p);
      if (av == 0.0f) continue;
      const float s = alpha * av;
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      if (!trans_b) {
        const float* brow = b + static_cast<std::size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += s * brow[j];
      } else {
        for (int j = 0; j < n; ++j)
          crow[j] += s * b[static_cast<std::size_t>(j) * ldb + p];
      }
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc) {
  FT_CHECK(m >= 0 && n >= 0 && k >= 0);
  // beta == 0 must assign (not multiply): C may be uninitialized and a
  // 0 × NaN would otherwise poison the output.
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i)
      std::memset(c + static_cast<std::size_t>(i) * ldc, 0,
                  static_cast<std::size_t>(n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  if (static_cast<std::int64_t>(m) * n * k <= kSmallGemm) {
    gemm_small(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  // Cache-blocked path: serial jc/pc loops (fixed accumulation order into C,
  // so results are bitwise-independent of the thread count), parallel over
  // MC row panels of C — panels write disjoint rows.
  std::vector<float> bp(static_cast<std::size_t>((
                            (std::min(n, kNc) + kNr - 1) / kNr) * kNr) *
                        static_cast<std::size_t>(std::min(k, kKc)));
  const int row_blocks = (m + kMc - 1) / kMc;
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    for (int pc = 0; pc < k; pc += kKc) {
      const int kc = std::min(kKc, k - pc);
      pack_b(b, ldb, trans_b, pc, kc, jc, nc, bp.data());
      ThreadPool::global().parallel_for(
          row_blocks, 1, [&](std::int64_t blk_lo, std::int64_t blk_hi) {
            thread_local std::vector<float> ap;
            for (std::int64_t blk = blk_lo; blk < blk_hi; ++blk) {
              const int ic = static_cast<int>(blk) * kMc;
              const int mc = std::min(kMc, m - ic);
              ap.resize(static_cast<std::size_t>(((mc + kMr - 1) / kMr) *
                                                 kMr) *
                        static_cast<std::size_t>(kc));
              pack_a(a, lda, trans_a, ic, mc, pc, kc, ap.data());
              for (int jr = 0; jr < nc; jr += kNr) {
                const int nr = std::min(kNr, nc - jr);
                const float* bstrip =
                    bp.data() + static_cast<std::size_t>(jr / kNr) * kNr * kc;
                for (int ir = 0; ir < mc; ir += kMr) {
                  const int mr = std::min(kMr, mc - ir);
                  const float* astrip =
                      ap.data() +
                      static_cast<std::size_t>(ir / kMr) * kMr * kc;
                  micro_kernel(kc, alpha, astrip, bstrip,
                               c + static_cast<std::size_t>(ic + ir) * ldc +
                                   jc + jr,
                               ldc, mr, nr);
                }
              }
            }
          });
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FT_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2, "matmul expects 2-D tensors");
  FT_CHECK_MSG(a.dim(1) == b.dim(0), "matmul inner dimension mismatch");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
       n);
  return c;
}

double squared_distance(const Tensor& a, const Tensor& b) {
  FT_CHECK_MSG(a.same_shape(b), "squared_distance shape mismatch");
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace fedtrans
