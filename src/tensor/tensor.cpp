#include "tensor/tensor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace fedtrans {

namespace {
std::int64_t shape_numel(std::span<const int> shape) {
  std::int64_t n = 1;
  for (int d : shape) {
    FT_CHECK_MSG(d >= 0, "negative dimension " << d);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor Tensor::from(std::vector<int> shape, std::vector<float> values) {
  FT_CHECK_MSG(shape_numel(shape) == static_cast<std::int64_t>(values.size()),
               "shape/value count mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

int Tensor::dim(int i) const {
  FT_CHECK(i >= 0 && i < ndim());
  return shape_[static_cast<std::size_t>(i)];
}

std::int64_t Tensor::flat_index(std::span<const int> idx) const {
  FT_CHECK_MSG(static_cast<int>(idx.size()) == ndim(),
               "indexing " << idx.size() << "-d into " << ndim() << "-d tensor");
  std::int64_t flat = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    FT_CHECK_MSG(idx[d] >= 0 && idx[d] < shape_[d],
                 "index " << idx[d] << " out of bounds for dim " << d
                          << " (size " << shape_[d] << ")");
    flat = flat * shape_[d] + idx[d];
  }
  return flat;
}

float& Tensor::at(int i0) { return (*this)[flat_index(std::array{i0})]; }
float& Tensor::at(int i0, int i1) {
  return (*this)[flat_index(std::array{i0, i1})];
}
float& Tensor::at(int i0, int i1, int i2) {
  return (*this)[flat_index(std::array{i0, i1, i2})];
}
float& Tensor::at(int i0, int i1, int i2, int i3) {
  return (*this)[flat_index(std::array{i0, i1, i2, i3})];
}
float Tensor::at(int i0) const { return (*this)[flat_index(std::array{i0})]; }
float Tensor::at(int i0, int i1) const {
  return (*this)[flat_index(std::array{i0, i1})];
}
float Tensor::at(int i0, int i1, int i2) const {
  return (*this)[flat_index(std::array{i0, i1, i2})];
}
float Tensor::at(int i0, int i1, int i2, int i3) const {
  return (*this)[flat_index(std::array{i0, i1, i2, i3})];
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

Tensor Tensor::reshape(std::vector<int> new_shape) const {
  FT_CHECK_MSG(shape_numel(new_shape) == numel(), "reshape numel mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor& Tensor::add_(const Tensor& other) {
  FT_CHECK_MSG(same_shape(other), "add_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  FT_CHECK_MSG(same_shape(other), "sub_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::axpy_(float s, const Tensor& other) {
  FT_CHECK_MSG(same_shape(other), "axpy_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::l2_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

double Tensor::abs_max() const {
  double m = 0.0;
  for (float x : data_) m = std::max(m, static_cast<double>(std::fabs(x)));
  return m;
}

void Tensor::randn(Rng& rng, float stddev) {
  for (auto& x : data_)
    x = static_cast<float>(rng.normal(0.0, static_cast<double>(stddev)));
}

void Tensor::rand_uniform(Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::quantize_storage(Dtype d) {
  round_to_dtype(values(), d);
  dtype_ = d;
}

std::int64_t Tensor::serialized_bytes() const {
  return static_cast<std::int64_t>(1 + shape_.size()) * 4 +
         numel() * dtype_bytes(dtype_);
}

void Tensor::save(std::ostream& os) const {
  // Header word: low byte = rank, second byte = storage dtype (wire v5).
  // F32 tensors — dtype bits zero — serialize byte-identically to the
  // historical rank-only header, so old checkpoints load unchanged.
  const std::int32_t nd =
      ndim() | (static_cast<std::int32_t>(dtype_) << 8);
  os.write(reinterpret_cast<const char*>(&nd), sizeof(nd));
  for (int d : shape_) {
    std::int32_t v = d;
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  if (dtype_ == Dtype::F32) {
    os.write(reinterpret_cast<const char*>(data_.data()),
             static_cast<std::streamsize>(data_.size() * sizeof(float)));
  } else {
    // Half-storage payloads ship 2 bytes/element. Values were rounded onto
    // the half grid by quantize_storage, so this narrowing is lossless and
    // the round-trip is exact.
    std::vector<std::uint16_t> half(data_.size());
    f32_to_half(data_.data(), half.data(), numel(), dtype_);
    os.write(reinterpret_cast<const char*>(half.data()),
             static_cast<std::streamsize>(half.size() * sizeof(std::uint16_t)));
  }
}

Tensor Tensor::load(std::istream& is) {
  std::int32_t hdr = 0;
  is.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  const std::int32_t nd = hdr & 0xff;
  const std::int32_t dt = (hdr >> 8) & 0xff;
  FT_CHECK_MSG(is.good() && (hdr >> 16) == 0 && nd <= 8 && dt <= 2,
               "corrupt tensor header");
  std::vector<int> shape(static_cast<std::size_t>(nd));
  for (auto& d : shape) {
    std::int32_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    d = v;
  }
  Tensor t(shape);
  t.dtype_ = static_cast<Dtype>(dt);
  if (t.dtype_ == Dtype::F32) {
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  } else {
    std::vector<std::uint16_t> half(static_cast<std::size_t>(t.numel()));
    is.read(reinterpret_cast<char*>(half.data()),
            static_cast<std::streamsize>(half.size() * sizeof(std::uint16_t)));
    half_to_f32(half.data(), t.data(), t.numel(), t.dtype_);
  }
  FT_CHECK_MSG(is.good(), "corrupt tensor payload");
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.add_(b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.sub_(b);
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  c.mul_(s);
  return c;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FT_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2, "matmul expects 2-D tensors");
  FT_CHECK_MSG(a.dim(1) == b.dim(0), "matmul inner dimension mismatch");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
       n);
  return c;
}

double squared_distance(const Tensor& a, const Tensor& b) {
  FT_CHECK_MSG(a.same_shape(b), "squared_distance shape mismatch");
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace fedtrans
