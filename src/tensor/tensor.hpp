#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace fedtrans {

/// Dense row-major float32 tensor. This is the only numeric container in the
/// library: model weights, gradients, activations and datasets all use it.
/// Layout conventions: images are NCHW; linear weights are [out, in]; conv
/// weights are [out_c, in_c, kh, kw].
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);
  static Tensor from(std::vector<int> shape, std::vector<float> values);

  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> values() { return data_; }
  std::span<const float> values() const { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  // Multi-dimensional accessors (bounds-checked in debug via FT_CHECK).
  float& at(int i0);
  float& at(int i0, int i1);
  float& at(int i0, int i1, int i2);
  float& at(int i0, int i1, int i2, int i3);
  float at(int i0) const;
  float at(int i0, int i1) const;
  float at(int i0, int i1, int i2) const;
  float at(int i0, int i1, int i2, int i3) const;

  void fill(float v);
  void zero() { fill(0.0f); }
  /// Element count must match; shape is replaced.
  Tensor reshape(std::vector<int> new_shape) const;

  // In-place arithmetic (shapes must match exactly).
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(float s);
  /// this += s * other.
  Tensor& axpy_(float s, const Tensor& other);

  double sum() const;
  double l2_norm() const;
  double abs_max() const;

  /// Fill with N(0, stddev).
  void randn(Rng& rng, float stddev = 1.0f);
  /// Fill with U(lo, hi).
  void rand_uniform(Rng& rng, float lo, float hi);

  /// Binary round-trip serialization (shape + raw floats).
  void save(std::ostream& os) const;
  static Tensor load(std::istream& is);

 private:
  std::int64_t flat_index(std::span<const int> idx) const;

  std::vector<int> shape_;
  std::vector<float> data_;
};

/// out-of-place c = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
/// out-of-place c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// out-of-place c = a * s.
Tensor scale(const Tensor& a, float s);

/// C[M,N] (+)= alpha * op(A)[M,K] * op(B)[K,N]; beta pre-scales C (beta == 0
/// assigns zero, so C may be uninitialized). Cache-blocked and register-tiled
/// with packed panels, parallelized over row panels of C on the global
/// ThreadPool (FEDTRANS_THREADS); results are bitwise-independent of the
/// thread count. Small problems take a plain-loop fast path.
void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc);

/// 2-D matrix product of a [M,K] and b [K,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// Squared L2 distance between two same-shaped tensors.
double squared_distance(const Tensor& a, const Tensor& b);

}  // namespace fedtrans
