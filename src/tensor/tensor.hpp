#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tensor/dtype.hpp"

namespace fedtrans {

/// Dense row-major tensor. This is the only numeric container in the
/// library: model weights, gradients, activations and datasets all use it.
/// Layout conventions: images are NCHW; linear weights are [out, in]; conv
/// weights are [out_c, in_c, kh, kw].
///
/// The working representation is always fp32; `dtype()` is the *storage*
/// format: a tensor tagged F16/BF16 holds fp32 values that lie exactly on
/// that half-precision grid (enforced by quantize_storage) and serializes
/// 2 bytes/element — which is what halves ModelDown/UpdateUp wire bytes in
/// mixed-precision sessions. Arithmetic never consults the tag.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);
  static Tensor from(std::vector<int> shape, std::vector<float> values);

  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> values() { return data_; }
  std::span<const float> values() const { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  // Multi-dimensional accessors (bounds-checked in debug via FT_CHECK).
  float& at(int i0);
  float& at(int i0, int i1);
  float& at(int i0, int i1, int i2);
  float& at(int i0, int i1, int i2, int i3);
  float at(int i0) const;
  float at(int i0, int i1) const;
  float at(int i0, int i1, int i2) const;
  float at(int i0, int i1, int i2, int i3) const;

  /// Storage dtype tag (serialization width); see the class comment.
  Dtype dtype() const { return dtype_; }
  /// Round every value onto the `d` grid and tag the tensor, so subsequent
  /// save()/wire encodes are a lossless 2-byte/element round-trip.
  /// Idempotent; F32 clears the tag without touching values.
  void quantize_storage(Dtype d);
  /// Exact byte count save() will emit (header + shape + payload).
  std::int64_t serialized_bytes() const;

  void fill(float v);
  void zero() { fill(0.0f); }
  /// Element count must match; shape is replaced.
  Tensor reshape(std::vector<int> new_shape) const;

  // In-place arithmetic (shapes must match exactly).
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(float s);
  /// this += s * other.
  Tensor& axpy_(float s, const Tensor& other);

  double sum() const;
  double l2_norm() const;
  double abs_max() const;

  /// Fill with N(0, stddev).
  void randn(Rng& rng, float stddev = 1.0f);
  /// Fill with U(lo, hi).
  void rand_uniform(Rng& rng, float lo, float hi);

  /// Binary round-trip serialization (shape + raw floats).
  void save(std::ostream& os) const;
  static Tensor load(std::istream& is);

 private:
  std::int64_t flat_index(std::span<const int> idx) const;

  std::vector<int> shape_;
  std::vector<float> data_;
  Dtype dtype_ = Dtype::F32;
};

/// out-of-place c = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
/// out-of-place c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// out-of-place c = a * s.
Tensor scale(const Tensor& a, float s);

/// C[M,N] (+)= alpha * op(A)[M,K] * op(B)[K,N]; beta pre-scales C (beta == 0
/// assigns zero, so C may be uninitialized). Cache-blocked with packed
/// panels feeding a register-tiled micro-kernel selected by the active
/// GemmBackend (tensor/gemm.hpp; FEDTRANS_GEMM_BACKEND), parallelized over
/// row panels of C on the global ThreadPool (FEDTRANS_THREADS); results are
/// bitwise-independent of the thread count for every backend. Small
/// problems take a plain-loop fast path shared by all backends.
void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc);

/// 2-D matrix product of a [M,K] and b [K,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// Squared L2 distance between two same-shaped tensors.
double squared_distance(const Tensor& a, const Tensor& b);

}  // namespace fedtrans
