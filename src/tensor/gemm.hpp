#pragma once

#include <cstdint>

#include "tensor/dtype.hpp"

namespace fedtrans {

/// Which register-tiled micro-kernel gemm() feeds its packed panels to.
/// `Scalar` is the always-on parity reference (plain C, 6×16 tile); the
/// SIMD tiers are compiled in when the target ISA allows (and FEDTRANS_SIMD
/// is not disabled) and verified against Scalar by tolerance tests per
/// shape. Every backend is bitwise deterministic across thread counts —
/// the blocked loop structure (serial k, parallel row panels) is shared.
/// Initial value can be forced with
/// FEDTRANS_GEMM_BACKEND=scalar|avx2|avx512|neon|simd ("simd" = best
/// available, the default), mirroring FEDTRANS_CONV_BACKEND.
enum class GemmBackend : std::uint8_t { Scalar = 0, Avx2 = 1, Avx512 = 2, Neon = 3 };

const char* gemm_backend_name(GemmBackend b);
/// Compiled in *and* supported by the running CPU.
bool gemm_backend_available(GemmBackend b);
/// Best available tier on this build/host (Avx512 > Avx2 > Neon > Scalar).
GemmBackend best_gemm_backend();

GemmBackend gemm_backend();
void set_gemm_backend(GemmBackend b);  // FT_CHECKs availability

/// C[M,N] (+)= alpha * op(A)·op(B) where A and B are stored as f16/bf16
/// bit patterns; widening to fp32 is fused into the panel packing and all
/// accumulation is fp32 (the mixed-precision GEMM contract). Semantics of
/// alpha/beta/strides match gemm().
void gemm_half(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
               const std::uint16_t* a, int lda, Dtype a_dtype,
               const std::uint16_t* b, int ldb, Dtype b_dtype, float beta,
               float* c, int ldc);

}  // namespace fedtrans
