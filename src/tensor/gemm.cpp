// The packed-panel GEMM underneath every matmul/conv in the library, plus
// the register-tiled micro-kernels it dispatches to. One blocked driver
// (serial jc/pc loops, parallel MC row panels — bitwise-independent of the
// thread count) is shared by every backend and by the fp32 / half-storage
// entry points; only the innermost MR×NR tile differs:
//
//   scalar  6×16  plain C, compiled without auto-vectorization — the
//                 always-on parity reference every SIMD tier is tested
//                 against (tolerance, per shape, ragged tails included)
//   avx2    6×16  12 ymm accumulators + broadcast FMA
//   avx512 12×32  24 zmm accumulators + broadcast FMA
//   neon    6×16  24 float32x4 accumulators + lane-broadcast FMA
//
// Short-M problems (m ≤ 24, untransposed B — the grouped-conv GEMMs where
// m = oc/groups) skip B packing entirely on the x86 tiers: a B-direct
// kernel variant streams op(B) rows from the source with masked tail
// loads, since one or two row strips cannot amortize a packed B panel.
//
// Half-precision (f16/bf16) operands are widened to fp32 inside the packing
// routines — the micro-kernels only ever see fp32 panels, so accumulation
// is fp32 regardless of the storage dtype (the mixed-precision contract).

#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#if !defined(FEDTRANS_NO_SIMD) && defined(__AVX2__) && defined(__FMA__)
#define FEDTRANS_HAVE_AVX2 1
#endif
#if !defined(FEDTRANS_NO_SIMD) && defined(__AVX512F__)
#define FEDTRANS_HAVE_AVX512 1
#endif
#if !defined(FEDTRANS_NO_SIMD) && defined(__ARM_NEON)
#define FEDTRANS_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace fedtrans {

namespace {

// Cache blocking shared by all backends: MC×KC A-panels and KC×NC B-panels
// sized to stay resident in L2. kMc and kNc are divisible by every tier's
// MR/NR, so strip boundaries never straddle a cache block.
constexpr int kMc = 96;
constexpr int kKc = 256;
constexpr int kNc = 512;
// Below this many MACs the packing overhead dominates; use the plain loop
// (shared by all backends — the backend switch selects the packed
// micro-kernel only).
constexpr std::int64_t kSmallGemm = 32 * 32 * 32;

// ---- element readers --------------------------------------------------------
// The packing routines are templated over these, which is what fuses the
// half→fp32 widening into the pack (no separate converted copy of A/B).

inline float half_load(std::uint16_t bits, Dtype d) {
  if (d == Dtype::BF16) return bf16_bits_to_f32(bits);
#if defined(FEDTRANS_HAVE_AVX2) && defined(__F16C__)
  return _cvtsh_ss(bits);
#else
  return f16_bits_to_f32(bits);
#endif
}

struct F32ReaderA {
  const float* a;
  int lda;
  bool trans;
  float operator()(int i, int p) const {
    return trans ? a[static_cast<std::size_t>(p) * lda + i]
                 : a[static_cast<std::size_t>(i) * lda + p];
  }
};

struct F32ReaderB {
  const float* b;
  int ldb;
  bool trans;
  float operator()(int p, int j) const {
    return trans ? b[static_cast<std::size_t>(j) * ldb + p]
                 : b[static_cast<std::size_t>(p) * ldb + j];
  }
};

struct HalfReaderA {
  const std::uint16_t* a;
  int lda;
  bool trans;
  Dtype dt;
  float operator()(int i, int p) const {
    return half_load(trans ? a[static_cast<std::size_t>(p) * lda + i]
                           : a[static_cast<std::size_t>(i) * lda + p],
                     dt);
  }
};

struct HalfReaderB {
  const std::uint16_t* b;
  int ldb;
  bool trans;
  Dtype dt;
  float operator()(int p, int j) const {
    return half_load(trans ? b[static_cast<std::size_t>(j) * ldb + p]
                           : b[static_cast<std::size_t>(p) * ldb + j],
                     dt);
  }
};

// ---- packing ----------------------------------------------------------------

// Pack op(A)(ic:ic+mc, pc:pc+kc) into mr_t-row strips, column-major within
// each strip, zero-padding the ragged bottom strip so the micro-kernel
// never branches on the row count.
template <class ElemA>
void pack_a(ElemA ea, int ic, int mc, int pc, int kc, int mr_t, float* ap) {
  for (int ir = 0; ir < mc; ir += mr_t) {
    const int mr = std::min(mr_t, mc - ir);
    for (int p = 0; p < kc; ++p) {
      for (int i = 0; i < mr; ++i) ap[i] = ea(ic + ir + i, pc + p);
      for (int i = mr; i < mr_t; ++i) ap[i] = 0.0f;
      ap += mr_t;
    }
  }
}

// Pack op(B)(pc:pc+kc, jc:jc+nc) into nr_t-column strips, row-major within
// each strip, zero-padding the ragged right strip.
template <class ElemB>
void pack_b(ElemB eb, int pc, int kc, int jc, int nc, int nr_t, float* bp) {
  for (int jr = 0; jr < nc; jr += nr_t) {
    const int nr = std::min(nr_t, nc - jr);
    for (int p = 0; p < kc; ++p) {
      for (int j = 0; j < nr; ++j) bp[j] = eb(pc + p, jc + jr + j);
      for (int j = nr; j < nr_t; ++j) bp[j] = 0.0f;
      bp += nr_t;
    }
  }
}

// ---- micro-kernels ----------------------------------------------------------
// C(0:mr, 0:nr) += alpha * Ap · Bp for one packed strip pair. Each kernel
// accumulates its full MR×NR tile in registers, then writes back the valid
// region (ragged edges spill through a stack tile).

using MicroFn = void (*)(int kc, float alpha, const float* ap,
                         const float* bp, float* c, int ldc, int mr, int nr);

// The scalar reference is kept genuinely scalar: without the attribute GCC
// auto-vectorizes this loop nest under -march=native, which would make
// "scalar vs SIMD" parity tests compare two vectorized kernels.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#endif
void micro_kernel_scalar(int kc, float alpha, const float* ap,
                         const float* bp, float* c, int ldc, int mr, int nr) {
  constexpr int MR = 6, NR = 16;
  float acc[MR][NR] = {};
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * MR;
    const float* brow = bp + static_cast<std::size_t>(p) * NR;
    for (int i = 0; i < MR; ++i) {
      const float av = arow[i];
      for (int j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (int i = 0; i < mr; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += alpha * acc[i][j];
  }
}

// The SIMD kernels name every accumulator explicitly and unroll the row
// loop by hand (BLIS-style): indexed accumulator arrays make GCC keep the
// tile on the stack, turning every FMA into a load-op-store and capping the
// kernel at memory speed. The FT_GEMM_ROW macros exist only to spell out
// that unroll without 24 copy-pasted lines.

#ifdef FEDTRANS_HAVE_AVX2
void micro_kernel_avx2(int kc, float alpha, const float* ap, const float* bp,
                       float* c, int ldc, int mr, int nr) {
  constexpr int MR = 6, NR = 16;
  __m256 a0r0, a0r1, a1r0, a1r1, a2r0, a2r1, a3r0, a3r1, a4r0, a4r1, a5r0,
      a5r1;
  a0r0 = a0r1 = a1r0 = a1r1 = a2r0 = a2r1 = a3r0 = a3r1 = a4r0 = a4r1 =
      a5r0 = a5r1 = _mm256_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * MR;
    const float* brow = bp + static_cast<std::size_t>(p) * NR;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
#define FT_GEMM_ROW(i)                              \
  {                                                 \
    const __m256 av = _mm256_set1_ps(arow[i]);      \
    a##i##r0 = _mm256_fmadd_ps(av, b0, a##i##r0);   \
    a##i##r1 = _mm256_fmadd_ps(av, b1, a##i##r1);   \
  }
    FT_GEMM_ROW(0) FT_GEMM_ROW(1) FT_GEMM_ROW(2)
    FT_GEMM_ROW(3) FT_GEMM_ROW(4) FT_GEMM_ROW(5)
#undef FT_GEMM_ROW
  }
  const __m256 acc[MR][2] = {{a0r0, a0r1}, {a1r0, a1r1}, {a2r0, a2r1},
                             {a3r0, a3r1}, {a4r0, a4r1}, {a5r0, a5r1}};
  const __m256 va = _mm256_set1_ps(alpha);
  if (mr == MR && nr == NR) {
    for (int i = 0; i < MR; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      _mm256_storeu_ps(crow,
                       _mm256_fmadd_ps(va, acc[i][0], _mm256_loadu_ps(crow)));
      _mm256_storeu_ps(
          crow + 8, _mm256_fmadd_ps(va, acc[i][1], _mm256_loadu_ps(crow + 8)));
    }
  } else {
    float tmp[NR];
    for (int i = 0; i < mr; ++i) {
      _mm256_storeu_ps(tmp, acc[i][0]);
      _mm256_storeu_ps(tmp + 8, acc[i][1]);
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += alpha * tmp[j];
    }
  }
}
#endif  // FEDTRANS_HAVE_AVX2

#ifdef FEDTRANS_HAVE_AVX512
void micro_kernel_avx512(int kc, float alpha, const float* ap,
                         const float* bp, float* c, int ldc, int mr, int nr) {
  constexpr int MR = 12, NR = 32;
  __m512 a0r0, a0r1, a1r0, a1r1, a2r0, a2r1, a3r0, a3r1, a4r0, a4r1, a5r0,
      a5r1, a6r0, a6r1, a7r0, a7r1, a8r0, a8r1, a9r0, a9r1, a10r0, a10r1,
      a11r0, a11r1;
  a0r0 = a0r1 = a1r0 = a1r1 = a2r0 = a2r1 = a3r0 = a3r1 = a4r0 = a4r1 =
      a5r0 = a5r1 = a6r0 = a6r1 = a7r0 = a7r1 = a8r0 = a8r1 = a9r0 = a9r1 =
          a10r0 = a10r1 = a11r0 = a11r1 = _mm512_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * MR;
    const float* brow = bp + static_cast<std::size_t>(p) * NR;
    const __m512 b0 = _mm512_loadu_ps(brow);
    const __m512 b1 = _mm512_loadu_ps(brow + 16);
#define FT_GEMM_ROW(i)                              \
  {                                                 \
    const __m512 av = _mm512_set1_ps(arow[i]);      \
    a##i##r0 = _mm512_fmadd_ps(av, b0, a##i##r0);   \
    a##i##r1 = _mm512_fmadd_ps(av, b1, a##i##r1);   \
  }
    FT_GEMM_ROW(0) FT_GEMM_ROW(1) FT_GEMM_ROW(2) FT_GEMM_ROW(3)
    FT_GEMM_ROW(4) FT_GEMM_ROW(5) FT_GEMM_ROW(6) FT_GEMM_ROW(7)
    FT_GEMM_ROW(8) FT_GEMM_ROW(9) FT_GEMM_ROW(10) FT_GEMM_ROW(11)
#undef FT_GEMM_ROW
  }
  const __m512 acc[MR][2] = {
      {a0r0, a0r1}, {a1r0, a1r1}, {a2r0, a2r1},   {a3r0, a3r1},
      {a4r0, a4r1}, {a5r0, a5r1}, {a6r0, a6r1},   {a7r0, a7r1},
      {a8r0, a8r1}, {a9r0, a9r1}, {a10r0, a10r1}, {a11r0, a11r1}};
  const __m512 va = _mm512_set1_ps(alpha);
  if (mr == MR && nr == NR) {
    for (int i = 0; i < MR; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      _mm512_storeu_ps(crow,
                       _mm512_fmadd_ps(va, acc[i][0], _mm512_loadu_ps(crow)));
      _mm512_storeu_ps(crow + 16, _mm512_fmadd_ps(va, acc[i][1],
                                                  _mm512_loadu_ps(crow + 16)));
    }
  } else {
    float tmp[NR];
    for (int i = 0; i < mr; ++i) {
      _mm512_storeu_ps(tmp, acc[i][0]);
      _mm512_storeu_ps(tmp + 16, acc[i][1]);
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += alpha * tmp[j];
    }
  }
}
#endif  // FEDTRANS_HAVE_AVX512

// ---- B-direct short-M kernels ----------------------------------------------
// Variants that stream op(B) rows straight from the source matrix instead of
// a packed panel. With only one or two row strips of A to amortize it (the
// grouped-conv GEMMs: m = oc/groups), packing B costs more memory traffic
// than the kernel saves — B is read exactly once either way. A stays packed
// (it is tiny), the per-tile accumulation order matches the packed kernels,
// and ragged right edges are handled with masked loads instead of the packed
// panel's zero padding. Only non-transposed B qualifies (a transposed B
// cannot be streamed row-wise) and only the x86 tiers implement it — the
// scalar reference must stay one single parity-tested code path.

using MicroDirectFn = void (*)(int kc, float alpha, const float* ap,
                               const float* b, int ldb, float* c, int ldc,
                               int mr, int nr);

constexpr int kDirectBMaxM = 24;

#ifdef FEDTRANS_HAVE_AVX2
void micro_kernel_avx2_direct(int kc, float alpha, const float* ap,
                              const float* b, int ldb, float* c, int ldc,
                              int mr, int nr) {
  constexpr int MR = 6, NR = 16;
  alignas(32) int mk[NR];
  for (int j = 0; j < NR; ++j) mk[j] = j < nr ? -1 : 0;
  const __m256i mk0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(mk));
  const __m256i mk1 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mk + 8));
  const bool full = nr == NR;
  __m256 a0r0, a0r1, a1r0, a1r1, a2r0, a2r1, a3r0, a3r1, a4r0, a4r1, a5r0,
      a5r1;
  a0r0 = a0r1 = a1r0 = a1r1 = a2r0 = a2r1 = a3r0 = a3r1 = a4r0 = a4r1 =
      a5r0 = a5r1 = _mm256_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * MR;
    const float* brow = b + static_cast<std::size_t>(p) * ldb;
    const __m256 b0 =
        full ? _mm256_loadu_ps(brow) : _mm256_maskload_ps(brow, mk0);
    const __m256 b1 =
        full ? _mm256_loadu_ps(brow + 8) : _mm256_maskload_ps(brow + 8, mk1);
#define FT_GEMM_ROW(i)                              \
  {                                                 \
    const __m256 av = _mm256_set1_ps(arow[i]);      \
    a##i##r0 = _mm256_fmadd_ps(av, b0, a##i##r0);   \
    a##i##r1 = _mm256_fmadd_ps(av, b1, a##i##r1);   \
  }
    FT_GEMM_ROW(0) FT_GEMM_ROW(1) FT_GEMM_ROW(2)
    FT_GEMM_ROW(3) FT_GEMM_ROW(4) FT_GEMM_ROW(5)
#undef FT_GEMM_ROW
  }
  const __m256 acc[MR][2] = {{a0r0, a0r1}, {a1r0, a1r1}, {a2r0, a2r1},
                             {a3r0, a3r1}, {a4r0, a4r1}, {a5r0, a5r1}};
  const __m256 va = _mm256_set1_ps(alpha);
  if (mr == MR && full) {
    for (int i = 0; i < MR; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      _mm256_storeu_ps(crow,
                       _mm256_fmadd_ps(va, acc[i][0], _mm256_loadu_ps(crow)));
      _mm256_storeu_ps(
          crow + 8, _mm256_fmadd_ps(va, acc[i][1], _mm256_loadu_ps(crow + 8)));
    }
  } else {
    float tmp[NR];
    for (int i = 0; i < mr; ++i) {
      _mm256_storeu_ps(tmp, acc[i][0]);
      _mm256_storeu_ps(tmp + 8, acc[i][1]);
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += alpha * tmp[j];
    }
  }
}
#endif  // FEDTRANS_HAVE_AVX2

#ifdef FEDTRANS_HAVE_AVX512
void micro_kernel_avx512_direct(int kc, float alpha, const float* ap,
                                const float* b, int ldb, float* c, int ldc,
                                int mr, int nr) {
  constexpr int MR = 12, NR = 32;
  const __mmask16 mk0 =
      nr >= 16 ? static_cast<__mmask16>(0xffff)
               : static_cast<__mmask16>((1u << nr) - 1u);
  const __mmask16 mk1 =
      nr >= NR ? static_cast<__mmask16>(0xffff)
      : nr > 16 ? static_cast<__mmask16>((1u << (nr - 16)) - 1u)
                : static_cast<__mmask16>(0);
  __m512 a0r0, a0r1, a1r0, a1r1, a2r0, a2r1, a3r0, a3r1, a4r0, a4r1, a5r0,
      a5r1, a6r0, a6r1, a7r0, a7r1, a8r0, a8r1, a9r0, a9r1, a10r0, a10r1,
      a11r0, a11r1;
  a0r0 = a0r1 = a1r0 = a1r1 = a2r0 = a2r1 = a3r0 = a3r1 = a4r0 = a4r1 =
      a5r0 = a5r1 = a6r0 = a6r1 = a7r0 = a7r1 = a8r0 = a8r1 = a9r0 = a9r1 =
          a10r0 = a10r1 = a11r0 = a11r1 = _mm512_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * MR;
    const float* brow = b + static_cast<std::size_t>(p) * ldb;
    const __m512 b0 = _mm512_maskz_loadu_ps(mk0, brow);
    const __m512 b1 = _mm512_maskz_loadu_ps(mk1, brow + 16);
#define FT_GEMM_ROW(i)                              \
  {                                                 \
    const __m512 av = _mm512_set1_ps(arow[i]);      \
    a##i##r0 = _mm512_fmadd_ps(av, b0, a##i##r0);   \
    a##i##r1 = _mm512_fmadd_ps(av, b1, a##i##r1);   \
  }
    FT_GEMM_ROW(0) FT_GEMM_ROW(1) FT_GEMM_ROW(2) FT_GEMM_ROW(3)
    FT_GEMM_ROW(4) FT_GEMM_ROW(5) FT_GEMM_ROW(6) FT_GEMM_ROW(7)
    FT_GEMM_ROW(8) FT_GEMM_ROW(9) FT_GEMM_ROW(10) FT_GEMM_ROW(11)
#undef FT_GEMM_ROW
  }
  const __m512 acc[MR][2] = {
      {a0r0, a0r1}, {a1r0, a1r1}, {a2r0, a2r1},   {a3r0, a3r1},
      {a4r0, a4r1}, {a5r0, a5r1}, {a6r0, a6r1},   {a7r0, a7r1},
      {a8r0, a8r1}, {a9r0, a9r1}, {a10r0, a10r1}, {a11r0, a11r1}};
  const __m512 va = _mm512_set1_ps(alpha);
  if (mr == MR && nr == NR) {
    for (int i = 0; i < MR; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      _mm512_storeu_ps(crow,
                       _mm512_fmadd_ps(va, acc[i][0], _mm512_loadu_ps(crow)));
      _mm512_storeu_ps(crow + 16, _mm512_fmadd_ps(va, acc[i][1],
                                                  _mm512_loadu_ps(crow + 16)));
    }
  } else {
    float tmp[NR];
    for (int i = 0; i < mr; ++i) {
      _mm512_storeu_ps(tmp, acc[i][0]);
      _mm512_storeu_ps(tmp + 16, acc[i][1]);
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += alpha * tmp[j];
    }
  }
}
#endif  // FEDTRANS_HAVE_AVX512

MicroDirectFn direct_kernel(GemmBackend b) {
  switch (b) {
#ifdef FEDTRANS_HAVE_AVX2
    case GemmBackend::Avx2:
      return micro_kernel_avx2_direct;
#endif
#ifdef FEDTRANS_HAVE_AVX512
    case GemmBackend::Avx512:
      return micro_kernel_avx512_direct;
#endif
    default:
      return nullptr;
  }
}

#ifdef FEDTRANS_HAVE_NEON
void micro_kernel_neon(int kc, float alpha, const float* ap, const float* bp,
                       float* c, int ldc, int mr, int nr) {
  constexpr int MR = 6, NR = 16;
  float32x4_t a0q0, a0q1, a0q2, a0q3, a1q0, a1q1, a1q2, a1q3, a2q0, a2q1,
      a2q2, a2q3, a3q0, a3q1, a3q2, a3q3, a4q0, a4q1, a4q2, a4q3, a5q0, a5q1,
      a5q2, a5q3;
  a0q0 = a0q1 = a0q2 = a0q3 = a1q0 = a1q1 = a1q2 = a1q3 = a2q0 = a2q1 =
      a2q2 = a2q3 = a3q0 = a3q1 = a3q2 = a3q3 = a4q0 = a4q1 = a4q2 = a4q3 =
          a5q0 = a5q1 = a5q2 = a5q3 = vdupq_n_f32(0.0f);
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * MR;
    const float* brow = bp + static_cast<std::size_t>(p) * NR;
    const float32x4_t b0 = vld1q_f32(brow);
    const float32x4_t b1 = vld1q_f32(brow + 4);
    const float32x4_t b2 = vld1q_f32(brow + 8);
    const float32x4_t b3 = vld1q_f32(brow + 12);
#define FT_GEMM_ROW(i)                          \
  {                                             \
    const float av = arow[i];                   \
    a##i##q0 = vfmaq_n_f32(a##i##q0, b0, av);   \
    a##i##q1 = vfmaq_n_f32(a##i##q1, b1, av);   \
    a##i##q2 = vfmaq_n_f32(a##i##q2, b2, av);   \
    a##i##q3 = vfmaq_n_f32(a##i##q3, b3, av);   \
  }
    FT_GEMM_ROW(0) FT_GEMM_ROW(1) FT_GEMM_ROW(2)
    FT_GEMM_ROW(3) FT_GEMM_ROW(4) FT_GEMM_ROW(5)
#undef FT_GEMM_ROW
  }
  const float32x4_t acc[MR][4] = {{a0q0, a0q1, a0q2, a0q3},
                                  {a1q0, a1q1, a1q2, a1q3},
                                  {a2q0, a2q1, a2q2, a2q3},
                                  {a3q0, a3q1, a3q2, a3q3},
                                  {a4q0, a4q1, a4q2, a4q3},
                                  {a5q0, a5q1, a5q2, a5q3}};
  if (mr == MR && nr == NR) {
    for (int i = 0; i < MR; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int q = 0; q < 4; ++q)
        vst1q_f32(crow + 4 * q,
                  vfmaq_n_f32(vld1q_f32(crow + 4 * q), acc[i][q], alpha));
    }
  } else {
    float tmp[NR];
    for (int i = 0; i < mr; ++i) {
      for (int q = 0; q < 4; ++q) vst1q_f32(tmp + 4 * q, acc[i][q]);
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += alpha * tmp[j];
    }
  }
}
#endif  // FEDTRANS_HAVE_NEON

struct KernelInfo {
  int mr;
  int nr;
  MicroFn fn;
};

KernelInfo kernel_info(GemmBackend b) {
  switch (b) {
#ifdef FEDTRANS_HAVE_AVX2
    case GemmBackend::Avx2:
      return {6, 16, micro_kernel_avx2};
#endif
#ifdef FEDTRANS_HAVE_AVX512
    case GemmBackend::Avx512:
      return {12, 32, micro_kernel_avx512};
#endif
#ifdef FEDTRANS_HAVE_NEON
    case GemmBackend::Neon:
      return {6, 16, micro_kernel_neon};
#endif
    default:
      return {6, 16, micro_kernel_scalar};
  }
}

// ---- backend selection ------------------------------------------------------

bool cpu_supports(GemmBackend b) {
  switch (b) {
    case GemmBackend::Scalar:
      return true;
    case GemmBackend::Avx2:
#if defined(FEDTRANS_HAVE_AVX2) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case GemmBackend::Avx512:
#if defined(FEDTRANS_HAVE_AVX512) && defined(__GNUC__)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
    case GemmBackend::Neon:
#ifdef FEDTRANS_HAVE_NEON
      return true;  // NEON is baseline on every aarch64 target we compile for
#else
      return false;
#endif
  }
  return false;
}

bool g_backend_from_env = false;

GemmBackend initial_gemm_backend() {
  if (const char* env = std::getenv("FEDTRANS_GEMM_BACKEND")) {
    g_backend_from_env = true;
    const struct {
      const char* name;
      GemmBackend backend;
    } table[] = {{"scalar", GemmBackend::Scalar},
                 {"avx2", GemmBackend::Avx2},
                 {"avx512", GemmBackend::Avx512},
                 {"neon", GemmBackend::Neon}};
    for (const auto& e : table) {
      if (std::strcmp(env, e.name) != 0) continue;
      if (cpu_supports(e.backend)) return e.backend;
      FT_LOG_WARN("FEDTRANS_GEMM_BACKEND=" << env
                                           << " not available on this "
                                              "build/host; using "
                                           << gemm_backend_name(
                                                  best_gemm_backend()));
      return best_gemm_backend();
    }
    if (std::strcmp(env, "simd") != 0)
      FT_LOG_WARN("unknown FEDTRANS_GEMM_BACKEND="
                  << env << " (want scalar|avx2|avx512|neon|simd); using "
                  << gemm_backend_name(best_gemm_backend()));
    return best_gemm_backend();
  }
  return best_gemm_backend();
}

std::atomic<GemmBackend>& backend_state() {
  static std::atomic<GemmBackend> state{initial_gemm_backend()};
  return state;
}

// One-time startup note of the selected kernel variant (the bench context
// records it too; this covers every other entry point).
void log_backend_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    FT_LOG_INFO("gemm backend: "
                << gemm_backend_name(gemm_backend())
                << (g_backend_from_env ? " (FEDTRANS_GEMM_BACKEND)" : ""));
  });
}

// ---- shared drivers ---------------------------------------------------------

void apply_beta(int m, int n, float beta, float* c, int ldc) {
  // beta == 0 must assign (not multiply): C may be uninitialized and a
  // 0 × NaN would otherwise poison the output.
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i)
      std::memset(c + static_cast<std::size_t>(i) * ldc, 0,
                  static_cast<std::size_t>(n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

// Plain i-k-j loop for small problems (attention tiles, tiny linears)
// where packing costs more than it saves.
template <class ElemA, class ElemB>
void gemm_small(int m, int n, int k, float alpha, ElemA ea, ElemB eb,
                float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = ea(i, p);
      if (av == 0.0f) continue;
      const float s = alpha * av;
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) crow[j] += s * eb(p, j);
    }
  }
}

// Cache-blocked path: serial jc/pc loops (fixed accumulation order into C,
// so results are bitwise-independent of the thread count), parallel over
// MC row panels of C — panels write disjoint rows.
template <class ElemA, class ElemB>
void gemm_blocked(int m, int n, int k, float alpha, ElemA ea, ElemB eb,
                  float* c, int ldc, const KernelInfo& ki) {
  const int mr_t = ki.mr, nr_t = ki.nr;
  std::vector<float> bp(
      static_cast<std::size_t>(((std::min(n, kNc) + nr_t - 1) / nr_t) * nr_t) *
      static_cast<std::size_t>(std::min(k, kKc)));
  const int row_blocks = (m + kMc - 1) / kMc;
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    for (int pc = 0; pc < k; pc += kKc) {
      const int kc = std::min(kKc, k - pc);
      pack_b(eb, pc, kc, jc, nc, nr_t, bp.data());
      ThreadPool::global().parallel_for(
          row_blocks, 1, [&](std::int64_t blk_lo, std::int64_t blk_hi) {
            thread_local std::vector<float> ap;
            for (std::int64_t blk = blk_lo; blk < blk_hi; ++blk) {
              const int ic = static_cast<int>(blk) * kMc;
              const int mc = std::min(kMc, m - ic);
              ap.resize(
                  static_cast<std::size_t>(((mc + mr_t - 1) / mr_t) * mr_t) *
                  static_cast<std::size_t>(kc));
              pack_a(ea, ic, mc, pc, kc, mr_t, ap.data());
              for (int jr = 0; jr < nc; jr += nr_t) {
                const int nr = std::min(nr_t, nc - jr);
                const float* bstrip =
                    bp.data() +
                    static_cast<std::size_t>(jr / nr_t) * nr_t * kc;
                for (int ir = 0; ir < mc; ir += mr_t) {
                  const int mr = std::min(mr_t, mc - ir);
                  const float* astrip =
                      ap.data() +
                      static_cast<std::size_t>(ir / mr_t) * mr_t * kc;
                  ki.fn(kc, alpha, astrip, bstrip,
                        c + static_cast<std::size_t>(ic + ir) * ldc + jc + jr,
                        ldc, mr, nr);
                }
              }
            }
          });
    }
  }
}

// Short-M driver for the B-direct kernels: pack A once per KC chunk (a few
// strips at most), stream B from the source. Parallel over NR column strips
// of C (disjoint columns); the pc loop stays serial, so accumulation order —
// and therefore the result — is independent of the thread count.
template <class ElemA>
void gemm_direct_b(int m, int n, int k, float alpha, ElemA ea, const float* b,
                   int ldb, float* c, int ldc, const KernelInfo& ki,
                   MicroDirectFn fn) {
  const int mr_t = ki.mr, nr_t = ki.nr;
  std::vector<float> ap(
      static_cast<std::size_t>(((m + mr_t - 1) / mr_t) * mr_t) *
      static_cast<std::size_t>(std::min(k, kKc)));
  const int col_strips = (n + nr_t - 1) / nr_t;
  for (int pc = 0; pc < k; pc += kKc) {
    const int kc = std::min(kKc, k - pc);
    pack_a(ea, 0, m, pc, kc, mr_t, ap.data());
    ThreadPool::global().parallel_for(
        col_strips, 1, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t s = lo; s < hi; ++s) {
            const int jr = static_cast<int>(s) * nr_t;
            const int nr = std::min(nr_t, n - jr);
            for (int ir = 0; ir < m; ir += mr_t) {
              const int mr = std::min(mr_t, m - ir);
              fn(kc, alpha,
                 ap.data() + static_cast<std::size_t>(ir / mr_t) * mr_t * kc,
                 b + static_cast<std::size_t>(pc) * ldb + jr, ldb,
                 c + static_cast<std::size_t>(ir) * ldc + jr, ldc, mr, nr);
            }
          }
        });
  }
}

}  // namespace

const char* gemm_backend_name(GemmBackend b) {
  switch (b) {
    case GemmBackend::Scalar: return "scalar";
    case GemmBackend::Avx2: return "avx2";
    case GemmBackend::Avx512: return "avx512";
    case GemmBackend::Neon: return "neon";
  }
  return "?";
}

bool gemm_backend_available(GemmBackend b) { return cpu_supports(b); }

GemmBackend best_gemm_backend() {
  if (cpu_supports(GemmBackend::Avx512)) return GemmBackend::Avx512;
  if (cpu_supports(GemmBackend::Avx2)) return GemmBackend::Avx2;
  if (cpu_supports(GemmBackend::Neon)) return GemmBackend::Neon;
  return GemmBackend::Scalar;
}

GemmBackend gemm_backend() {
  return backend_state().load(std::memory_order_relaxed);
}

void set_gemm_backend(GemmBackend b) {
  FT_CHECK_MSG(gemm_backend_available(b), "gemm backend '"
                                              << gemm_backend_name(b)
                                              << "' not available on this "
                                                 "build/host");
  backend_state().store(b, std::memory_order_relaxed);
}

void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta,
          float* c, int ldc) {
  FT_CHECK(m >= 0 && n >= 0 && k >= 0);
  apply_beta(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  log_backend_once();

  const F32ReaderA ea{a, lda, trans_a};
  const F32ReaderB eb{b, ldb, trans_b};
  if (static_cast<std::int64_t>(m) * n * k <= kSmallGemm) {
    gemm_small(m, n, k, alpha, ea, eb, c, ldc);
    return;
  }
  // Span only the above-threshold paths: tiny GEMMs (attention tiles, bias
  // rows) are too frequent and too short to time without skewing them.
  FT_SPAN_ARG("kernel", "gemm", "macs",
              static_cast<double>(m) * n * k);
  const GemmBackend backend = gemm_backend();
  if (!trans_b && m <= kDirectBMaxM) {
    if (MicroDirectFn fn = direct_kernel(backend)) {
      gemm_direct_b(m, n, k, alpha, ea, b, ldb, c, ldc, kernel_info(backend),
                    fn);
      return;
    }
  }
  gemm_blocked(m, n, k, alpha, ea, eb, c, ldc, kernel_info(backend));
}

void gemm_half(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
               const std::uint16_t* a, int lda, Dtype a_dtype,
               const std::uint16_t* b, int ldb, Dtype b_dtype, float beta,
               float* c, int ldc) {
  FT_CHECK(m >= 0 && n >= 0 && k >= 0);
  apply_beta(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  log_backend_once();

  const HalfReaderA ea{a, lda, trans_a, a_dtype};
  const HalfReaderB eb{b, ldb, trans_b, b_dtype};
  if (static_cast<std::int64_t>(m) * n * k <= kSmallGemm) {
    gemm_small(m, n, k, alpha, ea, eb, c, ldc);
    return;
  }
  FT_SPAN_ARG("kernel", "gemm_half", "macs",
              static_cast<double>(m) * n * k);
  gemm_blocked(m, n, k, alpha, ea, eb, c, ldc, kernel_info(gemm_backend()));
}

}  // namespace fedtrans
