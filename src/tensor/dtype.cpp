#include "tensor/dtype.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.hpp"

#if defined(__F16C__) && !defined(FEDTRANS_NO_SIMD)
#include <immintrin.h>
#define FEDTRANS_HAVE_F16C 1
#endif

namespace fedtrans {

namespace {

inline std::uint32_t f32_bits(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

inline float bits_f32(std::uint32_t u) {
  float v;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

thread_local Dtype t_activation_dtype = Dtype::F32;

}  // namespace

const char* dtype_name(Dtype d) {
  switch (d) {
    case Dtype::F32: return "f32";
    case Dtype::F16: return "f16";
    case Dtype::BF16: return "bf16";
  }
  return "?";
}

std::uint16_t f32_to_f16_bits(float v) {
  std::uint32_t u = f32_bits(v);
  const auto sign = static_cast<std::uint16_t>((u >> 16) & 0x8000u);
  u &= 0x7fffffffu;
  if (u >= 0x7f800000u)  // inf / NaN (keep NaNs quiet)
    return sign | 0x7c00u | (u > 0x7f800000u ? 0x0200u : 0u);
  if (u < 0x38800000u) {  // subnormal half (or underflow to zero)
    if (u < 0x33000000u) return sign;  // < 2^-25: rounds to ±0
    const int shift = 126 - static_cast<int>(u >> 23);  // in (13, 24]
    const std::uint32_t m = (u & 0x7fffffu) | 0x800000u;
    const std::uint32_t lsb = (m >> shift) & 1u;
    const std::uint32_t round = (1u << (shift - 1)) - 1u + lsb;
    return sign | static_cast<std::uint16_t>((m + round) >> shift);
  }
  // Normal: round-to-nearest-even on the 13 dropped mantissa bits; the
  // carry may ripple into the exponent (and up to inf), which is exactly
  // the right behavior.
  u += 0x0fffu + ((u >> 13) & 1u);
  if (u >= 0x47800000u) return sign | 0x7c00u;  // overflow → ±inf
  return sign | static_cast<std::uint16_t>((u - 0x38000000u) >> 13);
}

float f16_bits_to_f32(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1fu;
  const std::uint32_t man = bits & 0x3ffu;
  if (exp == 0) {  // zero / subnormal: man × 2⁻²⁴ (exact in fp32)
    const float v = std::ldexp(static_cast<float>(man), -24);
    return sign ? -v : v;
  }
  if (exp == 31) {
    if (man != 0) return std::numeric_limits<float>::quiet_NaN();
    return bits_f32(sign | 0x7f800000u);
  }
  return bits_f32(sign | ((exp + 112u) << 23) | (man << 13));
}

std::uint16_t f32_to_bf16_bits(float v) {
  std::uint32_t u = f32_bits(v);
  if ((u & 0x7fffffffu) > 0x7f800000u)  // NaN: truncate but keep it quiet
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  u += 0x7fffu + ((u >> 16) & 1u);  // round-to-nearest-even on 16 bits
  return static_cast<std::uint16_t>(u >> 16);
}

float bf16_bits_to_f32(std::uint16_t bits) {
  return bits_f32(static_cast<std::uint32_t>(bits) << 16);
}

std::uint16_t f32_to_half_bits(float v, Dtype d) {
  FT_CHECK_MSG(d != Dtype::F32, "f32_to_half_bits on F32");
  return d == Dtype::F16 ? f32_to_f16_bits(v) : f32_to_bf16_bits(v);
}

float half_bits_to_f32(std::uint16_t bits, Dtype d) {
  FT_CHECK_MSG(d != Dtype::F32, "half_bits_to_f32 on F32");
  return d == Dtype::F16 ? f16_bits_to_f32(bits) : bf16_bits_to_f32(bits);
}

void f32_to_half(const float* src, std::uint16_t* dst, std::int64_t n,
                 Dtype d) {
  FT_CHECK_MSG(d != Dtype::F32, "f32_to_half on F32");
  std::int64_t i = 0;
  if (d == Dtype::F16) {
#ifdef FEDTRANS_HAVE_F16C
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(src + i);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(dst + i),
          _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    }
#endif
    for (; i < n; ++i) dst[i] = f32_to_f16_bits(src[i]);
  } else {
    for (; i < n; ++i) dst[i] = f32_to_bf16_bits(src[i]);
  }
}

void half_to_f32(const std::uint16_t* src, float* dst, std::int64_t n,
                 Dtype d) {
  FT_CHECK_MSG(d != Dtype::F32, "half_to_f32 on F32");
  std::int64_t i = 0;
  if (d == Dtype::F16) {
#ifdef FEDTRANS_HAVE_F16C
    for (; i + 8 <= n; i += 8) {
      const __m128i h =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
    }
#endif
    for (; i < n; ++i) dst[i] = f16_bits_to_f32(src[i]);
  } else {
    for (; i < n; ++i) dst[i] = bf16_bits_to_f32(src[i]);
  }
}

void round_to_dtype(std::span<float> xs, Dtype d) {
  if (d == Dtype::F32) return;
  constexpr std::int64_t kChunk = 512;
  std::uint16_t buf[kChunk];
  std::int64_t off = 0;
  const auto n = static_cast<std::int64_t>(xs.size());
  while (off < n) {
    const std::int64_t c = std::min(kChunk, n - off);
    f32_to_half(xs.data() + off, buf, c, d);
    half_to_f32(buf, xs.data() + off, c, d);
    off += c;
  }
}

Dtype activation_dtype() { return t_activation_dtype; }

ScopedActivationDtype::ScopedActivationDtype(Dtype d)
    : prev_(t_activation_dtype) {
  t_activation_dtype = d;
}

ScopedActivationDtype::~ScopedActivationDtype() {
  t_activation_dtype = prev_;
}

}  // namespace fedtrans
