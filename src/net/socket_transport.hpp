#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "net/wire.hpp"

namespace fedtrans {

/// Bytes prepended to every wire frame on a socket channel: the envelope
/// metadata (endpoints, simulated timestamps, link sequence number) that
/// SimTransport keeps in process memory has to travel with the frame once
/// real bytes are involved. Layout (host-endian; both ends of a channel run
/// on the same machine):
///   [u32 magic][i32 src][i32 dst][f64 sent_at_s][f64 deliver_at_s]
///   [u64 seq][u64 frame_len]
inline constexpr std::uint32_t kSocketEnvelopeMagic = 0x4654534bu;  // "KSTF"
inline constexpr std::size_t kSocketEnvelopeBytes = 4 + 4 + 4 + 8 + 8 + 8 + 8;

/// Transport implementation that pushes frames through real non-blocking
/// Unix-domain sockets (one socketpair per destination endpoint, created on
/// first touch) instead of in-process mailboxes. Fault injection, envelope
/// stamping, and per-link sequencing all come from the shared Transport
/// base, so a fault-free round over this transport is bitwise identical to
/// the same round over SimTransport — what changes is only that frames are
/// serialized, chunked through the kernel, and reassembled incrementally on
/// the receive side (possibly split across many recv() calls, the path
/// SocketOptions::read_chunk / write_chunk shrink on purpose in tests).
///
/// Writers serialize per destination under a channel write mutex, so
/// envelopes never interleave mid-frame; a full kernel buffer is relieved by
/// pumping the destination's read side (both ends live in this process), so
/// send() never blocks indefinitely and never drops bytes.
class SocketTransport final : public Transport {
 public:
  SocketTransport(std::vector<DeviceProfile> fleet, FaultConfig faults,
                  int num_aggregators = 0, SocketOptions options = {});
  ~SocketTransport() override;

  bool send(std::int32_t src, std::int32_t dst, std::string frame,
            double sent_at_s = 0.0) override;
  std::optional<Envelope> try_recv(std::int32_t dst) override;
  std::vector<Envelope> drain(std::int32_t dst) override;
  std::string name() const override { return "socket"; }

  const SocketOptions& options() const { return options_; }

 private:
  /// One destination endpoint's socket channel: the write end all senders
  /// share, the read end the receiver pumps, and the user-space reassembly
  /// state for envelopes that arrived split across reads.
  struct Channel {
    int write_fd = -1;
    int read_fd = -1;
    std::mutex write_m;  ///< serializes whole envelopes onto the socket
    std::mutex read_m;   ///< guards rbuf/rpos/pending
    std::string rbuf;    ///< raw bytes off the socket, not yet framed
    std::size_t rpos = 0;  ///< consumed prefix of rbuf
    std::vector<Envelope> pending;  ///< reassembled, not yet delivered
  };

  Channel& channel(std::int32_t endpoint);
  /// Move every readable byte off `ch`'s socket into rbuf and peel complete
  /// envelopes into `pending`. Caller holds ch.read_m.
  void pump_locked(Channel& ch);
  /// Write one serialized envelope, chunked per options_.write_chunk,
  /// relieving a full kernel buffer by pumping the read side. Caller holds
  /// ch.write_m.
  void write_envelope_locked(Channel& ch, const Envelope& env);

  SocketOptions options_;
  std::mutex channels_m_;  ///< guards the map, not the channels
  std::unordered_map<int, std::unique_ptr<Channel>> channels_;
};

/// Listening socket for the multi-process topology (root accepts one
/// connection per leaf-aggregator process). Supports Unix-domain (path) and
/// TCP loopback binds; `bind_tcp(0)` picks a free port, readable via
/// port(). Accepted fds are blocking — frame pacing in the multi-process
/// demo is request/response, not event-driven.
class SocketListener {
 public:
  static SocketListener bind_unix(const std::string& path);
  static SocketListener bind_tcp(int port);
  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&&) = delete;
  SocketListener(const SocketListener&) = delete;
  ~SocketListener();

  /// Block until a peer connects; returns the connected fd (caller owns).
  int accept_fd();
  int fd() const { return fd_; }
  int port() const { return port_; }
  const std::string& path() const { return path_; }

 private:
  SocketListener() = default;
  int fd_ = -1;
  int port_ = 0;       ///< TCP binds only
  std::string path_;   ///< Unix-domain binds only (unlinked on destruction)
};

/// Connect to a listener (blocking). Returns the connected fd.
int connect_unix(const std::string& path);
int connect_tcp(const std::string& host, int port);

/// Write one wire frame (wire.hpp format, no envelope header) to a
/// connected blocking fd, handling short writes. Throws Error on a dead
/// peer.
void send_frame_fd(int fd, std::string_view frame);

/// Incremental frame reader over a connected fd: read() into a
/// FrameAssembler until a complete wire frame pops out. Used by both sides
/// of the multi-process demo, so frames split across arbitrary recv
/// boundaries reassemble transparently.
class FdFrameReader {
 public:
  explicit FdFrameReader(int fd, std::size_t read_chunk = 4096)
      : fd_(fd), read_chunk_(read_chunk) {}

  /// Block until the next complete frame arrives. Throws Error if the peer
  /// closes mid-frame or the stream is corrupt.
  std::string read_frame();

 private:
  int fd_;
  std::size_t read_chunk_;
  FrameAssembler assembler_;
};

}  // namespace fedtrans
