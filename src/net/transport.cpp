#include "net/transport.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "net/socket_transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fedtrans {

namespace {

/// Stable key for a directed link (endpoints are >= -1 - num_aggregators).
std::uint64_t link_key(std::int32_t src, std::int32_t dst) {
  const auto s = static_cast<std::uint64_t>(static_cast<std::uint32_t>(src));
  const auto t = static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
  return (s << 32) | t;
}

}  // namespace

bool envelope_earlier(const Envelope& a, const Envelope& b) {
  if (a.deliver_at_s != b.deliver_at_s) return a.deliver_at_s < b.deliver_at_s;
  if (a.src != b.src) return a.src < b.src;
  return a.seq < b.seq;
}

Transport::Transport(std::vector<DeviceProfile> fleet, FaultConfig faults,
                     int num_aggregators)
    : fleet_(std::move(fleet)),
      faults_(faults),
      num_aggregators_(num_aggregators) {
  FT_CHECK_MSG(!fleet_.empty(), "transport needs at least one client link");
  FT_CHECK_MSG(num_aggregators >= 0, "negative aggregator count");
}

int Transport::endpoint_index(std::int32_t endpoint) const {
  // 0 = root server, 1..n = clients, n+1.. = shard aggregators (negative
  // ids below kServerId, see aggregator_id()).
  const int idx = endpoint == kServerId ? 0
                  : endpoint >= 0
                      ? endpoint + 1
                      : num_clients() + 1 + (-endpoint - 2);
  FT_CHECK_MSG(idx >= 0 && idx < num_endpoints(),
               "unknown transport endpoint " << endpoint);
  return idx;
}

double Transport::fault_draw(std::uint64_t link, std::uint64_t seq,
                             std::uint64_t salt) const {
  return hash01(faults_.seed, link, seq, salt);
}

double Transport::link_time_s(std::int32_t client, std::size_t bytes) const {
  return transfer_time_s(device(client), static_cast<double>(bytes));
}

const DeviceProfile& Transport::device(std::int32_t client) const {
  FT_CHECK_MSG(client >= 0 && client < num_clients(),
               "unknown client link " << client);
  return fleet_[static_cast<std::size_t>(client)];
}

bool Transport::client_dropped_out(std::uint32_t round,
                                   std::int32_t client) const {
  if (faults_.dropout_prob <= 0.0) return false;
  return hash01(faults_.seed, 0xd20u, round,
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    client))) < faults_.dropout_prob;
}

bool Transport::leaf_dead(std::uint32_t round, std::int32_t leaf) const {
  if (faults_.leaf_death_prob <= 0.0) return false;
  return hash01(faults_.seed, 0x1eafu, round,
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    leaf))) < faults_.leaf_death_prob;
}

bool byzantine_client(const FaultConfig& f, std::uint32_t round,
                      std::int32_t client) {
  if (f.byzantine_prob <= 0.0 || f.byzantine_mode == ByzantineMode::None)
    return false;
  return hash01(f.seed, 0xb12a47u, round,
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    client))) < f.byzantine_prob;
}

std::optional<Transport::Stamped> Transport::stamp(std::int32_t src,
                                                   std::int32_t dst,
                                                   std::string frame,
                                                   double sent_at_s) {
  FT_CHECK_MSG(src != dst, "transport loopback send");
  const std::uint64_t link = link_key(src, dst);
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lk(seq_m_);
    seq = link_seq_[link]++;
  }
  stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(frame.size(), std::memory_order_relaxed);
  // Downlink-direction accounting by peeking the frame's type byte (byte 6,
  // after magic + version) — cheaper and less invasive than threading a
  // direction flag through every server send site.
  if (frame.size() > 6) {
    const auto t = static_cast<std::uint8_t>(frame[6]);
    if (t == static_cast<std::uint8_t>(MsgType::JoinRound) ||
        t == static_cast<std::uint8_t>(MsgType::ModelDown) ||
        t == static_cast<std::uint8_t>(MsgType::ShardDown))
      stats_.bytes_downlink.fetch_add(frame.size(), std::memory_order_relaxed);
  }
  static Histogram frame_bytes_h("fedtrans_frame_bytes");
  frame_bytes_h.observe(static_cast<double>(frame.size()));

  if (faults_.drop_prob > 0.0 &&
      fault_draw(link, seq, 0xd209u) < faults_.drop_prob) {
    stats_.frames_dropped.fetch_add(1, std::memory_order_relaxed);
    FT_VSPAN_ARG("net", "frame_dropped", sent_at_s, 0.0,
                 track_of_endpoint(dst), "bytes",
                 static_cast<double>(frame.size()));
    return std::nullopt;
  }

  // The bottleneck of every link is the client's radio; the server/
  // aggregator backbone is free — a frame between two negative endpoints
  // (root ↔ shard aggregator) has zero latency. A reordering fault pushes
  // the frame one extra transfer back, behind its successor on the link.
  const std::int32_t client = src < 0 ? dst : src;
  const double lat = client < 0 ? 0.0 : link_time_s(client, frame.size());
  Stamped s;
  Envelope& env = s.env;
  env.src = src;
  env.dst = dst;
  env.sent_at_s = sent_at_s;
  env.seq = seq;
  env.deliver_at_s = sent_at_s + lat;
  if (faults_.reorder_prob > 0.0 &&
      fault_draw(link, seq, 0x2e02de2ULL) < faults_.reorder_prob) {
    env.deliver_at_s += lat;
    stats_.frames_reordered.fetch_add(1, std::memory_order_relaxed);
  }
  if (faults_.dup_prob > 0.0 &&
      fault_draw(link, seq, 0xd0b1eULL) < faults_.dup_prob) {
    s.dup = env;
    s.dup->deliver_at_s += lat;  // the duplicate trails the original
    s.dup->frame = frame;
  }
  env.frame = std::move(frame);
  return s;
}

void Transport::account_delivered(const Stamped& s) {
  const bool dup = s.dup.has_value();
  const std::size_t bytes = s.env.frame.size();
  // Frame in flight on the simulated timeline, drawn on the receiver's
  // track (zero-latency backbone frames show up as instants).
  FT_VSPAN_ARG("net", "frame", s.env.sent_at_s,
               s.env.deliver_at_s - s.env.sent_at_s,
               track_of_endpoint(s.env.dst), "bytes",
               static_cast<double>(bytes));
  stats_.frames_delivered.fetch_add(dup ? 2 : 1, std::memory_order_relaxed);
  stats_.bytes_delivered.fetch_add(dup ? 2 * bytes : bytes,
                                   std::memory_order_relaxed);
  if (s.env.dst == kServerId)
    stats_.bytes_root_in.fetch_add(dup ? 2 * bytes : bytes,
                                   std::memory_order_relaxed);
  if (dup) stats_.frames_duplicated.fetch_add(1, std::memory_order_relaxed);
}

SimTransport::SimTransport(std::vector<DeviceProfile> fleet,
                           FaultConfig faults, int num_aggregators)
    : Transport(std::move(fleet), faults, num_aggregators) {}

SimTransport::Mailbox& SimTransport::mailbox(std::int32_t endpoint) {
  const int idx = endpoint_index(endpoint);
  std::lock_guard<std::mutex> lk(boxes_m_);
  auto& slot = boxes_[idx];
  if (!slot) slot = std::make_unique<Mailbox>();
  return *slot;
}

bool SimTransport::send(std::int32_t src, std::int32_t dst, std::string frame,
                        double sent_at_s) {
  auto stamped = stamp(src, dst, std::move(frame), sent_at_s);
  if (!stamped) return false;

  // Account first, then hand the envelopes over by move: the duplicate's
  // copy was prepared by stamp(), outside any mailbox lock, so under
  // contention — every uplink targets the one server mailbox — the critical
  // section is just the queue pushes, never a frame-sized copy.
  account_delivered(*stamped);
  Mailbox& box = mailbox(dst);
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(box.m);
    box.q.push_back(std::move(stamped->env));
    if (stamped->dup) box.q.push_back(std::move(*stamped->dup));
    depth = box.q.size();
  }
  static Histogram queue_depth_h("fedtrans_mailbox_depth");
  queue_depth_h.observe(static_cast<double>(depth));
  return true;
}

std::optional<Envelope> SimTransport::try_recv(std::int32_t dst) {
  Mailbox& box = mailbox(dst);
  std::lock_guard<std::mutex> lk(box.m);
  if (box.q.empty()) return std::nullopt;
  auto it = std::min_element(box.q.begin(), box.q.end(), envelope_earlier);
  Envelope env = std::move(*it);
  box.q.erase(it);
  return env;
}

std::vector<Envelope> SimTransport::drain(std::int32_t dst) {
  Mailbox& box = mailbox(dst);
  std::vector<Envelope> out;
  {
    std::lock_guard<std::mutex> lk(box.m);
    out.swap(box.q);
  }
  std::sort(out.begin(), out.end(), envelope_earlier);
  return out;
}

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          std::vector<DeviceProfile> fleet,
                                          FaultConfig faults,
                                          int num_aggregators,
                                          const SocketOptions& socket) {
  switch (kind) {
    case TransportKind::Sim:
      return std::make_unique<SimTransport>(std::move(fleet), faults,
                                            num_aggregators);
    case TransportKind::Socket:
      return std::make_unique<SocketTransport>(std::move(fleet), faults,
                                               num_aggregators, socket);
  }
  FT_CHECK_MSG(false, "unknown transport kind");
  return nullptr;
}

}  // namespace fedtrans
