#include "net/server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/check.hpp"
#include "common/serial.hpp"
#include "common/thread_pool.hpp"
#include "fl/byzantine.hpp"
#include "fl/weights.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fedtrans {

FabricTree::FabricTree(const FabricTopology& topo) : levels_(topo.levels) {
  FT_CHECK_MSG(levels_ >= 2, "a fabric tree needs at least root + leaves");
  const int tiers = levels_ - 1;
  branching_ = topo.branching;
  if (branching_ <= 0) {
    // Auto fan-out: the smallest branching whose (levels-1)-fold power
    // covers the leaves, so every tier (including the root's) shrinks
    // about evenly.
    branching_ =
        tiers >= 2 ? std::max(2, static_cast<int>(std::ceil(std::pow(
                                     static_cast<double>(topo.shards),
                                     1.0 / static_cast<double>(tiers)))))
                   : topo.shards;
  }
  width_.assign(static_cast<std::size_t>(tiers), 0);
  width_[static_cast<std::size_t>(tiers - 1)] = topo.shards;
  for (int t = tiers - 2; t >= 0; --t)
    width_[static_cast<std::size_t>(t)] =
        (width_[static_cast<std::size_t>(t + 1)] + branching_ - 1) /
        branching_;
  // Leaves keep the historical endpoint ids aggregator_id(0..shards-1);
  // interior tiers take the ids above them, bottom-up.
  offset_.assign(static_cast<std::size_t>(tiers), 0);
  for (int t = tiers - 2; t >= 0; --t)
    offset_[static_cast<std::size_t>(t)] =
        offset_[static_cast<std::size_t>(t + 1)] +
        width_[static_cast<std::size_t>(t + 1)];
  total_ = 0;
  for (int w : width_) total_ += w;
}

std::int32_t FabricTree::node_id(int tier, int j) const {
  return aggregator_id(offset_[static_cast<std::size_t>(tier - 1)] + j);
}

std::int32_t FabricTree::parent_id(int tier, int j) const {
  if (tier == 1) return kServerId;
  return node_id(tier - 1, j / branching_);
}

std::pair<int, int> FabricTree::child_range(int tier, int j) const {
  const int below = tier_width(tier + 1);
  return {std::min(below, j * branching_),
          std::min(below, (j + 1) * branching_)};
}

std::pair<int, int> FabricTree::leaf_range(int tier, int j) const {
  // Tiers nest by powers of the branching factor: node (t, j) covers
  // leaves [j·b^(tiers-t), (j+1)·b^(tiers-t)) clamped to the leaf count.
  std::int64_t span = 1;
  for (int t = tier; t < levels_ - 1; ++t) span *= branching_;
  const auto n = static_cast<std::int64_t>(leaves());
  return {static_cast<int>(std::min<std::int64_t>(n, j * span)),
          static_cast<int>(std::min<std::int64_t>(n, (j + 1) * span))};
}

std::pair<int, int> FabricTree::sibling_range(int leaf) const {
  if (levels_ == 2) return {0, leaves()};  // all leaves share the root
  return child_range(levels_ - 2, leaf / branching_);
}

int FabricTree::node_covering(int tier, int leaf) const {
  std::int64_t span = 1;
  for (int t = tier; t < levels_ - 1; ++t) span *= branching_;
  return static_cast<int>(leaf / span);
}

namespace {

/// Send `encode(0)`; on loss resend `encode(kFlagRetry)` every
/// `ack_timeout_s` simulated seconds, up to `max_retries` times. Returns
/// whether any attempt was delivered. Every resend is counted in
/// FabricStats (frames_retried + the directional retry-byte counter the
/// engine bills through CostMeter).
bool send_with_retry(Transport& net, std::int32_t src, std::int32_t dst,
                     double first_at_s, const FabricTopology& policy,
                     bool downlink,
                     const std::function<std::string(std::uint8_t)>& encode) {
  std::string frame = encode(0);
  const std::size_t bytes = frame.size();
  if (net.send(src, dst, std::move(frame), first_at_s)) return true;
  static Histogram retry_latency_h("fedtrans_retry_latency_seconds");
  for (int k = 1; k <= policy.max_retries; ++k) {
    net.stats_mutable().frames_retried.fetch_add(1,
                                                 std::memory_order_relaxed);
    auto& counter = downlink ? net.stats_mutable().retry_bytes_down
                             : net.stats_mutable().retry_bytes_up;
    counter.fetch_add(bytes, std::memory_order_relaxed);
    const double resend_s =
        first_at_s + static_cast<double>(k) * policy.ack_timeout_s;
    FT_VSPAN_ARG("server", "retry", resend_s, 0.0, track_of_endpoint(dst),
                 "attempt", k);
    if (net.send(src, dst, encode(kFlagRetry), resend_s)) {
      // Latency the retry policy added before this frame finally left:
      // k ack-timeouts from the first (lost) attempt.
      retry_latency_h.observe(resend_s - first_at_s);
      return true;
    }
  }
  return false;
}

/// The [slot][spec][weights] head shared by every ModelDown payload: the
/// `body` argument is the [spec string][weights] section (encoded once per
/// distinct payload), the Rng state is appended per task.
std::string model_down_payload(std::int32_t slot, const std::string& body,
                               const std::array<std::uint64_t, 4>& rng_state) {
  std::ostringstream head(std::ios::binary);
  write_pod<std::int32_t>(head, slot);
  std::string payload = head.str();
  payload.reserve(payload.size() + body.size() + sizeof(rng_state));
  payload.append(body);
  payload.append(reinterpret_cast<const char*>(rng_state.data()),
                 sizeof(rng_state));
  return payload;
}

/// Encode the [empty spec][weight blob] body of a shared-model broadcast.
std::string shared_body(const WeightSet& global) {
  std::ostringstream os(std::ios::binary);
  write_string(os, std::string{});  // empty spec: use the prototype
  write_weight_set(os, global);
  return os.str();
}

/// Slot/sender validation shared by every update consumer (flat collect,
/// leaf match, root merge): a task id is admissible iff it indexes the
/// round's task list and was reported by the client owning that slot.
/// First-arrival dedup stays with the caller — the structures differ.
bool admissible_slot(std::int32_t task, std::int32_t sender,
                     const std::vector<int>& clients) {
  return task >= 0 && task < static_cast<std::int32_t>(clients.size()) &&
         clients[static_cast<std::size_t>(task)] == sender;
}

/// Encode the [spec][weights] body of a heterogeneous payload model
/// (params() walks mutably, hence the non-const ref).
std::string task_body(Model& payload) {
  std::ostringstream os(std::ios::binary);
  write_string(os, payload.spec().serialize());
  auto ps = payload.params();
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(ps.size()));
  for (auto& p : ps) p.value->save(os);
  return os.str();
}

/// Filter a downlink bundle to the tasks of leaf range [lo, hi),
/// rebuilding the body table with only the bodies that range references —
/// how interior nodes split a bundle among their children (and how the
/// root builds its per-child bundles from the full task list).
ShardDownlink subset_bundle(const ShardDownlink& d, int shards, int lo,
                            int hi) {
  ShardDownlink out;
  out.leaf_lo = lo;
  out.leaf_hi = hi;
  out.shard = hi - lo == 1 ? lo : -1;
  std::unordered_map<std::uint32_t, std::uint32_t> body_map;
  for (const DownlinkTask& t : d.tasks) {
    const int leaf = static_cast<int>(t.task) % shards;
    if (leaf < lo || leaf >= hi) continue;
    auto [it, fresh] = body_map.emplace(
        t.body, static_cast<std::uint32_t>(out.bodies.size()));
    if (fresh) out.bodies.push_back(d.bodies[t.body]);
    DownlinkTask nt = t;
    nt.body = it->second;
    out.tasks.push_back(nt);
  }
  return out;
}

/// Aggregator-state index of an aggregator endpoint (aggregator_id(k) → k).
std::size_t agg_index(std::int32_t endpoint) {
  return static_cast<std::size_t>(-2 - endpoint);
}

/// Per-tensor shape equality (delta downlinks may only diff a client's
/// stored model against a payload of identical geometry).
bool ws_shapes_match(const WeightSet& a, const WeightSet& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!a[i].same_shape(b[i])) return false;
  return true;
}

/// The smallest task slot a PartialUp covers (entries are present in both
/// verbatim and reduced mode; empty bundles are never sent).
std::int32_t bundle_min_slot(const PartialUpdate& p) {
  std::int32_t lo = std::numeric_limits<std::int32_t>::max();
  for (const UpdateEntry& e : p.entries) lo = std::min(lo, e.task);
  return lo;
}

/// Merge child bundles into one upstream bundle. Entries concatenate; in
/// reduced mode the per-key groups fold element-wise. Bundles are merged
/// in ascending min-slot order — the canonical order that keeps the
/// numeric reduction deterministic for a given tree shape, and independent
/// of the shape altogether when every bundle holds a single update.
PartialUpdate merge_bundles(std::vector<PartialUpdate> bundles,
                            bool reduced) {
  std::sort(bundles.begin(), bundles.end(),
            [](const PartialUpdate& a, const PartialUpdate& b) {
              const auto sa = bundle_min_slot(a), sb = bundle_min_slot(b);
              if (sa != sb) return sa < sb;
              return a.shard < b.shard;
            });
  PartialUpdate m;
  m.reduced = reduced;
  std::map<std::int32_t, std::size_t> by_key;  // reduce key → m.groups slot
  for (PartialUpdate& p : bundles) {
    for (UpdateEntry& e : p.entries) m.entries.push_back(std::move(e));
    for (ReducedGroup& g : p.groups) {
      auto it = by_key.find(g.key);
      if (it == by_key.end()) {
        by_key.emplace(g.key, m.groups.size());
        m.groups.push_back(std::move(g));
        continue;
      }
      ReducedGroup& dst = m.groups[it->second];
      ws_axpy(dst.sum, 1.0f, g.sum);
      dst.weight += g.weight;
      dst.count += g.count;
      dst.min_slot = std::min(dst.min_slot, g.min_slot);
    }
  }
  std::sort(m.groups.begin(), m.groups.end(),
            [](const ReducedGroup& a, const ReducedGroup& b) {
              return a.min_slot < b.min_slot;
            });
  return m;
}

}  // namespace

std::shared_ptr<const DeltaStore::Entry> DeltaStore::peek(int client) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = map_.find(client);
  return it == map_.end() ? nullptr : it->second;
}

void DeltaStore::update(int client, std::shared_ptr<const Entry> e) {
  std::lock_guard<std::mutex> lk(m_);
  map_[client] = std::move(e);
}

void DeltaStore::erase(int client) {
  std::lock_guard<std::mutex> lk(m_);
  map_.erase(client);
}

ClientAgent::ClientAgent(int id, const ClientDataProvider& data,
                         LocalTrainConfig local, FabricTopology policy)
    : id_(id), data_(&data), local_(local), policy_(policy) {}

void ClientAgent::poll(std::uint32_t round, const Model& prototype,
                       Transport& net,
                       std::vector<ClientOutcome>& outcomes,
                       DeltaStore* store) {
  FT_SPAN_ARG("client", "poll", "client", id_);
  // The model this device decoded last round — the base every delta-flagged
  // ModelDown of this round was diffed against. Snapshotted once up front:
  // the store only advances after this poll, so all of the round's frames
  // (duplicates included) decode against the same base.
  std::shared_ptr<const DeltaStore::Entry> prev;
  if (store != nullptr) prev = store->peek(id_);

  // Drain the mailbox first: duplicates and reordered frames all land here.
  // Invitations and models are paired per task slot; the agent keeps the
  // first arrival of each and ignores the rest.
  std::set<std::int32_t> invited;
  std::map<std::int32_t, FabricMessage> downs;  // task -> first ModelDown
  std::map<std::int32_t, double> down_at_s;

  for (Envelope& env : net.drain(id_)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame, prev ? &prev->weights : nullptr,
                           prev ? prev->version : 0);
    } catch (const Error&) {
      // Treated as loss, but counted: the transport never corrupts bytes,
      // so frames_rejected > 0 means a codec bug (asserted 0 in tests).
      net.stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != round) continue;
    if (msg.type == MsgType::JoinRound) {
      if (invited.insert(msg.task).second) {
        FabricMessage ack;
        ack.type = MsgType::Ack;
        ack.round = round;
        ack.sender = id_;
        ack.receiver = msg.sender;
        net.send(id_, msg.sender, encode_message(ack), env.deliver_at_s);
      }
    } else if (msg.type == MsgType::ModelDown) {
      if (downs.find(msg.task) == downs.end()) {
        down_at_s[msg.task] = env.deliver_at_s;
        downs.emplace(msg.task, std::move(msg));
      }
    }
  }

  // Mid-round dropout is a per-(round, client) device event: if it fires,
  // every task trains (burning real compute) and then vanishes unsent.
  const bool dropped_out = net.client_dropped_out(round, id_);
  bool trained_any = false;
  double last_done_s = 0.0;
  std::set<std::int32_t> coordinators;  // distinct ModelDown senders

  for (auto& [task, msg] : downs) {
    // The invitation is load-bearing: a task whose JoinRound never arrived
    // does not participate even if the model frame made it through.
    if (invited.find(task) == invited.end()) continue;
    if (task < 0 || task >= static_cast<std::int32_t>(outcomes.size()))
      continue;

    // Train exactly as the in-process path would: the payload architecture
    // (prototype or on-the-wire spec), the weights, and the coordinator-
    // forked Rng all arrived on the wire.
    Rng spawn(0);  // init weights are overwritten below
    Model local = msg.spec_text.empty()
                      ? prototype
                      : Model(ModelSpec::deserialize(msg.spec_text), spawn);
    local.set_weights(msg.weights);
    Rng rng;
    rng.set_state(msg.rng_state);
    LocalTrainResult res =
        byzantine_local_train(local, data_->client(id_), data_->num_classes(),
                              local_, rng, net.faults(), round, id_);

    const double compute_s =
        res.macs_used / net.device(id_).compute_macs_per_s;
    const double done_s = down_at_s[task] + compute_s;
    // The device's train window on the simulated timeline: model arrival
    // to upload-ready, on the client's own track.
    FT_VSPAN_ARG("client", "train", down_at_s[task], compute_s,
                 kTrackClients + id_, "task", task);
    trained_any = true;
    last_done_s = std::max(last_done_s, done_s);
    coordinators.insert(msg.sender);

    if (dropped_out) {
      outcomes[static_cast<std::size_t>(task)] = ClientOutcome::Dropout;
      continue;
    }

    // Upload to the coordinator that sent the model (the root, or the
    // shard aggregator owning this slot), resending a lost frame under the
    // retry policy. A dropped-out device never retries — it is gone.
    FabricMessage up;
    up.type = MsgType::UpdateUp;
    up.round = round;
    up.sender = id_;
    up.receiver = msg.sender;
    up.task = task;
    up.weights = std::move(res.delta);
    up.avg_loss = res.avg_loss;
    up.num_samples = res.num_samples;
    up.macs_used = res.macs_used;
    const bool delivered = send_with_retry(
        net, id_, msg.sender, done_s, policy_, /*downlink=*/false,
        [&up](std::uint8_t flags) {
          up.flags = flags;
          return encode_message(up);
        });
    outcomes[static_cast<std::size_t>(task)] =
        delivered ? ClientOutcome::Trained : ClientOutcome::LostUp;
  }

  if (dropped_out && trained_any) {
    // The device vanished after training. It attempts a courtesy Abort to
    // each coordinator it trained for, riding the same lossy links as
    // everything else.
    for (std::int32_t coord : coordinators) {
      FabricMessage abort_msg;
      abort_msg.type = MsgType::Abort;
      abort_msg.round = round;
      abort_msg.sender = id_;
      abort_msg.receiver = coord;
      abort_msg.reason = "dropout";
      net.send(id_, coord, encode_message(abort_msg), last_done_s);
    }
    net.stats_mutable().client_dropouts.fetch_add(1,
                                                  std::memory_order_relaxed);
  }

  // Advance the delta store to what this device actually decoded — even on
  // dropout or a missing invitation, the bytes were decoded and are what
  // the next round's diff must be based on. Exactly one ModelDown: record
  // it. Several (a multi-slot round): the "previous model" is ambiguous,
  // so the entry is erased and the client goes back to full payloads. None
  // decoded: the old entry (still what the device last saw) stands.
  if (store != nullptr) {
    if (downs.size() == 1) {
      auto e = std::make_shared<DeltaStore::Entry>();
      FabricMessage& only = downs.begin()->second;
      e->version = prev ? prev->version + 1 : 1;
      e->spec_digest =
          fnv1a64(only.spec_text.data(), only.spec_text.size());
      e->weights = std::move(only.weights);
      store->update(id_, std::move(e));
    } else if (downs.size() > 1) {
      store->erase(id_);
    }
  }
}

FederationServer::FederationServer(const Model& prototype,
                                   const ClientDataProvider& data,
                                   std::vector<DeviceProfile> fleet,
                                   LocalTrainConfig local, FaultConfig faults,
                                   FabricTopology topology,
                                   TransportKind transport,
                                   SocketOptions socket)
    : prototype_(prototype), data_(&data), local_(local), topo_(topology) {
  FT_CHECK_MSG(static_cast<int>(fleet.size()) == data.num_clients(),
               "fabric fleet size must match client count");
  FT_CHECK_MSG(topo_.levels >= 1 && topo_.levels <= 6,
               "fabric topology supports 1 (flat) up to 6 aggregation "
               "levels, got " << topo_.levels);
  FT_CHECK_MSG(topo_.shards >= 1, "fabric topology needs >= 1 shard");
  FT_CHECK_MSG(topo_.branching >= 0, "negative fabric branching factor");
  FT_CHECK_MSG(!topo_.partial_aggregation || topo_.levels >= 2,
               "partial aggregation needs an aggregation tree (levels >= 2)");
  FT_CHECK_MSG(topo_.max_retries >= 0 && topo_.ack_timeout_s > 0.0,
               "fabric retry policy needs max_retries >= 0 and a positive "
               "ack timeout");
  FT_CHECK_MSG(topo_.quantize_partials == PartialQuant::None ||
                   topo_.partial_aggregation,
               "quantized partials (with_quantized_partials) require the "
               "numeric reduction (with_partial_aggregation) — verbatim "
               "bundles must stay bit-exact");
  if (sharded()) tree_ = FabricTree(topo_);
  if (topo_.broadcast_cache && sharded()) {
    // One receiver cache + one sender-side known-map per aggregator; sized
    // once so the per-node state never reallocates under the node-parallel
    // routing workers.
    bcast_cache_.resize(static_cast<std::size_t>(tree_.num_aggregators()));
    child_known_.resize(static_cast<std::size_t>(tree_.num_aggregators()));
  }
  net_ = make_transport(transport, std::move(fleet), faults,
                        tree_.num_aggregators(), socket);
}

int FederationServer::owner_leaf(std::uint32_t round, int s) const {
  if (!net_->leaf_dead(round, s)) return s;
  const auto [lo, hi] = tree_.sibling_range(s);
  for (int k = 1; k < hi - lo; ++k) {
    const int cand = lo + (s - lo + k) % (hi - lo);
    if (!net_->leaf_dead(round, cand)) return cand;
  }
  return -1;  // the whole fault domain is down this round
}

std::vector<std::uint8_t> FederationServer::elide_mask_for(
    std::int32_t dst, const ShardDownlink& d) {
  if (!topo_.broadcast_cache || dst >= kServerId) return {};
  const auto& known = child_known_[agg_index(dst)];
  std::vector<std::uint8_t> mask(d.bodies.size(), 0);
  // Decide per body against the receiver cache as it will evolve while it
  // decodes this bundle in table order (a later same-spec body evicts an
  // earlier one), so replay the eviction rule alongside the decisions.
  std::unordered_map<std::uint64_t, std::uint64_t> view = known;
  std::uint64_t hits = 0, saved = 0;
  for (std::size_t i = 0; i < d.bodies.size(); ++i) {
    const std::uint64_t hash = broadcast_body_hash(d.bodies[i]);
    const std::uint64_t spec = broadcast_body_spec_digest(d.bodies[i]);
    const auto it = view.find(spec);
    if (it != view.end() && it->second == hash) {
      mask[i] = 1;
      ++hits;
      saved += d.bodies[i].size();  // elided entry ships the hash instead
    }
    view[spec] = hash;
  }
  if (hits > 0) {
    net_->stats_mutable().cache_hits.fetch_add(hits,
                                               std::memory_order_relaxed);
    net_->stats_mutable().cache_saved_bytes.fetch_add(
        saved, std::memory_order_relaxed);
  }
  return mask;
}

void FederationServer::note_bundle_known(std::int32_t dst,
                                         const ShardDownlink& d) {
  if (!topo_.broadcast_cache || dst >= kServerId) return;
  auto& known = child_known_[agg_index(dst)];
  for (const std::string& b : d.bodies)
    known[broadcast_body_spec_digest(b)] = broadcast_body_hash(b);
}

void FederationServer::drop_missing_bodies(ShardDownlink& d,
                                           std::int32_t node) {
  bool any = false;
  for (const std::uint8_t m : d.missing) any = any || m != 0;
  if (!any) return;
  const std::size_t before = d.tasks.size();
  d.tasks.erase(std::remove_if(d.tasks.begin(), d.tasks.end(),
                               [&d](const DownlinkTask& t) {
                                 return d.missing[t.body] != 0;
                               }),
                d.tasks.end());
  FT_LOG_WARN("aggregator " << node << " round " << d.round << ": dropped "
                            << before - d.tasks.size()
                            << " downlink task(s) whose elided broadcast "
                               "body was missing from the cache (lost for "
                               "the round)");
}

FederationServer::ParsedBody FederationServer::parse_body(
    const std::string& body) {
  std::istringstream is(body, std::ios::binary);
  ParsedBody p;
  p.spec = read_string(is);
  p.spec_digest = fnv1a64(p.spec.data(), p.spec.size());
  p.weights = read_weight_set(is);
  return p;
}

std::string FederationServer::model_down_for(
    std::uint32_t round, std::int32_t slot, int client,
    const std::string& body, const ParsedBody* parsed,
    const std::array<std::uint64_t, 4>& rng_state, std::uint8_t& flags) {
  (void)round;
  flags = 0;
  if (topo_.delta_downlink && parsed != nullptr) {
    const auto entry = delta_store_.peek(client);
    if (entry && entry->spec_digest == parsed->spec_digest &&
        ws_shapes_match(entry->weights, parsed->weights)) {
      std::ostringstream os(std::ios::binary);
      write_pod<std::int32_t>(os, slot);
      write_string(os, parsed->spec);
      write_weight_delta(os, entry->version, entry->weights, parsed->weights);
      os.write(reinterpret_cast<const char*>(rng_state.data()),
               sizeof(rng_state));
      std::string delta_payload = os.str();
      // A diff that is not actually smaller (every tensor changed) falls
      // back to the full payload, so the saving is never negative.
      const std::size_t full =
          sizeof(slot) + body.size() + sizeof(rng_state);
      if (delta_payload.size() < full) {
        flags = kFlagDelta;
        net_->stats_mutable().delta_downlinks.fetch_add(
            1, std::memory_order_relaxed);
        net_->stats_mutable().delta_saved_bytes.fetch_add(
            full - delta_payload.size(), std::memory_order_relaxed);
        return delta_payload;
      }
    }
  }
  return model_down_payload(slot, body, rng_state);
}

void FederationServer::send_join(std::uint32_t round, std::int32_t task,
                                 int client, std::int32_t coordinator,
                                 double sent_at_s) {
  FabricMessage join;
  join.type = MsgType::JoinRound;
  join.round = round;
  join.sender = coordinator;
  join.receiver = client;
  join.task = task;
  net_->send(coordinator, client, encode_message(join), sent_at_s);
}

void FederationServer::broadcast_shared(std::uint32_t round,
                                        const WeightSet& global,
                                        const std::vector<int>& clients,
                                        const std::vector<Rng>& client_rngs) {
  FT_SPAN_ARG("server", "broadcast", "tasks", clients.size());
  // Serialize the weight set once; per task only the (tiny) slot id and
  // Rng-state sections of the ModelDown payload differ, so broadcast is one
  // encode plus a couple of memcpys per client rather than n WeightSet
  // deep copies.
  const std::string body = shared_body(global);

  if (sharded()) {
    std::vector<const std::string*> slot_body(clients.size(), &body);
    broadcast_sharded(round, clients, client_rngs, slot_body);
    return;
  }

  std::unique_ptr<ParsedBody> parsed;
  if (topo_.delta_downlink)
    parsed = std::make_unique<ParsedBody>(parse_body(body));
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int c = clients[i];
    send_join(round, static_cast<std::int32_t>(i), c, kServerId);
    std::uint8_t flags = 0;
    const std::string payload =
        model_down_for(round, static_cast<std::int32_t>(i), c, body,
                       parsed.get(), client_rngs[i].state(), flags);
    net_->send(kServerId, c,
               encode_frame(MsgType::ModelDown, round, kServerId, c, payload,
                            flags));
  }
}

void FederationServer::broadcast_tasks(std::uint32_t round,
                                       const std::vector<Model*>& payloads,
                                       const std::vector<int>& clients,
                                       const std::vector<Rng>& client_rngs) {
  FT_SPAN_ARG("server", "broadcast", "tasks", clients.size());
  // Architecture + weights ride the frame: the agent rebuilds the exact
  // submodel this task trains, no shared prototype required. The engine
  // hands tasks in the same payload_key group one Model instance, so the
  // (large) spec + weights section is encoded once per distinct instance
  // and reused; only the slot id and Rng state differ per frame.
  std::unordered_map<const Model*, std::string> encoded;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    std::string& body = encoded[payloads[i]];
    if (body.empty()) body = task_body(*payloads[i]);
  }

  if (sharded()) {
    std::vector<const std::string*> slot_body(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i)
      slot_body[i] = &encoded[payloads[i]];
    broadcast_sharded(round, clients, client_rngs, slot_body);
    return;
  }

  std::unordered_map<const std::string*, std::unique_ptr<ParsedBody>> parsed;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int c = clients[i];
    const std::string& body = encoded[payloads[i]];
    send_join(round, static_cast<std::int32_t>(i), c, kServerId);
    const ParsedBody* pb = nullptr;
    if (topo_.delta_downlink) {
      auto& slot = parsed[&body];
      if (!slot) slot = std::make_unique<ParsedBody>(parse_body(body));
      pb = slot.get();
    }
    std::uint8_t flags = 0;
    const std::string payload =
        model_down_for(round, static_cast<std::int32_t>(i), c, body, pb,
                       client_rngs[i].state(), flags);
    net_->send(kServerId, c,
               encode_frame(MsgType::ModelDown, round, kServerId, c, payload,
                            flags));
  }
}

void FederationServer::broadcast_sharded(
    std::uint32_t round, const std::vector<int>& clients,
    const std::vector<Rng>& client_rngs,
    const std::vector<const std::string*>& slot_body) {
  FT_SPAN_ARG("server", "broadcast_sharded", "tasks", clients.size());
  // Root → tree: one bundle per root child, built in a single pass over
  // the task list (each distinct payload body copied once per child that
  // references it — the broadcast hot path never materializes a full-tree
  // bundle). Interior tiers split their bundle further; a bundle lost
  // despite retries leaves its whole subtree's tasks at LostDown.
  const int kids = tree_.tier_width(1);
  std::vector<ShardDownlink> bundles(static_cast<std::size_t>(kids));
  std::vector<std::unordered_map<const std::string*, std::uint32_t>>
      body_idx(static_cast<std::size_t>(kids));
  for (int j = 0; j < kids; ++j) {
    auto& b = bundles[static_cast<std::size_t>(j)];
    const auto [lo, hi] = tree_.leaf_range(1, j);
    b.leaf_lo = lo;
    b.leaf_hi = hi;
    b.shard = hi - lo == 1 ? lo : -1;
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int leaf = static_cast<int>(i) % topo_.shards;
    const auto j = static_cast<std::size_t>(tree_.node_covering(1, leaf));
    auto& b = bundles[j];
    auto [it, fresh] = body_idx[j].emplace(
        slot_body[i], static_cast<std::uint32_t>(b.bodies.size()));
    if (fresh) b.bodies.push_back(*slot_body[i]);
    DownlinkTask t;
    t.task = static_cast<std::int32_t>(i);
    t.client = clients[i];
    t.body = it->second;
    t.reduce = round_reduce_.empty() ? -1 : round_reduce_[i];
    t.rng_state = client_rngs[i].state();
    b.tasks.push_back(t);
  }
  for (int j = 0; j < kids; ++j)
    send_bundle(round, kServerId, 1, j, bundles[static_cast<std::size_t>(j)],
                /*sent_at_s=*/0.0);
  route_tiers_down(round);
  fan_out_shards(round);
}

void FederationServer::send_bundle(std::uint32_t round, std::int32_t src,
                                   int tier, int j, const ShardDownlink& d,
                                   double sent_at_s) {
  if (d.tasks.empty()) return;
  if (tier < topo_.levels - 1) {
    // Interior destination: straight down under the retry policy. The elide
    // mask is computed once per destination decision — retries reuse it, so
    // cache savings are counted once even when the frame is resent.
    const std::int32_t dst = tree_.node_id(tier, j);
    const std::vector<std::uint8_t> elide = elide_mask_for(dst, d);
    const bool delivered = send_with_retry(
        *net_, src, dst, sent_at_s, topo_, /*downlink=*/true,
        [&](std::uint8_t flags) {
          return encode_shard_down(round, src, dst, d, flags,
                                   elide.empty() ? nullptr : &elide);
        });
    if (delivered) note_bundle_known(dst, d);
    return;
  }
  // Leaf destination: the per-shard fault domain. An alive leaf gets its
  // partition's bundle under the retry policy; a dead one costs the parent
  // the first (wasted) send, and one ack-timeout later the partition is
  // redirected to the alive sibling — billed as failover traffic. With the
  // whole sibling group down the partition is lost for the round.
  const int owner = owner_leaf(round, j);
  if (owner == j) {
    const std::int32_t dst = tree_.leaf_id(j);
    const std::vector<std::uint8_t> elide = elide_mask_for(dst, d);
    const bool delivered = send_with_retry(
        *net_, src, dst, sent_at_s, topo_, /*downlink=*/true,
        [&](std::uint8_t flags) {
          return encode_shard_down(round, src, dst, d, flags,
                                   elide.empty() ? nullptr : &elide);
        });
    if (delivered) note_bundle_known(dst, d);
    return;
  }
  // The wasted frame elides against the dead leaf's known-map (the sender
  // cannot know the leaf is dead yet), but never advances it — the mail
  // rots undecoded, so the leaf's cache saw nothing.
  const std::vector<std::uint8_t> dead_elide =
      elide_mask_for(tree_.leaf_id(j), d);
  std::string wasted =
      encode_shard_down(round, src, tree_.leaf_id(j), d, 0,
                        dead_elide.empty() ? nullptr : &dead_elide);
  const std::size_t bytes = wasted.size();
  net_->send(src, tree_.leaf_id(j), std::move(wasted), sent_at_s);
  if (owner < 0) return;
  FT_VSPAN_ARG("server", "leaf_failover", sent_at_s + topo_.ack_timeout_s,
               0.0, track_of_endpoint(tree_.leaf_id(owner)), "dead_leaf", j);
  net_->stats_mutable().leaf_failovers.fetch_add(1,
                                                 std::memory_order_relaxed);
  net_->stats_mutable().failover_bytes_down.fetch_add(
      bytes, std::memory_order_relaxed);
  const std::int32_t dst = tree_.leaf_id(owner);
  const std::vector<std::uint8_t> elide = elide_mask_for(dst, d);
  const bool delivered = send_with_retry(
      *net_, src, dst, sent_at_s + topo_.ack_timeout_s, topo_,
      /*downlink=*/true, [&](std::uint8_t flags) {
        return encode_shard_down(round, src, dst, d, flags,
                                 elide.empty() ? nullptr : &elide);
      });
  if (delivered) note_bundle_known(dst, d);
}

void FederationServer::route_tiers_down(std::uint32_t round) {
  FT_SPAN("server", "route_tiers_down");
  // Interior downlink passes, one tier at a time (node-parallel within a
  // tier: nodes own disjoint subtrees and mailboxes are thread-safe).
  for (int t = 1; t + 1 <= topo_.levels - 1; ++t) {
    ThreadPool::global().parallel_for(
        tree_.tier_width(t), 1, [&](std::int64_t nlo, std::int64_t nhi) {
          for (std::int64_t jj = nlo; jj < nhi; ++jj) {
            const int j = static_cast<int>(jj);
            const std::int32_t node = tree_.node_id(t, j);
            std::set<std::int32_t> handled;  // first arrival per leaf range
            for (Envelope& env : net_->drain(node)) {
              ShardDownlink d;
              try {
                d = decode_shard_down(env.frame,
                                      topo_.broadcast_cache
                                          ? &bcast_cache_[agg_index(node)]
                                          : nullptr);
              } catch (const Error&) {
                net_->stats_mutable().frames_rejected.fetch_add(
                    1, std::memory_order_relaxed);
                continue;
              }
              if (d.round != round) continue;
              if (!handled.insert(d.leaf_lo).second) continue;
              drop_missing_bodies(d, node);
              const auto [clo, chi] = tree_.child_range(t, j);
              for (int c = clo; c < chi; ++c) {
                const auto [llo, lhi] = tree_.leaf_range(t + 1, c);
                send_bundle(round, tree_.node_id(t, j), t + 1, c,
                            subset_bundle(d, topo_.shards, llo, lhi),
                            env.deliver_at_s);
              }
            }
          }
        });
  }
}

void FederationServer::fan_out_shards(std::uint32_t round) {
  FT_SPAN("server", "fan_out_shards");
  // Leaves fan their bundle(s) out to the client partition — JoinRound +
  // ModelDown per task, byte-identical payloads to what a flat broadcast
  // would have sent (only the coordinator id differs), so agents train
  // bit-identically. Node-parallel on the shared ThreadPool: a leaf may
  // serve several partitions after a failover, but partitions are disjoint
  // and the transport mailboxes are thread-safe. Each leaf records what it
  // fanned out (slot → reduce key) for its collect pass; a leaf dead this
  // round fans out nothing.
  leaf_served_.assign(static_cast<std::size_t>(topo_.shards), {});
  ThreadPool::global().parallel_for(
      topo_.shards, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t s = lo; s < hi; ++s) {
          const std::int32_t leaf = tree_.leaf_id(static_cast<int>(s));
          if (net_->leaf_dead(round, static_cast<std::int32_t>(s))) {
            net_->drain(leaf);  // dead for the round: the mail rots
            continue;
          }
          std::set<std::int32_t> handled;  // first arrival per partition
          for (Envelope& env : net_->drain(leaf)) {
            ShardDownlink d;
            try {
              d = decode_shard_down(env.frame,
                                    topo_.broadcast_cache
                                        ? &bcast_cache_[agg_index(leaf)]
                                        : nullptr);
            } catch (const Error&) {
              net_->stats_mutable().frames_rejected.fetch_add(
                  1, std::memory_order_relaxed);
              continue;
            }
            if (d.round != round) continue;
            if (!handled.insert(d.shard).second) continue;
            drop_missing_bodies(d, leaf);
            // One parse per distinct body in the bundle, built lazily —
            // rounds without delta downlinks never deserialize here.
            std::vector<std::unique_ptr<ParsedBody>> parsed(d.bodies.size());
            for (const DownlinkTask& t : d.tasks) {
              // Both per-client frames leave when the bundle arrived — a
              // retried ShardDown must not invite clients retroactively.
              send_join(round, t.task, t.client, leaf, env.deliver_at_s);
              const ParsedBody* pb = nullptr;
              if (topo_.delta_downlink) {
                auto& slot = parsed[t.body];
                if (!slot)
                  slot = std::make_unique<ParsedBody>(
                      parse_body(d.bodies[t.body]));
                pb = slot.get();
              }
              std::uint8_t flags = 0;
              const std::string payload =
                  model_down_for(round, t.task, t.client, d.bodies[t.body],
                                 pb, t.rng_state, flags);
              net_->send(leaf, t.client,
                         encode_frame(MsgType::ModelDown, round, leaf,
                                      t.client, payload, flags),
                         env.deliver_at_s);
              leaf_served_[static_cast<std::size_t>(s)][t.task] = t.reduce;
            }
          }
        }
      });
}

void FederationServer::poll_agents(std::uint32_t round,
                                   const std::vector<int>& clients,
                                   ExchangeResult& out) {
  FT_SPAN_ARG("server", "poll_agents", "tasks", clients.size());
  // ClientAgent workers run concurrently on the shared ThreadPool — one
  // poll per *distinct* client (an agent drains its whole mailbox, which
  // may hold several task slots). Each task slot is written by exactly one
  // agent, so the result is independent of the thread schedule; nested
  // parallel_for inside local_train runs inline.
  std::vector<int> distinct;
  distinct.reserve(clients.size());
  std::set<int> seen_clients;
  for (int c : clients)
    if (seen_clients.insert(c).second) distinct.push_back(c);

  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(distinct.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          // Agents are stateless per-round workers (id + config + borrowed
          // data): build one on the stack per distinct client instead of
          // keeping a live object per population member. At a million
          // clients the always-materialized agent vector is exactly the
          // kind of resident cost the descriptor population avoids.
          ClientAgent(distinct[static_cast<std::size_t>(i)], *data_, local_,
                      topo_)
              .poll(round, prototype_, *net_, out.outcomes,
                    topo_.delta_downlink ? &delta_store_ : nullptr);
      });
}

void FederationServer::collect(std::uint32_t round,
                               const std::vector<int>& clients,
                               ExchangeResult& out) {
  FT_SPAN("server", "collect");
  poll_agents(round, clients, out);

  // Match the server's inbound mail to the task list. Duplicates are
  // dropped on the floor here (first arrival wins); stale rounds, unknown
  // slots and sender/slot mismatches are ignored.
  std::vector<bool> seen(clients.size(), false);
  for (Envelope& env : net_->drain(kServerId)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != round) continue;
    if (msg.type != MsgType::UpdateUp) continue;
    // Ack and Abort are bookkeeping-only: the agents' ground-truth
    // outcomes already account for dropouts.
    if (!admissible_slot(msg.task, msg.sender, clients)) continue;
    const auto slot = static_cast<std::size_t>(msg.task);
    if (seen[slot]) continue;
    seen[slot] = true;
    LocalTrainResult& res = out.results[slot];
    res.delta = std::move(msg.weights);
    res.avg_loss = msg.avg_loss;
    res.num_samples = msg.num_samples;
    res.macs_used = msg.macs_used;
  }
  // An agent that believes its update was delivered must be matched by an
  // UpdateUp in the server's mailbox; anything else is a fabric bug.
  for (std::size_t i = 0; i < clients.size(); ++i)
    if (out.outcomes[i] == ClientOutcome::Trained)
      FT_CHECK_MSG(seen[i], "delivered update missing from server mailbox");
}

void FederationServer::collect_sharded(std::uint32_t round,
                                       const std::vector<int>& clients,
                                       ExchangeResult& out) {
  FT_SPAN("server", "collect_sharded");
  poll_agents(round, clients, out);

  // Leaf pass: each alive leaf matches the partitions it served at fan-out
  // and forwards one PartialUp per partition upstream — node-parallel on
  // the shared ThreadPool (partitions are disjoint, so outcome flips never
  // race). In a numeric round the leaf folds its updates into per-key
  // partial sums in slot order and ships metrics-only entries; a bundle
  // lost despite the retry policy takes its partition's trained updates
  // down with it.
  ThreadPool::global().parallel_for(
      topo_.shards, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t s = lo; s < hi; ++s) {
          const std::int32_t leaf = tree_.leaf_id(static_cast<int>(s));
          const auto& served = leaf_served_[static_cast<std::size_t>(s)];
          if (served.empty()) {
            net_->drain(leaf);  // dead or idle: nothing was fanned out
            continue;
          }
          std::map<std::int32_t, UpdateEntry> matched;  // slot -> first win
          std::map<std::int32_t, double> up_at;  // partition -> last deliver
          for (Envelope& env : net_->drain(leaf)) {
            FabricMessage msg;
            try {
              msg = decode_message(env.frame);
            } catch (const Error&) {
              net_->stats_mutable().frames_rejected.fetch_add(
                  1, std::memory_order_relaxed);
              continue;
            }
            if (msg.round != round || msg.type != MsgType::UpdateUp)
              continue;
            const std::int32_t i = msg.task;
            if (!admissible_slot(i, msg.sender, clients)) continue;
            // This leaf only owns slots it fanned out itself.
            if (served.find(i) == served.end()) continue;
            if (matched.count(i) != 0) continue;
            UpdateEntry e;
            e.task = i;
            e.client = msg.sender;
            e.delta = std::move(msg.weights);
            e.avg_loss = msg.avg_loss;
            e.num_samples = msg.num_samples;
            e.macs_used = msg.macs_used;
            matched.emplace(i, std::move(e));
            auto& at = up_at[i % topo_.shards];
            at = std::max(at, env.deliver_at_s);
          }
          if (matched.empty()) continue;

          // One bundle per served partition, slots in ascending order
          // (matched is slot-sorted); numeric rounds fold the deltas into
          // per-key groups as they go and keep the metrics verbatim.
          std::map<std::int32_t, PartialUpdate> parts;
          for (auto& [slot, e] : matched) {
            PartialUpdate& p = parts[slot % topo_.shards];
            if (reduced_round_) {
              const std::int32_t key = served.at(slot);
              ReducedGroup* g = nullptr;
              for (ReducedGroup& cand : p.groups)
                if (cand.key == key) g = &cand;
              if (g == nullptr) {
                ReducedGroup fresh;
                fresh.key = key;
                fresh.min_slot = slot;
                fresh.sum = ws_zeros_like(e.delta);
                p.groups.push_back(std::move(fresh));
                g = &p.groups.back();
              }
              ws_axpy(g->sum, static_cast<float>(e.num_samples), e.delta);
              g->weight += static_cast<double>(e.num_samples);
              g->count += 1;
              g->min_slot = std::min(g->min_slot, slot);
              e.delta.clear();  // the sum rides instead; metrics stay
            }
            p.entries.push_back(std::move(e));
          }
          for (auto& [part, p] : parts) {
            p.shard = part;
            p.reduced = reduced_round_;
            p.quant = reduced_round_
                          ? static_cast<std::uint8_t>(topo_.quantize_partials)
                          : kPartialQuantF32;
            const std::int32_t parent =
                tree_.parent_id(topo_.levels - 1, static_cast<int>(s));
            const bool delivered = send_with_retry(
                *net_, leaf, parent, up_at[part], topo_, /*downlink=*/false,
                [&](std::uint8_t flags) {
                  return encode_partial_up(round, leaf, parent, p, flags);
                });
            if (!delivered) {
              // The partition's partial aggregate never reached its
              // parent: the trained updates are lost on the (backbone)
              // uplink.
              for (const UpdateEntry& e : p.entries) {
                auto& o = out.outcomes[static_cast<std::size_t>(e.task)];
                if (o == ClientOutcome::Trained) o = ClientOutcome::LostUp;
              }
            }
          }
        }
      });

  // Interior tiers merge child bundles upward, tier by tier (node-parallel
  // within a tier; nodes cover disjoint subtrees). Duplicate deliveries
  // dedup at bundle granularity (first arrival per (sender, partition)).
  FT_SPAN("server", "partial_merge");
  for (int t = topo_.levels - 2; t >= 1; --t) {
    ThreadPool::global().parallel_for(
        tree_.tier_width(t), 1, [&](std::int64_t nlo, std::int64_t nhi) {
          for (std::int64_t jj = nlo; jj < nhi; ++jj) {
            const int j = static_cast<int>(jj);
            const std::int32_t node = tree_.node_id(t, j);
            std::vector<PartialUpdate> bundles;
            std::set<std::pair<std::int32_t, std::int32_t>> seen_b;
            double last_s = 0.0;
            for (Envelope& env : net_->drain(node)) {
              PartialUpdate p;
              try {
                if (frame_type(env.frame) != MsgType::PartialUp) continue;
                p = decode_partial_up(env.frame);
              } catch (const Error&) {
                net_->stats_mutable().frames_rejected.fetch_add(
                    1, std::memory_order_relaxed);
                continue;
              }
              if (p.round != round) continue;
              if (!seen_b.insert({p.sender, p.shard}).second) continue;
              last_s = std::max(last_s, env.deliver_at_s);
              bundles.push_back(std::move(p));
            }
            if (bundles.empty()) continue;
            PartialUpdate m = merge_bundles(std::move(bundles),
                                            reduced_round_);
            m.shard = j;
            m.quant = reduced_round_
                          ? static_cast<std::uint8_t>(topo_.quantize_partials)
                          : kPartialQuantF32;
            const std::int32_t parent = tree_.parent_id(t, j);
            const bool delivered = send_with_retry(
                *net_, node, parent, last_s, topo_, /*downlink=*/false,
                [&](std::uint8_t flags) {
                  return encode_partial_up(round, node, parent, m, flags);
                });
            if (!delivered) {
              for (const UpdateEntry& e : m.entries) {
                auto& o = out.outcomes[static_cast<std::size_t>(e.task)];
                if (o == ClientOutcome::Trained) o = ClientOutcome::LostUp;
              }
            }
          }
        });
  }

  // Root: merge the surviving bundles back into the flat task list — the
  // same slot/sender validation and first-arrival dedup as a flat collect,
  // just over bundled entries (and, in a numeric round, the merged reduce
  // groups the engine's absorb_reduced path consumes).
  std::vector<PartialUpdate> bundles;
  std::set<std::pair<std::int32_t, std::int32_t>> seen_b;
  for (Envelope& env : net_->drain(kServerId)) {
    PartialUpdate p;
    try {
      if (frame_type(env.frame) != MsgType::PartialUp)
        continue;  // Ack/Abort: bookkeeping only
      p = decode_partial_up(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (p.round != round) continue;
    if (!seen_b.insert({p.sender, p.shard}).second) continue;
    bundles.push_back(std::move(p));
  }
  PartialUpdate merged = merge_bundles(std::move(bundles), reduced_round_);

  std::vector<bool> seen(clients.size(), false);
  for (UpdateEntry& e : merged.entries) {
    if (!admissible_slot(e.task, e.client, clients)) continue;
    const auto slot = static_cast<std::size_t>(e.task);
    if (seen[slot]) continue;
    seen[slot] = true;
    LocalTrainResult& res = out.results[slot];
    res.delta = std::move(e.delta);
    res.avg_loss = e.avg_loss;
    res.num_samples = e.num_samples;
    res.macs_used = e.macs_used;
  }
  if (reduced_round_) out.groups = std::move(merged.groups);
  for (std::size_t i = 0; i < clients.size(); ++i)
    if (out.outcomes[i] == ClientOutcome::Trained)
      FT_CHECK_MSG(seen[i], "delivered update missing from root mailbox");
}

ExchangeResult FederationServer::exchange(
    std::uint32_t round, const std::vector<int>& clients, std::size_t n_rngs,
    const std::function<void()>& broadcast_fn) {
  FT_SPAN_ARG("server", "exchange", "tasks", clients.size());
  FT_CHECK_MSG(clients.size() == n_rngs,
               "one forked Rng per task slot required");
  FT_CHECK_MSG(round_reduce_.empty() ||
                   round_reduce_.size() == clients.size(),
               "one reduce key per task slot required");
  reduced_round_ = topo_.partial_aggregation && sharded() &&
                   !round_reduce_.empty();
  ExchangeResult out;
  out.results.resize(clients.size());
  out.outcomes.assign(clients.size(), ClientOutcome::LostDown);
  out.reduced = reduced_round_;
  const std::uint64_t retry_down0 = net_->stats().retry_bytes_down.load();
  const std::uint64_t retry_up0 = net_->stats().retry_bytes_up.load();
  const std::uint64_t failovers0 = net_->stats().leaf_failovers.load();
  const std::uint64_t failover_b0 = net_->stats().failover_bytes_down.load();
  const std::uint64_t delta_saved0 = net_->stats().delta_saved_bytes.load();

  phase_ = Phase::Broadcast;
  broadcast_fn();
  phase_ = Phase::Collect;
  if (sharded())
    collect_sharded(round, clients, out);
  else
    collect(round, clients, out);
  phase_ = Phase::Aggregate;  // aggregation happens in the caller

  out.retry_down_bytes = static_cast<double>(
      net_->stats().retry_bytes_down.load() - retry_down0);
  out.retry_up_bytes = static_cast<double>(
      net_->stats().retry_bytes_up.load() - retry_up0);
  out.leaf_failovers = static_cast<int>(
      net_->stats().leaf_failovers.load() - failovers0);
  out.failover_down_bytes = static_cast<double>(
      net_->stats().failover_bytes_down.load() - failover_b0);
  out.delta_saved_bytes = static_cast<double>(
      net_->stats().delta_saved_bytes.load() - delta_saved0);
  round_reduce_.clear();
  return out;
}

ExchangeResult FederationServer::run_round(
    std::uint32_t round, const WeightSet& global,
    const std::vector<int>& clients, const std::vector<Rng>& client_rngs,
    const std::vector<std::int32_t>& reduce_keys) {
  round_reduce_ = reduce_keys;
  return exchange(round, clients, client_rngs.size(), [&] {
    broadcast_shared(round, global, clients, client_rngs);
  });
}

ExchangeResult FederationServer::run_round(
    std::uint32_t round, const std::vector<Model*>& payloads,
    const std::vector<int>& clients, const std::vector<Rng>& client_rngs,
    const std::vector<std::int32_t>& reduce_keys) {
  FT_CHECK_MSG(payloads.size() == clients.size(),
               "one payload model per task slot required");
  round_reduce_ = reduce_keys;
  return exchange(round, clients, client_rngs.size(), [&] {
    broadcast_tasks(round, payloads, clients, client_rngs);
  });
}

AsyncTurnaround FederationServer::async_exchange(std::uint32_t job,
                                                 int client,
                                                 const WeightSet& global,
                                                 const Rng& rng,
                                                 double now_s) {
  FT_SPAN_ARG("server", "async_exchange", "client", client);
  FT_CHECK_MSG(client >= 0 && client < num_clients(),
               "async dispatch to unknown client " << client);
  AsyncTurnaround t;
  const std::uint64_t retry0 = net_->stats().retry_bytes_up.load();

  // Route: a flat session talks straight to the client; a tree session
  // hops through the aggregator chain above the client's leaf partition
  // (leaf = client % shards, failover applied per job) on the
  // zero-latency backbone — so the server-side delivery order the engine
  // folds completions in is preserved relative to a flat fabric.
  std::vector<std::int32_t> chain;  // root-to-leaf aggregator endpoints
  if (sharded()) {
    const int part = client % topo_.shards;
    const int owner = owner_leaf(job, part);
    if (owner < 0) return t;  // whole fault domain down: LostDown
    if (owner != part) {
      t.failed_over = true;
      net_->stats_mutable().leaf_failovers.fetch_add(
          1, std::memory_order_relaxed);
    }
    for (int tier = 1; tier < topo_.levels - 1; ++tier)
      chain.push_back(tree_.node_id(tier, tree_.node_covering(tier, owner)));
    chain.push_back(tree_.leaf_id(owner));
  }

  // Downlink: one ModelDown (task slot 0, round field = job id) carrying
  // the dispatch-time weight snapshot and the forked Rng — hop by hop down
  // the chain, then over the client's radio link, the real wire path, so
  // the client trains on exactly what it downloaded. Any lost hop is
  // LostDown: async dispatches are not retried downward — the engine
  // replaces timed-out clients instead.
  const std::string payload =
      model_down_payload(0, shared_body(global), rng.state());
  std::int32_t down_src = kServerId;
  double down_sent_s = now_s;
  for (std::int32_t hop : chain) {
    if (!net_->send(down_src, hop,
                    encode_frame(MsgType::ModelDown, job, down_src, hop,
                                 payload),
                    down_sent_s))
      return t;
    bool hop_got = false;
    for (Envelope& env : net_->drain(hop)) {
      FabricMessage msg;
      try {
        msg = decode_message(env.frame);
      } catch (const Error&) {
        net_->stats_mutable().frames_rejected.fetch_add(
            1, std::memory_order_relaxed);
        continue;
      }
      if (msg.round != job || msg.type != MsgType::ModelDown || hop_got)
        continue;  // duplicates: first arrival wins
      hop_got = true;
      down_sent_s = env.deliver_at_s;
    }
    FT_CHECK_MSG(hop_got,
                 "delivered ModelDown missing from aggregator mailbox");
    down_src = hop;
  }
  const bool down_ok = net_->send(
      down_src, client,
      encode_frame(MsgType::ModelDown, job, down_src, client, payload),
      down_sent_s);
  if (!down_ok) return t;  // LostDown: the device never saw the job

  // Client side: drain, decode, train on receipt.
  double down_at = 0.0;
  FabricMessage down;
  bool got_down = false;
  for (Envelope& env : net_->drain(client)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != job || msg.type != MsgType::ModelDown || got_down)
      continue;  // duplicates: first arrival wins
    got_down = true;
    down_at = env.deliver_at_s;
    down = std::move(msg);
  }
  FT_CHECK_MSG(got_down, "delivered ModelDown missing from client mailbox");

  Model local = prototype_;
  local.set_weights(down.weights);
  Rng crng;
  crng.set_state(down.rng_state);
  t.res = byzantine_local_train(local, data_->client(client),
                                data_->num_classes(), local_, crng,
                                net_->faults(), job, client);
  const double compute_s =
      t.res.macs_used / net_->device(client).compute_macs_per_s;
  const double done_s = down_at + compute_s;
  FT_VSPAN_ARG("client", "train", down_at, compute_s, kTrackClients + client,
               "job", job);
  t.busy_s = done_s - now_s;

  if (net_->client_dropped_out(job, client)) {
    t.outcome = ClientOutcome::Dropout;
    return t;  // trained, then vanished — no upload, no retries
  }

  // Uplink under the retry policy: client → its coordinator (the leaf in
  // tree sessions), then hop by hop back to the root, each backbone leg
  // under the same retry policy.
  FabricMessage up;
  up.type = MsgType::UpdateUp;
  up.round = job;
  up.sender = client;
  up.receiver = chain.empty() ? kServerId : chain.back();
  up.task = 0;
  up.weights = std::move(t.res.delta);
  up.avg_loss = t.res.avg_loss;
  up.num_samples = t.res.num_samples;
  up.macs_used = t.res.macs_used;
  const bool delivered = send_with_retry(
      *net_, client, up.receiver, done_s, topo_, /*downlink=*/false,
      [&up](std::uint8_t flags) {
        up.flags = flags;
        return encode_message(up);
      });
  if (!delivered) {
    t.retry_up_bytes = static_cast<double>(
        net_->stats().retry_bytes_up.load() - retry0);
    t.outcome = ClientOutcome::LostUp;
    return t;
  }
  for (std::size_t k = chain.size(); k-- > 0;) {
    const std::int32_t node = chain[k];
    FabricMessage fwd;
    bool hop_got = false;
    double up_at = 0.0;
    for (Envelope& env : net_->drain(node)) {
      FabricMessage msg;
      try {
        msg = decode_message(env.frame);
      } catch (const Error&) {
        net_->stats_mutable().frames_rejected.fetch_add(
            1, std::memory_order_relaxed);
        continue;
      }
      if (msg.round != job || msg.type != MsgType::UpdateUp || hop_got)
        continue;
      hop_got = true;
      up_at = env.deliver_at_s;
      fwd = std::move(msg);
    }
    FT_CHECK_MSG(hop_got,
                 "delivered update missing from aggregator mailbox");
    const std::int32_t parent = k == 0 ? kServerId : chain[k - 1];
    fwd.sender = node;
    fwd.receiver = parent;
    const bool fwd_ok = send_with_retry(
        *net_, node, parent, up_at, topo_, /*downlink=*/false,
        [&fwd](std::uint8_t flags) {
          fwd.flags = flags;
          return encode_message(fwd);
        });
    if (!fwd_ok) {
      t.retry_up_bytes = static_cast<double>(
          net_->stats().retry_bytes_up.load() - retry0);
      t.outcome = ClientOutcome::LostUp;
      return t;
    }
  }
  t.retry_up_bytes = static_cast<double>(
      net_->stats().retry_bytes_up.load() - retry0);

  // Server side: collect this job's UpdateUp and its delivery instant.
  bool got_up = false;
  for (Envelope& env : net_->drain(kServerId)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != job || msg.type != MsgType::UpdateUp || got_up)
      continue;
    got_up = true;
    t.update_at_s = env.deliver_at_s;
    t.res.delta = std::move(msg.weights);
  }
  FT_CHECK_MSG(got_up, "delivered update missing from server mailbox");
  t.outcome = ClientOutcome::Trained;
  t.busy_s = std::max(t.busy_s, t.update_at_s - now_s);
  return t;
}

}  // namespace fedtrans
