#include "net/server.hpp"

#include <sstream>
#include <unordered_map>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace fedtrans {

ClientAgent::ClientAgent(int id, const FederatedDataset& data,
                         LocalTrainConfig local)
    : id_(id), data_(&data), local_(local) {}

ClientOutcome ClientAgent::poll(std::uint32_t round, const Model& prototype,
                                SimTransport& net) {
  bool invited = false;
  bool have_model = false;
  FabricMessage model_down;
  double model_at_s = 0.0;

  // Drain the mailbox first: duplicates and reordered frames all land here;
  // the agent keeps the first ModelDown for this round and ignores the rest.
  for (Envelope& env : net.drain(id_)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      // Treated as loss, but counted: the transport never corrupts bytes,
      // so frames_rejected > 0 means a codec bug (asserted 0 in tests).
      net.stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != round) continue;
    if (msg.type == MsgType::JoinRound && !invited) {
      invited = true;
      FabricMessage ack;
      ack.type = MsgType::Ack;
      ack.round = round;
      ack.sender = id_;
      ack.receiver = kServerId;
      net.send(id_, kServerId, encode_message(ack), env.deliver_at_s);
    } else if (msg.type == MsgType::ModelDown && !have_model) {
      have_model = true;
      model_down = std::move(msg);
      model_at_s = env.deliver_at_s;
    }
  }
  // The invitation is load-bearing: a client that never saw its JoinRound
  // does not participate even if the model frame made it through, exactly
  // like a client whose ModelDown was lost.
  if (!invited || !have_model) return ClientOutcome::LostDown;

  // Train exactly as the in-process path would: the global weights and the
  // coordinator-forked Rng both arrived on the wire.
  Model local = prototype;
  local.set_weights(model_down.weights);
  Rng rng;
  rng.set_state(model_down.rng_state);
  LocalTrainResult res =
      local_train(local, data_->client(id_), local_, rng);

  const double compute_s =
      res.macs_used /
      net.device(id_).compute_macs_per_s;

  if (net.client_dropped_out(round, id_)) {
    // Mid-round dropout: the device vanishes after training. It attempts a
    // courtesy Abort, which rides the same lossy link as everything else.
    FabricMessage abort_msg;
    abort_msg.type = MsgType::Abort;
    abort_msg.round = round;
    abort_msg.sender = id_;
    abort_msg.receiver = kServerId;
    abort_msg.reason = "dropout";
    net.send(id_, kServerId, encode_message(abort_msg),
             model_at_s + compute_s);
    net.stats_mutable().client_dropouts.fetch_add(1,
                                                  std::memory_order_relaxed);
    return ClientOutcome::Dropout;
  }

  FabricMessage up;
  up.type = MsgType::UpdateUp;
  up.round = round;
  up.sender = id_;
  up.receiver = kServerId;
  up.weights = std::move(res.delta);
  up.avg_loss = res.avg_loss;
  up.num_samples = res.num_samples;
  up.macs_used = res.macs_used;
  const bool delivered =
      net.send(id_, kServerId, encode_message(up), model_at_s + compute_s);
  return delivered ? ClientOutcome::Trained : ClientOutcome::LostUp;
}

FederationServer::FederationServer(const Model& prototype,
                                   const FederatedDataset& data,
                                   std::vector<DeviceProfile> fleet,
                                   LocalTrainConfig local, FaultConfig faults)
    : prototype_(prototype), data_(&data) {
  FT_CHECK_MSG(static_cast<int>(fleet.size()) == data.num_clients(),
               "fabric fleet size must match client count");
  net_ = std::make_unique<SimTransport>(std::move(fleet), faults);
  agents_.reserve(static_cast<std::size_t>(data.num_clients()));
  for (int c = 0; c < data.num_clients(); ++c)
    agents_.emplace_back(c, data, local);
}

void FederationServer::broadcast(std::uint32_t round,
                                 const WeightSet& global,
                                 const std::vector<int>& selected,
                                 const std::vector<Rng>& client_rngs) {
  // Serialize the weight set once; per client only the (tiny) Rng-state
  // tail of the ModelDown payload differs, so broadcast is one encode plus
  // a couple of memcpys per client rather than n WeightSet deep copies.
  std::ostringstream wos(std::ios::binary);
  write_weight_set(wos, global);
  const std::string weight_blob = wos.str();

  for (std::size_t i = 0; i < selected.size(); ++i) {
    const int c = selected[i];
    net_->send(kServerId, c,
               encode_frame(MsgType::JoinRound, round, kServerId, c, {}));

    std::string payload;
    const auto rng_state = client_rngs[i].state();
    payload.reserve(weight_blob.size() + sizeof(rng_state));
    payload.append(weight_blob);
    payload.append(reinterpret_cast<const char*>(rng_state.data()),
                   sizeof(rng_state));
    net_->send(kServerId, c,
               encode_frame(MsgType::ModelDown, round, kServerId, c,
                            payload));
  }
}

void FederationServer::collect(std::uint32_t round,
                               const std::vector<int>& selected,
                               ExchangeResult& out) {
  // ClientAgent workers run concurrently on the shared ThreadPool. Each
  // writes only its own selection slot, so the result is independent of the
  // thread schedule; nested parallel_for inside local_train runs inline.
  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(selected.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          out.outcomes[idx] =
              agents_[static_cast<std::size_t>(selected[idx])].poll(
                  round, prototype_, *net_);
        }
      });

  // Match the server's inbound mail to the selection. Duplicates are
  // dropped on the floor here (first arrival wins); stale rounds and
  // unknown senders are ignored.
  std::unordered_map<int, std::size_t> slot;
  slot.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i)
    slot.emplace(selected[i], i);
  std::vector<bool> seen(selected.size(), false);
  for (Envelope& env : net_->drain(kServerId)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != round) continue;
    auto it = slot.find(msg.sender);
    if (it == slot.end()) continue;
    const std::size_t i = it->second;
    if (msg.type == MsgType::UpdateUp && !seen[i]) {
      seen[i] = true;
      LocalTrainResult& res = out.results[i];
      res.delta = std::move(msg.weights);
      res.avg_loss = msg.avg_loss;
      res.num_samples = msg.num_samples;
      res.macs_used = msg.macs_used;
    }
    // Ack and Abort are bookkeeping-only: the agents' ground-truth
    // outcomes already account for dropouts.
  }
  // An agent that believes its update was delivered must be matched by an
  // UpdateUp in the server's mailbox; anything else is a fabric bug.
  for (std::size_t i = 0; i < selected.size(); ++i)
    if (out.outcomes[i] == ClientOutcome::Trained)
      FT_CHECK_MSG(seen[i], "delivered update missing from server mailbox");
}

ExchangeResult FederationServer::run_round(
    std::uint32_t round, const WeightSet& global,
    const std::vector<int>& selected, const std::vector<Rng>& client_rngs) {
  FT_CHECK_MSG(selected.size() == client_rngs.size(),
               "one forked Rng per selected client required");
  ExchangeResult out;
  out.results.resize(selected.size());
  out.outcomes.assign(selected.size(), ClientOutcome::LostDown);

  phase_ = Phase::Broadcast;
  broadcast(round, global, selected, client_rngs);
  phase_ = Phase::Collect;
  collect(round, selected, out);
  phase_ = Phase::Aggregate;  // aggregation happens in the caller
  return out;
}

}  // namespace fedtrans
