#include "net/server.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/check.hpp"
#include "common/serial.hpp"
#include "common/thread_pool.hpp"

namespace fedtrans {

ClientAgent::ClientAgent(int id, const FederatedDataset& data,
                         LocalTrainConfig local)
    : id_(id), data_(&data), local_(local) {}

void ClientAgent::poll(std::uint32_t round, const Model& prototype,
                       SimTransport& net,
                       std::vector<ClientOutcome>& outcomes) {
  // Drain the mailbox first: duplicates and reordered frames all land here.
  // Invitations and models are paired per task slot; the agent keeps the
  // first arrival of each and ignores the rest.
  std::set<std::int32_t> invited;
  std::map<std::int32_t, FabricMessage> downs;  // task -> first ModelDown
  std::map<std::int32_t, double> down_at_s;

  for (Envelope& env : net.drain(id_)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      // Treated as loss, but counted: the transport never corrupts bytes,
      // so frames_rejected > 0 means a codec bug (asserted 0 in tests).
      net.stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != round) continue;
    if (msg.type == MsgType::JoinRound) {
      if (invited.insert(msg.task).second) {
        FabricMessage ack;
        ack.type = MsgType::Ack;
        ack.round = round;
        ack.sender = id_;
        ack.receiver = kServerId;
        net.send(id_, kServerId, encode_message(ack), env.deliver_at_s);
      }
    } else if (msg.type == MsgType::ModelDown) {
      if (downs.find(msg.task) == downs.end()) {
        down_at_s[msg.task] = env.deliver_at_s;
        downs.emplace(msg.task, std::move(msg));
      }
    }
  }

  // Mid-round dropout is a per-(round, client) device event: if it fires,
  // every task trains (burning real compute) and then vanishes unsent.
  const bool dropped_out = net.client_dropped_out(round, id_);
  bool trained_any = false;
  double last_done_s = 0.0;

  for (auto& [task, msg] : downs) {
    // The invitation is load-bearing: a task whose JoinRound never arrived
    // does not participate even if the model frame made it through.
    if (invited.find(task) == invited.end()) continue;
    if (task < 0 || task >= static_cast<std::int32_t>(outcomes.size()))
      continue;

    // Train exactly as the in-process path would: the payload architecture
    // (prototype or on-the-wire spec), the weights, and the coordinator-
    // forked Rng all arrived on the wire.
    Rng spawn(0);  // init weights are overwritten below
    Model local = msg.spec_text.empty()
                      ? prototype
                      : Model(ModelSpec::deserialize(msg.spec_text), spawn);
    local.set_weights(msg.weights);
    Rng rng;
    rng.set_state(msg.rng_state);
    LocalTrainResult res = local_train(local, data_->client(id_), local_, rng);

    const double compute_s =
        res.macs_used / net.device(id_).compute_macs_per_s;
    const double done_s = down_at_s[task] + compute_s;
    trained_any = true;
    last_done_s = std::max(last_done_s, done_s);

    if (dropped_out) {
      outcomes[static_cast<std::size_t>(task)] = ClientOutcome::Dropout;
      continue;
    }

    FabricMessage up;
    up.type = MsgType::UpdateUp;
    up.round = round;
    up.sender = id_;
    up.receiver = kServerId;
    up.task = task;
    up.weights = std::move(res.delta);
    up.avg_loss = res.avg_loss;
    up.num_samples = res.num_samples;
    up.macs_used = res.macs_used;
    const bool delivered =
        net.send(id_, kServerId, encode_message(up), done_s);
    outcomes[static_cast<std::size_t>(task)] =
        delivered ? ClientOutcome::Trained : ClientOutcome::LostUp;
  }

  if (dropped_out && trained_any) {
    // The device vanished after training. It attempts a courtesy Abort,
    // which rides the same lossy link as everything else.
    FabricMessage abort_msg;
    abort_msg.type = MsgType::Abort;
    abort_msg.round = round;
    abort_msg.sender = id_;
    abort_msg.receiver = kServerId;
    abort_msg.reason = "dropout";
    net.send(id_, kServerId, encode_message(abort_msg), last_done_s);
    net.stats_mutable().client_dropouts.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
}

FederationServer::FederationServer(const Model& prototype,
                                   const FederatedDataset& data,
                                   std::vector<DeviceProfile> fleet,
                                   LocalTrainConfig local, FaultConfig faults)
    : prototype_(prototype), data_(&data) {
  FT_CHECK_MSG(static_cast<int>(fleet.size()) == data.num_clients(),
               "fabric fleet size must match client count");
  net_ = std::make_unique<SimTransport>(std::move(fleet), faults);
  agents_.reserve(static_cast<std::size_t>(data.num_clients()));
  for (int c = 0; c < data.num_clients(); ++c)
    agents_.emplace_back(c, data, local);
}

void FederationServer::send_join(std::uint32_t round, std::int32_t task,
                                 int client) {
  FabricMessage join;
  join.type = MsgType::JoinRound;
  join.round = round;
  join.sender = kServerId;
  join.receiver = client;
  join.task = task;
  net_->send(kServerId, client, encode_message(join));
}

void FederationServer::broadcast_shared(std::uint32_t round,
                                        const WeightSet& global,
                                        const std::vector<int>& clients,
                                        const std::vector<Rng>& client_rngs) {
  // Serialize the weight set once; per task only the (tiny) slot id and
  // Rng-state sections of the ModelDown payload differ, so broadcast is one
  // encode plus a couple of memcpys per client rather than n WeightSet
  // deep copies.
  std::ostringstream wos(std::ios::binary);
  write_weight_set(wos, global);
  const std::string weight_blob = wos.str();

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int c = clients[i];
    send_join(round, static_cast<std::int32_t>(i), c);

    std::ostringstream head(std::ios::binary);
    write_pod<std::int32_t>(head, static_cast<std::int32_t>(i));
    write_string(head, std::string{});  // empty spec: use the prototype
    std::string payload = head.str();
    const auto rng_state = client_rngs[i].state();
    payload.reserve(payload.size() + weight_blob.size() + sizeof(rng_state));
    payload.append(weight_blob);
    payload.append(reinterpret_cast<const char*>(rng_state.data()),
                   sizeof(rng_state));
    net_->send(kServerId, c,
               encode_frame(MsgType::ModelDown, round, kServerId, c,
                            payload));
  }
}

void FederationServer::broadcast_tasks(std::uint32_t round,
                                       const std::vector<Model*>& payloads,
                                       const std::vector<int>& clients,
                                       const std::vector<Rng>& client_rngs) {
  // Architecture + weights ride the frame: the agent rebuilds the exact
  // submodel this task trains, no shared prototype required. The engine
  // hands tasks in the same payload_key group one Model instance, so the
  // (large) spec + weights section is encoded once per distinct instance
  // and reused; only the slot id and Rng state differ per frame.
  std::unordered_map<const Model*, std::string> encoded;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int c = clients[i];
    send_join(round, static_cast<std::int32_t>(i), c);

    std::string& body = encoded[payloads[i]];
    if (body.empty()) {
      std::ostringstream os(std::ios::binary);
      write_string(os, payloads[i]->spec().serialize());
      auto ps = payloads[i]->params();
      write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(ps.size()));
      for (auto& p : ps) p.value->save(os);
      body = os.str();
    }

    std::ostringstream head(std::ios::binary);
    write_pod<std::int32_t>(head, static_cast<std::int32_t>(i));
    std::string payload = head.str();
    const auto rng_state = client_rngs[i].state();
    payload.reserve(payload.size() + body.size() + sizeof(rng_state));
    payload.append(body);
    payload.append(reinterpret_cast<const char*>(rng_state.data()),
                   sizeof(rng_state));
    net_->send(kServerId, c,
               encode_frame(MsgType::ModelDown, round, kServerId, c,
                            payload));
  }
}

void FederationServer::collect(std::uint32_t round,
                               const std::vector<int>& clients,
                               ExchangeResult& out) {
  // ClientAgent workers run concurrently on the shared ThreadPool — one
  // poll per *distinct* client (an agent drains its whole mailbox, which
  // may hold several task slots). Each task slot is written by exactly one
  // agent, so the result is independent of the thread schedule; nested
  // parallel_for inside local_train runs inline.
  std::vector<int> distinct;
  distinct.reserve(clients.size());
  std::set<int> seen_clients;
  for (int c : clients)
    if (seen_clients.insert(c).second) distinct.push_back(c);

  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(distinct.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          agents_[static_cast<std::size_t>(
                      distinct[static_cast<std::size_t>(i)])]
              .poll(round, prototype_, *net_, out.outcomes);
      });

  // Match the server's inbound mail to the task list. Duplicates are
  // dropped on the floor here (first arrival wins); stale rounds, unknown
  // slots and sender/slot mismatches are ignored.
  std::vector<bool> seen(clients.size(), false);
  for (Envelope& env : net_->drain(kServerId)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != round) continue;
    if (msg.type != MsgType::UpdateUp) continue;
    // Ack and Abort are bookkeeping-only: the agents' ground-truth
    // outcomes already account for dropouts.
    const std::int32_t i = msg.task;
    if (i < 0 || i >= static_cast<std::int32_t>(clients.size())) continue;
    const auto slot = static_cast<std::size_t>(i);
    if (clients[slot] != msg.sender || seen[slot]) continue;
    seen[slot] = true;
    LocalTrainResult& res = out.results[slot];
    res.delta = std::move(msg.weights);
    res.avg_loss = msg.avg_loss;
    res.num_samples = msg.num_samples;
    res.macs_used = msg.macs_used;
  }
  // An agent that believes its update was delivered must be matched by an
  // UpdateUp in the server's mailbox; anything else is a fabric bug.
  for (std::size_t i = 0; i < clients.size(); ++i)
    if (out.outcomes[i] == ClientOutcome::Trained)
      FT_CHECK_MSG(seen[i], "delivered update missing from server mailbox");
}

ExchangeResult FederationServer::exchange(
    std::uint32_t round, const std::vector<int>& clients, std::size_t n_rngs,
    const std::function<void()>& broadcast_fn) {
  FT_CHECK_MSG(clients.size() == n_rngs,
               "one forked Rng per task slot required");
  ExchangeResult out;
  out.results.resize(clients.size());
  out.outcomes.assign(clients.size(), ClientOutcome::LostDown);

  phase_ = Phase::Broadcast;
  broadcast_fn();
  phase_ = Phase::Collect;
  collect(round, clients, out);
  phase_ = Phase::Aggregate;  // aggregation happens in the caller
  return out;
}

ExchangeResult FederationServer::run_round(
    std::uint32_t round, const WeightSet& global,
    const std::vector<int>& clients, const std::vector<Rng>& client_rngs) {
  return exchange(round, clients, client_rngs.size(), [&] {
    broadcast_shared(round, global, clients, client_rngs);
  });
}

ExchangeResult FederationServer::run_round(
    std::uint32_t round, const std::vector<Model*>& payloads,
    const std::vector<int>& clients, const std::vector<Rng>& client_rngs) {
  FT_CHECK_MSG(payloads.size() == clients.size(),
               "one payload model per task slot required");
  return exchange(round, clients, client_rngs.size(), [&] {
    broadcast_tasks(round, payloads, clients, client_rngs);
  });
}

}  // namespace fedtrans
