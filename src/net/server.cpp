#include "net/server.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/check.hpp"
#include "common/serial.hpp"
#include "common/thread_pool.hpp"

namespace fedtrans {

namespace {

/// Send `encode(0)`; on loss resend `encode(kFlagRetry)` every
/// `ack_timeout_s` simulated seconds, up to `max_retries` times. Returns
/// whether any attempt was delivered. Every resend is counted in
/// FabricStats (frames_retried + the directional retry-byte counter the
/// engine bills through CostMeter).
bool send_with_retry(SimTransport& net, std::int32_t src, std::int32_t dst,
                     double first_at_s, const FabricTopology& policy,
                     bool downlink,
                     const std::function<std::string(std::uint8_t)>& encode) {
  std::string frame = encode(0);
  const std::size_t bytes = frame.size();
  if (net.send(src, dst, std::move(frame), first_at_s)) return true;
  for (int k = 1; k <= policy.max_retries; ++k) {
    net.stats_mutable().frames_retried.fetch_add(1,
                                                 std::memory_order_relaxed);
    auto& counter = downlink ? net.stats_mutable().retry_bytes_down
                             : net.stats_mutable().retry_bytes_up;
    counter.fetch_add(bytes, std::memory_order_relaxed);
    if (net.send(src, dst, encode(kFlagRetry),
                 first_at_s + static_cast<double>(k) * policy.ack_timeout_s))
      return true;
  }
  return false;
}

/// The [slot][spec][weights] head shared by every ModelDown payload: the
/// `body` argument is the [spec string][weights] section (encoded once per
/// distinct payload), the Rng state is appended per task.
std::string model_down_payload(std::int32_t slot, const std::string& body,
                               const std::array<std::uint64_t, 4>& rng_state) {
  std::ostringstream head(std::ios::binary);
  write_pod<std::int32_t>(head, slot);
  std::string payload = head.str();
  payload.reserve(payload.size() + body.size() + sizeof(rng_state));
  payload.append(body);
  payload.append(reinterpret_cast<const char*>(rng_state.data()),
                 sizeof(rng_state));
  return payload;
}

/// Encode the [empty spec][weight blob] body of a shared-model broadcast.
std::string shared_body(const WeightSet& global) {
  std::ostringstream os(std::ios::binary);
  write_string(os, std::string{});  // empty spec: use the prototype
  write_weight_set(os, global);
  return os.str();
}

/// Slot/sender validation shared by every update consumer (flat collect,
/// leaf match, root merge): a task id is admissible iff it indexes the
/// round's task list and was reported by the client owning that slot.
/// First-arrival dedup stays with the caller — the structures differ.
bool admissible_slot(std::int32_t task, std::int32_t sender,
                     const std::vector<int>& clients) {
  return task >= 0 && task < static_cast<std::int32_t>(clients.size()) &&
         clients[static_cast<std::size_t>(task)] == sender;
}

/// Encode the [spec][weights] body of a heterogeneous payload model
/// (params() walks mutably, hence the non-const ref).
std::string task_body(Model& payload) {
  std::ostringstream os(std::ios::binary);
  write_string(os, payload.spec().serialize());
  auto ps = payload.params();
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(ps.size()));
  for (auto& p : ps) p.value->save(os);
  return os.str();
}

}  // namespace

ClientAgent::ClientAgent(int id, const FederatedDataset& data,
                         LocalTrainConfig local, FabricTopology policy)
    : id_(id), data_(&data), local_(local), policy_(policy) {}

void ClientAgent::poll(std::uint32_t round, const Model& prototype,
                       SimTransport& net,
                       std::vector<ClientOutcome>& outcomes) {
  // Drain the mailbox first: duplicates and reordered frames all land here.
  // Invitations and models are paired per task slot; the agent keeps the
  // first arrival of each and ignores the rest.
  std::set<std::int32_t> invited;
  std::map<std::int32_t, FabricMessage> downs;  // task -> first ModelDown
  std::map<std::int32_t, double> down_at_s;

  for (Envelope& env : net.drain(id_)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      // Treated as loss, but counted: the transport never corrupts bytes,
      // so frames_rejected > 0 means a codec bug (asserted 0 in tests).
      net.stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != round) continue;
    if (msg.type == MsgType::JoinRound) {
      if (invited.insert(msg.task).second) {
        FabricMessage ack;
        ack.type = MsgType::Ack;
        ack.round = round;
        ack.sender = id_;
        ack.receiver = msg.sender;
        net.send(id_, msg.sender, encode_message(ack), env.deliver_at_s);
      }
    } else if (msg.type == MsgType::ModelDown) {
      if (downs.find(msg.task) == downs.end()) {
        down_at_s[msg.task] = env.deliver_at_s;
        downs.emplace(msg.task, std::move(msg));
      }
    }
  }

  // Mid-round dropout is a per-(round, client) device event: if it fires,
  // every task trains (burning real compute) and then vanishes unsent.
  const bool dropped_out = net.client_dropped_out(round, id_);
  bool trained_any = false;
  double last_done_s = 0.0;
  std::set<std::int32_t> coordinators;  // distinct ModelDown senders

  for (auto& [task, msg] : downs) {
    // The invitation is load-bearing: a task whose JoinRound never arrived
    // does not participate even if the model frame made it through.
    if (invited.find(task) == invited.end()) continue;
    if (task < 0 || task >= static_cast<std::int32_t>(outcomes.size()))
      continue;

    // Train exactly as the in-process path would: the payload architecture
    // (prototype or on-the-wire spec), the weights, and the coordinator-
    // forked Rng all arrived on the wire.
    Rng spawn(0);  // init weights are overwritten below
    Model local = msg.spec_text.empty()
                      ? prototype
                      : Model(ModelSpec::deserialize(msg.spec_text), spawn);
    local.set_weights(msg.weights);
    Rng rng;
    rng.set_state(msg.rng_state);
    LocalTrainResult res = local_train(local, data_->client(id_), local_, rng);

    const double compute_s =
        res.macs_used / net.device(id_).compute_macs_per_s;
    const double done_s = down_at_s[task] + compute_s;
    trained_any = true;
    last_done_s = std::max(last_done_s, done_s);
    coordinators.insert(msg.sender);

    if (dropped_out) {
      outcomes[static_cast<std::size_t>(task)] = ClientOutcome::Dropout;
      continue;
    }

    // Upload to the coordinator that sent the model (the root, or the
    // shard aggregator owning this slot), resending a lost frame under the
    // retry policy. A dropped-out device never retries — it is gone.
    FabricMessage up;
    up.type = MsgType::UpdateUp;
    up.round = round;
    up.sender = id_;
    up.receiver = msg.sender;
    up.task = task;
    up.weights = std::move(res.delta);
    up.avg_loss = res.avg_loss;
    up.num_samples = res.num_samples;
    up.macs_used = res.macs_used;
    const bool delivered = send_with_retry(
        net, id_, msg.sender, done_s, policy_, /*downlink=*/false,
        [&up](std::uint8_t flags) {
          up.flags = flags;
          return encode_message(up);
        });
    outcomes[static_cast<std::size_t>(task)] =
        delivered ? ClientOutcome::Trained : ClientOutcome::LostUp;
  }

  if (dropped_out && trained_any) {
    // The device vanished after training. It attempts a courtesy Abort to
    // each coordinator it trained for, riding the same lossy links as
    // everything else.
    for (std::int32_t coord : coordinators) {
      FabricMessage abort_msg;
      abort_msg.type = MsgType::Abort;
      abort_msg.round = round;
      abort_msg.sender = id_;
      abort_msg.receiver = coord;
      abort_msg.reason = "dropout";
      net.send(id_, coord, encode_message(abort_msg), last_done_s);
    }
    net.stats_mutable().client_dropouts.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
}

FederationServer::FederationServer(const Model& prototype,
                                   const FederatedDataset& data,
                                   std::vector<DeviceProfile> fleet,
                                   LocalTrainConfig local, FaultConfig faults,
                                   FabricTopology topology)
    : prototype_(prototype), data_(&data), local_(local), topo_(topology) {
  FT_CHECK_MSG(static_cast<int>(fleet.size()) == data.num_clients(),
               "fabric fleet size must match client count");
  FT_CHECK_MSG(topo_.levels >= 1 && topo_.levels <= 2,
               "fabric topology supports 1 (flat) or 2 (root + shard "
               "aggregators) levels, got " << topo_.levels);
  FT_CHECK_MSG(topo_.shards >= 1, "fabric topology needs >= 1 shard");
  FT_CHECK_MSG(topo_.max_retries >= 0 && topo_.ack_timeout_s > 0.0,
               "fabric retry policy needs max_retries >= 0 and a positive "
               "ack timeout");
  net_ = std::make_unique<SimTransport>(std::move(fleet), faults,
                                        sharded() ? topo_.shards : 0);
  agents_.reserve(static_cast<std::size_t>(data.num_clients()));
  for (int c = 0; c < data.num_clients(); ++c)
    agents_.emplace_back(c, data, local, topo_);
}

void FederationServer::send_join(std::uint32_t round, std::int32_t task,
                                 int client, std::int32_t coordinator,
                                 double sent_at_s) {
  FabricMessage join;
  join.type = MsgType::JoinRound;
  join.round = round;
  join.sender = coordinator;
  join.receiver = client;
  join.task = task;
  net_->send(coordinator, client, encode_message(join), sent_at_s);
}

void FederationServer::broadcast_shared(std::uint32_t round,
                                        const WeightSet& global,
                                        const std::vector<int>& clients,
                                        const std::vector<Rng>& client_rngs) {
  // Serialize the weight set once; per task only the (tiny) slot id and
  // Rng-state sections of the ModelDown payload differ, so broadcast is one
  // encode plus a couple of memcpys per client rather than n WeightSet
  // deep copies.
  const std::string body = shared_body(global);

  if (sharded()) {
    std::vector<const std::string*> slot_body(clients.size(), &body);
    broadcast_sharded(round, clients, client_rngs, slot_body);
    return;
  }

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int c = clients[i];
    send_join(round, static_cast<std::int32_t>(i), c, kServerId);
    net_->send(kServerId, c,
               encode_frame(MsgType::ModelDown, round, kServerId, c,
                            model_down_payload(static_cast<std::int32_t>(i),
                                               body,
                                               client_rngs[i].state())));
  }
}

void FederationServer::broadcast_tasks(std::uint32_t round,
                                       const std::vector<Model*>& payloads,
                                       const std::vector<int>& clients,
                                       const std::vector<Rng>& client_rngs) {
  // Architecture + weights ride the frame: the agent rebuilds the exact
  // submodel this task trains, no shared prototype required. The engine
  // hands tasks in the same payload_key group one Model instance, so the
  // (large) spec + weights section is encoded once per distinct instance
  // and reused; only the slot id and Rng state differ per frame.
  std::unordered_map<const Model*, std::string> encoded;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    std::string& body = encoded[payloads[i]];
    if (body.empty()) body = task_body(*payloads[i]);
  }

  if (sharded()) {
    std::vector<const std::string*> slot_body(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i)
      slot_body[i] = &encoded[payloads[i]];
    broadcast_sharded(round, clients, client_rngs, slot_body);
    return;
  }

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int c = clients[i];
    send_join(round, static_cast<std::int32_t>(i), c, kServerId);
    net_->send(kServerId, c,
               encode_frame(MsgType::ModelDown, round, kServerId, c,
                            model_down_payload(static_cast<std::int32_t>(i),
                                               encoded[payloads[i]],
                                               client_rngs[i].state())));
  }
}

void FederationServer::broadcast_sharded(
    std::uint32_t round, const std::vector<int>& clients,
    const std::vector<Rng>& client_rngs,
    const std::vector<const std::string*>& slot_body) {
  // Root → leaves: one bundled ShardDown per shard. Each bundle carries a
  // table of this shard's distinct payload bodies (each encoded once) plus
  // the shard's task list; a lost bundle is resent under the retry policy,
  // and a bundle lost for good leaves the whole shard at LostDown.
  for (int s = 0; s < topo_.shards; ++s) {
    ShardDownlink d;
    d.shard = s;
    std::unordered_map<const std::string*, std::uint32_t> body_idx;
    for (std::size_t i = static_cast<std::size_t>(s); i < clients.size();
         i += static_cast<std::size_t>(topo_.shards)) {
      auto [it, fresh] = body_idx.emplace(
          slot_body[i], static_cast<std::uint32_t>(d.bodies.size()));
      if (fresh) d.bodies.push_back(*slot_body[i]);
      DownlinkTask t;
      t.task = static_cast<std::int32_t>(i);
      t.client = clients[i];
      t.body = it->second;
      t.rng_state = client_rngs[i].state();
      d.tasks.push_back(t);
    }
    if (d.tasks.empty()) continue;
    send_with_retry(*net_, kServerId, aggregator_id(s), /*first_at_s=*/0.0,
                    topo_, /*downlink=*/true, [&](std::uint8_t flags) {
                      return encode_shard_down(round, aggregator_id(s), d,
                                               flags);
                    });
  }
  fan_out_shards(round);
}

void FederationServer::fan_out_shards(std::uint32_t round) {
  // Leaves fan the bundle out to their client partition — JoinRound +
  // ModelDown per task, byte-identical payloads to what a flat broadcast
  // would have sent (only the coordinator id differs), so agents train
  // bit-identically. Shard-parallel on the shared ThreadPool: leaves own
  // disjoint task partitions and the transport mailboxes are thread-safe.
  ThreadPool::global().parallel_for(
      topo_.shards, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t s = lo; s < hi; ++s) {
          const std::int32_t leaf = aggregator_id(static_cast<int>(s));
          bool handled = false;
          for (Envelope& env : net_->drain(leaf)) {
            // First arrival wins (duplicate/retried bundles are possible);
            // skipping before the decode spares the model-sized parse.
            if (handled) continue;
            ShardDownlink d;
            try {
              d = decode_shard_down(env.frame);
            } catch (const Error&) {
              net_->stats_mutable().frames_rejected.fetch_add(
                  1, std::memory_order_relaxed);
              continue;
            }
            if (d.round != round) continue;
            handled = true;
            for (const DownlinkTask& t : d.tasks) {
              // Both per-client frames leave when the bundle arrived — a
              // retried ShardDown must not invite clients retroactively.
              send_join(round, t.task, t.client, leaf, env.deliver_at_s);
              net_->send(leaf, t.client,
                         encode_frame(MsgType::ModelDown, round, leaf,
                                      t.client,
                                      model_down_payload(
                                          t.task, d.bodies[t.body],
                                          t.rng_state),
                                      0),
                         env.deliver_at_s);
            }
          }
        }
      });
}

void FederationServer::poll_agents(std::uint32_t round,
                                   const std::vector<int>& clients,
                                   ExchangeResult& out) {
  // ClientAgent workers run concurrently on the shared ThreadPool — one
  // poll per *distinct* client (an agent drains its whole mailbox, which
  // may hold several task slots). Each task slot is written by exactly one
  // agent, so the result is independent of the thread schedule; nested
  // parallel_for inside local_train runs inline.
  std::vector<int> distinct;
  distinct.reserve(clients.size());
  std::set<int> seen_clients;
  for (int c : clients)
    if (seen_clients.insert(c).second) distinct.push_back(c);

  ThreadPool::global().parallel_for(
      static_cast<std::int64_t>(distinct.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          agents_[static_cast<std::size_t>(
                      distinct[static_cast<std::size_t>(i)])]
              .poll(round, prototype_, *net_, out.outcomes);
      });
}

void FederationServer::collect(std::uint32_t round,
                               const std::vector<int>& clients,
                               ExchangeResult& out) {
  poll_agents(round, clients, out);

  // Match the server's inbound mail to the task list. Duplicates are
  // dropped on the floor here (first arrival wins); stale rounds, unknown
  // slots and sender/slot mismatches are ignored.
  std::vector<bool> seen(clients.size(), false);
  for (Envelope& env : net_->drain(kServerId)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != round) continue;
    if (msg.type != MsgType::UpdateUp) continue;
    // Ack and Abort are bookkeeping-only: the agents' ground-truth
    // outcomes already account for dropouts.
    if (!admissible_slot(msg.task, msg.sender, clients)) continue;
    const auto slot = static_cast<std::size_t>(msg.task);
    if (seen[slot]) continue;
    seen[slot] = true;
    LocalTrainResult& res = out.results[slot];
    res.delta = std::move(msg.weights);
    res.avg_loss = msg.avg_loss;
    res.num_samples = msg.num_samples;
    res.macs_used = msg.macs_used;
  }
  // An agent that believes its update was delivered must be matched by an
  // UpdateUp in the server's mailbox; anything else is a fabric bug.
  for (std::size_t i = 0; i < clients.size(); ++i)
    if (out.outcomes[i] == ClientOutcome::Trained)
      FT_CHECK_MSG(seen[i], "delivered update missing from server mailbox");
}

void FederationServer::collect_sharded(std::uint32_t round,
                                       const std::vector<int>& clients,
                                       ExchangeResult& out) {
  poll_agents(round, clients, out);

  // Leaves match their partition's UpdateUps and forward one PartialUp
  // bundle upstream — shard-parallel on the shared ThreadPool (partitions
  // are disjoint, so outcome flips never race). A bundle lost despite the
  // retry policy takes its shard's trained updates down with it.
  ThreadPool::global().parallel_for(
      topo_.shards, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t s = lo; s < hi; ++s) {
          const std::int32_t leaf = aggregator_id(static_cast<int>(s));
          std::map<std::int32_t, UpdateEntry> matched;  // slot -> first win
          double last_up_s = 0.0;
          for (Envelope& env : net_->drain(leaf)) {
            FabricMessage msg;
            try {
              msg = decode_message(env.frame);
            } catch (const Error&) {
              net_->stats_mutable().frames_rejected.fetch_add(
                  1, std::memory_order_relaxed);
              continue;
            }
            if (msg.round != round || msg.type != MsgType::UpdateUp)
              continue;
            const std::int32_t i = msg.task;
            if (!admissible_slot(i, msg.sender, clients)) continue;
            // This leaf only owns slots of its own shard.
            if (i % topo_.shards != static_cast<std::int32_t>(s)) continue;
            if (matched.count(i) != 0) continue;
            UpdateEntry e;
            e.task = i;
            e.client = msg.sender;
            e.delta = std::move(msg.weights);
            e.avg_loss = msg.avg_loss;
            e.num_samples = msg.num_samples;
            e.macs_used = msg.macs_used;
            matched.emplace(i, std::move(e));
            last_up_s = std::max(last_up_s, env.deliver_at_s);
          }
          if (matched.empty()) continue;

          PartialUpdate p;
          p.shard = static_cast<std::int32_t>(s);
          p.entries.reserve(matched.size());
          for (auto& [slot, e] : matched) p.entries.push_back(std::move(e));
          const bool delivered = send_with_retry(
              *net_, leaf, kServerId, last_up_s, topo_, /*downlink=*/false,
              [&](std::uint8_t flags) {
                return encode_partial_up(round, leaf, kServerId, p, flags);
              });
          if (!delivered) {
            // The shard's partial aggregate never reached the root: its
            // trained updates are lost on the (backbone) uplink.
            for (const UpdateEntry& e : p.entries) {
              auto& o = out.outcomes[static_cast<std::size_t>(e.task)];
              if (o == ClientOutcome::Trained) o = ClientOutcome::LostUp;
            }
          }
        }
      });

  // Root: merge the PartialUp bundles back into the flat task list — the
  // same slot/sender validation and first-arrival dedup as a flat collect,
  // just over bundled entries.
  std::vector<bool> seen(clients.size(), false);
  for (Envelope& env : net_->drain(kServerId)) {
    MsgType type;
    try {
      type = frame_type(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (type != MsgType::PartialUp) continue;  // Ack/Abort: bookkeeping only
    PartialUpdate p;
    try {
      p = decode_partial_up(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (p.round != round) continue;
    for (UpdateEntry& e : p.entries) {
      if (!admissible_slot(e.task, e.client, clients)) continue;
      const auto slot = static_cast<std::size_t>(e.task);
      if (seen[slot]) continue;
      seen[slot] = true;
      LocalTrainResult& res = out.results[slot];
      res.delta = std::move(e.delta);
      res.avg_loss = e.avg_loss;
      res.num_samples = e.num_samples;
      res.macs_used = e.macs_used;
    }
  }
  for (std::size_t i = 0; i < clients.size(); ++i)
    if (out.outcomes[i] == ClientOutcome::Trained)
      FT_CHECK_MSG(seen[i], "delivered update missing from root mailbox");
}

ExchangeResult FederationServer::exchange(
    std::uint32_t round, const std::vector<int>& clients, std::size_t n_rngs,
    const std::function<void()>& broadcast_fn) {
  FT_CHECK_MSG(clients.size() == n_rngs,
               "one forked Rng per task slot required");
  ExchangeResult out;
  out.results.resize(clients.size());
  out.outcomes.assign(clients.size(), ClientOutcome::LostDown);
  const std::uint64_t retry_down0 = net_->stats().retry_bytes_down.load();
  const std::uint64_t retry_up0 = net_->stats().retry_bytes_up.load();

  phase_ = Phase::Broadcast;
  broadcast_fn();
  phase_ = Phase::Collect;
  if (sharded())
    collect_sharded(round, clients, out);
  else
    collect(round, clients, out);
  phase_ = Phase::Aggregate;  // aggregation happens in the caller

  out.retry_down_bytes = static_cast<double>(
      net_->stats().retry_bytes_down.load() - retry_down0);
  out.retry_up_bytes = static_cast<double>(
      net_->stats().retry_bytes_up.load() - retry_up0);
  return out;
}

ExchangeResult FederationServer::run_round(
    std::uint32_t round, const WeightSet& global,
    const std::vector<int>& clients, const std::vector<Rng>& client_rngs) {
  return exchange(round, clients, client_rngs.size(), [&] {
    broadcast_shared(round, global, clients, client_rngs);
  });
}

ExchangeResult FederationServer::run_round(
    std::uint32_t round, const std::vector<Model*>& payloads,
    const std::vector<int>& clients, const std::vector<Rng>& client_rngs) {
  FT_CHECK_MSG(payloads.size() == clients.size(),
               "one payload model per task slot required");
  return exchange(round, clients, client_rngs.size(), [&] {
    broadcast_tasks(round, payloads, clients, client_rngs);
  });
}

AsyncTurnaround FederationServer::async_exchange(std::uint32_t job,
                                                 int client,
                                                 const WeightSet& global,
                                                 const Rng& rng,
                                                 double now_s) {
  FT_CHECK_MSG(!sharded(),
               "fabric-backed async sessions run flat (topology.levels == 1)");
  FT_CHECK_MSG(client >= 0 && client < num_clients(),
               "async dispatch to unknown client " << client);
  AsyncTurnaround t;
  const std::uint64_t retry0 = net_->stats().retry_bytes_up.load();

  // Downlink: one ModelDown (task slot 0, round field = job id) carrying
  // the dispatch-time weight snapshot and the forked Rng — the real wire
  // path, so the client trains on exactly what it downloaded.
  const bool down_ok = net_->send(
      kServerId, client,
      encode_frame(MsgType::ModelDown, job, kServerId, client,
                   model_down_payload(0, shared_body(global), rng.state())),
      now_s);
  if (!down_ok) return t;  // LostDown: the device never saw the job

  // Client side: drain, decode, train on receipt.
  double down_at = 0.0;
  FabricMessage down;
  bool got_down = false;
  for (Envelope& env : net_->drain(client)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != job || msg.type != MsgType::ModelDown || got_down)
      continue;  // duplicates: first arrival wins
    got_down = true;
    down_at = env.deliver_at_s;
    down = std::move(msg);
  }
  FT_CHECK_MSG(got_down, "delivered ModelDown missing from client mailbox");

  Model local = prototype_;
  local.set_weights(down.weights);
  Rng crng;
  crng.set_state(down.rng_state);
  t.res = local_train(local, data_->client(client), local_, crng);
  const double compute_s =
      t.res.macs_used / net_->device(client).compute_macs_per_s;
  const double done_s = down_at + compute_s;
  t.busy_s = done_s - now_s;

  if (net_->client_dropped_out(job, client)) {
    t.outcome = ClientOutcome::Dropout;
    return t;  // trained, then vanished — no upload, no retries
  }

  // Uplink under the retry policy.
  FabricMessage up;
  up.type = MsgType::UpdateUp;
  up.round = job;
  up.sender = client;
  up.receiver = kServerId;
  up.task = 0;
  up.weights = std::move(t.res.delta);
  up.avg_loss = t.res.avg_loss;
  up.num_samples = t.res.num_samples;
  up.macs_used = t.res.macs_used;
  const bool delivered = send_with_retry(
      *net_, client, kServerId, done_s, topo_, /*downlink=*/false,
      [&up](std::uint8_t flags) {
        up.flags = flags;
        return encode_message(up);
      });
  t.retry_up_bytes = static_cast<double>(
      net_->stats().retry_bytes_up.load() - retry0);
  if (!delivered) {
    t.outcome = ClientOutcome::LostUp;
    return t;
  }

  // Server side: collect this job's UpdateUp and its delivery instant.
  bool got_up = false;
  for (Envelope& env : net_->drain(kServerId)) {
    FabricMessage msg;
    try {
      msg = decode_message(env.frame);
    } catch (const Error&) {
      net_->stats_mutable().frames_rejected.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (msg.round != job || msg.type != MsgType::UpdateUp || got_up)
      continue;
    got_up = true;
    t.update_at_s = env.deliver_at_s;
    t.res.delta = std::move(msg.weights);
  }
  FT_CHECK_MSG(got_up, "delivered update missing from server mailbox");
  t.outcome = ClientOutcome::Trained;
  t.busy_s = std::max(t.busy_s, t.update_at_s - now_s);
  return t;
}

}  // namespace fedtrans
