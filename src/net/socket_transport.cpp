#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace fedtrans {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FT_CHECK_MSG(flags >= 0, "fcntl(F_GETFL): " << std::strerror(errno));
  FT_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(F_SETFL): " << std::strerror(errno));
}

template <typename T>
void append_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod_at(const std::string& buf, std::size_t& off) {
  T v;
  std::memcpy(&v, buf.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

std::string serialize_envelope(const Envelope& env) {
  std::string out;
  out.reserve(kSocketEnvelopeBytes + env.frame.size());
  append_pod(out, kSocketEnvelopeMagic);
  append_pod(out, env.src);
  append_pod(out, env.dst);
  append_pod(out, env.sent_at_s);
  append_pod(out, env.deliver_at_s);
  append_pod(out, env.seq);
  append_pod(out, static_cast<std::uint64_t>(env.frame.size()));
  out.append(env.frame);
  return out;
}

Counter& socket_frames_total() {
  static Counter c("fedtrans_socket_frames_total");
  return c;
}

Counter& socket_bytes_total() {
  static Counter c("fedtrans_socket_bytes_total");
  return c;
}

}  // namespace

SocketTransport::SocketTransport(std::vector<DeviceProfile> fleet,
                                 FaultConfig faults, int num_aggregators,
                                 SocketOptions options)
    : Transport(std::move(fleet), faults, num_aggregators),
      options_(options) {
  FT_CHECK_MSG(options_.read_chunk > 0, "read_chunk must be positive");
  FT_CHECK_MSG(options_.write_chunk >= 0, "negative write_chunk");
}

SocketTransport::~SocketTransport() {
  for (auto& [idx, ch] : channels_) {
    if (ch->write_fd >= 0) ::close(ch->write_fd);
    if (ch->read_fd >= 0) ::close(ch->read_fd);
  }
}

SocketTransport::Channel& SocketTransport::channel(std::int32_t endpoint) {
  const int idx = endpoint_index(endpoint);
  std::lock_guard<std::mutex> lk(channels_m_);
  auto& slot = channels_[idx];
  if (!slot) {
    slot = std::make_unique<Channel>();
    int fds[2] = {-1, -1};
    FT_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
                 "socketpair: " << std::strerror(errno));
    set_nonblocking(fds[0]);
    set_nonblocking(fds[1]);
    slot->write_fd = fds[0];
    slot->read_fd = fds[1];
  }
  return *slot;
}

void SocketTransport::pump_locked(Channel& ch) {
  // Compact the consumed prefix before growing the buffer again.
  if (ch.rpos > 0 && (ch.rpos == ch.rbuf.size() || ch.rpos >= 4096)) {
    ch.rbuf.erase(0, ch.rpos);
    ch.rpos = 0;
  }
  char buf[65536];
  const std::size_t chunk =
      std::min(sizeof(buf), static_cast<std::size_t>(options_.read_chunk));
  for (;;) {
    const ssize_t n = ::read(ch.read_fd, buf, chunk);
    if (n > 0) {
      ch.rbuf.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN: the kernel buffer is dry — everything sent so far is here.
    break;
  }
  // Peel complete envelopes; a partial header or payload stays buffered
  // until the next pump (incremental reassembly — no byte count is special).
  while (ch.rbuf.size() - ch.rpos >= kSocketEnvelopeBytes) {
    std::size_t off = ch.rpos;
    const auto magic = read_pod_at<std::uint32_t>(ch.rbuf, off);
    FT_CHECK_MSG(magic == kSocketEnvelopeMagic, "bad socket envelope magic");
    Envelope env;
    env.src = read_pod_at<std::int32_t>(ch.rbuf, off);
    env.dst = read_pod_at<std::int32_t>(ch.rbuf, off);
    env.sent_at_s = read_pod_at<double>(ch.rbuf, off);
    env.deliver_at_s = read_pod_at<double>(ch.rbuf, off);
    env.seq = read_pod_at<std::uint64_t>(ch.rbuf, off);
    const auto frame_len = read_pod_at<std::uint64_t>(ch.rbuf, off);
    if (ch.rbuf.size() - off < frame_len) break;
    env.frame.assign(ch.rbuf, off, frame_len);
    ch.rpos = off + frame_len;
    ch.pending.push_back(std::move(env));
  }
}

void SocketTransport::write_envelope_locked(Channel& ch,
                                            const Envelope& env) {
  const std::string bytes = serialize_envelope(env);
  const std::size_t tear =
      options_.write_chunk > 0 ? static_cast<std::size_t>(options_.write_chunk)
                               : bytes.size();
  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::size_t want = std::min(tear, bytes.size() - off);
    const ssize_t n = ::write(ch.write_fd, bytes.data() + off, want);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full. Both ends live in this process, so relieve the
      // pressure ourselves: move the backlog into user space and retry.
      std::lock_guard<std::mutex> rlk(ch.read_m);
      pump_locked(ch);
      continue;
    }
    FT_CHECK_MSG(false, "socket write failed: " << std::strerror(errno));
  }
  socket_frames_total().inc();
  socket_bytes_total().add(static_cast<double>(bytes.size()));
}

bool SocketTransport::send(std::int32_t src, std::int32_t dst,
                           std::string frame, double sent_at_s) {
  auto stamped = stamp(src, dst, std::move(frame), sent_at_s);
  if (!stamped) return false;
  account_delivered(*stamped);
  Channel& ch = channel(dst);
  {
    std::lock_guard<std::mutex> lk(ch.write_m);
    write_envelope_locked(ch, stamped->env);
    if (stamped->dup) write_envelope_locked(ch, *stamped->dup);
  }
  return true;
}

std::optional<Envelope> SocketTransport::try_recv(std::int32_t dst) {
  Channel& ch = channel(dst);
  std::lock_guard<std::mutex> lk(ch.read_m);
  pump_locked(ch);
  if (ch.pending.empty()) return std::nullopt;
  auto it = std::min_element(ch.pending.begin(), ch.pending.end(),
                             envelope_earlier);
  Envelope env = std::move(*it);
  ch.pending.erase(it);
  return env;
}

std::vector<Envelope> SocketTransport::drain(std::int32_t dst) {
  Channel& ch = channel(dst);
  std::vector<Envelope> out;
  {
    std::lock_guard<std::mutex> lk(ch.read_m);
    pump_locked(ch);
    out.swap(ch.pending);
  }
  std::sort(out.begin(), out.end(), envelope_earlier);
  return out;
}

SocketListener SocketListener::bind_unix(const std::string& path) {
  SocketListener l;
  l.path_ = path;
  l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FT_CHECK_MSG(l.fd_ >= 0, "socket(AF_UNIX): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FT_CHECK_MSG(path.size() < sizeof(addr.sun_path),
               "unix socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a crashed previous run
  FT_CHECK_MSG(::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind(" << path << "): " << std::strerror(errno));
  FT_CHECK_MSG(::listen(l.fd_, 64) == 0,
               "listen: " << std::strerror(errno));
  return l;
}

SocketListener SocketListener::bind_tcp(int port) {
  SocketListener l;
  l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  FT_CHECK_MSG(l.fd_ >= 0, "socket(AF_INET): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  FT_CHECK_MSG(::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind(tcp:" << port << "): " << std::strerror(errno));
  socklen_t len = sizeof(addr);
  FT_CHECK_MSG(::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0,
               "getsockname: " << std::strerror(errno));
  l.port_ = static_cast<int>(ntohs(addr.sin_port));
  FT_CHECK_MSG(::listen(l.fd_, 64) == 0,
               "listen: " << std::strerror(errno));
  return l;
}

SocketListener::SocketListener(SocketListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) ::close(fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

int SocketListener::accept_fd() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return fd;
    FT_CHECK_MSG(errno == EINTR, "accept: " << std::strerror(errno));
  }
}

namespace {

/// Connect with a short retry window: the multi-process demo forks children
/// that connect to a listener the parent bound pre-fork, so a refused
/// connect only happens under unusual scheduling — retry rather than die.
int connect_retrying(int fd, const sockaddr* addr, socklen_t len,
                     const char* what) {
  for (int attempt = 0;; ++attempt) {
    if (::connect(fd, addr, len) == 0) return fd;
    if (errno == EINTR) continue;
    const bool transient = errno == ECONNREFUSED || errno == ENOENT;
    FT_CHECK_MSG(transient && attempt < 100,
                 "connect(" << what << "): " << std::strerror(errno));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FT_CHECK_MSG(fd >= 0, "socket(AF_UNIX): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FT_CHECK_MSG(path.size() < sizeof(addr.sun_path),
               "unix socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return connect_retrying(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr), path.c_str());
}

int connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FT_CHECK_MSG(fd >= 0, "socket(AF_INET): " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  FT_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "bad address: " << host);
  return connect_retrying(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr), host.c_str());
}

void send_frame_fd(int fd, std::string_view frame) {
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    FT_CHECK_MSG(n < 0 && errno == EINTR,
                 "frame write failed: " << std::strerror(errno));
  }
  socket_frames_total().inc();
  socket_bytes_total().add(static_cast<double>(frame.size()));
}

std::string FdFrameReader::read_frame() {
  for (;;) {
    if (auto frame = assembler_.next_frame()) return std::move(*frame);
    std::vector<char> buf(read_chunk_);
    const ssize_t n = ::read(fd_, buf.data(), buf.size());
    if (n > 0) {
      assembler_.feed(buf.data(), static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    FT_CHECK_MSG(n != 0, "peer closed mid-frame ("
                             << assembler_.buffered() << " bytes buffered)");
    FT_CHECK_MSG(false, "frame read failed: " << std::strerror(errno));
  }
}

}  // namespace fedtrans
