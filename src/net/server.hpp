#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "fl/local_train.hpp"
#include "model/model.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace fedtrans {

/// Ground-truth outcome of one selected client's participation in a fabric
/// round (indexed like the selection vector). Billing needs the truth even
/// when the corresponding message never reached the server.
enum class ClientOutcome : std::uint8_t {
  Trained,   ///< update arrived; eligible for aggregation
  LostDown,  ///< invitation/model lost on the downlink — no compute burned
  LostUp,    ///< trained, but the update was lost on the uplink
  Dropout,   ///< trained, then the device went offline before uploading
};

/// What one fabric exchange produced, per selected client.
struct ExchangeResult {
  std::vector<LocalTrainResult> results;  ///< valid iff outcome == Trained
  std::vector<ClientOutcome> outcomes;
};

/// Edge-device worker: owns one client's fabric endpoint. On receipt of
/// ModelDown it loads the global weights into a scratch model, replays the
/// coordinator-forked Rng, runs local_train, and uploads UpdateUp — or
/// Abort, if the fault injector says the device dropped out mid-round.
class ClientAgent {
 public:
  ClientAgent(int id, const FederatedDataset& data, LocalTrainConfig local);

  /// Drain this client's mailbox for `round` and act on every message.
  /// `prototype` supplies the model architecture (weights arrive on the
  /// wire). Returns the outcome this agent experienced.
  ClientOutcome poll(std::uint32_t round, const Model& prototype,
                     SimTransport& net);

 private:
  int id_;
  const FederatedDataset* data_;
  LocalTrainConfig local_;
};

/// Multithreaded federation coordinator: executes the per-round protocol
///
///   Broadcast — JoinRound + ModelDown frame per selected client
///   Collect   — ClientAgent workers run concurrently on the shared
///               ThreadPool; the server drains its mailbox, deduplicates,
///               and matches UpdateUp/Abort frames to the selection
///   (Aggregation stays with the caller — FedAvgRunner folds the collected
///    deltas with exactly the same fixed-order reduction as its in-process
///    path, which is what makes fault-free fabric runs bitwise identical.)
///
/// Straggler policy (overcommit/deadline) is applied by the coordinator
/// before broadcast from predicted completion times, FedScale-style, so the
/// selection the fabric sees is already deadline-trimmed.
class FederationServer {
 public:
  enum class Phase : std::uint8_t { Idle, Broadcast, Collect, Aggregate };

  FederationServer(const Model& prototype, const FederatedDataset& data,
                   std::vector<DeviceProfile> fleet, LocalTrainConfig local,
                   FaultConfig faults);

  /// Run one round's message exchange for `selected` (selection order is
  /// preserved in the result). `global` is the weight snapshot every
  /// participant downloads; `client_rngs[i]` is the coordinator-forked
  /// generator client selected[i] must train with.
  ExchangeResult run_round(std::uint32_t round, const WeightSet& global,
                           const std::vector<int>& selected,
                           const std::vector<Rng>& client_rngs);

  Phase phase() const { return phase_; }
  const SimTransport& transport() const { return *net_; }
  const FabricStats& stats() const { return net_->stats(); }
  int num_clients() const { return net_->num_clients(); }

 private:
  void broadcast(std::uint32_t round, const WeightSet& global,
                 const std::vector<int>& selected,
                 const std::vector<Rng>& client_rngs);
  void collect(std::uint32_t round, const std::vector<int>& selected,
               ExchangeResult& out);

  Model prototype_;
  const FederatedDataset* data_;
  std::unique_ptr<SimTransport> net_;
  std::vector<ClientAgent> agents_;
  Phase phase_ = Phase::Idle;
};

}  // namespace fedtrans
